"""E2 -- Figure 2: DEC 5000/200 receive-side UDP/IP throughput.

Reproduction claims (shape): double-cell DMA > single-cell > single-
cell-with-eager-invalidation at large messages; peaks near 379 / 340 /
250 Mbps; throughput collapses for small messages (per-PDU software
costs dominate); curves flatten past ~16 KB.
"""

import pytest

from repro.bench import PAPER_FIGURE_2, run_figure2

SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@pytest.fixture(scope="module")
def figure2():
    return run_figure2(SIZES)


def test_figure2_benchmark(benchmark, figure2):
    result = benchmark.pedantic(lambda: run_figure2((4, 16, 64)),
                                rounds=1, iterations=1)
    print()
    print(figure2.render(PAPER_FIGURE_2))
    for name, values in figure2.series.items():
        benchmark.extra_info[name] = [round(v) for v in values]


def test_ordering_at_large_messages(figure2):
    for kb in (16, 32, 64, 128, 256):
        double = figure2.at("double cell DMA", kb)
        single = figure2.at("single cell DMA", kb)
        inval = figure2.at("single cell DMA, cache invalidated", kb)
        assert double > single > inval, kb


def test_peaks_near_paper(figure2):
    """The paper's stated maxima (379/340/250) sit on the flat part of
    its curves; our model's 16 KB points land on them, with a mild
    (<35%) residual rise toward 256 KB as per-message costs amortize
    (EXPERIMENTS.md, deviation 3)."""
    assert figure2.at("double cell DMA", 16) == \
        pytest.approx(379, rel=0.15)
    assert figure2.at("single cell DMA", 16) == \
        pytest.approx(340, rel=0.15)
    assert figure2.at("single cell DMA, cache invalidated", 16) == \
        pytest.approx(250, rel=0.15)
    for name in figure2.series:
        assert figure2.peak(name) < figure2.at(name, 16) * 1.35, name


def test_cache_invalidation_costs_at_least_20_percent(figure2):
    """Figure 2's lesson: pessimistic invalidation takes ~90 Mbps off
    the single-cell curve."""
    single = figure2.at("single cell DMA", 16)
    inval = figure2.at("single cell DMA, cache invalidated", 16)
    assert inval < single * 0.8


def test_small_messages_dominated_by_software(figure2):
    """At 1 KB the per-PDU costs (~200 us) cap throughput far below
    the DMA limits."""
    for name in figure2.series:
        assert figure2.at(name, 1) < 90
    assert figure2.at("single cell DMA", 1) < \
        figure2.at("single cell DMA", 16) / 3


def test_curves_flatten_after_16kb(figure2):
    for name in figure2.series:
        v16 = figure2.at(name, 16)
        v256 = figure2.at(name, 256)
        assert v256 > v16 * 0.9, name

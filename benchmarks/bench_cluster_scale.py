"""Sharded-cluster scaling sweep: hosts x shards, events/sec.

Runs the same pairs workload through the single-process fabric and
through ``run_cluster_sharded`` at each shard count, checks the
reports stay byte-identical, and writes a canonical JSON document::

    python benchmarks/bench_cluster_scale.py --out BENCH_cluster_scale.json

Speedup is wall time of the plain run over wall time of the sharded
run at the same host count.  ``cpu_count`` is recorded alongside the
numbers: with fewer cores than shards the proc backend cannot beat
the serial run, and the honest expectation is overhead, not speedup.
The sync cost scales with the number of windows, which is roughly
``sim_time / prop_delay`` -- a longer trunk (--prop-delay) buys
coarser windows for both modes.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.report import to_json                     # noqa: E402
from repro.cluster import (                                # noqa: E402
    Fabric, WorkloadSpec, collect, run_workload,
)
from repro.cluster.sharded import run_cluster_sharded      # noqa: E402
from repro.hw.specs import DS5000_200                      # noqa: E402


def _spec(args) -> WorkloadSpec:
    return WorkloadSpec(
        pattern="pairs", kind="open", seed=args.seed,
        message_bytes=args.size, messages_per_client=args.messages,
        requests_per_client=args.messages)


def _fabric_kwargs(args, n_hosts: int) -> dict:
    return {
        "machines": DS5000_200, "n_hosts": n_hosts, "n_switches": 1,
        "backpressure": "credit", "credit_window_cells": 64,
        "drain_policy": "rr", "prop_delay_us": args.prop_delay}


def run_sweep(args) -> dict:
    points = []
    single_cpu = (os.cpu_count() or 1) <= 1
    for n_hosts in args.hosts:
        kwargs = _fabric_kwargs(args, n_hosts)
        spec = _spec(args)

        start = time.perf_counter()
        fabric = Fabric(**kwargs)
        workload = run_workload(fabric, spec)
        plain_wall = time.perf_counter() - start
        plain_json = collect(fabric, workload).to_json()
        plain_events = fabric.sim.events_processed
        points.append({
            "hosts": n_hosts, "shards": 1, "backend": "plain",
            "wall_s": round(plain_wall, 4),
            "events": plain_events,
            "events_per_s": round(plain_events / plain_wall),
            "windows": 0, "speedup_vs_plain": 1.0,
            "identical_to_plain": True,
        })
        print(f"hosts={n_hosts:<3d} plain      "
              f"{plain_wall:6.2f}s  {plain_events:>8d} events")

        for n_shards in args.shards:
            if n_shards > n_hosts:
                continue
            start = time.perf_counter()
            report, run = run_cluster_sharded(
                kwargs, _spec(args), n_shards, backend=args.backend)
            wall = time.perf_counter() - start
            identical = report.to_json() == plain_json
            points.append({
                "hosts": n_hosts, "shards": n_shards,
                "backend": args.backend,
                "wall_s": round(wall, 4),
                "events": run.events_processed,
                "events_per_s": round(run.events_processed / wall),
                "windows": run.windows,
                # On a 1-CPU box the shards time-slice one core; a
                # "speedup" there would be measurement noise dressed
                # up as a claim, so it is withheld.
                "speedup_vs_plain": (None if single_cpu
                                     else round(plain_wall / wall, 3)),
                "identical_to_plain": identical,
            })
            speedup = ("speedup n/a (1 cpu)" if single_cpu
                       else f"speedup {plain_wall / wall:4.2f}x")
            print(f"hosts={n_hosts:<3d} {args.backend} K={n_shards}  "
                  f"{wall:6.2f}s  {run.events_processed:>8d} events  "
                  f"{run.windows:>6d} windows  {speedup}"
                  f"{'' if identical else '  REPORT MISMATCH'}")
            if not identical:
                raise SystemExit(
                    "sharded report diverged from the plain run -- "
                    "determinism is broken, numbers are meaningless")

    document = {
        "benchmark": "cluster_scale",
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "params": {
            "pattern": "pairs", "backpressure": "credit",
            "message_bytes": args.size, "messages": args.messages,
            "prop_delay_us": args.prop_delay, "seed": args.seed,
            "backend": args.backend,
        },
        "points": points,
    }
    if single_cpu:
        document["warning"] = "cpu_count==1"
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="hosts x shards scaling sweep for the cluster")
    parser.add_argument("--hosts", type=lambda s: [int(x) for x in
                        s.split(",")], default=[8, 16])
    parser.add_argument("--shards", type=lambda s: [int(x) for x in
                        s.split(",")], default=[2, 4])
    parser.add_argument("--backend", default="proc",
                        choices=("proc", "thread", "inline"))
    parser.add_argument("--messages", type=int, default=8)
    parser.add_argument("--size", type=int, default=8192)
    parser.add_argument("--prop-delay", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="write canonical JSON here")
    args = parser.parse_args(argv)

    document = run_sweep(args)
    payload = to_json(document)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Sharded-cluster scaling sweep: hosts x shards, events/sec.

Runs the same pairs workload through the single-process fabric (cell
trains on and off) and through ``run_cluster_sharded`` at each shard
count, checks the reports stay byte-identical, and writes a canonical
JSON document::

    python benchmarks/bench_cluster_scale.py --out BENCH_cluster_scale.json

Speedup is wall time of the plain run over wall time of the sharded
run at the same host count.  ``cpu_count`` is recorded alongside the
numbers: with fewer cores than shards the proc backend cannot beat
the serial run, and the honest expectation is overhead, not speedup.
The sync cost scales with the number of windows: with adaptive
coalescing (the default) shards that provably cannot emit boundary
messages stop bounding their peers' horizons, so the pairs sweep --
whose min-cut sharding colocates every flow -- collapses to a single
window.  Every sharded point is also measured with
``coalesce=False, transport="pickle"`` so the classic fixed-window /
per-batch-pickle cost stays on record as the baseline.

Each timed point runs ``--repeats`` times (default 3) with the GC
collected and frozen around the timed region; the row reports the
minimum wall and asserts the report bytes are identical across
repeats.  Sharded rows carry the barrier accounting counters --
``windows``, ``boundary_msgs``, ``boundary_bytes`` -- plus the
``coalesce``/``transport`` mode that produced them.

The ``boundary_transport`` section measures the struct codec against
batched pickle on workloads whose min-cut sharding *does* cross
shards (all2all, incast), recording the encoded bytes per transport
and the ratio.  Both transports must produce byte-identical reports.

Event accounting
----------------
``events_per_s`` on every row is **model events** per wall second,
where model events = ``events_processed + events_absorbed``: the
per-cell events the run executed plus the ones the cell-train fast
path folded into train events.  That makes the column comparable
across all four row kinds (plain/sharded x train/no-train) -- a train
run does the same model work in fewer heap operations, and the sweep
asserts the model-event totals agree exactly.  Coordinator window
probes never inflate the sharded rows by construction: probes run in
the coordinator process, and ``events_processed`` sums only the
per-shard ``Simulator`` counters.

The ``burst-pairs`` rows measure the fast path itself: whole PDUs
submitted to the uplinks in one event each, a zero-event train sink at
the destination edge (``Fabric.set_train_sink``), no host protocol
stack in the loop.  That is the uncontended-segment regime the trains
were built for, and where the >=10x events/s gain shows.
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.atm.cell import Cell                            # noqa: E402
from repro.bench.report import to_json                     # noqa: E402
from repro.cluster import (                                # noqa: E402
    Fabric, WorkloadSpec, collect, run_workload,
)
from repro.cluster.sharded import run_cluster_sharded      # noqa: E402
from repro.hw.specs import (                               # noqa: E402
    AAL_PAYLOAD_BYTES, DS5000_200, STRIPE_LINKS,
)

EVENT_BUDGET = 200_000_000


def _spec(args) -> WorkloadSpec:
    return WorkloadSpec(
        pattern="pairs", kind="open", seed=args.seed,
        message_bytes=args.size, messages_per_client=args.messages,
        requests_per_client=args.messages)


def _fabric_kwargs(args, n_hosts: int, trains: bool) -> dict:
    return {
        "machines": DS5000_200, "n_hosts": n_hosts, "n_switches": 1,
        "backpressure": "credit", "credit_window_cells": 64,
        "drain_policy": "rr", "prop_delay_us": args.prop_delay,
        "trains": trains}


def _model_events(sim) -> int:
    return sim.events_processed + sim.events_absorbed


def run_burst_point(args, n_hosts: int, trains: bool) -> dict:
    """Uncontended pairs at the fabric level: one event submits a whole
    PDU per sender, a train sink replaces the per-cell edge, and the
    host protocol stacks stay out of the loop.  Both train settings do
    identical model work (the sweep asserts it), so the events/s ratio
    is exactly the heap-operation saving."""
    fabric = Fabric(machines=DS5000_200, n_hosts=n_hosts, n_switches=1,
                    backpressure="none", switching_delay_us=0.0,
                    prop_delay_us=args.prop_delay, trains=trains)
    sim = fabric.sim
    n_cells = max(1, -(-args.size // AAL_PAYLOAD_BYTES))
    payload = b"\x00" * AAL_PAYLOAD_BYTES
    # Lanes and the output port run at the same cell rate, so the
    # port keeps up and back-to-back PDUs stay uncontended.
    lane_time = fabric._uplink_by_host[0].pipes[0].cell_time_us
    pdu_span = (-(-n_cells // STRIPE_LINKS) + 1) * lane_time

    for src in range(0, n_hosts - 1, 2):
        dst = src + 1
        flow = fabric.open_flow(src, dst)
        # Neutralize the destination edge identically in both modes:
        # fused trains hit the sink, expanded/per-cell deliveries hit
        # a counting stub on the downlink trunk.  Either way no cell
        # reaches the host board, so neither mode pays rx-path events.
        if trains:
            fabric.set_train_sink(dst, lambda cells, deps: None)
        d_sw, d_trunk = fabric._attach[dst]

        def edge(cell, d=dst):
            if cell.corrupted:
                fabric._corrupted[d] += 1
            else:
                fabric._delivered[d] += 1

        fabric.switches[d_sw]._trunk_deliver[d_trunk] = edge

        uplink = fabric._uplink_by_host[src]
        for m in range(args.burst_pdus):
            cells = [Cell(vci=flow.src_vci, payload=payload,
                          eom=(i == n_cells - 1), tx_index=i)
                     for i in range(n_cells)]
            sim.call_at(m * pdu_span,
                        lambda u=uplink, cs=cells: u.submit_pdu(cs))

    # The burst rows are a microbenchmark of the event core itself;
    # collector pauses (driven by the millions of cells built above)
    # would otherwise dominate the short train-mode wall and understate
    # the ratio.  Both modes get the identical treatment.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        executed = sim.run(EVENT_BUDGET)
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    if executed >= EVENT_BUDGET:
        raise SystemExit("burst workload did not quiesce -- "
                         "the numbers would be meaningless")
    model = _model_events(sim)
    return {
        "workload": "burst-pairs", "hosts": n_hosts, "shards": 1,
        "train": trains,
        "requested_backend": args.backend, "measured_backend": "plain",
        "wall_s": round(wall, 4),
        "events_processed": sim.events_processed,
        "events_absorbed": sim.events_absorbed,
        "model_events": model,
        "events_per_s": round(model / wall),
        "cells_delivered": fabric.cells_delivered(),
        "sim_time_us": round(sim.now, 4),
    }


def _one_plain(args, n_hosts: int, trains: bool) -> tuple:
    """One timed plain run under a frozen GC."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fabric = Fabric(**_fabric_kwargs(args, n_hosts, trains))
        workload = run_workload(fabric, _spec(args),
                                max_events=EVENT_BUDGET)
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return wall, {"json": collect(fabric, workload).to_json(),
                  "model": _model_events(fabric.sim),
                  "processed": fabric.sim.events_processed,
                  "absorbed": fabric.sim.events_absorbed}


def _one_sharded(args, n_hosts: int, n_shards: int, coalesce: bool,
                 transport: str) -> tuple:
    """One timed sharded run under a frozen GC."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        report, run = run_cluster_sharded(
            _fabric_kwargs(args, n_hosts, True), _spec(args),
            n_shards, backend=args.backend, coalesce=coalesce,
            transport=transport)
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return wall, {"json": report.to_json(), "run": run}


def _timed_points(args, n_hosts: int) -> dict:
    """Every timed point for one host count, ``--repeats`` times in
    **interleaved rounds** -- machine noise on a shared box arrives
    in bursts, so running each round back-to-back and taking per-point
    minima exposes every point to the same environment instead of
    penalizing whichever point runs last.  Reports must be identical
    across repeats (determinism check rides along for free)."""
    jobs = [("plain", True), ("plain", False)]
    for n_shards in args.shards:
        if n_shards <= n_hosts:
            jobs.append(("shard", n_shards, True, "struct"))
            jobs.append(("shard", n_shards, False, "pickle"))
    results: dict = {}
    for _ in range(args.repeats):
        for job in jobs:
            if job[0] == "plain":
                wall, info = _one_plain(args, n_hosts, job[1])
            else:
                wall, info = _one_sharded(args, n_hosts, *job[1:])
            held = results.get(job)
            if held is None:
                info["wall"] = wall
                results[job] = info
            else:
                if info["json"] != held["json"]:
                    raise SystemExit(
                        f"{job}: report changed between repeats -- "
                        f"the run is not deterministic")
                held["wall"] = min(held["wall"], wall)
    return results


# Workloads whose min-cut sharding crosses shards, so boundary
# messages actually flow: this is where the struct codec is measured
# against batched pickle.  Backends don't change the encoded bytes,
# so the cheap inline backend keeps this section fast.
_TRANSPORT_CONFIGS = [
    {"name": "all2all-credit",
     "fabric": {"backpressure": "credit", "credit_window_cells": 64,
                "drain_policy": "rr", "n_switches": 1}},
    {"name": "incast-efci-2sw",
     "fabric": {"backpressure": "efci", "n_switches": 2},
     "pattern": "incast"},
    {"name": "all2all-none-2sw",
     "fabric": {"backpressure": "none", "n_switches": 2}},
]


def run_transport_comparison(args) -> list[dict]:
    """Struct codec vs batched pickle on cross-shard workloads:
    encoded boundary bytes per transport, the ratio, and bytes per
    model event.  Reports must stay byte-identical."""
    rows = []
    for cfg in _TRANSPORT_CONFIGS:
        fabric_kwargs = {"machines": DS5000_200, "n_hosts": 8,
                         "prop_delay_us": args.prop_delay,
                         "trains": True}
        fabric_kwargs.update(cfg["fabric"])
        spec = WorkloadSpec(
            pattern=cfg.get("pattern", "all2all"), kind="open",
            seed=args.seed, message_bytes=2048, messages_per_client=2)
        runs = {}
        for transport in ("struct", "pickle"):
            report, run = run_cluster_sharded(
                fabric_kwargs, spec, 2, backend="inline",
                transport=transport)
            runs[transport] = {"json": report.to_json(), "run": run}
        if runs["struct"]["json"] != runs["pickle"]["json"]:
            raise SystemExit(
                f"{cfg['name']}: struct transport report diverged "
                f"from pickle -- the codec is lossy, numbers are "
                f"meaningless")
        struct_run = runs["struct"]["run"]
        pickle_run = runs["pickle"]["run"]
        model = (struct_run.events_processed
                 + struct_run.events_absorbed)
        ratio = (round(pickle_run.boundary_bytes
                       / struct_run.boundary_bytes, 2)
                 if struct_run.boundary_bytes else None)
        rows.append({
            "workload": cfg["name"], "hosts": 8, "shards": 2,
            "boundary_msgs": struct_run.boundary_msgs,
            "struct_bytes": struct_run.boundary_bytes,
            "pickle_bytes": pickle_run.boundary_bytes,
            "bytes_ratio": ratio,
            "model_events": model,
            "struct_bytes_per_model_event": round(
                struct_run.boundary_bytes / model, 4),
            "pickle_bytes_per_model_event": round(
                pickle_run.boundary_bytes / model, 4),
        })
        print(f"transport {cfg['name']:<18} "
              f"{struct_run.boundary_msgs:>6d} msgs  struct "
              f"{struct_run.boundary_bytes:>8d} B  pickle "
              f"{pickle_run.boundary_bytes:>8d} B  "
              f"ratio {ratio}x")
    return rows


def run_sweep(args) -> dict:
    points = []
    single_cpu = (os.cpu_count() or 1) <= 1
    for n_hosts in args.hosts:
        timed = _timed_points(args, n_hosts)
        plain = {}
        for trains in (True, False):
            plain[trains] = timed[("plain", trains)]
            wall = plain[trains]["wall"]
            points.append({
                "workload": "pairs", "hosts": n_hosts, "shards": 1,
                "train": trains,
                "requested_backend": args.backend,
                "measured_backend": "plain",
                "repeats": args.repeats,
                "wall_s": round(wall, 4),
                "events_processed": plain[trains]["processed"],
                "events_absorbed": plain[trains]["absorbed"],
                "model_events": plain[trains]["model"],
                "events_per_s": round(plain[trains]["model"] / wall),
                "windows": 0, "speedup_vs_plain": 1.0,
                "identical_to_plain": True,
            })
            print(f"hosts={n_hosts:<3d} plain "
                  f"{'train   ' if trains else 'no-train'} "
                  f"{wall:6.2f}s  {plain[trains]['model']:>8d} "
                  f"model events")
        if plain[True]["json"] != plain[False]["json"]:
            raise SystemExit(
                "--train report diverged from --no-train -- the fast "
                "path changed the model, numbers are meaningless")
        if plain[True]["model"] != plain[False]["model"]:
            raise SystemExit(
                f"model-event totals diverged: train "
                f"{plain[True]['model']} != no-train "
                f"{plain[False]['model']}")

        plain_wall = plain[True]["wall"]
        plain_json = plain[True]["json"]
        for n_shards in args.shards:
            if n_shards > n_hosts:
                continue
            for coalesce, transport in ((True, "struct"),
                                        (False, "pickle")):
                point = timed[("shard", n_shards, coalesce, transport)]
                wall, run = point["wall"], point["run"]
                identical = point["json"] == plain_json
                model = run.events_processed + run.events_absorbed
                points.append({
                    "workload": "pairs", "hosts": n_hosts,
                    "shards": n_shards, "train": True,
                    "requested_backend": args.backend,
                    "measured_backend": args.backend,
                    "coalesce": coalesce, "transport": transport,
                    "repeats": args.repeats,
                    "wall_s": round(wall, 4),
                    "events_processed": run.events_processed,
                    "events_absorbed": run.events_absorbed,
                    "model_events": model,
                    "events_per_s": round(model / wall),
                    "windows": run.windows,
                    "boundary_msgs": run.boundary_msgs,
                    "boundary_bytes": run.boundary_bytes,
                    # On a 1-CPU box the shards time-slice one core;
                    # a "speedup" there would be measurement noise
                    # dressed up as a claim, so it is withheld.
                    "speedup_vs_plain": (
                        None if single_cpu
                        else round(plain_wall / wall, 3)),
                    "identical_to_plain": identical,
                })
                speedup = ("speedup n/a (1 cpu)" if single_cpu
                           else f"speedup {plain_wall / wall:4.2f}x")
                mode = ("coalesce" if coalesce else "fixed   ")
                print(f"hosts={n_hosts:<3d} {args.backend} "
                      f"K={n_shards} {mode}  {wall:6.2f}s  "
                      f"{model:>8d} model events  "
                      f"{run.windows:>6d} windows  {speedup}"
                      f"{'' if identical else '  REPORT MISMATCH'}")
                if not identical:
                    raise SystemExit(
                        "sharded report diverged from the plain run "
                        "-- determinism is broken, numbers are "
                        "meaningless")
                if model != plain[True]["model"]:
                    raise SystemExit(
                        f"sharded model-event total {model} != plain "
                        f"{plain[True]['model']} -- the accounting is "
                        f"broken, events/s is not comparable")

    transport_rows = run_transport_comparison(args)

    train_ratios = []
    for n_hosts in args.hosts:
        burst = {trains: run_burst_point(args, n_hosts, trains)
                 for trains in (True, False)}
        for trains in (True, False):
            points.append(burst[trains])
            print(f"hosts={n_hosts:<3d} burst "
                  f"{'train   ' if trains else 'no-train'} "
                  f"{burst[trains]['wall_s']:6.2f}s  "
                  f"{burst[trains]['model_events']:>8d} model events  "
                  f"{burst[trains]['events_per_s']:>9d} ev/s")
        for field in ("model_events", "cells_delivered", "sim_time_us"):
            if burst[True][field] != burst[False][field]:
                raise SystemExit(
                    f"burst {field} diverged: train "
                    f"{burst[True][field]} != no-train "
                    f"{burst[False][field]}")
        ratio = round(burst[True]["events_per_s"]
                      / burst[False]["events_per_s"], 2)
        train_ratios.append({"hosts": n_hosts,
                             "events_per_s_ratio": ratio})
        print(f"hosts={n_hosts:<3d} burst train speedup {ratio:.1f}x")

    document = {
        "benchmark": "cluster_scale",
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "params": {
            "pattern": "pairs", "backpressure": "credit",
            "message_bytes": args.size, "messages": args.messages,
            "burst_pdus": args.burst_pdus,
            "prop_delay_us": args.prop_delay, "seed": args.seed,
            "repeats": args.repeats,
            "requested_backend": args.backend,
        },
        "points": points,
        "boundary_transport": transport_rows,
        "train_speedup": train_ratios,
    }
    if single_cpu:
        document["warning"] = "cpu_count==1"
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="hosts x shards scaling sweep for the cluster")
    parser.add_argument("--hosts", type=lambda s: [int(x) for x in
                        s.split(",")], default=[8, 16])
    parser.add_argument("--shards", type=lambda s: [int(x) for x in
                        s.split(",")], default=[2, 4])
    parser.add_argument("--backend", default="proc",
                        choices=("proc", "thread", "inline"))
    parser.add_argument("--messages", type=int, default=8)
    parser.add_argument("--size", type=int, default=8192)
    parser.add_argument("--burst-pdus", type=int, default=64,
                        help="PDUs per sender in the burst-pairs rows")
    parser.add_argument("--prop-delay", type=float, default=2.0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed runs per point; the row reports "
                             "the minimum wall")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="write canonical JSON here")
    args = parser.parse_args(argv)

    document = run_sweep(args)
    payload = to_json(document)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E7 -- Lock-free queues versus the test-and-set spin-lock
(section 2.1.1).

The same host/board producer-consumer pattern under both disciplines.
Claims: the lock-free queue finishes the workload substantially
faster, and the locked variant burns extra bus words on lock traffic
and spin reads.
"""

import pytest

from repro.baselines import LockedDescriptorQueue
from repro.hw import DS5000_200, DualPortMemory, TurboChannel
from repro.osiris import Descriptor, DescriptorQueue
from repro.sim import Delay, Simulator, spawn

N_ITEMS = 200
BOARD_SERVICE_US = 0.4


def run_lockfree() -> dict:
    sim = Simulator()
    tc = TurboChannel(sim, DS5000_200.bus)
    dp = DualPortMemory(8192)
    queue = DescriptorQueue(dp, 0, 32, host_is_writer=True)

    def host():
        for i in range(N_ITEMS):
            while not queue.push(Descriptor(addr=0x1000, length=i)):
                yield Delay(0.5)
            reads, writes = queue.host_access.reset()
            yield from tc.pio_read_words(reads)
            yield from tc.pio_write_words(writes)

    def board():
        count = 0
        while count < N_ITEMS:
            desc = queue.pop(by_host=False)
            if desc is None:
                yield Delay(0.2)
            else:
                count += 1
                yield Delay(BOARD_SERVICE_US)

    spawn(sim, host())
    spawn(sim, board())
    sim.run()
    return {"makespan_us": sim.now, "pio_words": tc.pio_words}


def run_locked() -> dict:
    sim = Simulator()
    tc = TurboChannel(sim, DS5000_200.bus)
    dp = DualPortMemory(8192)
    queue = LockedDescriptorQueue(sim, tc, dp, 0, 32,
                                  host_is_writer=True)

    def host():
        for i in range(N_ITEMS):
            while True:
                ok = yield from queue.push(
                    Descriptor(addr=0x1000, length=i), by_host=True)
                if ok:
                    break
                yield Delay(0.5)

    def board():
        count = 0
        while count < N_ITEMS:
            desc = yield from queue.pop(by_host=False)
            if desc is None:
                yield Delay(0.2)
            else:
                count += 1
                yield Delay(BOARD_SERVICE_US)

    spawn(sim, host())
    spawn(sim, board())
    sim.run()
    return {
        "makespan_us": sim.now,
        "pio_words": tc.pio_words,
        "failed_acquires": queue.lock.register.failed_attempts,
        "host_spin_us": queue.lock.host_spin_time,
    }


@pytest.fixture(scope="module")
def results():
    return {"lockfree": run_lockfree(), "locked": run_locked()}


def test_lockfree_ablation_benchmark(benchmark, results):
    benchmark.pedantic(run_lockfree, rounds=1, iterations=1)
    print()
    print(f"Queue discipline over {N_ITEMS} descriptors:")
    for name, r in results.items():
        print(f"  {name:9} makespan {r['makespan_us']:9.1f} us, "
              f"{r['pio_words']} bus words")
        benchmark.extra_info[name] = r
    assert results["locked"]["makespan_us"] > \
        results["lockfree"]["makespan_us"] * 1.5


def test_lockfree_is_faster(results):
    assert results["lockfree"]["makespan_us"] < \
        results["locked"]["makespan_us"] / 1.5


def test_locked_burns_more_bus_words(results):
    """Lock traffic (acquire/release/spin reads) is pure overhead on
    the expensive dual-port path."""
    assert results["locked"]["pio_words"] > \
        results["lockfree"]["pio_words"] * 1.3


def test_contention_actually_happened(results):
    assert results["locked"]["failed_acquires"] > 0
    assert results["locked"]["host_spin_us"] > 0

"""E16 -- Virtual-address DMA via a scatter/gather map (section 2.2).

The map collapses one-descriptor-per-physical-buffer into one per
message segment, but 'host driver software must set up the map to
contain appropriate mappings for all the fragments of a buffer before
a DMA transfer ... physical buffer fragmentation is a potential
performance concern even when virtual DMA is available' -- i.e. the
per-page cost moves, it does not vanish.
"""

import pytest

from repro.driver.config import DriverConfig
from repro.hw import DS5000_200
from repro.net import Host
from repro.sim import Simulator, spawn


def send_profile(use_sg_map: bool, message_bytes: int = 16 * 1024) -> dict:
    sim = Simulator()
    config = DriverConfig(use_sg_map=use_sg_map)
    host = Host(sim, DS5000_200, config=config)
    host.connect(link=None, deliver=lambda c: None)
    app, path = host.open_udp_path(local_port=7, remote_port=9)
    marks = {}

    def go():
        start = sim.now
        for _ in range(10):
            yield from app.send_message(b"\x33" * message_bytes)
        marks["send_us"] = (sim.now - start) / 10

    spawn(sim, go(), "s")
    sim.run()
    return {
        "descriptors": host.board.kernel_channel.tx_queue.pushes,
        "send_us": marks["send_us"],
        "map_entries": (host.driver.sgmap.entries_loaded
                        if host.driver.sgmap else 0),
        "mbps": message_bytes * 10 * 8.0 / sim.now,
    }


@pytest.fixture(scope="module")
def results():
    return {"physical buffers": send_profile(False),
            "scatter/gather map": send_profile(True)}


def test_sgmap_benchmark(benchmark, results):
    benchmark.pedantic(lambda: send_profile(True), rounds=1,
                       iterations=1)
    print()
    print("10 x 16 KB messages on the DS5000/200 send path:")
    for name, r in results.items():
        print(f"  {name:20} {r['descriptors']:4d} descriptors, "
              f"{r['map_entries']:4d} map entries, send path "
              f"{r['send_us']:6.1f} us/msg")
        benchmark.extra_info[name] = r
    assert results["scatter/gather map"]["descriptors"] < \
        results["physical buffers"]["descriptors"]


def test_map_cuts_descriptor_count(results):
    phys = results["physical buffers"]["descriptors"]
    mapped = results["scatter/gather map"]["descriptors"]
    assert mapped < phys * 0.6


def test_per_page_cost_remains(results):
    """The paper's caveat: the map charges per page, so the send path
    does not become per-message-constant."""
    r = results["scatter/gather map"]
    assert r["map_entries"] >= 10 * 5  # ~5+ pages per 16 KB message
    # The win is real but bounded: well under 2x on the send path.
    speedup = (results["physical buffers"]["send_us"]
               / r["send_us"])
    assert 1.0 < speedup < 2.0

"""E6 -- Interrupt discipline ablation (section 2.1.2).

Coalesced interrupts (one per receive-queue empty->non-empty
transition) versus the traditional one per PDU, under a packet train.
Claims: coalescing cuts interrupts to well under one per PDU and wins
throughput on the DS5000/200, where each interrupt burns 75 us.
"""

import pytest

from repro.baselines import run_interrupt_discipline
from repro.hw import DEC3000_600, DS5000_200
from repro.osiris import InterruptMode


@pytest.fixture(scope="module")
def results():
    out = {}
    for machine in (DS5000_200, DEC3000_600):
        for mode in InterruptMode:
            out[(machine.name, mode)] = run_interrupt_discipline(
                machine, 4096, mode, messages=60)
    return out


def test_interrupt_ablation_benchmark(benchmark, results):
    benchmark.pedantic(
        lambda: run_interrupt_discipline(DS5000_200, 4096,
                                         InterruptMode.COALESCED,
                                         messages=30),
        rounds=1, iterations=1)
    print()
    print("Interrupt discipline (4 KB messages, 60-message train):")
    for (machine, mode), r in results.items():
        line = (f"  {machine:24} {mode.value:10} "
                f"{r.mbps:7.1f} Mbps  {r.interrupts_per_pdu:5.2f} "
                "interrupts/PDU")
        print(line)
        benchmark.extra_info[f"{machine}/{mode.value}"] = {
            "mbps": round(r.mbps, 1),
            "irq_per_pdu": round(r.interrupts_per_pdu, 3),
        }
    coalesced = results[(DS5000_200.name, InterruptMode.COALESCED)]
    per_pdu = results[(DS5000_200.name, InterruptMode.PER_PDU)]
    assert coalesced.interrupts_per_pdu < 0.35
    assert per_pdu.interrupts_per_pdu > 0.9
    assert coalesced.mbps > per_pdu.mbps


def test_coalescing_is_much_less_than_one_per_pdu(results):
    """Paper: 'in situations where high throughput is required the
    number of interrupts is much lower than the traditional
    one-per-PDU'."""
    r = results[(DS5000_200.name, InterruptMode.COALESCED)]
    assert r.interrupts_per_pdu < 0.35


def test_per_pdu_costs_throughput_on_slow_host(results):
    slow = results[(DS5000_200.name, InterruptMode.PER_PDU)]
    fast = results[(DS5000_200.name, InterruptMode.COALESCED)]
    # Each extra interrupt costs 75 + 8 us of a ~300 us budget.
    assert fast.mbps > slow.mbps * 1.1


def test_alpha_less_sensitive(results):
    """The Alpha's 20 us interrupts hurt relatively less."""
    ds_ratio = (results[(DS5000_200.name, InterruptMode.COALESCED)].mbps
                / results[(DS5000_200.name, InterruptMode.PER_PDU)].mbps)
    alpha_ratio = (
        results[(DEC3000_600.name, InterruptMode.COALESCED)].mbps
        / results[(DEC3000_600.name, InterruptMode.PER_PDU)].mbps)
    assert ds_ratio > alpha_ratio * 0.98

"""E18 -- Protocol independence: a reliable protocol over the same path.

The paper stresses its approach 'is not tailored to TCP/IP'.  RDP (a
go-back-N reliable protocol built from the same session machinery)
runs over the identical driver/board path; its cost relative to raw
UDP quantifies what reliability adds on this hardware, and its
retransmission machinery gives loss tolerance UDP lacks.

Measured on the DEC 3000/600: on the DECstation, checksumming every
received byte over the shared bus caps absorption near 80 Mbps while
the link delivers ~300, so the unpaced window overruns the 64-cell
board FIFO and go-back-N spends its time in timeout recovery -- real
receive overrun, demonstrated in tests/test_rdp.py rather than
benchmarked here.
"""

import pytest

from repro.hw import DEC3000_600
from repro.net import BackToBack
from repro.sim import spawn
from repro.xkernel import RdpProtocol, RdpSession, TestProgram

N_MESSAGES = 20
SIZE = 8 * 1024


def run_udp() -> dict:
    net = BackToBack(DEC3000_600)
    app_a, app_b = net.open_udp_pair(echo_b=False)

    def go():
        for _ in range(N_MESSAGES):
            yield from app_a.send_length(SIZE)

    spawn(net.sim, go(), "s")
    net.sim.run()
    assert len(app_b.receptions) == N_MESSAGES
    return {"elapsed_us": app_b.receptions[-1].time,
            "mbps": N_MESSAGES * SIZE * 8.0 / app_b.receptions[-1].time}


def run_rdp(window: int = 8) -> dict:
    net = BackToBack(DEC3000_600)
    sessions = []
    apps = []
    for host in (net.a, net.b):
        drv = host.driver.open_path(vci=500)
        proto = RdpProtocol(host.cpu, host.sim, cache=host.cache,
                            window=window)
        session = RdpSession(proto, drv)
        apps.append(TestProgram(host.test, session))
        sessions.append((proto, session))

    sa = sessions[0][1]

    def go():
        for _ in range(N_MESSAGES):
            yield from apps[0].send_message(b"\x66" * SIZE)
        ok = yield from sa.wait_all_acked()
        assert ok

    spawn(net.sim, go(), "s")
    net.sim.run()
    assert len(apps[1].receptions) == N_MESSAGES
    last = apps[1].receptions[-1].time
    return {"elapsed_us": last,
            "mbps": N_MESSAGES * SIZE * 8.0 / last,
            "retransmissions": sessions[0][0].retransmissions}


@pytest.fixture(scope="module")
def results():
    return {"udp": run_udp(), "rdp w=8": run_rdp(8),
            "rdp w=1": run_rdp(1)}


def test_rdp_benchmark(benchmark, results):
    benchmark.pedantic(lambda: run_rdp(8), rounds=1, iterations=1)
    print()
    print(f"{N_MESSAGES} x {SIZE // 1024} KB messages, DEC 3000/600 pair:")
    for name, r in results.items():
        extra = (f", {r['retransmissions']} retransmissions"
                 if "retransmissions" in r else "")
        print(f"  {name:8} {r['mbps']:7.1f} Mbps{extra}")
        benchmark.extra_info[name] = round(r["mbps"], 1)
    assert results["rdp w=8"]["mbps"] < results["udp"]["mbps"]


def test_reliability_costs_but_not_catastrophically(results):
    """Windowed RDP keeps the pipe reasonably full: acks ride the
    reverse link concurrently with data."""
    udp = results["udp"]["mbps"]
    rdp = results["rdp w=8"]["mbps"]
    assert rdp < udp
    assert rdp > udp * 0.45


def test_stop_and_wait_is_much_worse(results):
    """Window=1 serializes every message behind a full round trip."""
    assert results["rdp w=1"]["mbps"] < \
        results["rdp w=8"]["mbps"] * 0.75


def test_no_spurious_retransmissions(results):
    assert results["rdp w=8"]["retransmissions"] == 0

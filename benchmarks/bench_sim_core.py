"""Micro-benchmarks for the event engine's hot paths.

Three scenarios that dominate real model runs::

    python benchmarks/bench_sim_core.py

* throughput -- schedule-and-run a flat stream of events (the heap's
  steady state everywhere).
* cancel-heavy -- timers armed and cancelled before firing, the
  retransmit/watchdog pattern; exercises dead-entry compaction.
* pending-poll -- a model that checks ``sim.pending`` between events
  (the workload engine's completion test); must be O(1), not a scan.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sim import Simulator        # noqa: E402


def bench_throughput(n: int = 200_000) -> float:
    sim = Simulator()
    start = time.perf_counter()
    for i in range(n):
        sim.call_after(float(i % 97), lambda: None)
    sim.run()
    return time.perf_counter() - start


def bench_cancel_heavy(n: int = 200_000) -> float:
    sim = Simulator()

    def tick():
        # Arm a "retransmit timer", then the ack arrives and cancels
        # it -- the timer never fires, it only churns the heap.
        timer = sim.call_after(1000.0, lambda: None)
        timer.cancel()

    start = time.perf_counter()
    for _ in range(n):
        sim.call_after(1.0, tick)
    sim.run()
    return time.perf_counter() - start


def bench_pending_poll(n: int = 200_000) -> float:
    sim = Simulator()
    for i in range(n):
        sim.call_after(float(i % 97), lambda: None)
    start = time.perf_counter()
    while sim.pending:
        sim.step()
    return time.perf_counter() - start


def main() -> int:
    for name, fn in (("throughput", bench_throughput),
                     ("cancel-heavy", bench_cancel_heavy),
                     ("pending-poll", bench_pending_poll)):
        wall = min(fn() for _ in range(3))
        print(f"{name:>14s}: {wall:6.3f} s  "
              f"({200_000 / wall / 1e6:.2f} M events/s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E10 -- Page wiring cost on the transmit path (section 2.4).

Mach's standard wiring service was 'surprisingly' expensive; the
driver switched to low-level functionality.  Claims: standard wiring
costs visible transmit throughput and latency; the fast path makes
wiring a minor cost.
"""

import pytest

from repro.bench import measure_transmit_throughput
from repro.host.wiring import WiringStyle
from repro.hw import DS5000_200


@pytest.fixture(scope="module")
def results():
    return {
        style: measure_transmit_throughput(
            DS5000_200, 16 * 1024, wiring_style=style, messages=30)
        for style in WiringStyle
    }


def test_wiring_benchmark(benchmark, results):
    benchmark.pedantic(
        lambda: measure_transmit_throughput(
            DS5000_200, 16 * 1024,
            wiring_style=WiringStyle.MACH_STANDARD, messages=15),
        rounds=1, iterations=1)
    print()
    print("Transmit throughput by wiring style (16 KB messages):")
    for style, r in results.items():
        print(f"  {style.value:18} {r.mbps:7.1f} Mbps")
        benchmark.extra_info[style.value] = round(r.mbps, 1)
    fast = results[WiringStyle.FAST_LOW_LEVEL].mbps
    mach = results[WiringStyle.MACH_STANDARD].mbps
    assert mach < fast


def test_mach_wiring_costs_transmit_throughput(results):
    fast = results[WiringStyle.FAST_LOW_LEVEL].mbps
    mach = results[WiringStyle.MACH_STANDARD].mbps
    # 5 pages/message x (45-4) us extra ~= 200 us on a ~450 us budget.
    assert mach < fast * 0.85


def test_wiring_cost_per_page_ratio():
    costs = DS5000_200.costs
    assert costs.page_wire_mach > 8 * costs.page_wire_fast

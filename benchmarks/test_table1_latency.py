"""E1 -- Table 1: round-trip latencies on both machines.

Reproduction claim (shape): UDP > raw ATM at every size; the Alpha is
faster than the DECstation; latency grows monotonically with message
size; 1-byte values land near the paper's.
"""

import pytest

from repro.bench import PAPER_TABLE_1, run_table1
from repro.hw import DEC3000_600, DS5000_200


@pytest.fixture(scope="module")
def table1():
    return run_table1(rounds=3)


def test_table1_benchmark(benchmark, table1):
    result = benchmark.pedantic(lambda: run_table1(rounds=3),
                                rounds=1, iterations=1)
    print()
    print(result.render())
    for key, values in result.rows.items():
        benchmark.extra_info["/".join(key)] = values


def test_udp_slower_than_raw_atm(table1):
    for machine in (DS5000_200, DEC3000_600):
        atm = table1.row(machine, "atm")
        udp = table1.row(machine, "udp")
        for a, u in zip(atm, udp, strict=True):
            assert u > a


def test_alpha_faster_than_decstation(table1):
    for protocol in ("atm", "udp"):
        ds = table1.row(DS5000_200, protocol)
        alpha = table1.row(DEC3000_600, protocol)
        for d, a in zip(ds, alpha, strict=True):
            assert a < d


def test_latency_monotone_in_size(table1):
    for values in table1.rows.values():
        assert list(values) == sorted(values)


def test_one_byte_latencies_near_paper(table1):
    for key, values in table1.rows.items():
        paper = PAPER_TABLE_1[key]
        assert values[0] == pytest.approx(paper[0], rel=0.25), key


def test_udp_processing_delta_matches_paper(table1):
    """The UDP-over-ATM premium per round trip: ~245 us on the DS,
    ~162 us on the Alpha (Table 1 row differences)."""
    ds_delta = (table1.row(DS5000_200, "udp")[0]
                - table1.row(DS5000_200, "atm")[0])
    alpha_delta = (table1.row(DEC3000_600, "udp")[0]
                   - table1.row(DEC3000_600, "atm")[0])
    assert ds_delta == pytest.approx(245, rel=0.3)
    assert alpha_delta == pytest.approx(162, rel=0.3)
    assert alpha_delta < ds_delta


def test_comparable_to_ethernet_for_short_messages(table1):
    """Paper: 1-byte latencies are comparable to (a bit better than)
    the machines' Ethernet adaptors -- i.e., a few hundred us, not
    milliseconds: the complex adaptor did not hurt short messages."""
    assert table1.row(DS5000_200, "atm")[0] < 500
    assert table1.row(DEC3000_600, "atm")[0] < 250

"""E14 -- Application device channels versus kernel-mediated access
(sections 3.2 and 4).

Claims: the ADC user-to-user path performs within the error margins of
the kernel-to-kernel path ('no penalty for crossing the protection
domain boundary'); a conventional user-space path that traps into the
kernel for every message is substantially slower.
"""

import pytest

from repro.adc import AdcChannelDriver, AdcManager
from repro.host.domains import cross_domain
from repro.hw import DS5000_200
from repro.net import Host
from repro.sim import Simulator, spawn
from repro.xkernel.protocols.testproto import TestProgram

SIZE = 1024
ROUNDS = 10


def _loopback_host():
    sim = Simulator()
    host = Host(sim, DS5000_200, reserved_bytes=8 * 1024 * 1024)
    host.connect(link=None, deliver=host.board.deliver_cell)
    return sim, host


def kernel_path_latency() -> float:
    sim, host = _loopback_host()
    app, _ = host.open_raw_path()
    samples = []

    def pinger():
        for _ in range(ROUNDS):
            start = sim.now
            before = len(app.receptions)
            yield from app.send_length(SIZE)
            while len(app.receptions) == before:
                yield app.on_receive
            samples.append(sim.now - start)

    spawn(sim, pinger(), "pinger")
    sim.run()
    return sorted(samples)[len(samples) // 2]


def adc_path_latency() -> float:
    sim, host = _loopback_host()
    manager = AdcManager(host.kernel, host.board)
    domain = host.kernel.create_domain("app")
    grant = manager.open(domain)
    driver = AdcChannelDriver(sim, host.kernel, host.board, grant,
                              host.driver)
    session = driver.open_path()
    app = TestProgram(host.test, session)
    samples = []

    def pinger():
        for _ in range(ROUNDS):
            start = sim.now
            before = len(app.receptions)
            msg = driver.new_message(b"\xA5" * SIZE)
            yield from session.send(msg)
            while len(app.receptions) == before:
                yield app.on_receive
            samples.append(sim.now - start)

    spawn(sim, pinger(), "pinger")
    sim.run()
    return sorted(samples)[len(samples) // 2]


def trapping_user_path_latency() -> float:
    """Conventional user-space networking: every send and receive
    crosses the user/kernel boundary."""
    sim, host = _loopback_host()
    app, _ = host.open_raw_path()
    user = host.kernel.create_domain("user-app")
    samples = []

    def pinger():
        for _ in range(ROUNDS):
            start = sim.now
            before = len(app.receptions)
            # Trap into the kernel to send...
            yield from cross_domain(host.cpu, host.kernel.kernel_domain)
            yield from app.send_length(SIZE)
            while len(app.receptions) == before:
                yield app.on_receive
            # ...and cross back out to deliver to the application.
            yield from cross_domain(host.cpu, user)
            samples.append(sim.now - start)

    spawn(sim, pinger(), "pinger")
    sim.run()
    return sorted(samples)[len(samples) // 2]


@pytest.fixture(scope="module")
def latencies():
    return {
        "kernel-to-kernel": kernel_path_latency(),
        "ADC user-to-user": adc_path_latency(),
        "trapping user-space": trapping_user_path_latency(),
    }


def test_adc_benchmark(benchmark, latencies):
    benchmark.pedantic(adc_path_latency, rounds=1, iterations=1)
    print()
    print(f"One-way-and-back delivery latency ({SIZE} B, loopback):")
    for name, value in latencies.items():
        print(f"  {name:22} {value:8.1f} us")
        benchmark.extra_info[name] = round(value, 1)
    kernel = latencies["kernel-to-kernel"]
    adc = latencies["ADC user-to-user"]
    assert abs(adc - kernel) / kernel < 0.15


def test_adc_within_error_margins_of_kernel(latencies):
    """Paper section 4: 'the measured results were within the error
    margins of those obtained in the kernel-to-kernel case'."""
    kernel = latencies["kernel-to-kernel"]
    adc = latencies["ADC user-to-user"]
    assert abs(adc - kernel) / kernel < 0.15


def test_trapping_path_pays_domain_crossings(latencies):
    """Without ADCs, a user-space application pays ~2 crossings per
    message (95 us each on the DS)."""
    trapping = latencies["trapping user-space"]
    kernel = latencies["kernel-to-kernel"]
    assert trapping > kernel + 150

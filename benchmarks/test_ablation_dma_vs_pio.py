"""E12 -- DMA versus programmed I/O (section 2.7).

The paper's yardstick: how fast can an *application* access the data
under each discipline.  Claims: on both DEC machines DMA wins; on the
DS reading DMAed (uncached) data causes a dramatic drop from the pure
DMA rate yet stays above PIO; on the Alpha the application reads at
the DMA rate, concurrently with the transfer.
"""

import pytest

from repro.baselines import dma_receive, pio_receive
from repro.hw import DEC3000_600, DS5000_200

SIZE = 64 * 1024


@pytest.fixture(scope="module")
def results():
    out = {}
    for machine in (DS5000_200, DEC3000_600):
        out[(machine.name, "dma")] = dma_receive(machine, SIZE)
        out[(machine.name, "pio")] = pio_receive(machine, SIZE)
    return out


def test_dma_vs_pio_benchmark(benchmark, results):
    benchmark.pedantic(lambda: dma_receive(DS5000_200, SIZE),
                       rounds=1, iterations=1)
    print()
    print(f"Application data-access throughput ({SIZE // 1024} KB):")
    for (machine, method), r in results.items():
        print(f"  {machine:24} {method:4}  transfer "
              f"{r.transfer_mbps:6.1f}  app-access "
              f"{r.app_access_mbps:6.1f} Mbps")
        benchmark.extra_info[f"{machine}/{method}"] = {
            "transfer": round(r.transfer_mbps, 1),
            "app_access": round(r.app_access_mbps, 1),
        }
    for machine in (DS5000_200, DEC3000_600):
        assert results[(machine.name, "dma")].app_access_mbps > \
            results[(machine.name, "pio")].app_access_mbps


def test_dma_wins_on_both_machines(results):
    for machine in (DS5000_200, DEC3000_600):
        dma = results[(machine.name, "dma")].app_access_mbps
        pio = results[(machine.name, "pio")].app_access_mbps
        assert dma > pio, machine.name


def test_ds_cache_fill_drop_is_dramatic(results):
    r = results[(DS5000_200.name, "dma")]
    assert r.app_access_mbps < r.transfer_mbps * 0.4


def test_alpha_concurrent_access_at_dma_rate(results):
    r = results[(DEC3000_600.name, "dma")]
    assert r.app_access_mbps > r.transfer_mbps * 0.9


def test_pio_limited_by_word_reads(results):
    """Word-sized reads across the TC: 13 cycles per 4 bytes
    => ~61 Mbps transfer ceiling."""
    for machine in (DS5000_200, DEC3000_600):
        r = results[(machine.name, "pio")]
        assert r.transfer_mbps < 65

"""E5 -- Section 2.5.1's DMA arithmetic, measured on the simulated bus.

The paper derives 367/463 Mbps (44-byte) and 503/587 Mbps (88-byte)
ceilings from TURBOchannel cycle counts.  Here we *measure* them by
streaming transactions through the bus model, and confirm the
diminishing returns of longer DMA.
"""

import pytest

from repro.hw import BusSpec, DS5000_200, TurboChannel
from repro.sim import Simulator, spawn


def _stream_mbps(nbytes_per_txn: int, direction: str,
                 total_bytes: int = 512 * 1024) -> float:
    sim = Simulator()
    tc = TurboChannel(sim, BusSpec())
    txns = total_bytes // nbytes_per_txn

    def stream():
        for _ in range(txns):
            if direction == "read":
                yield from tc.dma_read(nbytes_per_txn)
            else:
                yield from tc.dma_write(nbytes_per_txn)

    spawn(sim, stream())
    sim.run()
    return txns * nbytes_per_txn * 8.0 / sim.now


def test_dma_ceilings_benchmark(benchmark):
    def run():
        return {
            "tx44": _stream_mbps(44, "read"),
            "rx44": _stream_mbps(44, "write"),
            "tx88": _stream_mbps(88, "read"),
            "rx88": _stream_mbps(88, "write"),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Section 2.5.1 DMA ceilings (Mbps):")
    paper = {"tx44": 367, "rx44": 463, "tx88": 503, "rx88": 587}
    for key, value in result.items():
        print(f"  {key}: measured {value:6.1f}  paper {paper[key]}")
        benchmark.extra_info[key] = round(value, 1)


def test_single_cell_transmit_367():
    assert _stream_mbps(44, "read") == pytest.approx(366.7, abs=1.0)


def test_single_cell_receive_463():
    assert _stream_mbps(44, "write") == pytest.approx(463.2, abs=1.0)


def test_double_cell_transmit_503():
    assert _stream_mbps(88, "read") == pytest.approx(502.9, abs=1.0)


def test_double_cell_receive_587():
    """'more than the payload of an OC-12 channel'"""
    rate = _stream_mbps(88, "write")
    assert rate == pytest.approx(586.7, abs=1.0)
    assert rate > 516


def test_diminishing_returns_beyond_double_cell():
    """Paper: 'the biggest gain is achieved just by going to
    double-cell DMAs ... with any further increase the returns
    diminish.'"""
    r1 = _stream_mbps(44, "write")
    r2 = _stream_mbps(88, "write")
    r3 = _stream_mbps(132, "write")
    r4 = _stream_mbps(176, "write")
    first_gain = r2 - r1
    second_gain = r3 - r2
    third_gain = r4 - r3
    assert first_gain > 2 * second_gain
    assert second_gain > third_gain


def test_overhead_fraction_42_to_26_percent():
    bus = DS5000_200.bus
    single = 1 - 44 / (bus.dma_write_us(44) * bus.peak_mbps / 8)
    double = 1 - 88 / (bus.dma_write_us(88) * bus.peak_mbps / 8)
    assert single == pytest.approx(0.42, abs=0.01)
    assert double == pytest.approx(0.26, abs=0.01)

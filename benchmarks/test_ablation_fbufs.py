"""E13 -- Fbufs versus copying across protection domains (section 3.1).

Claims: cached fbufs are roughly an order of magnitude faster than
uncached fbufs per domain crossing; both beat per-domain copying; the
advantage grows with the number of domains on the path (the
microkernel scenario that motivates the mechanism).
"""

import pytest

from repro.baselines import compare_cross_domain
from repro.hw import DEC3000_600, DS5000_200

SIZE = 16 * 1024


@pytest.fixture(scope="module")
def results():
    out = {}
    for machine in (DS5000_200, DEC3000_600):
        for domains in (1, 2, 3):
            out[(machine.name, domains)] = compare_cross_domain(
                machine, SIZE, n_domains=domains, n_buffers=40)
    return out


def test_fbufs_benchmark(benchmark, results):
    benchmark.pedantic(
        lambda: compare_cross_domain(DS5000_200, SIZE, 2, 20),
        rounds=1, iterations=1)
    print()
    print(f"Cross-domain transfer of {SIZE // 1024} KB buffers (Mbps):")
    print(f"  {'machine':24} {'domains':>7} {'cached':>9} "
          f"{'uncached':>9} {'copy':>9}")
    for (machine, domains), r in results.items():
        print(f"  {machine:24} {domains:>7} {r.cached_fbuf_mbps:9.0f} "
              f"{r.uncached_fbuf_mbps:9.0f} {r.copy_mbps:9.0f}")
        benchmark.extra_info[f"{machine}/{domains}d"] = {
            "cached": round(r.cached_fbuf_mbps),
            "uncached": round(r.uncached_fbuf_mbps),
            "copy": round(r.copy_mbps),
        }
    r = results[(DS5000_200.name, 2)]
    assert r.cached_fbuf_mbps > r.uncached_fbuf_mbps > r.copy_mbps


def test_cached_order_of_magnitude_over_uncached(results):
    """'can mean an order of magnitude difference in how fast the data
    can be transferred across a domain boundary'"""
    r = results[(DS5000_200.name, 2)]
    assert r.cached_fbuf_mbps > 5 * r.uncached_fbuf_mbps


def test_fbufs_beat_copying_everywhere(results):
    for (_machine, _domains), r in results.items():
        assert r.cached_fbuf_mbps > r.copy_mbps
        assert r.uncached_fbuf_mbps > r.copy_mbps


def test_copy_penalty_grows_with_domains(results):
    one = results[(DS5000_200.name, 1)]
    three = results[(DS5000_200.name, 3)]
    assert three.copy_mbps < one.copy_mbps * 0.5
    assert three.cached_fbuf_mbps > one.cached_fbuf_mbps * 0.3


def test_cached_fbufs_sustain_network_rate(results):
    """A 2-domain cached-fbuf path on the DS must not be the
    bottleneck relative to the ~340 Mbps network receive rate."""
    assert results[(DS5000_200.name, 2)].cached_fbuf_mbps > 340

"""Topology benchmark: fabric events/sec plus queue-manager scaling.

Two halves, one JSON document::

    python benchmarks/bench_topology.py --out BENCH_topology.json

* **Fabric runs** -- the same pairs workload over a Clos and a 3D
  torus, reporting wall time and events/sec, with the conservation
  law checked on every run.
* **Queue-manager scaling** -- the :class:`repro.topology.queues.
  ActiveQueueIndex` microbenchmark: fill a port with one cell on each
  of V VCIs, then time the drain (``pop_rr``) and the push-out path
  (``longest`` + ``drop_tail`` per admission) at V = 10^3, 10^4,
  10^5.  The seed switch's dict scan made both O(V); the occupancy
  index must hold the per-operation cost flat (within 2x across the
  hundredfold VCI range), or ``flat_within_2x`` comes back false.
* **Train ablation** -- the cell-train fast path's leverage as
  contention and faults erode it: {pairs, incast} x {clean, 1% loss}
  each run with trains on and off.  Reports must come back
  byte-identical (the fast path is an optimization, not a model
  change); the interesting numbers are ``absorbed_fraction`` -- how
  much of the event stream the trains folded -- and the wall-clock
  ratio.  On these small full-stack runs host processing dominates
  the wall clock, so the ratio hovers near 1; the large-grain wins
  live in ``bench_cluster_scale.py``'s burst rows, where link and
  switch events are the workload.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.report import to_json                     # noqa: E402
from repro.cluster import (                                # noqa: E402
    Fabric, WorkloadSpec, collect, run_workload,
)
from repro.faults.plan import FaultPlan                    # noqa: E402
from repro.hw.specs import DS5000_200                      # noqa: E402
from repro.topology import ActiveQueueIndex                # noqa: E402


def _run_fabric(name: str, seed: int, **kw) -> dict:
    spec = WorkloadSpec(pattern="pairs", kind="open", seed=seed,
                        message_bytes=4096, messages_per_client=8)
    start = time.perf_counter()
    fabric = Fabric(machines=DS5000_200, **kw)
    workload = run_workload(fabric, spec)
    wall = time.perf_counter() - start
    report = collect(fabric, workload)
    events = fabric.sim.events_processed
    print(f"{name:<18s} {wall:6.2f}s  {events:>8d} events  "
          f"{events / wall:>9.0f} ev/s  "
          f"conservation {'ok' if report.conservation['holds'] else 'BROKEN'}")
    return {
        "topology": name,
        "n_hosts": kw["n_hosts"],
        "n_switches": report.n_switches,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": round(events / wall),
        "conservation_holds": report.conservation["holds"],
    }


def _bench_queue_index(n_vcis: int, repeat: int = 3) -> dict:
    """Per-operation cost of drain and push-out at ``n_vcis`` queues."""
    drain_best = pushout_best = float("inf")
    for _ in range(repeat):
        index = ActiveQueueIndex()
        for vci in range(n_vcis):
            index.enqueue(vci, ("cell", vci))
        start = time.perf_counter()
        while index.pop_rr() is not None:
            pass
        drain_best = min(drain_best,
                         (time.perf_counter() - start) / n_vcis)

        # Push-out: a full port where every admission evicts the tail
        # of the longest queue -- the path the seed scanned O(V) for.
        index = ActiveQueueIndex()
        for vci in range(n_vcis):
            index.enqueue(vci, ("cell", vci))
        index.enqueue(0, ("cell", -1))   # one queue strictly longest
        ops = min(n_vcis, 10_000)
        start = time.perf_counter()
        for i in range(ops):
            victim, _length = index.longest()
            index.drop_tail(victim)
            index.enqueue(victim, ("cell", i))
        pushout_best = min(pushout_best,
                           (time.perf_counter() - start) / ops)
    return {
        "vcis": n_vcis,
        "drain_us_per_cell": round(drain_best * 1e6, 4),
        "pushout_us_per_op": round(pushout_best * 1e6, 4),
    }


def _ablation_point(pattern: str, faults: str | None, trains: bool,
                    seed: int) -> tuple[str, dict]:
    """One {workload, faults, trains} cell of the ablation grid.

    Returns the report JSON (for the byte-identity check against the
    matching trains-off run) and the row of numbers."""
    spec = WorkloadSpec(pattern=pattern, kind="open", seed=seed,
                        message_bytes=4096, messages_per_client=8)
    kw: dict = dict(machines=DS5000_200, n_hosts=8, topology="clos",
                    pods=4, routing_seed=seed, trains=trains)
    if faults:
        kw["faults"] = FaultPlan.parse(faults, seed=seed)
    start = time.perf_counter()
    fabric = Fabric(**kw)
    workload = run_workload(fabric, spec)
    wall = time.perf_counter() - start
    report = collect(fabric, workload)
    processed = fabric.sim.events_processed
    absorbed = fabric.sim.events_absorbed
    model = processed + absorbed
    return report.to_json(), {
        "workload": pattern,
        "faults": faults or "none",
        "train": trains,
        "wall_s": round(wall, 4),
        "events_processed": processed,
        "events_absorbed": absorbed,
        "model_events": model,
        "events_per_s": round(model / wall),
        "absorbed_fraction": round(absorbed / model, 4) if model else 0.0,
    }


def _run_ablation(seed: int) -> dict:
    """Train on/off over {pairs, incast} x {clean, 1% loss}."""
    rows = []
    for pattern in ("pairs", "incast"):
        for faults in (None, "loss=0.01"):
            json_on, row_on = _ablation_point(pattern, faults, True, seed)
            json_off, row_off = _ablation_point(pattern, faults, False,
                                                seed)
            if json_on != json_off:
                raise SystemExit(
                    f"train ablation diverged on {pattern}/{faults}: "
                    "the fast path changed the model")
            if row_on["model_events"] != row_off["model_events"]:
                raise SystemExit(
                    f"model-event mismatch on {pattern}/{faults}: "
                    f"{row_on['model_events']} with trains vs "
                    f"{row_off['model_events']} without")
            speedup = round(row_off["wall_s"] / row_on["wall_s"], 2) \
                if row_on["wall_s"] else 0.0
            for row in (row_on, row_off):
                rows.append(row)
                print(f"{pattern:<8s} faults={row['faults']:<10s} "
                      f"train={str(row['train']):<5s} "
                      f"{row['wall_s']:7.3f}s  "
                      f"{row['events_per_s']:>9d} ev/s  "
                      f"absorbed {row['absorbed_fraction']:.1%}")
            print(f"{pattern:<8s} faults={faults or 'none':<10s} "
                  f"speedup {speedup}x (reports byte-identical)")
    return {"rows": rows, "reports_identical": True}


def run_benchmarks(args) -> dict:
    fabrics = [
        _run_fabric("clos", args.seed, n_hosts=8, topology="clos",
                    pods=4, routing_seed=args.seed),
        _run_fabric("torus", args.seed, n_hosts=8, topology="torus",
                    torus_dims=(2, 2, 2), routing_seed=args.seed),
        _run_fabric("switched", args.seed, n_hosts=8,
                    topology="switched", n_switches=2,
                    routing_seed=args.seed),
    ]
    if not all(p["conservation_holds"] for p in fabrics):
        raise SystemExit("conservation broken -- numbers are "
                         "meaningless")

    scaling = [_bench_queue_index(v) for v in args.vcis]
    for point in scaling:
        print(f"vcis={point['vcis']:>7d}  "
              f"drain {point['drain_us_per_cell']:>8.4f} us/cell  "
              f"push-out {point['pushout_us_per_op']:>8.4f} us/op")
    flat = True
    for metric in ("drain_us_per_cell", "pushout_us_per_op"):
        values = [p[metric] for p in scaling]
        flat = flat and max(values) <= 2.0 * min(values)
    print(f"per-op cost flat within 2x across "
          f"{scaling[0]['vcis']}..{scaling[-1]['vcis']} VCIs: {flat}")

    ablation = _run_ablation(args.seed)

    return {
        "benchmark": "topology",
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "params": {"seed": args.seed, "vcis": list(args.vcis)},
        "fabrics": fabrics,
        "queue_index": {"points": scaling, "flat_within_2x": flat},
        "train_ablation": ablation,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="topology fabrics + O(1) queue-manager scaling")
    parser.add_argument("--vcis", type=lambda s: [int(x) for x in
                        s.split(",")], default=[1_000, 10_000, 100_000])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="write canonical JSON here")
    args = parser.parse_args(argv)

    document = run_benchmarks(args)
    payload = to_json(document)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

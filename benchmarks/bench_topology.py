"""Topology benchmark: fabric events/sec plus queue-manager scaling.

Two halves, one JSON document::

    python benchmarks/bench_topology.py --out BENCH_topology.json

* **Fabric runs** -- the same pairs workload over a Clos and a 3D
  torus, reporting wall time and events/sec, with the conservation
  law checked on every run.
* **Queue-manager scaling** -- the :class:`repro.topology.queues.
  ActiveQueueIndex` microbenchmark: fill a port with one cell on each
  of V VCIs, then time the drain (``pop_rr``) and the push-out path
  (``longest`` + ``drop_tail`` per admission) at V = 10^3, 10^4,
  10^5.  The seed switch's dict scan made both O(V); the occupancy
  index must hold the per-operation cost flat (within 2x across the
  hundredfold VCI range), or ``flat_within_2x`` comes back false.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.report import to_json                     # noqa: E402
from repro.cluster import (                                # noqa: E402
    Fabric, WorkloadSpec, collect, run_workload,
)
from repro.hw.specs import DS5000_200                      # noqa: E402
from repro.topology import ActiveQueueIndex                # noqa: E402


def _run_fabric(name: str, seed: int, **kw) -> dict:
    spec = WorkloadSpec(pattern="pairs", kind="open", seed=seed,
                        message_bytes=4096, messages_per_client=8)
    start = time.perf_counter()
    fabric = Fabric(machines=DS5000_200, **kw)
    workload = run_workload(fabric, spec)
    wall = time.perf_counter() - start
    report = collect(fabric, workload)
    events = fabric.sim.events_processed
    print(f"{name:<18s} {wall:6.2f}s  {events:>8d} events  "
          f"{events / wall:>9.0f} ev/s  "
          f"conservation {'ok' if report.conservation['holds'] else 'BROKEN'}")
    return {
        "topology": name,
        "n_hosts": kw["n_hosts"],
        "n_switches": report.n_switches,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": round(events / wall),
        "conservation_holds": report.conservation["holds"],
    }


def _bench_queue_index(n_vcis: int, repeat: int = 3) -> dict:
    """Per-operation cost of drain and push-out at ``n_vcis`` queues."""
    drain_best = pushout_best = float("inf")
    for _ in range(repeat):
        index = ActiveQueueIndex()
        for vci in range(n_vcis):
            index.enqueue(vci, ("cell", vci))
        start = time.perf_counter()
        while index.pop_rr() is not None:
            pass
        drain_best = min(drain_best,
                         (time.perf_counter() - start) / n_vcis)

        # Push-out: a full port where every admission evicts the tail
        # of the longest queue -- the path the seed scanned O(V) for.
        index = ActiveQueueIndex()
        for vci in range(n_vcis):
            index.enqueue(vci, ("cell", vci))
        index.enqueue(0, ("cell", -1))   # one queue strictly longest
        ops = min(n_vcis, 10_000)
        start = time.perf_counter()
        for i in range(ops):
            victim, _length = index.longest()
            index.drop_tail(victim)
            index.enqueue(victim, ("cell", i))
        pushout_best = min(pushout_best,
                           (time.perf_counter() - start) / ops)
    return {
        "vcis": n_vcis,
        "drain_us_per_cell": round(drain_best * 1e6, 4),
        "pushout_us_per_op": round(pushout_best * 1e6, 4),
    }


def run_benchmarks(args) -> dict:
    fabrics = [
        _run_fabric("clos", args.seed, n_hosts=8, topology="clos",
                    pods=4, routing_seed=args.seed),
        _run_fabric("torus", args.seed, n_hosts=8, topology="torus",
                    torus_dims=(2, 2, 2), routing_seed=args.seed),
        _run_fabric("switched", args.seed, n_hosts=8,
                    topology="switched", n_switches=2,
                    routing_seed=args.seed),
    ]
    if not all(p["conservation_holds"] for p in fabrics):
        raise SystemExit("conservation broken -- numbers are "
                         "meaningless")

    scaling = [_bench_queue_index(v) for v in args.vcis]
    for point in scaling:
        print(f"vcis={point['vcis']:>7d}  "
              f"drain {point['drain_us_per_cell']:>8.4f} us/cell  "
              f"push-out {point['pushout_us_per_op']:>8.4f} us/op")
    flat = True
    for metric in ("drain_us_per_cell", "pushout_us_per_op"):
        values = [p[metric] for p in scaling]
        flat = flat and max(values) <= 2.0 * min(values)
    print(f"per-op cost flat within 2x across "
          f"{scaling[0]['vcis']}..{scaling[-1]['vcis']} VCIs: {flat}")

    return {
        "benchmark": "topology",
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "params": {"seed": args.seed, "vcis": list(args.vcis)},
        "fabrics": fabrics,
        "queue_index": {"points": scaling, "flat_within_2x": flat},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="topology fabrics + O(1) queue-manager scaling")
    parser.add_argument("--vcis", type=lambda s: [int(x) for x in
                        s.split(",")], default=[1_000, 10_000, 100_000])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="write canonical JSON here")
    args = parser.parse_args(argv)

    document = run_benchmarks(args)
    payload = to_json(document)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

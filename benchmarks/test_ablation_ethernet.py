"""E17 -- OSIRIS versus the machines' Ethernet adaptors (section 4).

'The measured latency numbers for 1 byte messages are comparable to --
and in fact, a bit better than -- those obtained when using the
machines' Ethernet adaptors ... a reassuring result, since it
demonstrates that the greater complexity of the OSIRIS adaptor did not
degrade the latency of short messages.'  At any real message size the
10 Mbps wire is, of course, no contest.
"""

import pytest

from repro.baselines import round_trip as ethernet_round_trip
from repro.bench import measure_round_trip
from repro.hw import DEC3000_600, DS5000_200


@pytest.fixture(scope="module")
def results():
    out = {}
    for machine in (DS5000_200, DEC3000_600):
        out[machine.name] = {
            "ethernet_1B": ethernet_round_trip(machine, 1),
            "osiris_1B": measure_round_trip(machine, 1,
                                            protocol="atm", rounds=3),
            "ethernet_4K": ethernet_round_trip(machine, 4096),
            "osiris_4K": measure_round_trip(machine, 4096,
                                            protocol="atm", rounds=3),
        }
    return out


def test_ethernet_benchmark(benchmark, results):
    benchmark.pedantic(lambda: ethernet_round_trip(DS5000_200, 1),
                       rounds=1, iterations=1)
    print()
    print("Round-trip latency, OSIRIS vs Ethernet (us):")
    for machine, r in results.items():
        print(f"  {machine:24} 1B: osiris {r['osiris_1B']:5.0f} vs "
              f"ethernet {r['ethernet_1B']:5.0f}   4KB: osiris "
              f"{r['osiris_4K']:5.0f} vs ethernet {r['ethernet_4K']:6.0f}")
        benchmark.extra_info[machine] = {
            k: round(v) for k, v in r.items()}
    for r in results.values():
        assert r["osiris_1B"] < r["ethernet_1B"]


def test_osiris_a_bit_better_at_one_byte(results):
    """'Comparable to -- in fact, a bit better than' Ethernet: within
    the same latency band, OSIRIS ahead."""
    for machine, r in results.items():
        assert r["osiris_1B"] < r["ethernet_1B"], machine
        assert r["ethernet_1B"] < r["osiris_1B"] * 3, machine


def test_ethernet_collapses_at_size(results):
    """At 4 KB the 10 Mbps wire costs ~6.6 ms of serialization alone."""
    for machine, r in results.items():
        assert r["ethernet_4K"] > 10 * r["osiris_4K"], machine

"""E8 -- Physical buffer fragmentation (section 2.2).

The paper's worked example: transmitting a 16 KB application message
through UDP/IP with a 4 KB MTU (= page size) can shatter into up to 14
physical buffers, because IP headers push fragment data off page
boundaries and the header of each fragment occupies its own buffer.
Page-aligning messages and choosing MTU = page size + IP header makes
fragment boundaries coincide with page boundaries.

Claims: the naive configuration produces ~3x the descriptors of the
aligned one and costs measurably more send-path time.
"""

import pytest

from repro.hw import DS5000_200
from repro.net import Host
from repro.sim import Simulator, spawn
from repro.xkernel.protocols.ip import HEADER_BYTES as IP_HEADER

PAGE = DS5000_200.page_size
MESSAGE = 16 * 1024


def send_one(ip_mtu: int, align: bool, offset: int = 0) -> dict:
    sim = Simulator()
    host = Host(sim, DS5000_200, ip_mtu=ip_mtu)
    host.connect(link=None, deliver=lambda cell: None)
    app, path = host.open_udp_path(local_port=7, remote_port=9)
    marks = {}

    def go():
        start = sim.now
        yield from app.send_message(b"\x5A" * MESSAGE,
                                    align_page=align, offset=offset)
        marks["send_us"] = sim.now - start

    spawn(sim, go(), "sender")
    sim.run()
    queue = host.board.kernel_channel.tx_queue
    return {
        "buffers": queue.pushes,
        "send_us": marks["send_us"],
        "fragments": host.ip.fragments_sent or 1,
        "pages_wired": host.kernel.wiring.pages_wired,
    }


@pytest.fixture(scope="module")
def results():
    return {
        # The paper's bad case: MTU == page size, unaligned message.
        "naive (MTU=4K, unaligned)": send_one(PAGE, align=False,
                                              offset=300),
        # The paper's remedy: MTU = page + IP header, and messages
        # placed so fragment *data* boundaries land on pages -- which
        # means offsetting the data by the transport header size.
        "aligned (MTU=4K+20)": send_one(PAGE + IP_HEADER, align=False,
                                        offset=12),
        # The big-MTU configuration used in section 4.
        "16K MTU, aligned": send_one(16 * 1024 + IP_HEADER, align=True),
    }


def test_fragmentation_benchmark(benchmark, results):
    benchmark.pedantic(lambda: send_one(PAGE, align=False, offset=300),
                       rounds=1, iterations=1)
    print()
    print(f"Physical buffers for one 16 KB message (page={PAGE}):")
    for name, r in results.items():
        print(f"  {name:28} {r['buffers']:3d} buffers, "
              f"{r['fragments']} fragments, send path "
              f"{r['send_us']:7.1f} us")
        benchmark.extra_info[name] = r
    naive = results["naive (MTU=4K, unaligned)"]
    aligned = results["aligned (MTU=4K+20)"]
    assert naive["buffers"] >= 12
    assert aligned["buffers"] < naive["buffers"]


def test_naive_case_approaches_14_buffers(results):
    """Paper: 'the transmission of a single, 16 KB application message
    can result in the processing of up to 14 physical buffers'."""
    assert 12 <= results["naive (MTU=4K, unaligned)"]["buffers"] <= 15


def test_alignment_cuts_buffer_count(results):
    naive = results["naive (MTU=4K, unaligned)"]["buffers"]
    aligned = results["aligned (MTU=4K+20)"]["buffers"]
    assert aligned <= naive - 3


def test_extra_buffers_cost_send_time(results):
    assert results["naive (MTU=4K, unaligned)"]["send_us"] > \
        results["aligned (MTU=4K+20)"]["send_us"]


def test_large_mtu_fewest_fragments(results):
    assert results["16K MTU, aligned"]["fragments"] <= 2
    assert results["16K MTU, aligned"]["buffers"] <= \
        results["aligned (MTU=4K+20)"]["buffers"]

"""E11 -- Striping skew versus double-cell DMA (section 2.6).

Claims: with no skew, the receive processor combines most consecutive
cell pairs into 88-byte DMAs; as skew grows, the combine rate -- and
with it the double-cell advantage -- collapses ('once skew is
introduced, the probability that two successive cells will be
received in order is greatly reduced').  Both skew strategies still
deliver correct data.
"""

import pytest

from repro.atm import SegmentMode, SkewModel, StripedLink, decode_pdu
from repro.hw import DS5000_200, DataCache, PhysicalMemory, TurboChannel
from repro.hw.dma import DmaMode
from repro.osiris import Descriptor, OsirisBoard, RxProcessor, TxProcessor
from repro.sim import Fidelity, Simulator


def run_skew_transfer(jitter_us: float, mode: SegmentMode,
                      pdu_bytes: int = 16 * 1024,
                      pdus: int = 4) -> dict:
    """Board-to-board transfer over a striped link with skew."""
    sim = Simulator()
    fidelity = Fidelity.full()
    rigs = []
    for side in range(2):
        memory = PhysicalMemory(8 * 1024 * 1024, DS5000_200.page_size,
                                fidelity=fidelity,
                                reserved_bytes=4 * 1024 * 1024)
        cache = DataCache(DS5000_200.cache, memory, fidelity)
        tc = TurboChannel(sim, DS5000_200.bus, name=f"tc{side}")
        board = OsirisBoard(sim, DS5000_200, tc, memory, cache,
                            fidelity=fidelity,
                            rx_dma_mode=DmaMode.DOUBLE_CELL)
        rigs.append((memory, board))
    tx_memory, tx_board = rigs[0]
    rx_memory, rx_board = rigs[1]

    skew = (SkewModel(switch_jitter_us=jitter_us, seed=17)
            if jitter_us > 0 else SkewModel.none())
    link = StripedLink(sim, rx_board.deliver_cell, skew=skew)
    TxProcessor(sim, tx_board, link=link, segment_mode=mode)
    rxp = RxProcessor(sim, rx_board, reassembly_mode=mode)

    rx_board.bind_vci(5, 0)
    size = rx_board.spec.recv_buffer_bytes
    for _ in range(16):
        addr = rx_memory.alloc_contiguous(size)
        rx_board.kernel_channel.free_queue.push(
            Descriptor(addr=addr, length=size, vci=0))

    from repro.osiris import FLAG_END_OF_PDU
    from repro.sim import Delay, spawn

    payloads = [bytes([65 + k]) * pdu_bytes for k in range(pdus)]

    def sender():
        for data in payloads:
            addr = tx_memory.alloc_contiguous(len(data))
            tx_memory.write(addr, data)
            tx_board.kernel_channel.tx_queue.push(
                Descriptor(addr=addr, length=len(data),
                           flags=FLAG_END_OF_PDU, vci=5))
            yield Delay(600.0)  # beyond the skew reorder window

    spawn(sim, sender(), "sender")
    sim.run()

    received = []
    current = bytearray()
    while True:
        desc = rx_board.kernel_channel.recv_queue.pop(by_host=True)
        if desc is None:
            break
        current += rx_memory.read(desc.addr, desc.length)
        if desc.end_of_pdu:
            received.append(decode_pdu(bytes(current)))
            current = bytearray()

    total = rxp.combined_dmas + rxp.single_dmas
    return {
        "combine_rate": rxp.combined_dmas / max(total, 1),
        "correct": received == payloads,
        "errors": rxp.pdus_errored,
    }


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for jitter in (0.0, 2.0, 5.0, 10.0, 20.0):
        out[jitter] = run_skew_transfer(jitter, SegmentMode.SEQUENCE)
    return out


def test_skew_benchmark(benchmark, sweep):
    benchmark.pedantic(
        lambda: run_skew_transfer(5.0, SegmentMode.SEQUENCE, pdus=2),
        rounds=1, iterations=1)
    print()
    print("Double-cell combine rate vs switch-queueing skew "
          "(sequence-number reassembly):")
    for jitter, r in sweep.items():
        print(f"  jitter {jitter:5.1f} us: combine rate "
              f"{r['combine_rate']:.2f}, correct={r['correct']}")
        benchmark.extra_info[f"jitter_{jitter}"] = round(
            r["combine_rate"], 3)
    assert sweep[0.0]["combine_rate"] > 0.6
    assert sweep[20.0]["combine_rate"] < sweep[0.0]["combine_rate"] * 0.5


def test_no_skew_combines_most_pairs(sweep):
    assert sweep[0.0]["combine_rate"] > 0.6


def test_combine_rate_collapses_with_skew(sweep):
    rates = [sweep[j]["combine_rate"] for j in (0.0, 5.0, 20.0)]
    assert rates[0] > rates[1] > rates[2]


def test_data_correct_under_all_skew(sweep):
    for jitter, r in sweep.items():
        assert r["correct"], f"corruption at jitter {jitter}"
        assert r["errors"] == 0


def test_concurrent_strategy_also_correct_under_skew():
    r = run_skew_transfer(10.0, SegmentMode.CONCURRENT, pdus=3)
    assert r["correct"]
    assert r["errors"] == 0

"""E4 -- Figure 4: transmit-side UDP/IP throughput.

Reproduction claims (shape): transmit tops out near 325 Mbps on the
Alpha (single-cell DMA overhead on the TURBOchannel is the limit);
checksumming barely moves the Alpha transmit curve (sender-resident
data, spare CPU); the DS5000/200 sits below the Alpha; all three
curves flatten past ~8-16 KB.
"""

import pytest

from repro.bench import PAPER_FIGURE_4, run_figure4

SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@pytest.fixture(scope="module")
def figure4():
    return run_figure4(SIZES)


def test_figure4_benchmark(benchmark, figure4):
    result = benchmark.pedantic(lambda: run_figure4((4, 16, 64)),
                                rounds=1, iterations=1)
    print()
    print(figure4.render(PAPER_FIGURE_4))
    for name, values in figure4.series.items():
        benchmark.extra_info[name] = [round(v) for v in values]


def test_transmit_ceiling_near_325(figure4):
    """Paper: 'the maximal throughput achieved on the transmit side is
    currently 325 Mbps', bounded by single-cell DMA overhead."""
    peak = figure4.peak("3000/600")
    assert peak == pytest.approx(325, rel=0.1)
    assert peak < 367  # never exceeds the bus read ceiling


def test_checksum_on_transmit_is_cheap_on_alpha(figure4):
    """Sender data is cache-resident; the Alpha has CPU to spare."""
    plain = figure4.peak("3000/600")
    checksummed = figure4.peak("3000/600, UDP-CS")
    assert checksummed > plain * 0.9


def test_decstation_below_alpha(figure4):
    for i, kb in enumerate(SIZES):
        assert figure4.series["5000/200"][i] <= \
            figure4.series["3000/600"][i] * 1.02, kb


def test_transmit_flattens_after_16kb(figure4):
    for name in figure4.series:
        v16 = figure4.at(name, 16)
        v256 = figure4.at(name, 256)
        assert v256 > v16 * 0.9, name


def test_transmit_below_receive_ceilings(figure4):
    """Transmit (13-cycle reads) is inherently slower than receive
    (8-cycle writes): 367 vs 463 Mbps bus ceilings."""
    assert figure4.peak("3000/600") < 400

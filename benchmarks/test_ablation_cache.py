"""E9 -- Lazy versus eager cache invalidation (section 2.3).

Claims: on the DS5000/200 the eager policy costs ~25-30% receive
throughput (figure 2's bottom curve); the lazy policy performs like no
invalidation at all in the common case; on the coherent Alpha the
policy is irrelevant.
"""

import pytest

from repro.bench import measure_receive_throughput
from repro.driver.config import CachePolicyKind
from repro.hw import DEC3000_600, DS5000_200


@pytest.fixture(scope="module")
def results():
    out = {}
    for policy in (CachePolicyKind.LAZY, CachePolicyKind.EAGER):
        out[("DS", policy)] = measure_receive_throughput(
            DS5000_200, 16 * 1024, cache_policy=policy, messages=40)
    out[("Alpha", CachePolicyKind.NONE)] = measure_receive_throughput(
        DEC3000_600, 16 * 1024, cache_policy=CachePolicyKind.NONE,
        messages=40)
    return out


def test_cache_policy_benchmark(benchmark, results):
    benchmark.pedantic(
        lambda: measure_receive_throughput(
            DS5000_200, 16 * 1024, cache_policy=CachePolicyKind.EAGER,
            messages=20),
        rounds=1, iterations=1)
    print()
    print("Cache invalidation policy, 16 KB receive:")
    for (machine, policy), r in results.items():
        print(f"  {machine:6} {policy.value:6} {r.mbps:7.1f} Mbps")
        benchmark.extra_info[f"{machine}/{policy.value}"] = round(r.mbps)
    lazy = results[("DS", CachePolicyKind.LAZY)].mbps
    eager = results[("DS", CachePolicyKind.EAGER)].mbps
    assert eager < lazy * 0.8


def test_eager_costs_throughput(results):
    lazy = results[("DS", CachePolicyKind.LAZY)].mbps
    eager = results[("DS", CachePolicyKind.EAGER)].mbps
    # Paper: 340 -> 250 Mbps (a ~26% drop); accept 15-40%.
    assert 0.60 < eager / lazy < 0.85


def test_invalidate_cost_matches_paper_arithmetic():
    """1 cycle per word at 25 MHz: a 16 KB buffer costs ~164 us of raw
    invalidation loop."""
    assert DS5000_200.invalidate_us(16 * 1024) == pytest.approx(163.84)

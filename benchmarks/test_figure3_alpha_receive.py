"""E3 -- Figure 3: DEC 3000/600 receive-side UDP/IP throughput.

Reproduction claims (shape): double-cell DMA approaches the 516 Mbps
link payload bandwidth at >= 16 KB; checksumming costs ~15-25% but the
data is still delivered near 80-90% of link speed; small-message
throughput is far better than the DS5000/200's (reduced per-packet
software latency).
"""

import pytest

from repro.bench import PAPER_FIGURE_3, run_figure2, run_figure3

SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@pytest.fixture(scope="module")
def figure3():
    return run_figure3(SIZES)


def test_figure3_benchmark(benchmark, figure3):
    result = benchmark.pedantic(lambda: run_figure3((4, 16, 64)),
                                rounds=1, iterations=1)
    print()
    print(figure3.render(PAPER_FIGURE_3))
    for name, values in figure3.series.items():
        benchmark.extra_info[name] = [round(v) for v in values]


def test_double_cell_reaches_link_bandwidth(figure3):
    """Paper: 'the throughput now approaches the full link bandwidth
    of 516 Mbps for message sizes of 16 KB and larger.'"""
    for kb in (16, 32, 64, 128, 256):
        assert figure3.at("double cell DMA", kb) > 480, kb
    assert figure3.peak("double cell DMA") == pytest.approx(516, rel=0.05)


def test_checksummed_receive_near_90_percent_of_link(figure3):
    """Paper: data can be read and checksummed at close to 90% of the
    link speed (438 of 516 Mbps); we accept 75%+."""
    peak = figure3.peak("double cell DMA, UDP-CS")
    assert peak > 0.75 * 516
    assert peak < figure3.peak("double cell DMA")


def test_single_cell_capped_by_bus_ceiling(figure3):
    """Single-cell DMA cannot exceed the 463 Mbps TC write ceiling."""
    peak = figure3.peak("single cell DMA")
    assert 390 < peak < 463


def test_checksum_hurts_less_than_on_decstation():
    """The Alpha checksums resident data; the DS must also fetch it
    over the shared bus -- so the relative CS penalty is far worse on
    the DS (80 Mbps, section 4)."""
    from repro.bench import measure_receive_throughput
    from repro.hw import DEC3000_600, DS5000_200
    alpha_cs = measure_receive_throughput(
        DEC3000_600, 16 * 1024, udp_checksum=True, messages=30).mbps
    ds_cs = measure_receive_throughput(
        DS5000_200, 16 * 1024, udp_checksum=True, messages=15).mbps
    assert ds_cs < 100
    assert alpha_cs > 3 * ds_cs


def test_small_messages_better_than_ds5000(figure3):
    """Paper: 'throughput for small messages has improved greatly'."""
    ds = run_figure2((1, 4))
    assert figure3.at("double cell DMA", 1) > \
        1.5 * ds.at("double cell DMA", 1)
    assert figure3.at("double cell DMA", 4) > \
        1.5 * ds.at("double cell DMA", 4)

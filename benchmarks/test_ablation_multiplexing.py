"""E15 -- Transmit multiplexing granularity (section 2.5.1).

'Fine-grained multiplexing is advantageous for latency and switch
performance ... when the goal is to maximize throughput to a single
application, neither of these reasons is relevant.'  Interleaving one
cell per active PDU slashes the wire latency of a small PDU queued
behind a large one, at no aggregate-throughput cost.
"""

import pytest

from repro.osiris import TxProcessor

import sys
sys.path.insert(0, "tests")
from conftest import BoardRig  # noqa: E402


def _race(interleave: bool) -> dict:
    rig = BoardRig()
    rig.board.open_channel(1)
    rig.board.open_channel(2)
    finish = {}
    cells = {"n": 0}

    def deliver(cell):
        cells["n"] += 1
        if cell.eom:
            finish.setdefault(cell.vci, rig.sim.now)

    TxProcessor(rig.sim, rig.board, deliver=deliver,
                interleave=interleave)
    rig.queue_pdu(b"L" * 65536, vci=11, channel_id=1)   # bulk transfer
    rig.queue_pdu(b"s" * 200, vci=22, channel_id=2)     # latency-bound
    rig.sim.run()
    return {
        "small_pdu_done_us": finish[22],
        "large_pdu_done_us": finish[11],
        "total_us": rig.sim.now,
        "cells": cells["n"],
    }


@pytest.fixture(scope="module")
def results():
    return {"sequential": _race(False), "interleaved": _race(True)}


def test_multiplexing_benchmark(benchmark, results):
    benchmark.pedantic(lambda: _race(True), rounds=1, iterations=1)
    print()
    print("200 B PDU queued behind a 64 KB PDU:")
    for name, r in results.items():
        print(f"  {name:11} small PDU on wire at {r['small_pdu_done_us']:8.1f} us, "
              f"all done at {r['total_us']:8.1f} us")
        benchmark.extra_info[name] = r
    assert results["interleaved"]["small_pdu_done_us"] < \
        results["sequential"]["small_pdu_done_us"] / 20


def test_interleaving_slashes_small_pdu_latency(results):
    seq = results["sequential"]["small_pdu_done_us"]
    il = results["interleaved"]["small_pdu_done_us"]
    assert il < seq / 20


def test_aggregate_throughput_unchanged(results):
    assert results["interleaved"]["total_us"] == pytest.approx(
        results["sequential"]["total_us"], rel=0.05)
    assert results["interleaved"]["cells"] == \
        results["sequential"]["cells"]

"""Configuration for the recovery control plane.

A frozen value object so it pickles into ``fabric_kwargs`` for the
sharded proc backend and hashes into cache keys, the same discipline
as :class:`repro.topology.spec.TopologySpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import SimulationError

RECOVERY_MODES = ("off", "detect", "reroute")


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs for failure detection and path failover.

    ``mode``
        ``"off"`` disables the subsystem, ``"detect"`` runs heartbeat
        probes and records declarations without touching routes,
        ``"reroute"`` additionally re-resolves affected flows over
        the surviving fabric.
    ``hb_interval_us``
        Heartbeat probe period per monitored element.  Each element's
        probe phase is a ``fault_hash`` of its name, so probes are
        content-addressed, not enumeration-ordered.
    ``detect_timeout_us``
        How long an element must stay unresponsive before it is
        declared dead (measured from the first probe that found it
        down).
    ``ctrl_delay_us``
        Propagation delay of the declaration broadcast.  ``None``
        uses the fabric's ``prop_delay_us``; smaller values are
        clamped up to it -- the broadcast crosses shard boundaries
        and must respect the conservative window lookahead.
    ``setup_rtt_per_hop_us``
        VC re-establishment settling time per path hop (signalling
        round trip).  ``None`` uses ``2 * prop_delay_us``.
    ``backoff_us``
        Base of the deterministic exponential backoff between reroute
        attempts: attempt ``k`` retries after ``backoff_us * 2**k``.
    ``max_retries``
        Attempts before a flow is declared unrecoverable and left to
        degrade gracefully (counted, not wedged).
    """

    mode: str = "detect"
    hb_interval_us: float = 50.0
    detect_timeout_us: float = 100.0
    ctrl_delay_us: Optional[float] = None
    setup_rtt_per_hop_us: Optional[float] = None
    backoff_us: float = 100.0
    max_retries: int = 4

    def __post_init__(self) -> None:
        if self.mode not in RECOVERY_MODES:
            raise SimulationError(
                f"unknown recovery mode {self.mode!r}; choose from "
                f"{RECOVERY_MODES}")
        if self.hb_interval_us <= 0:
            raise SimulationError("hb_interval_us must be positive")
        if self.detect_timeout_us < 0:
            raise SimulationError("detect_timeout_us must be >= 0")
        if self.backoff_us <= 0:
            raise SimulationError("backoff_us must be positive")
        if self.max_retries < 1:
            raise SimulationError("max_retries must be >= 1")


__all__ = ["RecoveryConfig", "RECOVERY_MODES"]

"""Deterministic failure detection and path failover.

The control plane the data path was missing: ``repro.faults`` can
kill a lane or a switch port, and until now every cell routed across
the corpse was black-holed forever even though the ECMP tables hold
perfectly good alternate paths.  The :class:`RecoveryManager` closes
the loop in three stages, each engineered to be a pure function of
``(fault plan, topology, seed)`` so a sharded run reproduces a plain
run byte for byte:

**Detection.**  Every element the fault plan can kill (switch-port
and uplink-lane kill sites) gets a heartbeat probe chain.  The probe
phase is ``hb_interval_us * fault_hash(seed, "hb", name)`` -- the
same content-addressed splitmix64 discipline ``repro.faults`` uses
for loss decisions -- so detection latency depends only on the
element's identity and the plan seed, never on enumeration order or
shard count.  An element found down on a probe starts a clock; once
it stays down ``detect_timeout_us`` it is *declared* and the chain
stops (probes never outlive a declaration, preserving quiescence).

**Broadcast.**  A declaration is one boundary message ``("dead",
...)`` fanned out to every shard at ``t_detect + ctrl_delay`` (the
control delay is clamped to the fabric's propagation delay, the
conservative window lookahead).  Everything downstream -- masking,
re-resolution, retry timers, VC establishment -- is *replicated
deterministic computation*: every shard runs it identically at the
same simulated times, which keeps the global ``VciAllocator`` and
route tables in lock-step without further coordination.

**Reroute.**  Affected flows re-resolve through
``build_ecmp_tables(spec, dead_edges=...)`` with the dead trunk
masked out.  Because :meth:`CellSwitch.add_route` refuses duplicate
VCIs, a reroute never mutates an installed route: it allocates a
fresh wire VCI, installs the new path beside the old one, and
retargets the sender's driver session after a per-hop settling time.
The TX sequence numbering migrates with the flow (the receiver's
reassembler keys state by the *delivered* VCI, which never changes),
so the outage looks like ordinary cell loss to the AAL5 layer.
Attempts use bounded deterministic exponential backoff; a flow with
no surviving path is counted ``no_path`` and left to degrade
gracefully -- open-loop senders still complete.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..faults.plan import fault_hash
from ..sim import SimulationError
from .config import RecoveryConfig

if TYPE_CHECKING:
    from ..cluster.fabric import Fabric

# Element kinds in "dead" broadcast messages.
EKIND_PORT = 0      # (switch, trunk, lane)
EKIND_LANE = 1      # (host, lane, 0)


class _Element:
    """One monitored fabric element (owned by the declaring shard)."""

    __slots__ = ("ekind", "a", "b", "c", "name", "fail_at",
                 "down_since", "declared")

    def __init__(self, ekind: int, a: int, b: int, c: int, name: str,
                 fail_at: float):
        self.ekind = ekind
        self.a = a
        self.b = b
        self.c = c
        self.name = name
        self.fail_at = fail_at          # earliest scheduled kill
        self.down_since: Optional[float] = None
        self.declared = False


class _Direction:
    """One direction of a flow, tracked for failover.  Replicated
    identically on every shard; only TX/gate plumbing is guarded by
    host ownership."""

    __slots__ = ("src", "dst", "orig_vci", "out_vci", "wire_vci",
                 "hops", "status", "element", "attempts", "failed_at",
                 "detected_at", "reroute_at", "activated_at",
                 "first_delivery_us", "pending")

    def __init__(self, src: int, dst: int, orig_vci: int, out_vci: int,
                 hops: tuple):
        self.src = src
        self.dst = dst
        self.orig_vci = orig_vci        # VCI the sender's app knows
        self.out_vci = out_vci          # delivered VCI (never changes)
        self.wire_vci = orig_vci        # current on-the-wire VCI
        self.hops = hops                # ((switch, trunk), ...) in use
        self.status: Optional[str] = None
        self.element: Optional[str] = None
        self.attempts = 0
        self.failed_at: Optional[float] = None
        self.detected_at: Optional[float] = None
        self.reroute_at: Optional[float] = None
        self.activated_at: Optional[float] = None
        self.first_delivery_us: Optional[float] = None
        self.pending: Optional[tuple] = None    # (new_vci, path)


class RecoveryManager:
    """Heartbeat detection + deterministic ECMP failover for one
    fabric instance (plain or one shard of a sharded run).

    Ownership splits along the PR 9 design: the probe chain
    (``arm`` -> ``_schedule_probe`` -> ``_probe`` -> ``_declare``)
    runs only on the element's owning shard (the 'recovery' actor),
    while everything downstream of a dead declaration is replicated
    deterministic computation driven by the broadcast boundary
    message (``apply_dead``, the 'boundary' actor).  RACE204 holds
    each field to its side of that line.

    Root: arm -> recovery
    Boundary: apply_dead
    Owner: _elements -> recovery
    Owner: probes_sent -> recovery
    Owner: _records -> boundary
    Owner: _masked -> boundary
    Owner: _dead_downlinks -> boundary
    Owner: _watches -> boundary
    """

    def __init__(self, fabric: "Fabric", cfg: RecoveryConfig):
        if fabric.topo is None:
            raise SimulationError(
                "recovery needs a switched fabric; the direct "
                "topology has no alternate paths")
        self.fabric = fabric
        self.cfg = cfg
        self.mode = cfg.mode
        plan = fabric.faults
        self.seed = plan.seed if plan is not None else 0
        self.hb = cfg.hb_interval_us
        self.detect_timeout = cfg.detect_timeout_us
        # The broadcast must honor the conservative window lookahead.
        self.ctrl_delay = max(cfg.ctrl_delay_us or 0.0,
                              fabric.prop_delay_us)
        self.setup_hop_us = (cfg.setup_rtt_per_hop_us
                             if cfg.setup_rtt_per_hop_us is not None
                             else 2.0 * fabric.prop_delay_us)
        self.backoff_us = cfg.backoff_us
        self.max_retries = cfg.max_retries
        self.probes_sent = 0
        #

        self._elements: list[_Element] = []     # owned by this shard
        self._records: dict[tuple, dict] = {}   # declared, replicated
        self._directions: dict[int, _Direction] = {}    # by orig VCI
        self._masked: set = set()       # dead directed (s, t) edges
        self._dead_downlinks: set = set()       # dead (switch, trunk)
        # (final switch, wire VCI) -> direction awaiting its first
        # post-failover arrival at the destination edge.
        self._watches: dict[tuple, _Direction] = {}

    # -- registration ---------------------------------------------------------------

    def register_direction(self, src: int, dst: int, orig_vci: int,
                           out_vci: int, hops: tuple) -> None:
        """Called by ``Fabric._install_route`` for every direction of
        every flow, in the global construction order."""
        self._directions[orig_vci] = _Direction(src, dst, orig_vci,
                                                out_vci, hops)

    def arm(self) -> None:
        """Register probe chains for every element the plan kills that
        this fabric instance owns.  Flaps are transient by contract
        and are deliberately not monitored -- a flapped link heals on
        its own and declaring it would thrash routes."""
        plan = self.fabric.faults
        if plan is None:
            return
        by_key: dict[tuple, float] = {}
        for pk in plan.port_kills:
            key = (EKIND_PORT, pk.switch, pk.trunk, pk.lane)
            if key not in by_key or pk.at_us < by_key[key]:
                by_key[key] = pk.at_us
        for lk in plan.lane_kills:
            key = (EKIND_LANE, lk.host, lk.lane, 0)
            if key not in by_key or lk.at_us < by_key[key]:
                by_key[key] = lk.at_us
        for key in sorted(by_key):
            ekind, a, b, c = key
            if ekind == EKIND_PORT:
                if not self.fabric.switches[a].has_trunk(b):
                    continue        # another shard owns these ports
            else:
                if not self.fabric.owns_host(a):
                    continue
            el = _Element(ekind, a, b, c,
                          self._element_name(ekind, a, b, c),
                          by_key[key])
            self._elements.append(el)
            phase = self.hb * fault_hash(self.seed, "hb", el.name)
            self._schedule_probe(el, phase)

    def _element_name(self, ekind: int, a: int, b: int, c: int) -> str:
        if ekind == EKIND_PORT:
            return f"{self.fabric.topo.switch_names[a]}.t{b}.l{c}"
        return f"up.h{a}.l{b}"

    # -- detection ------------------------------------------------------------------

    def _schedule_probe(self, el: _Element, when: float) -> None:
        key = self.fabric._chan_key("hbp", el.ekind, el.a, el.b, el.c)
        self.fabric.sim.call_at(when, lambda: self._probe(el), key=key)

    def _probe(self, el: _Element) -> None:
        now = self.fabric.sim.now
        self.probes_sent += 1
        if self._element_down(el):
            if el.down_since is None:
                el.down_since = now
            if now - el.down_since >= self.detect_timeout:
                self._declare(el, now)
                return              # chain ends at declaration
        else:
            el.down_since = None
        self._schedule_probe(el, now + self.hb)

    def _element_down(self, el: _Element) -> bool:
        if el.ekind == EKIND_PORT:
            return self.fabric.switches[el.a].port_dead(el.b, el.c)
        site = self.fabric._fault_sites.get(el.name)
        # Only a kill (permanent) reads as dead; a flap window does
        # not, so flapped links are never declared.
        return site is not None and site.dead

    def _declare(self, el: _Element, now: float) -> None:
        el.declared = True
        chan = (("rcvp", el.a, el.b, el.c) if el.ekind == EKIND_PORT
                else ("rcvl", el.a, el.b))
        msg = ("dead", el.ekind, el.a, el.b, el.c,
               float(el.fail_at), float(now))
        self.fabric._broadcast_recovery(now + self.ctrl_delay, chan, msg)

    # -- reroute (replicated on every shard) ----------------------------------------

    def apply_dead(self, ekind: int, a: int, b: int, c: int,
                   t_fail: float, t_detect: float) -> None:
        """Handle one declaration broadcast.  Runs identically on
        every shard at the same simulated time."""
        dkey = (ekind, a, b, c)
        if dkey in self._records:
            return
        rec = {"name": self._element_name(ekind, a, b, c),
               "kind": "port" if ekind == EKIND_PORT else "lane",
               "failed_at_us": t_fail,
               "detected_at_us": t_detect}
        self._records[dkey] = rec
        if self.mode != "reroute" or ekind != EKIND_PORT:
            return
        fabric = self.fabric
        dkind, idx = fabric._trunk_dest[(a, b)]
        if dkind == "switch":
            self._masked.add((a, idx))
        else:
            # A dead downlink: the destination edge itself is gone,
            # no alternate path can reach the host.
            self._dead_downlinks.add((a, b))
        now = fabric.sim.now
        for vci in sorted(self._directions):
            d = self._directions[vci]
            if d.pending is not None or d.status == "no_path":
                continue
            if (a, b) not in d.hops:
                continue
            d.element = rec["name"]
            d.failed_at = t_fail
            d.detected_at = t_detect
            d.reroute_at = now
            self._attempt(d, d.attempts)

    def _attempt(self, d: _Direction, k: int) -> None:
        fabric = self.fabric
        d.attempts = k + 1
        s_sw, _ = fabric._attach[d.src]
        d_sw, d_trunk = fabric._attach[d.dst]
        path = None
        if (d_sw, d_trunk) not in self._dead_downlinks:
            tables = fabric._masked_ecmp(tuple(sorted(self._masked)))
            try:
                path = tables.path(s_sw, d_sw, d.orig_vci,
                                   fabric.routing_seed)
            except SimulationError:
                path = None
        if path is None:
            self._retry(d, k)
            return
        new_vci = fabric.vcis.alloc()
        for a, b in zip(path, path[1:]):
            fabric.switches[a].add_route(
                new_vci, fabric._interswitch[(a, b)], new_vci)
        fabric.switches[d_sw].add_route(new_vci, d_trunk, d.out_vci)
        d.pending = (new_vci, path)
        settle = self.setup_hop_us * max(1, len(path))
        fabric.sim.call_at(fabric.sim.now + settle,
                           lambda: self._activate(d, k),
                           key=("rcva", d.orig_vci, k))

    def _retry(self, d: _Direction, k: int) -> None:
        d.pending = None
        if k + 1 >= self.max_retries:
            d.status = "no_path"
            return
        delay = self.backoff_us * (1 << k)
        self.fabric.sim.call_at(self.fabric.sim.now + delay,
                                lambda: self._attempt(d, k + 1),
                                key=("rcvr", d.orig_vci, k + 1))

    def _activate(self, d: _Direction, k: int) -> None:
        """VC establishment settled: cut the sender over.  If another
        element died while the VC was settling, the chosen path may
        already be stale -- retry rather than activate a dead route
        (the provisionally-installed VCI is simply abandoned; the
        allocator stays in lock-step because every shard abandons the
        same one)."""
        fabric = self.fabric
        new_vci, path = d.pending
        d.pending = None
        d_sw, d_trunk = fabric._attach[d.dst]
        stale = ((d_sw, d_trunk) in self._dead_downlinks
                 or any((a, b) in self._masked
                        for a, b in zip(path, path[1:])))
        if stale:
            self._retry(d, k)
            return
        old_wire = d.wire_vci
        d.wire_vci = new_vci
        d.hops = tuple([(a, fabric._interswitch[(a, b)])
                        for a, b in zip(path, path[1:])]
                       + [(d_sw, d_trunk)])
        d.status = "rerouted"
        d.activated_at = fabric.sim.now
        d.first_delivery_us = None
        self._watches[(d_sw, new_vci)] = d
        fabric._apply_reroute(d.src, d.dst, old_wire, new_vci,
                              d.out_vci)

    # -- measurement ----------------------------------------------------------------

    def note_arrival(self, switch_index: int, vci: int) -> None:
        """First cell carrying a rerouted flow's new wire VCI reached
        the destination edge switch: the flow has converged."""
        if not self._watches:
            return
        d = self._watches.pop((switch_index, vci), None)
        if d is not None and d.first_delivery_us is None:
            d.first_delivery_us = self.fabric.sim.now

    # -- reporting ------------------------------------------------------------------

    def partial(self) -> dict:
        """This instance's contribution to the recovery report.  All
        fields are replicated except ``probes_sent`` (owner-only, so
        partials sum to the plain run's count) and
        ``first_delivery_us`` (observed on the shard that owns the
        destination edge; the merge overlays non-None values)."""
        elements = [dict(self._records[key])
                    for key in sorted(self._records)]
        flows = []
        for vci in sorted(self._directions):
            d = self._directions[vci]
            if d.element is None:
                continue
            flows.append({
                "vci": d.orig_vci,
                "src": d.src,
                "dst": d.dst,
                "element": d.element,
                "status": d.status or "pending",
                "attempts": d.attempts,
                "wire_vci": d.wire_vci,
                "failed_at_us": d.failed_at,
                "detected_at_us": d.detected_at,
                "reroute_at_us": d.reroute_at,
                "activated_at_us": d.activated_at,
                "first_delivery_us": d.first_delivery_us,
            })
        return {"elements": elements, "flows": flows,
                "probes_sent": self.probes_sent}


def combine_partials(parts: list) -> dict:
    """Reunite per-shard recovery partials (a plain run is the
    one-partial special case, so both paths serialize identically)."""
    elements: dict[tuple, dict] = {}
    flows: dict[int, dict] = {}
    probes = 0
    for part in parts:
        probes += part["probes_sent"]
        for el in part["elements"]:
            elements.setdefault(el["name"], el)
        for f in part["flows"]:
            cur = flows.get(f["vci"])
            if cur is None:
                flows[f["vci"]] = dict(f)
            elif (f["first_delivery_us"] is not None
                    and cur["first_delivery_us"] is None):
                cur["first_delivery_us"] = f["first_delivery_us"]
    return {"elements": [elements[k] for k in sorted(elements)],
            "flows": [flows[k] for k in sorted(flows)],
            "probes_sent": probes}


def _percentiles(samples: list) -> Optional[dict]:
    if not samples:
        return None
    xs = sorted(samples)
    n = len(xs)
    return {"n": n,
            "p50": xs[n // 2],
            "p99": xs[min(n - 1, int(n * 0.99))],
            "max": xs[-1]}


def summarize_recovery(cfg: RecoveryConfig, combined: dict) -> dict:
    """The recovery block of the cluster report: configuration,
    per-element and per-flow records, and convergence percentiles.
    ``recovery_time_us`` spans declaration -> first post-failover
    arrival at the destination edge; ``outage_time_us`` spans the
    scheduled failure itself -> that same arrival."""
    flows = combined["flows"]
    rerouted = [f for f in flows if f["status"] == "rerouted"]
    unrecovered = [f for f in flows if f["status"] == "no_path"]
    converged = [f for f in rerouted
                 if f["first_delivery_us"] is not None]
    return {
        "mode": cfg.mode,
        "hb_interval_us": cfg.hb_interval_us,
        "detect_timeout_us": cfg.detect_timeout_us,
        "backoff_us": cfg.backoff_us,
        "max_retries": cfg.max_retries,
        "probes_sent": combined["probes_sent"],
        "counters": {
            "elements_failed": len(combined["elements"]),
            "flows_rerouted": len(rerouted),
            "flows_unrecovered": len(unrecovered),
        },
        "elements": combined["elements"],
        "flows": flows,
        "recovery_time_us": _percentiles(
            [f["first_delivery_us"] - f["detected_at_us"]
             for f in converged]),
        "outage_time_us": _percentiles(
            [f["first_delivery_us"] - f["failed_at_us"]
             for f in converged]),
    }


__all__ = ["RecoveryManager", "combine_partials", "summarize_recovery",
           "EKIND_PORT", "EKIND_LANE"]

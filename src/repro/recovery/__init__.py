"""Self-healing control plane: failure detection, deterministic
reroute, and recovery-time measurement (DESIGN.md section 12)."""

from .config import RECOVERY_MODES, RecoveryConfig
from .manager import (EKIND_LANE, EKIND_PORT, RecoveryManager,
                      combine_partials, summarize_recovery)

__all__ = [
    "RecoveryConfig",
    "RECOVERY_MODES",
    "RecoveryManager",
    "combine_partials",
    "summarize_recovery",
    "EKIND_PORT",
    "EKIND_LANE",
]

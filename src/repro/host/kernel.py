"""The host operating system kernel.

Owns the kernel protection domain, dispatches board interrupts into
registered handlers (charging the machine's interrupt-service cost on
the CPU at interrupt priority), and offers thread spawning for driver
and protocol activities.  This is the Mach-out-of-necessity slice: the
experiments need interrupt dispatch, wiring, protection domains and
threads -- not a full microkernel.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..hw.cache import DataCache
from ..hw.cpu import HostCPU
from ..hw.memory import PhysicalMemory
from ..osiris.board import OsirisBoard
from ..osiris.interrupts import InterruptKind
from ..sim import Process, Simulator, spawn
from .domains import ProtectionDomain
from .wiring import WiringService, WiringStyle

IrqCallback = Callable[[InterruptKind, int], None]


class HostOS:
    """Kernel services for one host."""

    def __init__(self, sim: Simulator, cpu: HostCPU, cache: DataCache,
                 memory: PhysicalMemory,
                 wiring_style: WiringStyle = WiringStyle.FAST_LOW_LEVEL):
        self.sim = sim
        self.cpu = cpu
        self.cache = cache
        self.memory = memory
        self.machine = cpu.machine
        self.kernel_domain = ProtectionDomain.kernel(memory)
        self.wiring = WiringService(cpu, wiring_style)
        self.domains: list[ProtectionDomain] = [self.kernel_domain]
        self._irq_handlers: dict[InterruptKind, IrqCallback] = {}
        self.interrupts_serviced = 0
        self.interrupt_time = 0.0
        self._thread_seq = 0

    # -- domains ---------------------------------------------------------------

    def create_domain(self, name: str) -> ProtectionDomain:
        domain = ProtectionDomain.user(self.memory, name,
                                       index=len(self.domains) + 1)
        self.domains.append(domain)
        return domain

    # -- threads ---------------------------------------------------------------

    def spawn_thread(self, gen, name: Optional[str] = None) -> Process:
        self._thread_seq += 1
        return spawn(self.sim, gen, name or f"kthread{self._thread_seq}")

    # -- interrupts --------------------------------------------------------------

    def attach_board(self, board: OsirisBoard) -> None:
        board.irq.register_handler(self._interrupt_entry)

    def register_irq_handler(self, kind: InterruptKind,
                             callback: IrqCallback) -> None:
        """Driver installs the action run after interrupt service.

        The callback executes in interrupt context (no CPU charged);
        typical use is scheduling a driver thread (section 2.1.2).
        """
        self._irq_handlers[kind] = callback

    def _interrupt_entry(self, kind: InterruptKind, channel_id: int) -> None:
        self.spawn_thread(self._service_interrupt(kind, channel_id),
                          name=f"irq-{kind.value}")

    def _service_interrupt(self, kind: InterruptKind,
                           channel_id: int) -> Generator[Any, Any, None]:
        costs = self.machine.costs
        self.interrupts_serviced += 1
        self.interrupt_time += costs.interrupt_service
        # Interrupt handlers preempt thread-level work (priority 0).
        yield from self.cpu.execute(costs.interrupt_service, priority=0.0)
        callback = self._irq_handlers.get(kind)
        if callback is not None:
            yield from self.cpu.execute(costs.interrupt_dispatch,
                                        priority=0.0)
            callback(kind, channel_id)


__all__ = ["HostOS"]

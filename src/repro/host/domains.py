"""Protection domains.

Mach is a microkernel: device drivers, protocol servers and
applications may all live in different protection domains, and network
data may have to traverse several of them on its way to the
application (paper, introduction).  A domain here is an address space
plus an identity; crossing between domains costs
``SoftwareCosts.domain_crossing`` unless an fbuf is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..hw.cpu import HostCPU
from ..hw.memory import PhysicalMemory
from .vm import AddressSpace


@dataclass
class ProtectionDomain:
    """One protection domain: kernel, a server, or an application."""

    name: str
    space: AddressSpace
    is_kernel: bool = False
    crossings_in: int = 0

    @staticmethod
    def kernel(memory: PhysicalMemory) -> "ProtectionDomain":
        space = AddressSpace(memory, name="kernel",
                             base_vaddr=0x8000_0000)
        return ProtectionDomain(name="kernel", space=space, is_kernel=True)

    @staticmethod
    def user(memory: PhysicalMemory, name: str,
             index: int = 1) -> "ProtectionDomain":
        space = AddressSpace(memory, name=name,
                             base_vaddr=0x1000_0000 * index)
        return ProtectionDomain(name=name, space=space)


def cross_domain(cpu: HostCPU, target: ProtectionDomain
                 ) -> Generator[Any, Any, None]:
    """A control transfer into ``target`` (IPC / trap), timed."""
    target.crossings_in += 1
    yield from cpu.execute(cpu.machine.costs.domain_crossing)


__all__ = ["ProtectionDomain", "cross_domain"]

"""Virtual memory: address spaces, page tables, fragmentation.

The heart of section 2.2: contiguous virtual pages generally map to
*non-contiguous* physical frames (the allocator hands frames out
scrambled), so a virtually contiguous message shatters into many
physical buffers.  :meth:`AddressSpace.physical_buffers` performs that
shattering -- it is the function whose output size the driver's
per-buffer costs multiply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hw.memory import PhysicalMemory
from ..sim import SimulationError


@dataclass(frozen=True)
class PhysBuffer:
    """A physically contiguous run of bytes (one DMA-able unit)."""

    addr: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise SimulationError("empty physical buffer")


@dataclass
class _PageEntry:
    frame_addr: int
    wired: int = 0
    owned: bool = True  # frame is freed on unmap


class AddressSpace:
    """A page table over :class:`PhysicalMemory` plus a bump allocator
    for virtual addresses."""

    def __init__(self, memory: PhysicalMemory, name: str = "space",
                 base_vaddr: int = 0x1000_0000):
        self.memory = memory
        self.name = name
        self.page_size = memory.page_size
        self._pages: dict[int, _PageEntry] = {}
        self._brk = base_vaddr
        self.wire_calls = 0

    # -- mapping -------------------------------------------------------------

    def _vpn(self, vaddr: int) -> int:
        return vaddr // self.page_size

    def map_page(self, vaddr: int,
                 frame_addr: Optional[int] = None) -> int:
        """Map the page containing ``vaddr``; returns the frame address.

        Without ``frame_addr`` a fresh (scrambled-order) frame is
        allocated; with it, an existing frame is shared (page
        remapping -- the fbuf building block).
        """
        vpn = self._vpn(vaddr)
        if vpn in self._pages:
            raise SimulationError(f"{self.name}: vpn {vpn} already mapped")
        owned = frame_addr is None
        if frame_addr is None:
            frame_addr = self.memory.alloc_frame()
        self._pages[vpn] = _PageEntry(frame_addr=frame_addr, owned=owned)
        return frame_addr

    def map_identity(self, phys_addr: int, nbytes: int) -> int:
        """Identity-map a physical range (kernel view of the static
        contiguous buffer pool).  Returns the virtual address (==
        physical)."""
        first = phys_addr - (phys_addr % self.page_size)
        last = phys_addr + nbytes - 1
        page = first
        while page <= last:
            vpn = self._vpn(page)
            if vpn not in self._pages:
                self._pages[vpn] = _PageEntry(frame_addr=page, owned=False)
            elif self._pages[vpn].frame_addr != page:
                raise SimulationError("identity mapping conflict")
            page += self.page_size
        return phys_addr

    def unmap_page(self, vaddr: int) -> None:
        vpn = self._vpn(vaddr)
        entry = self._pages.get(vpn)
        if entry is None:
            raise SimulationError(f"{self.name}: vpn {vpn} not mapped")
        if entry.wired:
            raise SimulationError(f"{self.name}: unmapping wired page")
        del self._pages[vpn]
        if entry.owned:
            self.memory.free_frame(entry.frame_addr)

    def is_mapped(self, vaddr: int) -> bool:
        return self._vpn(vaddr) in self._pages

    # -- allocation -----------------------------------------------------------

    def alloc(self, nbytes: int, align_page: bool = False,
              offset: int = 0, try_contiguous: bool = False) -> int:
        """Allocate a fresh virtual range with backing frames.

        ``offset`` places the start inside the first page (application
        messages are 'typically not aligned with page boundaries',
        section 2.2); ``align_page`` forces page alignment, the
        paper's countermeasure.  ``try_contiguous`` asks for
        *physically* contiguous frames on a best-effort basis -- the
        OS support the paper reports experimenting with at the end of
        section 2.2 -- falling back silently to scattered frames.
        """
        if align_page and offset:
            raise SimulationError("align_page and offset are exclusive")
        start = self._brk
        if align_page or offset or try_contiguous:
            start = start - (start % self.page_size) + self.page_size
            start += offset
        end = start + max(nbytes, 1)
        first_page = start - (start % self.page_size)
        npages = (end - 1 - first_page) // self.page_size + 1
        if try_contiguous:
            base = self.memory.try_alloc_contiguous_frames(npages)
            if base is not None:
                for i in range(npages):
                    vpn = self._vpn(first_page + i * self.page_size)
                    if vpn in self._pages:
                        raise SimulationError(
                            f"{self.name}: vpn {vpn} already mapped")
                    self._pages[vpn] = _PageEntry(
                        frame_addr=base + i * self.page_size)
                self._brk = end
                return start
        page = first_page
        while page < end:
            if not self.is_mapped(page):
                self.map_page(page)
            page += self.page_size
        self._brk = end
        return start

    # -- translation and access -------------------------------------------------

    def translate(self, vaddr: int) -> int:
        vpn = self._vpn(vaddr)
        entry = self._pages.get(vpn)
        if entry is None:
            raise SimulationError(
                f"{self.name}: fault at {vaddr:#x} (unmapped)")
        return entry.frame_addr + (vaddr % self.page_size)

    def physical_buffers(self, vaddr: int, nbytes: int) -> list[PhysBuffer]:
        """Shatter a virtual range into physically contiguous buffers.

        Adjacent frames merge into one buffer; in practice the
        scrambled allocator makes that rare, so a range of n pages
        yields about n buffers (section 2.2, figure 1).
        """
        if nbytes <= 0:
            raise SimulationError("empty range")
        buffers: list[PhysBuffer] = []
        pos = vaddr
        remaining = nbytes
        while remaining > 0:
            phys = self.translate(pos)
            in_page = self.page_size - (pos % self.page_size)
            take = min(in_page, remaining)
            if buffers and buffers[-1].addr + buffers[-1].length == phys:
                buffers[-1] = PhysBuffer(
                    buffers[-1].addr, buffers[-1].length + take)
            else:
                buffers.append(PhysBuffer(phys, take))
            pos += take
            remaining -= take
        return buffers

    def read(self, vaddr: int, nbytes: int) -> bytes:
        out = bytearray()
        for buf in self.physical_buffers(vaddr, nbytes):
            out += self.memory.read(buf.addr, buf.length)
        return bytes(out)

    def write(self, vaddr: int, data: bytes) -> None:
        offset = 0
        for buf in self.physical_buffers(vaddr, len(data)):
            self.memory.write(buf.addr, data[offset:offset + buf.length])
            offset += buf.length

    # -- wiring ----------------------------------------------------------------

    def wire(self, vaddr: int, nbytes: int) -> int:
        """Pin the pages backing a range; returns the page count (the
        caller charges per-page time via the wiring service)."""
        self.wire_calls += 1
        count = 0
        for vpn in self._range_vpns(vaddr, nbytes):
            self._pages[vpn].wired += 1
            count += 1
        return count

    def unwire(self, vaddr: int, nbytes: int) -> int:
        count = 0
        for vpn in self._range_vpns(vaddr, nbytes):
            entry = self._pages[vpn]
            if entry.wired == 0:
                raise SimulationError("unwiring a page that is not wired")
            entry.wired -= 1
            count += 1
        return count

    def wired_pages(self) -> int:
        return sum(1 for e in self._pages.values() if e.wired > 0)

    def _range_vpns(self, vaddr: int, nbytes: int) -> list[int]:
        if nbytes <= 0:
            raise SimulationError("empty range")
        first = self._vpn(vaddr)
        last = self._vpn(vaddr + nbytes - 1)
        vpns = list(range(first, last + 1))
        for vpn in vpns:
            if vpn not in self._pages:
                raise SimulationError(f"{self.name}: vpn {vpn} not mapped")
        return vpns


__all__ = ["AddressSpace", "PhysBuffer"]

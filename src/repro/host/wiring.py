"""Page wiring services (paper, section 2.4).

Before a buffer's address is handed to the board for DMA its pages
must be wired (pinned).  Mach's standard service turned out to be
surprisingly expensive -- it also protects the page-table pages needed
to translate the address -- so the driver switched to low-level
functionality with acceptable cost.  Both styles are provided; the
wiring ablation (E10) compares them on the send path.
"""

from __future__ import annotations

import enum
from typing import Any, Generator

from ..hw.cpu import HostCPU
from .vm import AddressSpace


class WiringStyle(enum.Enum):
    MACH_STANDARD = "mach-standard"   # vm_wire-equivalent, heavyweight
    FAST_LOW_LEVEL = "fast-low-level"  # what the OSIRIS driver uses


class WiringService:
    """Timed wiring operations against an address space."""

    def __init__(self, cpu: HostCPU,
                 style: WiringStyle = WiringStyle.FAST_LOW_LEVEL):
        self.cpu = cpu
        self.style = style
        self.pages_wired = 0
        self.pages_unwired = 0
        self.time_spent = 0.0

    def _per_page_cost(self) -> float:
        costs = self.cpu.machine.costs
        if self.style is WiringStyle.MACH_STANDARD:
            return costs.page_wire_mach
        return costs.page_wire_fast

    def wire(self, space: AddressSpace, vaddr: int,
             nbytes: int) -> Generator[Any, Any, int]:
        """Wire a range; charges per-page CPU time.  Returns pages."""
        pages = space.wire(vaddr, nbytes)
        cost = pages * self._per_page_cost()
        self.pages_wired += pages
        self.time_spent += cost
        yield from self.cpu.execute(cost)
        return pages

    def unwire(self, space: AddressSpace, vaddr: int,
               nbytes: int) -> Generator[Any, Any, int]:
        """Unwire a range; cheaper than wiring (bookkeeping only)."""
        pages = space.unwire(vaddr, nbytes)
        cost = pages * self._per_page_cost() * 0.4
        self.pages_unwired += pages
        self.time_spent += cost
        yield from self.cpu.execute(cost)
        return pages


__all__ = ["WiringService", "WiringStyle"]

"""Host OS substrate: virtual memory, wiring, domains, kernel."""

from .domains import ProtectionDomain, cross_domain
from .kernel import HostOS
from .vm import AddressSpace, PhysBuffer
from .wiring import WiringService, WiringStyle

__all__ = [
    "AddressSpace", "PhysBuffer",
    "WiringService", "WiringStyle",
    "ProtectionDomain", "cross_domain",
    "HostOS",
]

"""Chaos harness: workload x fault-plan matrices with invariants.

Runs each scenario on a plain fabric and on sharded fabrics, then
checks three things no single test pins down together:

1. the **extended conservation law** holds and the fabric quiesces
   (``queued == 0``), so at the end of every run
   ``injected == delivered + corrupted + dropped + lost_to_faults``;
2. every open-loop sender finished (no stalled-forever flows -- with
   credit backpressure this is exactly what credit regeneration has to
   guarantee under loss);
3. the report is **byte-identical across shard counts**, fault
   decisions included.

Usage::

    python -m repro chaos --quick
    python -m repro.faults.chaos --seed 7 --shards 1,2,3
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..hw.specs import DS5000_200
from .plan import FaultPlan


def build_scenarios(seed: int = 1, quick: bool = True) -> list[dict]:
    """The seeded fault matrix.  Every scenario is an open-loop
    workload (completion is then a meaningful invariant) over a
    4-host fabric, with ``fabric_kwargs`` picklable for the sharded
    proc backend."""
    from ..atm.aal5 import SegmentMode
    from ..cluster import WorkloadSpec
    from ..recovery import RecoveryConfig
    from ..topology import build_spec

    messages = 3 if quick else 8
    size = 2048 if quick else 8192

    def kwargs(**extra) -> dict:
        base = {"machines": DS5000_200, "n_hosts": 4, "n_switches": 1,
                "segment_mode": SegmentMode.SEQUENCE}
        base.update(extra)
        return base

    def spec(pattern: str) -> "WorkloadSpec":
        return WorkloadSpec(pattern=pattern, kind="open", seed=seed,
                            message_bytes=size,
                            messages_per_client=messages)

    scenarios = [
        {
            "name": "loss-corrupt",
            "fabric_kwargs": kwargs(faults=FaultPlan.parse(
                "loss=0.01,corrupt=0.002", seed=seed)),
            "spec": spec("pairs"),
        },
        {
            "name": "flap-kill-port",
            "fabric_kwargs": kwargs(n_switches=2, faults=FaultPlan.parse(
                "flap=1:2@300+150,kill=0:3@500,port=0:0:1@400",
                seed=seed)),
            "spec": spec("all2all"),
        },
        {
            "name": "credit-regen",
            "fabric_kwargs": kwargs(
                backpressure="credit",
                credit_regen_timeout_us=600.0,
                faults=FaultPlan.parse("loss=0.01,credit-loss=0.05",
                                       seed=seed)),
            "spec": spec("incast"),
            "expect_no_queue_full": True,
        },
    ]
    # Self-healing: kill one lane of leaf0's uplink to spine0 after
    # traffic is flowing; recovery must detect the dead port, reroute
    # the affected flows through spine1, and deliver >= 90% of the
    # offered messages -- without it the striped trunk silently eats a
    # quarter of every affected flow forever.
    clos = build_spec("clos", 4, pods=2, oversubscription=1.0)
    scenarios.append({
        "name": "port-kill-reroute",
        "fabric_kwargs": kwargs(
            topology="clos", pods=2, oversubscription=1.0,
            faults=FaultPlan.parse("port=leaf0:2:1@1000", seed=seed,
                                   topology=clos),
            recovery=RecoveryConfig(mode="reroute")),
        "spec": WorkloadSpec(pattern="all2all", kind="open", seed=seed,
                             message_bytes=2048, rate_mbps=20.0,
                             arrival="poisson",
                             messages_per_client=6 if quick else 10),
        "expect_recovery": True,
    })
    if not quick:
        scenarios.append({
            "name": "efci-loss",
            "fabric_kwargs": kwargs(
                backpressure="efci",
                faults=FaultPlan.parse("loss=0.02", seed=seed)),
            "spec": spec("incast"),
        })
    return scenarios


def run_scenario(scenario: dict, shard_counts: tuple[int, ...] = (1, 2),
                 backend: str = "thread", sanitize: bool = False) -> dict:
    """Run one scenario at every shard count and check the invariants.
    Returns a result dict with ``ok`` and a list of ``failures``."""
    from ..cluster import Fabric, collect, run_workload
    from ..cluster.sharded import run_cluster_sharded

    if sanitize:
        from ..analysis import sanitize as _sanitize
        _sanitize.enable()

    failures: list[str] = []
    reports = {}
    for k in shard_counts:
        if k == 1:
            fabric = Fabric(**scenario["fabric_kwargs"])
            # Invariants 1 and 2 below only mean anything on a run
            # that actually quiesced; the budget turns a stalled
            # fabric into an error instead of a bogus "ok".
            result = run_workload(fabric, scenario["spec"],
                                  max_events=50_000_000)
            reports[k] = collect(fabric, result)
        else:
            # Both window schedules must reproduce the plain run:
            # adaptive coalescing (the default) and the classic
            # fixed-width baseline.
            for coalesce in (True, False):
                label = k if coalesce else f"{k}/no-coalesce"
                reports[label], _run = run_cluster_sharded(
                    scenario["fabric_kwargs"], scenario["spec"], k,
                    backend=backend, sanitize=sanitize,
                    coalesce=coalesce)

    base = shard_counts[0]
    base_json = reports[base].to_json()
    for label in sorted(reports, key=str):
        if label == base:
            continue
        if reports[label].to_json() != base_json:
            failures.append(
                f"--shards {label} report differs from "
                f"--shards {base}")

    report = reports[base]
    cons = report.conservation
    if not cons["holds"]:
        failures.append(f"conservation violated: {cons}")
    if cons["queued"] != 0:
        failures.append(
            f"{cons['queued']} cells still queued at quiescence")
    workload = report.workload
    expected = (workload["clients"]
                * scenario["spec"].messages_per_client)
    if workload["messages_sent"] != expected:
        failures.append(
            f"only {workload['messages_sent']}/{expected} messages "
            f"sent -- a flow stalled forever")
    if scenario.get("expect_no_queue_full") \
            and report.drops.get("queue_full"):
        failures.append(
            f"{report.drops['queue_full']} queue-full drops under "
            f"credit backpressure")
    if scenario.get("expect_recovery"):
        recovery = report.recovery
        if not recovery:
            failures.append("no recovery block in the report")
        else:
            if recovery["counters"]["flows_rerouted"] < 1:
                failures.append("no flow was rerouted after the kill")
            if recovery["recovery_time_us"] is None:
                failures.append(
                    "no rerouted flow converged (no post-failover "
                    "delivery observed)")
        ratio = (workload["messages_received"]
                 / max(1, workload["messages_sent"]))
        if ratio < 0.9:
            failures.append(
                f"only {workload['messages_received']}/"
                f"{workload['messages_sent']} messages delivered "
                f"post-failover (need >= 90%)")
    # Per-site fault accounting for the JSON report: what each
    # injection point actually did to the traffic that crossed it.
    fault_sites = {
        name: {"injected": site["cells_seen"],
               "lost": site["cells_lost"],
               "corrupted": site["cells_corrupted"]}
        for name, site in sorted(
            (report.faults or {}).get("sites", {}).items())
    }
    return {
        "name": scenario["name"],
        "ok": not failures,
        "failures": failures,
        "shard_counts": list(shard_counts),
        "conservation": cons,
        "faults": report.faults,
        "fault_sites": fault_sites,
        "recovery": report.recovery,
    }


def run_matrix(seed: int = 1, quick: bool = True,
               shard_counts: tuple[int, ...] = (1, 2),
               backend: str = "thread",
               sanitize: bool = False) -> list[dict]:
    return [run_scenario(s, shard_counts=shard_counts, backend=backend,
                         sanitize=sanitize)
            for s in build_scenarios(seed=seed, quick=quick)]


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="seeded fault-injection matrix with conservation "
                    "and shard-determinism checks")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--quick", action="store_true",
                        help="smaller messages, fewer scenarios")
    parser.add_argument("--shards", default="1,2",
                        help="comma-separated shard counts to compare")
    parser.add_argument("--backend", default="thread",
                        choices=("proc", "thread", "inline"))
    parser.add_argument("--sanitize", action="store_true",
                        help="enable the runtime sanitizers (SRSW, "
                             "monotone time, per-window conservation)")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    shard_counts = tuple(int(k) for k in args.shards.split(","))
    results = run_matrix(seed=args.seed, quick=args.quick,
                         shard_counts=shard_counts,
                         backend=args.backend, sanitize=args.sanitize)
    if args.json:
        from ..bench.report import to_json
        print(to_json({"seed": args.seed, "scenarios": results}))
    else:
        for res in results:
            cons = res["conservation"]
            print(f"{res['name']:<16} "
                  f"{'ok' if res['ok'] else 'FAILED':<7} "
                  f"injected {cons['injected']}  delivered "
                  f"{cons['delivered']}  corrupted {cons['corrupted']}  "
                  f"dropped {cons['dropped']}  lost "
                  f"{cons['lost_to_faults']}")
            for failure in res["failures"]:
                print(f"  !! {failure}")
    return 0 if all(res["ok"] for res in results) else 1


if __name__ == "__main__":
    sys.exit(main())


__all__ = ["build_scenarios", "run_scenario", "run_matrix", "main"]

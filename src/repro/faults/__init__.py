"""Deterministic fault injection for the cluster fabric.

The physical layer the paper's adaptor lives with is imperfect --
AAL5 carries a CRC-32 precisely because cells get corrupted and lost,
and link striping must tolerate a degraded trunk.  This package makes
the simulated fabric imperfect on demand: a :class:`FaultPlan`
describes per-link cell loss and bit corruption, scheduled link flaps
and kills, switch-port failures, and credit-cell loss, all seeded and
content-addressed so every fault fires at the same place in a
``--shards 1`` and a ``--shards N`` run.

:mod:`repro.faults.chaos` runs workload x fault-plan matrices and
checks the extended conservation law
``injected = delivered + corrupted + queued + dropped + lost_to_faults``.
"""

from .plan import (
    FaultPlan, FaultSite, LaneKill, LinkFlap, PortKill, fault_hash,
)

__all__ = [
    "FaultPlan", "FaultSite", "LinkFlap", "LaneKill", "PortKill",
    "fault_hash",
]

"""Fault plans and fault sites.

A :class:`FaultPlan` is a declarative description of how the fabric
misbehaves: per-cell loss and bit-corruption probabilities on the
physical links, scheduled link flaps and permanent lane kills on the
striped uplinks, switch output-port failures, and loss on the credit
return channel.  A :class:`FaultSite` is the plan instantiated at one
injection point (one :class:`~repro.atm.link.CellPipe`, one switch
port); it owns the per-site counters the chaos reports aggregate.

Determinism is the load-bearing property.  Fault decisions are *not*
drawn from a shared RNG -- call order would then couple unrelated
links, and a sharded run (which interleaves sites differently) would
diverge from the single-process run.  Instead every decision is a pure
hash of ``(seed, site name, cell index at that site, salt)`` via
:func:`fault_hash`: the nth cell through a given site suffers the same
fate in every execution that delivers the same cells to that site, so
``--shards N`` stays byte-identical to ``--shards 1``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..atm.crc import fast_crc32

_MASK = 0xFFFFFFFFFFFFFFFF
_INV_2_64 = 1.0 / float(1 << 64)


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def fault_hash(*parts) -> float:
    """A uniform draw in [0, 1) determined purely by ``parts``.

    Strings are folded in through the library's own CRC-32 (stable
    across processes, unlike ``hash``); integers directly.  Used for
    every fault decision so outcomes are content-addressed, never
    call-order-addressed.
    """
    x = 0
    for part in parts:
        if isinstance(part, str):
            part = fast_crc32(part.encode("ascii"))
        x = _splitmix64((x ^ (part & _MASK)) & _MASK)
    return x * _INV_2_64


@dataclass(frozen=True)
class LinkFlap:
    """Uplink lane ``(host, lane)`` goes down at ``at_us`` and comes
    back ``duration_us`` later.  Cells serialized while down are lost;
    the sender is unaware (physical-layer outage)."""

    host: int
    lane: int
    at_us: float
    duration_us: float


@dataclass(frozen=True)
class LaneKill:
    """Uplink lane ``(host, lane)`` dies permanently at ``at_us``.

    The striping group degrades: the striper re-spreads subsequent
    cells across the surviving lanes (cells already queued on the dead
    lane are lost)."""

    host: int
    lane: int
    at_us: float


@dataclass(frozen=True)
class PortKill:
    """Switch output port ``(switch, trunk, lane)`` dies at ``at_us``:
    arrivals are lost to the fault; the backlog drains."""

    switch: int
    trunk: int
    lane: int
    at_us: float


@dataclass(frozen=True)
class FaultPlan:
    """Everything that can go wrong, declaratively.

    Probabilities apply per cell at every :class:`FaultSite`;
    scheduled events name their sites explicitly.  A plan is immutable
    and holds no state -- all mutable fault state lives in the sites,
    so one plan can parameterize every shard of a sharded run.
    """

    seed: int = 1
    cell_loss: float = 0.0          # per-cell loss probability (links)
    corrupt: float = 0.0            # per-cell bit-flip probability
    credit_loss: float = 0.0        # per-credit-cell loss probability
    flaps: tuple[LinkFlap, ...] = ()
    lane_kills: tuple[LaneKill, ...] = ()
    port_kills: tuple[PortKill, ...] = ()

    def __post_init__(self) -> None:
        for name in ("cell_loss", "corrupt", "credit_loss"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} is not a probability")

    @property
    def active(self) -> bool:
        return bool(self.cell_loss or self.corrupt or self.credit_loss
                    or self.flaps or self.lane_kills or self.port_kills)

    def site(self, name: str) -> "FaultSite":
        """Instantiate this plan at one injection point."""
        return FaultSite(name, seed=self.seed,
                         cell_loss=self.cell_loss, corrupt=self.corrupt)

    def credit_lost(self, vci: int, n: int) -> bool:
        """Is the nth credit cell returned for ``vci`` lost?"""
        return (self.credit_loss > 0.0
                and fault_hash(self.seed, "credit", vci, n)
                < self.credit_loss)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def parse(cls, spec: str, seed: int = 1,
              switch_names: "dict | None" = None,
              topology=None, n_hosts: "int | None" = None) -> "FaultPlan":
        """Parse the CLI grammar, e.g.::

            loss=0.01,corrupt=0.001,credit-loss=0.05,
            flap=2:1@500+200,kill=0:3@1000,port=0:0:1@800

        ``flap=H:L@AT+DUR`` flaps host H's uplink lane L at AT us for
        DUR us; ``kill=H:L@AT`` kills the lane; ``port=S:T:L@AT`` kills
        lane L of trunk T on switch S.  ``seed=N`` overrides ``seed``.

        ``switch_names`` (a topology spec's ``name_table()``) lets S
        be a topology coordinate name instead of an index --
        ``port=leaf0:0:1@800`` or ``port=t0.1.1:2:0@500`` -- so fault
        sites are addressable by where they sit in the fabric.

        ``topology`` (a :class:`~repro.topology.spec.TopologySpec`)
        and ``n_hosts`` turn on parse-time validation: switch names,
        switch/trunk indices, host indices, and lane numbers are
        checked against the fabric shape, and a bad coordinate raises
        ``ValueError`` naming the offending token instead of silently
        arming a fault nobody will ever hit.  ``topology`` implies
        ``switch_names`` and (unless given) ``n_hosts``.
        """
        from ..hw.specs import STRIPE_LINKS

        if topology is not None:
            if switch_names is None:
                switch_names = topology.name_table()
            if n_hosts is None:
                n_hosts = topology.n_hosts

        def check_lane(lane: int) -> None:
            if not 0 <= lane < STRIPE_LINKS:
                raise ValueError(
                    f"lane {lane} out of range (striped links have "
                    f"{STRIPE_LINKS} lanes)")

        def check_host(host: int) -> None:
            if host < 0 or (n_hosts is not None and host >= n_hosts):
                bound = f" (cluster has {n_hosts} hosts)" \
                    if n_hosts is not None else ""
                raise ValueError(f"host {host} out of range{bound}")

        def check_at(at: float) -> None:
            if at < 0.0:
                raise ValueError(f"time {at} us is negative")

        def resolve_switch(sw_tok: str) -> int:
            if switch_names and sw_tok in switch_names:
                return switch_names[sw_tok]
            try:
                sw = int(sw_tok)
            except ValueError:
                known = ", ".join(sorted(switch_names)) \
                    if switch_names else "none"
                raise ValueError(
                    f"unknown switch {sw_tok!r}; known: {known}") \
                    from None
            if sw < 0 or (topology is not None
                          and sw >= topology.n_switches):
                bound = f" (topology has {topology.n_switches} " \
                    f"switches)" if topology is not None else ""
                raise ValueError(f"switch {sw} out of range{bound}")
            return sw

        def check_trunk(sw: int, trunk: int) -> None:
            if trunk < 0:
                raise ValueError(f"trunk {trunk} out of range")
            if topology is None:
                return
            # Trunk numbering mirrors the fabric's wiring walk: one
            # downlink per attached host, then one per outgoing
            # inter-switch link, in spec order.
            n_trunks = (len(topology.hosts_on(sw))
                        + sum(1 for s, _ in topology.links if s == sw))
            if trunk >= n_trunks:
                raise ValueError(
                    f"trunk {trunk} out of range (switch "
                    f"{topology.switch_names[sw]!r} has {n_trunks} "
                    f"trunks)")

        kw: dict = {"seed": seed, "flaps": [], "lane_kills": [],
                    "port_kills": []}
        for token in filter(None, (t.strip() for t in spec.split(","))):
            if "=" not in token:
                raise ValueError(f"bad fault token {token!r}")
            key, _, value = token.partition("=")
            key = key.strip().replace("-", "_")
            try:
                if key in ("loss", "cell_loss"):
                    kw["cell_loss"] = float(value)
                elif key == "corrupt":
                    kw["corrupt"] = float(value)
                elif key == "credit_loss":
                    kw["credit_loss"] = float(value)
                elif key == "seed":
                    kw["seed"] = int(value)
                elif key == "flap":
                    where, _, when = value.partition("@")
                    at, _, dur = when.partition("+")
                    host, lane = (int(x) for x in where.split(":"))
                    check_host(host)
                    check_lane(lane)
                    check_at(float(at))
                    if float(dur) < 0.0:
                        raise ValueError(f"duration {dur} us is "
                                         f"negative")
                    kw["flaps"].append(LinkFlap(
                        host=host, lane=lane, at_us=float(at),
                        duration_us=float(dur)))
                elif key == "kill":
                    where, _, at = value.partition("@")
                    host, lane = (int(x) for x in where.split(":"))
                    check_host(host)
                    check_lane(lane)
                    check_at(float(at))
                    kw["lane_kills"].append(LaneKill(
                        host=host, lane=lane, at_us=float(at)))
                elif key == "port":
                    where, _, at = value.partition("@")
                    sw_tok, trunk, lane = where.split(":")
                    sw = resolve_switch(sw_tok.strip())
                    check_trunk(sw, int(trunk))
                    check_lane(int(lane))
                    check_at(float(at))
                    kw["port_kills"].append(PortKill(
                        switch=sw, trunk=int(trunk), lane=int(lane),
                        at_us=float(at)))
                else:
                    raise ValueError(f"unknown fault key {key!r}")
            except ValueError as exc:
                if "unknown fault key" in str(exc) or \
                        "not a probability" in str(exc):
                    raise
                raise ValueError(
                    f"bad fault token {token!r}: {exc}") from exc
        kw["flaps"] = tuple(kw["flaps"])
        kw["lane_kills"] = tuple(kw["lane_kills"])
        kw["port_kills"] = tuple(kw["port_kills"])
        return cls(**kw)


@dataclass
class FaultSite:
    """One injection point: a plan applied to one link or port.

    Counters are per site; :meth:`repro.cluster.fabric.Fabric.
    fault_stats` aggregates them into the report.  ``filter`` is the
    data-path entry: it decides the fate of one cell.
    """

    name: str
    seed: int = 1
    cell_loss: float = 0.0
    corrupt: float = 0.0
    cells_seen: int = 0
    cells_lost: int = 0
    cells_lost_down: int = 0    # subset of cells_lost: link was down
    cells_corrupted: int = 0
    dead: bool = False
    down_until: float = 0.0
    _key: int = field(default=0, repr=False)
    # Times of scheduled state changes (flaps, kills) not yet applied,
    # sorted ascending.  The fast path (repro.sim.trains) may decide a
    # cell's fate arithmetically at submission time only while no
    # scheduled change lies between now and the cell's serialization
    # completion; otherwise it falls back to per-cell events.
    _scheduled: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self._key = fast_crc32(self.name.encode("ascii"))

    def is_down(self, now: float) -> bool:
        return self.dead or now < self.down_until

    def note_scheduled(self, at_us: float) -> None:
        """Register a future flap/kill so fast paths know when the
        site's state stops being predictable."""
        self._scheduled.append(at_us)
        self._scheduled.sort()

    def next_scheduled(self) -> float:
        """Time of the earliest pending scheduled change (inf when
        the site's state is stable from here on)."""
        return self._scheduled[0] if self._scheduled else float("inf")

    def _consume_scheduled(self, at_us: float) -> None:
        try:
            self._scheduled.remove(at_us)
        except ValueError:
            pass

    def kill(self, at_us: "float | None" = None) -> None:
        if at_us is not None:
            self._consume_scheduled(at_us)
        self.dead = True

    def flap(self, until_us: float, at_us: "float | None" = None) -> None:
        """Take the site down until ``until_us`` (overlaps extend)."""
        if at_us is not None:
            self._consume_scheduled(at_us)
        self.down_until = max(self.down_until, until_us)

    def filter(self, cell, now: float):
        """Decide one cell's fate: ``None`` when the cell is lost,
        else the cell itself -- possibly with a payload bit flipped and
        its ``corrupted`` flag set."""
        n = self.cells_seen
        self.cells_seen += 1
        if self.is_down(now):
            self.cells_lost += 1
            self.cells_lost_down += 1
            return None
        if (self.cell_loss > 0.0
                and fault_hash(self.seed, self._key, n, 1)
                < self.cell_loss):
            self.cells_lost += 1
            return None
        if (self.corrupt > 0.0
                and fault_hash(self.seed, self._key, n, 2) < self.corrupt):
            self._flip_bit(cell, n)
        return cell

    def _flip_bit(self, cell, n: int) -> None:
        cell.corrupted = True
        self.cells_corrupted += 1
        if cell.payload:
            bit = int(fault_hash(self.seed, self._key, n, 3)
                      * len(cell.payload) * 8)
            index, offset = divmod(bit, 8)
            flipped = bytearray(cell.payload)
            flipped[index] ^= 1 << offset
            cell.payload = bytes(flipped)

    def stats(self) -> dict:
        return {
            "cells_seen": self.cells_seen,
            "cells_lost": self.cells_lost,
            "cells_lost_down": self.cells_lost_down,
            "cells_corrupted": self.cells_corrupted,
            "dead": self.dead,
        }


__all__ = ["FaultPlan", "FaultSite", "LinkFlap", "LaneKill", "PortKill",
           "fault_hash"]

"""An O(1) per-VCI queue manager for million-circuit switch ports.

The seed switch kept ``dict[vci] -> deque`` plus a linear scan to find
the longest backlog when a full port needed a push-out victim -- fine
at tens of VCIs, O(V) per drop at the 10^5-10^6 circuits the north
star asks for.  :class:`ActiveQueueIndex` is the FORTH "Queue
Management in Network Processors" design translated to Python: all
per-queue state lives in flat dictionaries (the software analogue of
linked lists threaded through one memory array), and *every* operation
the drain and admission paths need is O(1) amortized:

* ``enqueue`` / ``pop_rr`` / ``pop_fifo`` -- append to the VCI's cell
  deque and maintain an *active ring* (round-robin) or a per-cell
  arrival order (FIFO); no operation ever walks the VCI table.  Ring
  entries are generation-tagged and deleted lazily -- a queue emptied
  by push-out leaves a stale entry the next rotation discards, and a
  re-enqueued VCI joins at the *back* with a fresh generation (the
  rotation position an eager ``deque.remove``, itself O(active VCIs),
  would have produced).
* ``longest()`` / ``drop_tail()`` -- an **occupancy index** maps each
  backlog length to the set of VCIs currently at that length
  (insertion-ordered, so the choice is deterministic).  A queue's
  length changes by one per operation, so moving its VCI between
  adjacent buckets is O(1), and the tracked maximum moves by single
  steps -- push-out-longest stops degrading with VCI count.

Victim choice is content-deterministic: among equally-longest queues,
the one that *reached* that length first is evicted (bucket FIFO
order), a tie-break every shard reproduces because it depends only on
the port's event sequence.
"""

from __future__ import annotations

from collections import deque
from typing import Optional


class VirtualOccupancy:
    """Occupancy of cells a fused train committed past this queue.

    When a :class:`~repro.sim.trains.CellTrain` is absorbed at a
    switch port, its cells never enter the real queue -- their whole
    trajectory (arrival, service start, departure) is computed at
    commit time.  They still occupy the port for real simulated time,
    so admission checks, congestion thresholds, and depth statistics
    for any *later* per-cell arrival must see them.  This tracker
    holds the committed cells' service-start times; a cell occupies
    the queue from its (already accounted) arrival until its service
    starts, so the residual at ``now`` is the count of starts still in
    the future.

    Starts are committed in nondecreasing order (the port's busy time
    only moves forward), so the deque stays sorted and both
    operations are O(1) amortized.
    """

    __slots__ = ("_starts",)

    def __init__(self) -> None:
        self._starts: deque = deque()

    def commit(self, starts) -> None:
        """Record committed cells' service-start times (ascending)."""
        self._starts.extend(starts)

    def residual(self, now: float) -> int:
        """Committed cells still occupying the queue at ``now``.

        A start at exactly ``now`` counts as popped: service begins in
        an unkeyed (drain) event, which sorts before any keyed arrival
        at the same timestamp.
        """
        starts = self._starts
        while starts and starts[0] <= now:
            starts.popleft()
        return len(starts)

    def pending(self, now: float) -> list:
        """The residual cells' service-start times, ascending."""
        self.residual(now)
        return list(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)


class ActiveQueueIndex:
    """Per-VCI cell queues with O(1) drain, FIFO, and longest-queue
    operations, independent of how many VCIs are live."""

    __slots__ = ("_cells", "_ring", "_in_ring", "_gen", "_order",
                 "_buckets", "_maxlen", "depth")

    def __init__(self) -> None:
        self._cells: dict = {}      # vci -> deque of cells
        # rr rotation order: (vci, generation) entries.  An entry is
        # live iff the VCI is marked in-ring AND carries its current
        # generation; anything else is stale and skipped on pop.
        self._ring: deque = deque()
        self._in_ring: dict = {}
        self._gen: dict = {}
        self._order: deque = deque()  # fifo: one VCI entry per cell
        # occupancy index: backlog length -> {vci: None} at that
        # length, insertion-ordered; _maxlen tracks the top bucket.
        self._buckets: dict = {}
        self._maxlen = 0
        self.depth = 0

    # -- occupancy index ----------------------------------------------------

    def _reindex(self, vci: int, old: int, new: int) -> None:
        """Move ``vci`` between adjacent length buckets (O(1))."""
        if old > 0:
            bucket = self._buckets[old]
            del bucket[vci]
            if not bucket:
                del self._buckets[old]
        if new > 0:
            self._buckets.setdefault(new, {})[vci] = None
            if new > self._maxlen:
                self._maxlen = new
        while self._maxlen > 0 and self._maxlen not in self._buckets:
            self._maxlen -= 1

    # -- producers ----------------------------------------------------------

    def enqueue(self, vci: int, cell, fifo: bool = False) -> int:
        """Append a cell; returns the VCI's new backlog length."""
        queue = self._cells.get(vci)
        if queue is None:
            queue = self._cells[vci] = deque()
        if fifo:
            self._order.append(vci)
        elif not self._in_ring.get(vci):
            gen = self._gen.get(vci, 0) + 1
            self._gen[vci] = gen
            self._ring.append((vci, gen))
            self._in_ring[vci] = True
        queue.append(cell)
        length = len(queue)
        self._reindex(vci, length - 1, length)
        self.depth += 1
        return length

    # -- consumers ----------------------------------------------------------

    def pop_rr(self) -> Optional[tuple]:
        """(vci, cell) under round-robin service, or None when idle."""
        while self._ring:
            vci, gen = self._ring.popleft()
            if not self._in_ring.get(vci) or gen != self._gen[vci]:
                continue                # stale: emptied by push-out
            queue = self._cells[vci]
            cell = queue.popleft()
            if queue:
                self._ring.append((vci, gen))  # rotate to the back
            else:
                self._in_ring[vci] = False
            self._reindex(vci, len(queue) + 1, len(queue))
            self.depth -= 1
            return vci, cell
        return None

    def pop_fifo(self) -> Optional[tuple]:
        """(vci, cell) in global arrival order, or None when idle."""
        if not self._order:
            return None
        vci = self._order.popleft()
        queue = self._cells[vci]
        cell = queue.popleft()
        self._reindex(vci, len(queue) + 1, len(queue))
        self.depth -= 1
        return vci, cell

    # -- push-out support ---------------------------------------------------

    def queue_len(self, vci: int) -> int:
        queue = self._cells.get(vci)
        return len(queue) if queue is not None else 0

    def longest(self) -> Optional[tuple]:
        """(vci, backlog length) of the longest queue, O(1); among
        ties, the queue that reached that length earliest."""
        if self._maxlen == 0:
            return None
        bucket = self._buckets[self._maxlen]
        return next(iter(bucket)), self._maxlen

    def drop_tail(self, vci: int):
        """Remove and return ``vci``'s newest cell (push-out).

        Only meaningful under round-robin service: the FIFO arrival
        order would be left holding a consumed entry.  An emptied
        queue leaves the rotation -- its ring entry goes stale and a
        later re-enqueue rejoins at the back.
        """
        queue = self._cells[vci]
        cell = queue.pop()
        if not queue:
            self._in_ring[vci] = False
        self._reindex(vci, len(queue) + 1, len(queue))
        self.depth -= 1
        return cell


__all__ = ["ActiveQueueIndex", "VirtualOccupancy"]

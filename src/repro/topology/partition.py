"""Topology-aware shard partitioning: greedy min-cut over the spec.

The sharded runner used to deal hosts round-robin (``i % K``), which
maximizes cut traffic on exactly the workloads that matter -- the
``pairs`` pattern's neighbors always land on different shards, and a
Clos leaf's rack is sprayed across every simulator.  These functions
replace that with a deterministic greedy partition over the topology
spec's adjacency: hosts are placed in (attach switch, index) order,
each to the shard already holding the most same-switch and
neighbor-switch hosts, under a hard balance cap of
``ceil(n_hosts / K)``.  Co-located hosts -- same leaf, same torus
node, same flat switch block -- therefore share a shard, and most
pattern traffic stays intra-shard.

Everything is a pure function of ``(spec, n_shards)``: every shard
worker and the report merger recompute the identical assignment, no
coordination or pickled side channel required.
"""

from __future__ import annotations

from .spec import TopologySpec


def partition_hosts(spec: TopologySpec, n_shards: int) -> list:
    """host index -> shard, balanced greedy min-cut placement."""
    n = spec.n_hosts
    if n_shards <= 1:
        return [0] * n
    cap = -(-n // n_shards)     # ceil
    adjacency = spec.neighbors()
    assign = [-1] * n
    load = [0] * n_shards
    # per-shard: attach switch -> hosts already placed there.
    placed: list = [dict() for _ in range(n_shards)]
    order = sorted(range(n), key=lambda i: (spec.host_attach[i], i))
    for i in order:
        k = spec.host_attach[i]
        best = -1
        best_key = None
        for s in range(n_shards):
            if load[s] >= cap:
                continue
            affinity = 2 * placed[s].get(k, 0)
            affinity += sum(placed[s].get(m, 0) for m in adjacency[k])
            key = (affinity, -load[s], -s)
            if best_key is None or key > best_key:
                best, best_key = s, key
        assign[i] = best
        load[best] += 1
        placed[best][k] = placed[best].get(k, 0) + 1
    return assign


def partition_switches(spec: TopologySpec, host_shard: list,
                       n_shards: int) -> list:
    """switch index -> shard owning its trunk ports.

    A switch follows the majority of its attached hosts (ties to the
    lowest shard), so downlink trunks land where their hosts live;
    host-less switches (Clos spines) spread round-robin to balance
    the transit-port load.
    """
    out = []
    for k in range(spec.n_switches):
        counts = [0] * n_shards
        for i in range(spec.n_hosts):
            if spec.host_attach[i] == k:
                counts[host_shard[i]] += 1
        if any(counts):
            best = 0
            for s in range(1, n_shards):
                if counts[s] > counts[best]:
                    best = s
            out.append(best)
        else:
            out.append(k % n_shards)
    return out


def cut_edges(spec: TopologySpec, host_shard: list) -> int:
    """Host pairs that share a switch yet sit on different shards --
    the quantity the greedy placement minimizes (diagnostics/tests)."""
    cut = 0
    for a in range(spec.n_hosts):
        for b in range(a + 1, spec.n_hosts):
            if (spec.host_attach[a] == spec.host_attach[b]
                    and host_shard[a] != host_shard[b]):
                cut += 1
    return cut


__all__ = ["partition_hosts", "partition_switches", "cut_edges"]

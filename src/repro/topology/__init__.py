"""Datacenter-scale fabric topologies.

The paper measured two hosts on one cable; its mechanisms (early
demultiplexing, per-VCI queues) only earn their keep at scale.  This
package supplies the scale-out shapes: declarative topology specs
(:mod:`.spec`), generators for the flat switched mesh, leaf/spine
Clos, and APEnet+-style 3D torus (:mod:`.generators`), deterministic
ECMP route construction (:mod:`.routing`), an O(1) per-VCI queue
manager for switch ports (:mod:`.queues`), and topology-aware shard
partitioning (:mod:`.partition`).

Import discipline: nothing here imports :mod:`repro.atm`,
:mod:`repro.cluster`, or :mod:`repro.faults` -- the cell switch and
the fabric import *us*, so this package stays a leaf above
:mod:`repro.sim`.
"""

from .generators import build_spec, clos_spec, switched_spec, torus_spec
from .partition import cut_edges, partition_hosts, partition_switches
from .queues import ActiveQueueIndex
from .routing import EcmpTables, build_ecmp_tables, ecmp_hash
from .spec import TopologySpec, bfs_distances

TOPOLOGIES = ("direct", "switched", "clos", "torus")

__all__ = [
    "TOPOLOGIES", "TopologySpec", "bfs_distances",
    "build_spec", "switched_spec", "clos_spec", "torus_spec",
    "EcmpTables", "build_ecmp_tables", "ecmp_hash",
    "ActiveQueueIndex",
    "partition_hosts", "partition_switches", "cut_edges",
]

"""Topology generators: flat switched, leaf/spine Clos, 3D torus.

Each generator is a pure function from shape parameters to a
:class:`~repro.topology.spec.TopologySpec`; two calls with equal
arguments return equal specs, on any process -- the property the
sharded runs' byte-identity contract rests on.

* ``switched_spec`` reproduces the seed fabric exactly: ``K`` switches
  full-meshed by inter-switch trunks, hosts spread round-robin.  Any
  flow crosses at most two switches.
* ``clos_spec`` is the datacenter staple: ``pods`` leaf switches, each
  serving a contiguous block of hosts, every leaf cabled to every
  spine.  ``oversubscription`` sets the leaf:spine ratio (2.0 means
  half as many spines as leaves), and every leaf pair has one
  equal-cost path per spine -- the ECMP fan the router hashes over.
* ``torus_spec`` is the APEnet+ shape: one switch per lattice node,
  wraparound links along every axis, hosts spread round-robin over
  nodes (one host per node reproduces the 3D-torus cluster directly).
  Minimal paths multiply along every axis with distance, so ECMP
  spreads load without a centralized stage.
"""

from __future__ import annotations

from ..sim import SimulationError
from .spec import TopologySpec


def switched_spec(n_hosts: int, n_switches: int = 1) -> TopologySpec:
    """The seed shape: full-meshed flat switches, round-robin hosts."""
    if n_switches < 1:
        raise SimulationError("need at least one switch")
    n_switches = min(n_switches, n_hosts)
    links = [(s, t)
             for s in range(n_switches)
             for t in range(n_switches) if s != t]
    return TopologySpec(
        kind="switched", n_hosts=n_hosts,
        switch_names=tuple(f"sw{k}" for k in range(n_switches)),
        switch_coords=tuple((k,) for k in range(n_switches)),
        host_attach=tuple(i % n_switches for i in range(n_hosts)),
        links=tuple(links))


def clos_spec(n_hosts: int, pods: int = 4,
              oversubscription: float = 2.0) -> TopologySpec:
    """Leaf/spine Clos: ``pods`` leaves, every leaf on every spine.

    Hosts attach to leaves in contiguous, balanced blocks -- the rack
    locality that makes topology-aware shard partitioning (and real
    datacenter placement) pay off.  A single pod degenerates to one
    switch with no spine stage.
    """
    if pods < 1:
        raise SimulationError(f"clos needs pods >= 1, got {pods}")
    if oversubscription <= 0.0:
        raise SimulationError(
            f"oversubscription must be positive, got {oversubscription}")
    pods = min(pods, n_hosts)
    attach = tuple(i * pods // n_hosts for i in range(n_hosts))
    if pods == 1:
        return TopologySpec(
            kind="clos", n_hosts=n_hosts, switch_names=("leaf0",),
            switch_coords=((0, 0),), host_attach=attach, links=())
    n_spines = max(1, round(pods / oversubscription))
    names = [f"leaf{p}" for p in range(pods)]
    coords = [(0, p) for p in range(pods)]
    names += [f"spine{s}" for s in range(n_spines)]
    coords += [(1, s) for s in range(n_spines)]
    links = []
    for p in range(pods):
        for s in range(n_spines):
            spine = pods + s
            links.append((p, spine))
            links.append((spine, p))
    return TopologySpec(
        kind="clos", n_hosts=n_hosts, switch_names=tuple(names),
        switch_coords=tuple(coords), host_attach=attach,
        links=tuple(links))


def torus_spec(n_hosts: int, dims) -> TopologySpec:
    """3D (or any-D) torus: a switch per node, wraparound each axis."""
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 1 for d in dims):
        raise SimulationError(
            f"torus dims must be positive integers, got {dims}")
    n_nodes = 1
    for d in dims:
        n_nodes *= d
    coords = []
    cursor = [0] * len(dims)
    for _ in range(n_nodes):
        coords.append(tuple(cursor))
        for axis in range(len(dims) - 1, -1, -1):
            cursor[axis] += 1
            if cursor[axis] < dims[axis]:
                break
            cursor[axis] = 0
    index = {coord: k for k, coord in enumerate(coords)}
    linkset = {}
    for k, coord in enumerate(coords):
        for axis, size in enumerate(dims):
            if size < 2:
                continue
            step = list(coord)
            step[axis] = (coord[axis] + 1) % size
            other = index[tuple(step)]
            if other == k:
                continue
            linkset[(k, other)] = None
            linkset[(other, k)] = None
    return TopologySpec(
        kind="torus", n_hosts=n_hosts,
        switch_names=tuple("t" + ".".join(str(c) for c in coord)
                           for coord in coords),
        switch_coords=tuple(coords),
        host_attach=tuple(i % n_nodes for i in range(n_hosts)),
        links=tuple(sorted(linkset)))


def build_spec(topology: str, n_hosts: int, *, n_switches: int = 1,
               pods: int = 4, dims=None,
               oversubscription: float = 2.0) -> TopologySpec:
    """Dispatch one of the named generators and validate the result."""
    if topology == "switched":
        spec = switched_spec(n_hosts, n_switches)
    elif topology == "clos":
        spec = clos_spec(n_hosts, pods=pods,
                         oversubscription=oversubscription)
    elif topology == "torus":
        spec = torus_spec(n_hosts, dims if dims is not None
                          else (2, 2, 2))
    else:
        raise SimulationError(
            f"no generator for topology {topology!r}; choose from "
            f"('switched', 'clos', 'torus')")
    spec.validate()
    return spec


__all__ = ["switched_spec", "clos_spec", "torus_spec", "build_spec"]

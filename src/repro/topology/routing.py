"""Deterministic route construction with ECMP-style multipath.

Per-destination BFS over a :class:`~repro.topology.spec.TopologySpec`
yields, at every switch, the set of *minimal next hops* toward each
destination switch -- the classic ECMP DAG.  A flow's path is then the
walk that, at each switch, picks one candidate by a **content hash**
of ``(routing seed, flow VCI, current switch, destination switch)``.

Hashing by content instead of drawing from an RNG is the load-bearing
choice: the nth flow's path depends only on its own identifiers, never
on how many flows were opened before it or which shard opened them,
so ``--shards N`` installs byte-identical route tables to
``--shards 1``.  The mix is a splitmix64 chain (the same construction
:mod:`repro.faults.plan` uses for fault decisions) implemented locally
on integers so this module stays import-leaf -- ``repro.atm.switch``
pulls in :mod:`repro.topology.queues`, and a routing-layer import of
the fault package would close a cycle through the cell layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import SimulationError
from .spec import TopologySpec, bfs_distances

_MASK = 0xFFFFFFFFFFFFFFFF


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def ecmp_hash(*parts: int) -> int:
    """A 64-bit value determined purely by the integer ``parts``."""
    x = 0
    for part in parts:
        x = _splitmix64((x ^ (part & _MASK)) & _MASK)
    return x


# Domain separator: keeps route choices uncorrelated with any other
# consumer of the same splitmix chain (e.g. fault decisions).
_ECMP_SALT = 0xEC3B


@dataclass(frozen=True)
class EcmpTables:
    """Routing state derived from one spec: hop counts plus, for every
    (here, destination) switch pair, the sorted minimal next hops."""

    spec: TopologySpec
    dists: tuple            # dists[s][t] -> hop count
    next_hops: tuple        # next_hops[s][t] -> tuple of candidates

    def path(self, src_sw: int, dst_sw: int, flow_key: int,
             seed: int) -> tuple:
        """The switch sequence ``src_sw .. dst_sw`` for one flow.

        Each step hashes ``(seed, flow_key, here, dst)`` over the
        candidate set; equal-cost candidates therefore split flows
        evenly in expectation while any single flow always takes the
        same path in every run and on every shard.
        """
        path = [src_sw]
        here = src_sw
        guard = self.spec.n_switches + 1
        while here != dst_sw:
            candidates = self.next_hops[here][dst_sw]
            if not candidates:
                raise SimulationError(
                    f"no route from switch {here} to {dst_sw}")
            pick = ecmp_hash(_ECMP_SALT, seed, flow_key, here,
                             dst_sw) % len(candidates)
            here = candidates[pick]
            path.append(here)
            if len(path) > guard:
                raise SimulationError(
                    f"routing loop walking {src_sw} -> {dst_sw}")
        return tuple(path)


def build_ecmp_tables(spec: TopologySpec,
                      dead_edges=()) -> EcmpTables:
    """BFS every destination once; candidates are sorted neighbors one
    hop closer to the destination, so the table is a pure function of
    the spec.

    ``dead_edges`` masks *directed* ``(s, t)`` links out of the
    graph -- the recovery control plane rebuilds the tables with
    failed trunks excluded, and flows re-resolve over what survives.
    A destination with no surviving path gets an empty candidate set,
    so :meth:`EcmpTables.path` raises and the caller can degrade the
    flow gracefully instead of wedging.
    """
    dead = frozenset(dead_edges)
    dists = bfs_distances(spec, dead)
    adjacency = spec.neighbors()
    if dead:
        adjacency = tuple(
            tuple(b for b in row if (a, b) not in dead)
            for a, row in enumerate(adjacency))
    n = spec.n_switches
    next_hops = []
    for s in range(n):
        row = []
        for t in range(n):
            if s == t or dists[s][t] < 0:
                row.append(())
            else:
                row.append(tuple(b for b in adjacency[s]
                                 if dists[b][t] == dists[s][t] - 1))
        next_hops.append(tuple(row))
    return EcmpTables(spec=spec,
                      dists=tuple(tuple(d) for d in dists),
                      next_hops=tuple(next_hops))


__all__ = ["EcmpTables", "build_ecmp_tables", "ecmp_hash"]

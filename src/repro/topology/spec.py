"""Declarative fabric topologies.

A :class:`TopologySpec` is everything the cluster fabric needs to wire
itself: how many switches exist, which switch each host's striped
uplink terminates at, and which directed inter-switch links carry
trunk traffic.  The spec is a frozen value object -- pure tuples, no
behavior-bearing references -- so it pickles across shard workers and
hashes into cache keys, and every consumer (wiring, routing,
partitioning, fault addressing) derives its view from the same
declaration instead of re-encoding the shape.

Switches carry *names* (``leaf2``, ``spine0``, ``t1.0.2``) and
*coordinates* (``(tier, index)`` for Clos, ``(x, y, z)`` for a torus):
names address fault-injection sites and appear in reports; coordinates
let generators and tests reason about the geometry.

The spec deliberately does not mention trunks, lanes, or VCIs -- trunk
numbering is the fabric's job (it must walk one global order so every
shard agrees), and routing is :mod:`repro.topology.routing`'s.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import SimulationError


@dataclass(frozen=True)
class TopologySpec:
    """One fabric shape, declaratively.

    ``links`` holds *directed* switch pairs; a physical cable
    contributes both ``(s, t)`` and ``(t, s)``.  ``host_attach[i]`` is
    the switch whose trunk serves host ``i``'s downlink and uplink.
    """

    kind: str                               # "switched" | "clos" | "torus"
    n_hosts: int
    switch_names: tuple                     # switch index -> name
    switch_coords: tuple                    # switch index -> coord tuple
    host_attach: tuple                      # host index -> switch index
    links: tuple                            # directed (src sw, dst sw)

    @property
    def n_switches(self) -> int:
        return len(self.switch_names)

    def switch_index(self, name: str) -> int:
        """Resolve a switch name (``leaf0``, ``t0.1.1``) to its index."""
        for k, known in enumerate(self.switch_names):
            if known == name:
                return k
        raise SimulationError(
            f"no switch named {name!r} in this {self.kind} topology; "
            f"known: {', '.join(self.switch_names)}")

    def name_table(self) -> dict:
        """name -> switch index, for symbolic fault-site addressing."""
        return {name: k for k, name in enumerate(self.switch_names)}

    def neighbors(self) -> tuple:
        """Per-switch sorted out-neighbor tuples (the routing graph)."""
        out: list = [[] for _ in range(self.n_switches)]
        for s, t in self.links:
            out[s].append(t)
        return tuple(tuple(sorted(ns)) for ns in out)

    def hosts_on(self, switch: int) -> tuple:
        """Host indices attached to one switch, ascending."""
        return tuple(i for i in range(self.n_hosts)
                     if self.host_attach[i] == switch)

    def validate(self) -> None:
        """Reject malformed shapes before any wiring happens."""
        n = self.n_switches
        if n < 1:
            raise SimulationError("a topology needs at least one switch")
        if len(self.switch_coords) != n:
            raise SimulationError(
                f"{n} switches but {len(self.switch_coords)} coordinates")
        if len(set(self.switch_names)) != n:
            raise SimulationError("switch names must be unique")
        if len(self.host_attach) != self.n_hosts:
            raise SimulationError(
                f"{self.n_hosts} hosts but {len(self.host_attach)} "
                f"attach points")
        for i, k in enumerate(self.host_attach):
            if not 0 <= k < n:
                raise SimulationError(
                    f"host {i} attaches to unknown switch {k}")
        seen = set()
        for s, t in self.links:
            if not (0 <= s < n and 0 <= t < n):
                raise SimulationError(f"link ({s}, {t}) names an "
                                      f"unknown switch")
            if s == t:
                raise SimulationError(f"switch {s} linked to itself")
            if (s, t) in seen:
                raise SimulationError(f"duplicate link ({s}, {t})")
            seen.add((s, t))
        for s, t in self.links:
            if (t, s) not in seen:
                raise SimulationError(
                    f"link ({s}, {t}) has no reverse direction; trunks "
                    f"are duplex pairs")
        unreached = self.unreachable_pairs()
        if unreached:
            s, t = unreached[0]
            raise SimulationError(
                f"switch {self.switch_names[t]} is unreachable from "
                f"{self.switch_names[s]}; the fabric must be connected")

    def unreachable_pairs(self) -> list:
        """Ordered switch pairs with no path, for diagnostics/tests."""
        dists = bfs_distances(self)
        return [(s, t)
                for s in range(self.n_switches)
                for t in range(self.n_switches)
                if dists[s][t] < 0]


def bfs_distances(spec: TopologySpec, dead_edges=()) -> list:
    """Hop counts between every switch pair; -1 when unreachable.

    ``dead_edges`` is a collection of *directed* ``(s, t)`` links to
    exclude -- the recovery control plane's mask for failed trunks.
    """
    adjacency = spec.neighbors()
    if dead_edges:
        dead = frozenset(dead_edges)
        adjacency = tuple(
            tuple(b for b in row if (a, b) not in dead)
            for a, row in enumerate(adjacency))
    n = spec.n_switches
    table = []
    for source in range(n):
        dist = [-1] * n
        dist[source] = 0
        frontier = [source]
        while frontier:
            nxt = []
            for a in frontier:
                for b in adjacency[a]:
                    if dist[b] < 0:
                        dist[b] = dist[a] + 1
                        nxt.append(b)
            frontier = nxt
        table.append(dist)
    return table


__all__ = ["TopologySpec", "bfs_distances"]

"""repro: a simulation-based reproduction of "Experiences with a
High-Speed Network Adaptor: A Software Perspective" (SIGCOMM 1994).

Public entry points:

* :class:`repro.net.Host` / :class:`repro.net.BackToBack` -- assemble
  complete hosts (hardware + OSIRIS board + OS + protocol stack).
* :mod:`repro.bench.harness` -- regenerate the paper's tables/figures.
* :mod:`repro.osiris` -- the board and its lock-free queues.
* :mod:`repro.fbufs` / :mod:`repro.adc` -- the section 3 OS mechanisms.
"""

from .hw.specs import DEC3000_600, DS5000_200, MACHINES
from .net import BackToBack, Host
from .sim import Fidelity, Simulator

__version__ = "1.0.0"

__all__ = [
    "Host", "BackToBack", "Simulator", "Fidelity",
    "DS5000_200", "DEC3000_600", "MACHINES",
    "__version__",
]

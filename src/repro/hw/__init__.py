"""Hardware models: machines, buses, caches, memory and DMA engines."""

from .bus import MemorySystem, TurboChannel
from .cache import DataCache
from .cpu import HostCPU
from .dma import DmaController, DmaMode
from .memory import (
    DualPortMemory, OutOfMemory, PhysicalMemory, TestAndSetRegister,
)
from .sgmap import ScatterGatherMap, SgMapping
from .specs import (
    AAL_PAYLOAD_BYTES, ATM_CELL_BYTES, ATM_PAYLOAD_BYTES, BoardSpec, BusSpec,
    CacheSpec, DEC3000_600, DEFAULT_BOARD, DS5000_200, LINK_MBPS,
    LINK_PAYLOAD_MBPS, MACHINES, MachineSpec, STRIPE_LINKS, SoftwareCosts,
    with_costs,
)

__all__ = [
    "TurboChannel", "MemorySystem", "DataCache", "HostCPU",
    "DmaController", "DmaMode",
    "ScatterGatherMap", "SgMapping",
    "PhysicalMemory", "DualPortMemory", "TestAndSetRegister", "OutOfMemory",
    "BusSpec", "CacheSpec", "SoftwareCosts", "MachineSpec", "BoardSpec",
    "DS5000_200", "DEC3000_600", "DEFAULT_BOARD", "MACHINES", "with_costs",
    "ATM_CELL_BYTES", "ATM_PAYLOAD_BYTES", "AAL_PAYLOAD_BYTES",
    "LINK_MBPS", "LINK_PAYLOAD_MBPS", "STRIPE_LINKS",
]

"""Host CPU model.

The CPU is a capacity-1 resource: interrupt handlers, the driver
thread and protocol processing all serialize on it.  Each unit of
software work has two timing components -- pure execution and memory
traffic -- and the memory component is routed through
:class:`repro.hw.bus.MemorySystem`, which decides whether it contends
with DMA (shared path) or not (crossbar).
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim import Delay, Resource, Simulator
from .bus import MemorySystem
from .specs import MachineSpec


class HostCPU:
    """The host processor, shared by all software activities."""

    def __init__(self, sim: Simulator, machine: MachineSpec,
                 memsys: MemorySystem):
        self.sim = sim
        self.machine = machine
        self.memsys = memsys
        self.resource = Resource(sim, f"cpu:{machine.name}", capacity=1)
        self.busy_us = 0.0

    def execute(self, duration: float,
                bus_fraction: float | None = None,
                priority: float = 1.0) -> Generator[Any, Any, None]:
        """Run software for ``duration`` microseconds of CPU time.

        ``bus_fraction`` is the share of that time spent on memory
        traffic; it defaults to the machine's calibrated
        ``cpu_bus_fraction``.  Holds the CPU for the whole duration.
        ``priority`` orders contenders for the CPU (interrupt handlers
        pass 0.0 to run ahead of queued thread work).
        """
        if duration <= 0:
            return
        if bus_fraction is None:
            bus_fraction = self.machine.costs.cpu_bus_fraction
        self.busy_us += duration
        grant = yield self.resource.request(priority)
        try:
            memory_part = duration * bus_fraction
            compute_part = duration - memory_part
            if compute_part > 0:
                yield Delay(compute_part)
            yield from self.memsys.cpu_memory_time(memory_part)
        finally:
            grant.release()

    def touch_data(self, nbytes: int) -> Generator[Any, Any, None]:
        """CPU reads ``nbytes`` of uncached network data from memory."""
        costs = self.machine.costs
        yield from self.execute(nbytes * costs.data_touch_per_byte,
                                costs.data_touch_bus_fraction)

    def checksum(self, nbytes: int,
                 data_resident: bool) -> Generator[Any, Any, None]:
        """Compute an Internet checksum over ``nbytes``.

        ``data_resident`` is True when the data is already in the cache
        (e.g. after a coherent DMA or a PIO transfer); otherwise the
        per-byte touch cost is added on top of the arithmetic.
        """
        costs = self.machine.costs
        per_byte = costs.checksum_per_byte
        fraction = 0.0
        if not data_resident:
            per_byte += costs.data_touch_per_byte
            fraction = costs.data_touch_bus_fraction
        yield from self.execute(nbytes * per_byte, fraction)

    def cycles(self, n: float) -> float:
        """Convert CPU cycles to microseconds."""
        return n * self.machine.cpu_cycle_us


__all__ = ["HostCPU"]

"""Host data cache model.

A direct-mapped cache that (optionally) keeps real line contents so
that reads after a non-coherent DMA return genuinely stale bytes.  The
lazy-invalidation experiment of section 2.3 depends on this: a UDP
checksum computed over a stale read must actually fail, triggering the
invalidate-and-retry path.

Timing is not charged here; the per-machine cost constants in
:class:`repro.hw.specs.SoftwareCosts` carry it.  This class answers the
*correctness* questions: which bytes does the CPU see, and how many
words does an invalidation touch.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Fidelity, SimulationError
from .memory import PhysicalMemory
from .specs import CacheSpec


class DataCache:
    """Direct-mapped data cache over :class:`PhysicalMemory`."""

    def __init__(self, spec: CacheSpec, memory: PhysicalMemory,
                 fidelity: Optional[Fidelity] = None):
        if spec.size_bytes % spec.line_bytes != 0:
            raise SimulationError("cache size must be a multiple of line size")
        self.spec = spec
        self.memory = memory
        self.fidelity = fidelity or Fidelity.full()
        self.n_lines = spec.size_bytes // spec.line_bytes
        # index -> (tag, line bytes)
        self._lines: dict[int, tuple[int, bytes]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidated_words = 0
        self.stale_reads = 0

    def _split(self, addr: int) -> tuple[int, int, int]:
        line = self.spec.line_bytes
        index = (addr // line) % self.n_lines
        tag = addr // (line * self.n_lines)
        offset = addr % line
        return index, tag, offset

    @property
    def enabled(self) -> bool:
        return self.fidelity.track_cache_lines

    # -- CPU side ----------------------------------------------------------

    def read(self, addr: int, nbytes: int) -> bytes:
        """CPU load: returns possibly stale bytes, filling on miss."""
        if not self.enabled:
            return self.memory.read(addr, nbytes)
        out = bytearray()
        line = self.spec.line_bytes
        pos = addr
        end = addr + nbytes
        while pos < end:
            index, tag, offset = self._split(pos)
            take = min(line - offset, end - pos)
            cached = self._lines.get(index)
            if cached is not None and cached[0] == tag:
                self.hits += 1
                data = cached[1][offset:offset + take]
                fresh = self.memory.read(pos, take)
                if data != fresh:
                    self.stale_reads += 1
            else:
                self.misses += 1
                base = pos - offset
                fill = self.memory.read(base, line)
                self._lines[index] = (tag, fill)
                data = fill[offset:offset + take]
            out.extend(data)
            pos += take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """CPU store: write-through (memory and cache both updated)."""
        self.memory.write(addr, data)
        if not self.enabled:
            return
        self._merge(addr, data, fill_missing=True)

    # -- DMA side ----------------------------------------------------------

    def dma_write(self, addr: int, data: bytes) -> None:
        """Board DMA writes host memory.

        On a coherent machine the cache is updated too; on the
        DECstation the cached lines silently keep their old contents --
        the stale-data hazard of section 2.3.
        """
        self.memory.write(addr, data)
        if not self.enabled:
            return
        if self.spec.coherent_with_dma:
            self._merge(addr, data, fill_missing=False)

    def _merge(self, addr: int, data: bytes, fill_missing: bool) -> None:
        line = self.spec.line_bytes
        pos = addr
        end = addr + len(data)
        while pos < end:
            index, tag, offset = self._split(pos)
            take = min(line - offset, end - pos)
            cached = self._lines.get(index)
            if cached is not None and cached[0] == tag:
                content = bytearray(cached[1])
                content[offset:offset + take] = \
                    data[pos - addr:pos - addr + take]
                self._lines[index] = (tag, bytes(content))
            elif fill_missing:
                base = pos - offset
                self._lines[index] = (tag, self.memory.read(base, line))
            pos += take

    # -- maintenance ---------------------------------------------------------

    def invalidate(self, addr: int, nbytes: int) -> int:
        """Partial invalidation; returns the number of words touched.

        The caller charges ``words * invalidate_cycles_per_word`` CPU
        cycles (paper: ~1 cycle per 32-bit word).
        """
        words = -(-nbytes // 4)
        self.invalidated_words += words
        if self.enabled:
            line = self.spec.line_bytes
            start = addr - (addr % line)
            pos = start
            while pos < addr + nbytes:
                index, tag, _ = self._split(pos)
                cached = self._lines.get(index)
                if cached is not None and cached[0] == tag:
                    del self._lines[index]
                pos += line
        return words

    def invalidate_all(self) -> None:
        """Full cache flush (the DS's cache-swap instruction)."""
        self._lines.clear()

    def resident_lines(self) -> int:
        return len(self._lines)

    def is_cached(self, addr: int) -> bool:
        index, tag, _ = self._split(addr)
        cached = self._lines.get(index)
        return cached is not None and cached[0] == tag


__all__ = ["DataCache"]

"""Machine, bus and board parameter sets.

Every timing constant in the library lives here.  Values marked
``(paper)`` are stated directly in the paper; the remaining software
costs are calibrated so that the harness reproduces the paper's anchor
numbers (see DESIGN.md section 3).

All times are microseconds; all sizes are bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class BusSpec:
    """TURBOchannel I/O bus parameters (paper section 2.5.1).

    The paper derives its DMA ceilings from these constants:
    44-byte reads: 11/(11+13) * 800 = 367 Mbps, writes: 11/(11+8) * 800
    = 463 Mbps; 88-byte: 503 / 587 Mbps.
    """

    mhz: float = 25.0                      # (paper) 25 MHz, 32-bit
    word_bytes: int = 4
    dma_read_overhead_cycles: int = 13     # (paper) memory -> board
    dma_write_overhead_cycles: int = 8     # (paper) board -> memory
    pio_read_word_cycles: int = 13         # word-sized host read of board
    pio_write_word_cycles: int = 8         # word-sized host write to board

    @property
    def cycle_us(self) -> float:
        return 1.0 / self.mhz

    @property
    def peak_mbps(self) -> float:
        """Raw data bandwidth: 32 bits per cycle."""
        return self.mhz * self.word_bytes * 8.0

    def dma_read_us(self, nbytes: int) -> float:
        """Bus time for one DMA transaction reading main memory."""
        words = -(-nbytes // self.word_bytes)
        return (self.dma_read_overhead_cycles + words) * self.cycle_us

    def dma_write_us(self, nbytes: int) -> float:
        """Bus time for one DMA transaction writing main memory."""
        words = -(-nbytes // self.word_bytes)
        return (self.dma_write_overhead_cycles + words) * self.cycle_us

    def dma_read_ceiling_mbps(self, nbytes: int) -> float:
        return nbytes * 8.0 / self.dma_read_us(nbytes)

    def dma_write_ceiling_mbps(self, nbytes: int) -> float:
        return nbytes * 8.0 / self.dma_write_us(nbytes)


@dataclass(frozen=True)
class CacheSpec:
    """Host data cache parameters."""

    size_bytes: int
    line_bytes: int
    coherent_with_dma: bool
    # (paper) partial invalidation costs ~1 CPU cycle per 32-bit word.
    invalidate_cycles_per_word: float = 1.0
    miss_penalty_us: float = 0.0           # per-line fill beyond bus time


@dataclass(frozen=True)
class SoftwareCosts:
    """Calibrated per-machine software path costs (microseconds).

    The DS5000/200 anchors: interrupt service 75 us and UDP/IP PDU
    service 200 us are stated in section 2.1.2 of the paper; the
    decomposition into driver/IP/UDP components is ours, constrained so
    the components sum to the stated totals for a typical 16 KB PDU.
    """

    interrupt_service: float        # enter/exit handler + ack board
    interrupt_dispatch: float       # wake the driver thread

    driver_tx_pdu: float            # queue one PDU for transmission
    driver_tx_buffer: float         # per physical buffer descriptor
    driver_rx_pdu: float            # dequeue + hand PDU upward
    driver_rx_buffer: float         # per physical buffer processed
    driver_rx_per_byte: float       # buffer walking / pmap bookkeeping

    page_wire_fast: float           # low-level Mach wiring (section 2.4)
    page_wire_mach: float           # standard vm_wire-style wiring

    ip_tx_pdu: float
    ip_rx_pdu: float
    ip_frag_overhead: float         # extra per additional fragment
    udp_tx_pdu: float
    udp_rx_pdu: float
    checksum_per_byte: float        # UDP checksum over resident data
    data_touch_per_byte: float      # CPU reads uncached network data
    test_program_pdu: float         # in-kernel test program per message

    domain_crossing: float          # protection-domain boundary (IPC)
    copy_per_byte: float            # data copy within host memory
    fbuf_cached_transfer: float     # pass a cached fbuf across a domain
    fbuf_uncached_transfer: float   # map pages on first use (section 3.1)

    # Fraction of software execution time that occupies the shared
    # memory path (relevant only when the machine has no crossbar).
    cpu_bus_fraction: float
    data_touch_bus_fraction: float

    # Eager cache invalidation: the paper charges ~1 cycle per word
    # *plus the cost of subsequent cache misses caused by the
    # invalidation of unrelated cached data*.  The factor scales the
    # raw word-loop cost to include that aftermath; the fraction is
    # the share of it that is memory traffic.
    invalidate_aftermath_factor: float = 1.1
    invalidate_bus_fraction: float = 0.45


@dataclass(frozen=True)
class MachineSpec:
    """A host workstation."""

    name: str
    cpu_mhz: float
    page_size: int
    memory_bytes: int
    cache: CacheSpec
    bus: BusSpec
    # True: CPU memory traffic and DMA serialize on one path (DS5000/200).
    # False: crossbar lets them proceed concurrently (DEC 3000/600).
    shared_memory_path: bool
    costs: SoftwareCosts

    @property
    def cpu_cycle_us(self) -> float:
        return 1.0 / self.cpu_mhz

    def invalidate_us(self, nbytes: int) -> float:
        """CPU time for a partial cache invalidation of ``nbytes``."""
        words = -(-nbytes // 4)
        return words * self.cache.invalidate_cycles_per_word * self.cpu_cycle_us


@dataclass(frozen=True)
class BoardSpec:
    """OSIRIS board parameters (identical in both hosts).

    The i960 per-cell budgets are calibrated against the measured
    ceilings: transmit tops out at 325 Mbps (figure 4) even on the
    faster host => ~1.08 us per transmitted cell in the tx processor;
    the receive processor must stay under the 0.76 us single-cell bus
    slot to let the host reach 463 Mbps pure-DMA (section 2.5.1).
    """

    dualport_bytes: int = 128 * 1024       # (paper) 128 KB region
    queue_entries: int = 64                # (paper) 64-entry queues
    # (paper) 16 KB receive buffers, rounded down to a whole number of
    # 44-byte payloads (372 cells): reassembly stops filling a buffer
    # when the next cell would not fit (cf. section 2.5.2).
    recv_buffer_bytes: int = 372 * 44      # 16368
    fifo_cells: int = 64                   # on-board receive cell FIFO

    tx_pdu_overhead_us: float = 3.0        # per-PDU segmentation setup
    # Serial per-cell command-issue cost *in addition to* the DMA bus
    # time.  The transmit ceiling of figure 4 (325 Mbps) emerges from
    # the 0.96 us 44-byte bus read plus this plus the host's dual-port
    # descriptor traffic on the same bus.
    tx_cell_us: float = 0.02
    rx_pdu_overhead_us: float = 3.0        # per-PDU reassembly wrap-up
    # Receive-side per-cell work runs concurrently with the DMA engine
    # (the 463 Mbps single-cell ceiling leaves no serial headroom).
    rx_cell_us: float = 0.55               # header inspection + command
    rx_dma_queue_depth: int = 4            # outstanding DMA commands
    interrupt_assert_us: float = 1.0

    # Dual-port memory access cost for the *host* across the TC
    # ("accesses to the dual-port memory across the TURBOchannel are
    # expensive" -- section 2.1).
    host_word_read_cycles: int = 13
    host_word_write_cycles: int = 8


ATM_CELL_BYTES = 53
ATM_PAYLOAD_BYTES = 48
# (paper) 44-byte payloads because of AAL overhead.
AAL_PAYLOAD_BYTES = 44
LINK_MBPS = 622.08                         # OC-12 line rate
STRIPE_LINKS = 4                           # (paper) 4 x 155 Mbps
# (paper) "516 Mbps data bandwidth available in a 622 Mbps SONET/ATM
# link when 44 byte cell payloads are used".
LINK_PAYLOAD_MBPS = 516.0


def _ds5000_costs() -> SoftwareCosts:
    # Decomposition constrained by the paper's anchors:
    #  * ATM 1-byte one-way (Table 1: 353/2 us) ~= send sw (~35) +
    #    board/link (~15) + interrupt 75+8 + receive sw (~45);
    #  * UDP adds (598-353)/2 ~= 122 us one way: ip_tx + udp_tx +
    #    ip_rx + udp_rx = 30 + 24 + 38 + 30;
    #  * 16 KB received UDP/IP PDU service ~= 200 us (section 2.1.2):
    #    18 + 2x10 + 38 + 30 + 0.005 * 16384 ~= 188, plus queue PIO.
    return SoftwareCosts(
        interrupt_service=75.0,          # (paper)
        interrupt_dispatch=8.0,
        driver_tx_pdu=16.0,
        driver_tx_buffer=7.0,
        driver_rx_pdu=18.0,
        driver_rx_buffer=10.0,
        driver_rx_per_byte=0.0035,
        page_wire_fast=4.0,
        page_wire_mach=45.0,
        ip_tx_pdu=30.0,
        ip_rx_pdu=38.0,
        ip_frag_overhead=25.0,
        udp_tx_pdu=24.0,
        udp_rx_pdu=30.0,
        checksum_per_byte=0.012,         # add data_touch when uncached
        data_touch_per_byte=0.080,       # => ~80 Mbps CPU-read ceiling
        test_program_pdu=12.0,
        domain_crossing=95.0,
        copy_per_byte=0.050,
        fbuf_cached_transfer=12.0,
        fbuf_uncached_transfer=120.0,
        cpu_bus_fraction=0.28,
        data_touch_bus_fraction=0.90,
    )


def _alpha_costs() -> SoftwareCosts:
    # The Alpha is 7x the clock but only ~1.5x faster on protocol
    # processing (Table 1: UDP adds 81 us one-way versus the DS's
    # 122) -- the work is memory-latency bound, as the paper's own
    # numbers show.  Calibrated against Table 1's Alpha column and
    # figure 3 (438 Mbps checksummed receive).
    return SoftwareCosts(
        interrupt_service=20.0,
        interrupt_dispatch=4.0,
        driver_tx_pdu=6.0,
        driver_tx_buffer=1.5,
        driver_rx_pdu=7.0,
        driver_rx_buffer=1.8,
        driver_rx_per_byte=0.0015,
        page_wire_fast=1.0,
        page_wire_mach=12.0,
        ip_tx_pdu=20.0,
        ip_rx_pdu=22.0,
        ip_frag_overhead=5.0,
        udp_tx_pdu=16.0,
        udp_rx_pdu=20.0,
        checksum_per_byte=0.013,         # => ~440 Mbps checksummed rx
        data_touch_per_byte=0.004,
        test_program_pdu=5.0,
        domain_crossing=22.0,
        copy_per_byte=0.010,
        fbuf_cached_transfer=2.5,
        fbuf_uncached_transfer=28.0,
        cpu_bus_fraction=0.0,            # crossbar: no shared path
        data_touch_bus_fraction=0.0,
    )


DS5000_200 = MachineSpec(
    name="DECstation 5000/200",
    cpu_mhz=25.0,                          # (paper) 25 MHz MIPS R3000
    page_size=4096,
    memory_bytes=32 * 1024 * 1024,
    cache=CacheSpec(
        size_bytes=64 * 1024,              # (paper) 64 KB data cache
        line_bytes=4,                      # R3000: one-word lines
        coherent_with_dma=False,           # (paper) stale after DMA
        invalidate_cycles_per_word=1.0,    # (paper)
    ),
    bus=BusSpec(),
    shared_memory_path=True,               # (paper) all transactions
    costs=_ds5000_costs(),                 # occupy the TURBOchannel
)

DEC3000_600 = MachineSpec(
    name="DEC 3000/600",
    cpu_mhz=175.0,                         # (paper) 175 MHz Alpha
    page_size=8192,
    memory_bytes=64 * 1024 * 1024,
    cache=CacheSpec(
        size_bytes=2 * 1024 * 1024,
        line_bytes=32,
        coherent_with_dma=True,            # (paper) DMA updates cache
        invalidate_cycles_per_word=1.0,
    ),
    bus=BusSpec(),
    shared_memory_path=False,              # (paper) buffered crossbar
    costs=_alpha_costs(),
)

DEFAULT_BOARD = BoardSpec()

MACHINES = {
    DS5000_200.name: DS5000_200,
    DEC3000_600.name: DEC3000_600,
}


def with_costs(machine: MachineSpec, **overrides) -> MachineSpec:
    """A copy of ``machine`` with some software costs replaced."""
    return replace(machine, costs=replace(machine.costs, **overrides))


__all__ = [
    "BusSpec", "CacheSpec", "SoftwareCosts", "MachineSpec", "BoardSpec",
    "DS5000_200", "DEC3000_600", "DEFAULT_BOARD", "MACHINES", "with_costs",
    "ATM_CELL_BYTES", "ATM_PAYLOAD_BYTES", "AAL_PAYLOAD_BYTES",
    "LINK_MBPS", "LINK_PAYLOAD_MBPS", "STRIPE_LINKS",
]

"""Physical main memory and the board's dual-port memory.

Main memory is byte-accurate (a bytearray) when data fidelity is on.
The page-frame allocator deliberately hands out frames in a scrambled
order: contiguous virtual pages therefore map to non-contiguous
physical frames, which is exactly the buffer-fragmentation problem of
section 2.2 of the paper.
"""

from __future__ import annotations

import random
from typing import Optional

from ..sim import Fidelity, SimulationError


class OutOfMemory(SimulationError):
    """No free page frames left."""


class PhysicalMemory:
    """Byte-addressable main memory with a page-frame allocator.

    A region at the bottom of memory (``reserved_bytes``) is set aside
    for statically allocated, physically contiguous kernel buffers --
    the traditional way operating systems sidestep fragmentation
    (section 2.2).  The rest is handed out frame-by-frame in scrambled
    order.
    """

    def __init__(self, size_bytes: int, page_size: int,
                 fidelity: Optional[Fidelity] = None,
                 reserved_bytes: int = 4 * 1024 * 1024,
                 scramble_seed: int = 0x05171994):
        if size_bytes % page_size != 0:
            raise SimulationError("memory size must be page aligned")
        if reserved_bytes % page_size != 0:
            raise SimulationError("reserved region must be page aligned")
        if reserved_bytes >= size_bytes:
            raise SimulationError("reserved region exceeds memory")
        self.size_bytes = size_bytes
        self.page_size = page_size
        self.fidelity = fidelity or Fidelity.full()
        self._data = bytearray(size_bytes) if self.fidelity.copy_data else None

        self.reserved_bytes = reserved_bytes
        self._reserved_next = 0

        first_frame = reserved_bytes // page_size
        frame_count = size_bytes // page_size
        frames = list(range(first_frame, frame_count))
        random.Random(scramble_seed).shuffle(frames)
        self._free_frames = frames
        self._allocated: set[int] = set()

    # -- page-frame allocation -------------------------------------------

    @property
    def free_frame_count(self) -> int:
        return len(self._free_frames)

    def alloc_frame(self) -> int:
        """Allocate one frame; returns its physical base address."""
        if not self._free_frames:
            raise OutOfMemory("no free page frames")
        frame = self._free_frames.pop()
        self._allocated.add(frame)
        return frame * self.page_size

    def free_frame(self, phys_addr: int) -> None:
        if phys_addr % self.page_size != 0:
            raise SimulationError(f"address {phys_addr:#x} not page aligned")
        frame = phys_addr // self.page_size
        if frame not in self._allocated:
            raise SimulationError(f"frame {frame} is not allocated")
        self._allocated.discard(frame)
        self._free_frames.append(frame)

    def alloc_contiguous(self, nbytes: int) -> int:
        """Allocate physically contiguous bytes from the reserved region.

        Models static allocation of contiguous kernel buffers; raises
        :class:`OutOfMemory` when the region is exhausted.  The region
        is never freed (it is a boot-time pool in the real system).
        """
        nbytes = self._round_up(nbytes)
        if self._reserved_next + nbytes > self.reserved_bytes:
            raise OutOfMemory("contiguous kernel-buffer pool exhausted")
        addr = self._reserved_next
        self._reserved_next += nbytes
        return addr

    def try_alloc_contiguous_frames(self, npages: int) -> Optional[int]:
        """Best-effort dynamic allocation of contiguous frames.

        Models the experimental OS support mentioned at the end of
        section 2.2.  Scans the free list for a run of adjacent frames;
        returns the base physical address or ``None``.
        """
        free = sorted(self._free_frames)
        run_start = 0
        for i in range(1, len(free) + 1):
            if i == len(free) or free[i] != free[i - 1] + 1:
                if i - run_start >= npages:
                    chosen = free[run_start:run_start + npages]
                    for frame in chosen:
                        self._free_frames.remove(frame)
                        self._allocated.add(frame)
                    return chosen[0] * self.page_size
                run_start = i
        return None

    def _round_up(self, nbytes: int) -> int:
        mask = self.page_size - 1
        return (nbytes + mask) & ~mask

    # -- data access -------------------------------------------------------

    def read(self, addr: int, nbytes: int) -> bytes:
        self._check_range(addr, nbytes)
        if self._data is None:
            return b"\x00" * nbytes
        return bytes(self._data[addr:addr + nbytes])

    def write(self, addr: int, data: bytes) -> None:
        self._check_range(addr, len(data))
        if self._data is None:
            return
        self._data[addr:addr + len(data)] = data

    def _check_range(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size_bytes:
            raise SimulationError(
                f"physical access [{addr:#x}, +{nbytes}) out of range")


class DualPortMemory:
    """The 128 KB dual-port memory on the OSIRIS board.

    Both the host and the on-board processors see it as an array of
    32-bit words.  Only individual word accesses are atomic (paper,
    section 2.1.1); the lock-free queues are built on that guarantee
    alone.  Byte contents are always kept (the region is tiny), so
    descriptor encoding/decoding is real.
    """

    WORD = 4

    def __init__(self, size_bytes: int = 128 * 1024):
        if size_bytes % self.WORD != 0:
            raise SimulationError("dual-port size must be word aligned")
        self.size_bytes = size_bytes
        self._words = [0] * (size_bytes // self.WORD)
        self.host_reads = 0
        self.host_writes = 0
        self.board_reads = 0
        self.board_writes = 0

    def _index(self, addr: int) -> int:
        if addr % self.WORD != 0:
            raise SimulationError(f"unaligned dual-port access {addr:#x}")
        if addr < 0 or addr >= self.size_bytes:
            raise SimulationError(f"dual-port access {addr:#x} out of range")
        return addr // self.WORD

    def read_word(self, addr: int, by_host: bool) -> int:
        """Atomic 32-bit load."""
        if by_host:
            self.host_reads += 1
        else:
            self.board_reads += 1
        return self._words[self._index(addr)]

    def write_word(self, addr: int, value: int, by_host: bool) -> None:
        """Atomic 32-bit store."""
        if by_host:
            self.host_writes += 1
        else:
            self.board_writes += 1
        self._words[self._index(addr)] = value & 0xFFFFFFFF


class TestAndSetRegister:
    __test__ = False  # not a pytest class, despite the name

    """The per-half test-and-set register (spin-lock support).

    Provided by the hardware for mutual exclusion over the dual-port
    memory; the paper's software deliberately avoids it in favour of
    lock-free queues, but the baseline in
    :mod:`repro.baselines.locked_queue` uses it.
    """

    def __init__(self) -> None:
        self._held = False
        self.acquisitions = 0
        self.failed_attempts = 0

    def test_and_set(self) -> bool:
        """Atomically acquire; True when the lock was obtained."""
        if self._held:
            self.failed_attempts += 1
            return False
        self._held = True
        self.acquisitions += 1
        return True

    def clear(self) -> None:
        if not self._held:
            raise SimulationError("clearing a free test-and-set register")
        self._held = False

    @property
    def held(self) -> bool:
        return self._held


__all__ = [
    "PhysicalMemory", "DualPortMemory", "TestAndSetRegister", "OutOfMemory",
]

"""Hardware scatter/gather map: virtual-address DMA (section 2.2).

'Several modern workstations, such as the IBM RISC System/6000 and DEC
3000 AXP systems, provide support for virtual address DMA through the
use of a hardware virtual-to-physical translation buffer
(scatter/gather map).  Host driver software must set up the map to
contain appropriate mappings for all the fragments of a buffer before
a DMA transfer.'

The map is page-granular: a *virtually contiguous* range whose pages
are physically scattered becomes one contiguous I/O-virtual window the
adaptor can DMA with a single descriptor.  What it does **not** remove
is the per-page work -- every page of every message costs a map-entry
update -- which is the paper's point: 'physical buffer fragmentation
is a potential performance concern even when virtual DMA is
available.'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..host.vm import AddressSpace
from ..sim import SimulationError, Simulator
from .cpu import HostCPU


@dataclass(frozen=True)
class SgMapping:
    """One loaded window: a contiguous I/O view of one segment."""

    io_addr: int
    length: int
    entries: int


class ScatterGatherMap:
    """The translation buffer between the I/O bus and main memory."""

    IO_BASE = 0x8000_0000  # I/O-virtual addresses live far above RAM

    def __init__(self, sim: Simulator, cpu: HostCPU,
                 entries: int = 4096,
                 entry_update_us: float = 0.9):
        self.sim = sim
        self.cpu = cpu
        self.page_size = cpu.machine.page_size
        self.capacity = entries
        self.entry_update_us = entry_update_us
        self._table: dict[int, int] = {}   # io page index -> phys base
        self._next_page = self.IO_BASE // self.page_size
        self.entries_loaded = 0
        self.loads = 0

    @property
    def entries_in_use(self) -> int:
        return len(self._table)

    def load(self, space: AddressSpace, vaddr: int, nbytes: int
             ) -> Generator[Any, Any, SgMapping]:
        """Map one virtually contiguous segment into I/O space (timed).

        The window preserves the segment's in-page offset, so the
        translation is pure page substitution; each page costs one
        timed map-entry update.
        """
        if nbytes <= 0:
            raise SimulationError("empty sg-map load")
        first_vpage = vaddr - (vaddr % self.page_size)
        last_vpage = (vaddr + nbytes - 1) - \
            ((vaddr + nbytes - 1) % self.page_size)
        pages = (last_vpage - first_vpage) // self.page_size + 1
        if self.entries_in_use + pages > self.capacity:
            raise SimulationError("scatter/gather map exhausted")
        io_first_page = self._next_page
        for i in range(pages):
            phys = space.translate(first_vpage + i * self.page_size)
            self._table[io_first_page + i] = phys
        self._next_page += pages
        self.entries_loaded += pages
        self.loads += 1
        yield from self.cpu.execute(pages * self.entry_update_us)
        io_addr = io_first_page * self.page_size + \
            (vaddr % self.page_size)
        return SgMapping(io_addr=io_addr, length=nbytes, entries=pages)

    def unload(self, mapping: SgMapping) -> None:
        """Invalidate a window's entries (untimed: lazy teardown)."""
        first = mapping.io_addr // self.page_size
        last = (mapping.io_addr + mapping.length - 1) // self.page_size
        for io_page in range(first, last + 1):
            self._table.pop(io_page, None)

    def translate(self, io_addr: int) -> int:
        io_page = io_addr // self.page_size
        phys_base = self._table.get(io_page)
        if phys_base is None:
            raise SimulationError(
                f"I/O map fault at {io_addr:#x} (no entry)")
        return phys_base + (io_addr % self.page_size)

    def covers(self, addr: int) -> bool:
        return addr >= self.IO_BASE


__all__ = ["ScatterGatherMap", "SgMapping"]

"""TURBOchannel bus and the host memory system.

The bus is a capacity-1 timed resource.  On the DECstation 5000/200
*every* memory transaction -- DMA bursts, CPU cache fills and
write-backs -- occupies it, so CPU activity slows DMA and vice versa
(paper, section 4).  On the DEC 3000/600 a buffered crossbar lets CPU
memory traffic proceed concurrently with DMA, so only DMA and
programmed I/O touch the bus resource.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim import Delay, Resource, Simulator
from .specs import BusSpec, MachineSpec

# The TURBOchannel arbitrates fairly per transaction: requests are
# served in arrival order.  (An absolute-priority scheme starves host
# dual-port accesses behind a saturated DMA stream -- the driver would
# only make progress in inter-PDU gaps.)
PRIO_DMA = 0.0
PRIO_CPU = 0.0


class TurboChannel:
    """The I/O bus: timed transactions with the paper's cycle costs."""

    def __init__(self, sim: Simulator, spec: BusSpec, name: str = "tc"):
        self.sim = sim
        self.spec = spec
        self.resource = Resource(sim, name, capacity=1)
        self.dma_bytes_read = 0
        self.dma_bytes_written = 0
        self.pio_words = 0

    def dma_read(self, nbytes: int) -> Generator[Any, Any, None]:
        """One DMA transaction reading host memory (transmit direction)."""
        self.dma_bytes_read += nbytes
        yield from self.resource.use(self.spec.dma_read_us(nbytes), PRIO_DMA)

    def dma_write(self, nbytes: int) -> Generator[Any, Any, None]:
        """One DMA transaction writing host memory (receive direction)."""
        self.dma_bytes_written += nbytes
        yield from self.resource.use(self.spec.dma_write_us(nbytes), PRIO_DMA)

    def pio_read_words(self, nwords: int) -> Generator[Any, Any, None]:
        """Host CPU reads ``nwords`` from board memory, one word at a time."""
        self.pio_words += nwords
        cost = nwords * self.spec.pio_read_word_cycles * self.spec.cycle_us
        yield from self.resource.use(cost, PRIO_CPU)

    def pio_write_words(self, nwords: int) -> Generator[Any, Any, None]:
        """Host CPU writes ``nwords`` to board memory."""
        self.pio_words += nwords
        cost = nwords * self.spec.pio_write_word_cycles * self.spec.cycle_us
        yield from self.resource.use(cost, PRIO_CPU)

    def occupy(self, duration: float,
               priority: float = PRIO_CPU) -> Generator[Any, Any, None]:
        """Occupy the bus for an arbitrary duration (CPU memory traffic)."""
        yield from self.resource.use(duration, priority)

    def utilization(self, elapsed: float | None = None) -> float:
        return self.resource.utilization(elapsed)


class MemorySystem:
    """Routes CPU memory traffic either onto the TC or past it.

    ``cpu_memory_time`` is the single fidelity point that distinguishes
    the two machine generations: shared path (DS5000/200) versus
    crossbar (DEC 3000/600).
    """

    def __init__(self, sim: Simulator, machine: MachineSpec,
                 tc: TurboChannel, bus_slice_us: float = 1.0):
        self.sim = sim
        self.machine = machine
        self.tc = tc
        # CPU memory traffic is made of individual transactions; it
        # interleaves with DMA at transaction granularity rather than
        # monopolizing the bus for a whole software phase (otherwise
        # long software phases would overflow the board's cell FIFO).
        self.bus_slice_us = bus_slice_us

    def cpu_memory_time(self, duration: float) -> Generator[Any, Any, None]:
        """CPU spends ``duration`` on memory traffic.

        On a shared-path machine this occupies the bus (stalling DMA);
        on a crossbar machine it is plain CPU time.
        """
        if duration <= 0:
            return
        if not self.machine.shared_memory_path:
            yield Delay(duration)
            return
        remaining = duration
        while remaining > 0:
            slice_us = min(self.bus_slice_us, remaining)
            yield from self.tc.occupy(slice_us, PRIO_CPU)
            remaining -= slice_us


__all__ = ["TurboChannel", "MemorySystem", "PRIO_DMA", "PRIO_CPU"]

"""The OSIRIS DMA controllers.

Each half of the board has one controller.  The controller enforces
the transfer-length discipline of section 2.5:

* ``SINGLE_CELL`` -- every transaction is at most one AAL payload
  (44 bytes), the board's original design.
* ``DOUBLE_CELL`` -- up to two payloads (88 bytes) when the on-board
  processor decides two consecutive cells land contiguously; the
  modification that raised the receive ceiling to 587 Mbps.
* ``ARBITRARY`` -- the "ideal" controller the paper deemed too complex
  for the available programmable logic; kept for ablations.

Independently, the page-boundary modification (section 2.5.2) makes a
transaction stop early at a page boundary, so a partially filled cell
at the end of one buffer can be completed from the start of the next.
:meth:`DmaController.max_burst` exposes exactly that rule to the
on-board processors.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from ..sim import Fidelity, Resource, SimulationError, Simulator
from .bus import TurboChannel
from .cache import DataCache
from .memory import PhysicalMemory
from .specs import AAL_PAYLOAD_BYTES


class DmaMode(enum.Enum):
    SINGLE_CELL = "single"
    DOUBLE_CELL = "double"
    ARBITRARY = "arbitrary"

    @property
    def max_bytes(self) -> Optional[int]:
        if self is DmaMode.SINGLE_CELL:
            return AAL_PAYLOAD_BYTES
        if self is DmaMode.DOUBLE_CELL:
            return 2 * AAL_PAYLOAD_BYTES
        return None


class DmaController:
    """One direction's DMA engine.

    The engine itself is a pure bus client; the bus resource inside
    :class:`TurboChannel` provides serialization against the other
    half's engine and (on the DECstation) against CPU memory traffic.
    """

    def __init__(self, sim: Simulator, tc: TurboChannel,
                 memory: PhysicalMemory, cache: Optional[DataCache],
                 mode: DmaMode = DmaMode.SINGLE_CELL,
                 page_boundary_stop: bool = True,
                 page_size: int = 4096,
                 fidelity: Optional[Fidelity] = None,
                 sgmap=None):
        self.sim = sim
        self.tc = tc
        self.memory = memory
        self.cache = cache
        self.mode = mode
        self.page_boundary_stop = page_boundary_stop
        self.page_size = page_size
        self.fidelity = fidelity or Fidelity.full()
        # Optional scatter/gather map (section 2.2): addresses above
        # its IO_BASE are translated per transaction.
        self.sgmap = sgmap
        self.transactions = 0
        self.bytes_moved = 0
        # The controller issues one bus transaction at a time; queued
        # commands wait *in the controller*, so bus arbitration sees at
        # most one pending DMA request and other agents (host PIO, CPU
        # memory traffic on a shared-path machine) interleave fairly.
        self.engine = Resource(sim, "dma-engine", capacity=1)

    def max_burst(self, addr: int, wanted: int) -> int:
        """Longest legal transaction starting at ``addr``.

        Applies the mode's length cap and, when enabled, the
        stop-at-page-boundary rule of section 2.5.2.
        """
        if wanted <= 0:
            raise SimulationError("DMA burst must move at least one byte")
        allowed = wanted
        cap = self.mode.max_bytes
        if cap is not None:
            allowed = min(allowed, cap)
        if self.page_boundary_stop:
            to_boundary = self.page_size - (addr % self.page_size)
            allowed = min(allowed, to_boundary)
        return allowed

    def _check(self, nbytes: int, addr: int) -> None:
        cap = self.mode.max_bytes
        if cap is not None and nbytes > cap:
            raise SimulationError(
                f"{self.mode.value} DMA cannot move {nbytes} bytes")
        if self.page_boundary_stop:
            to_boundary = self.page_size - (addr % self.page_size)
            if nbytes > to_boundary:
                raise SimulationError(
                    f"DMA would cross a page boundary at {addr:#x}")

    def write_host(self, addr: int,
                   data: Optional[bytes] = None,
                   nbytes: Optional[int] = None
                   ) -> Generator[Any, Any, None]:
        """Receive direction: move cell payload into host memory."""
        if data is None and nbytes is None:
            raise SimulationError("write_host needs data or nbytes")
        length = len(data) if data is not None else int(nbytes)
        self._check(length, addr)
        self.transactions += 1
        self.bytes_moved += length
        grant = yield self.engine.request()
        try:
            yield from self.tc.dma_write(length)
        finally:
            grant.release()
        if self.fidelity.copy_data and data is not None:
            if self.cache is not None:
                self.cache.dma_write(addr, data)
            else:
                self.memory.write(addr, data)

    def read_host(self, addr: int, nbytes: int
                  ) -> Generator[Any, Any, bytes]:
        """Transmit direction: pull bytes from host memory."""
        self._check(nbytes, addr)
        self.transactions += 1
        self.bytes_moved += nbytes
        grant = yield self.engine.request()
        try:
            yield from self.tc.dma_read(nbytes)
        finally:
            grant.release()
        if self.fidelity.copy_data:
            if self.sgmap is not None and self.sgmap.covers(addr):
                # Bursts never cross a page, so one translation covers
                # the whole transaction.
                return self.memory.read(self.sgmap.translate(addr),
                                        nbytes)
            return self.memory.read(addr, nbytes)
        return b"\x00" * nbytes


__all__ = ["DmaController", "DmaMode"]

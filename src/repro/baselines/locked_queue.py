"""Baseline: spin-lock-protected shared queue (paper, section 2.1.1).

The hardware's intended discipline: acquire the test-and-set register
before touching shared dual-port structures.  Arbitrarily complex
structures become possible, but host and board serialize, and every
failed acquisition burns a bus word-read.  The paper's lock-free
queues avoid both costs; the E7 ablation quantifies the difference.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..hw.bus import TurboChannel
from ..hw.memory import DualPortMemory
from ..osiris.descriptors import Descriptor
from ..osiris.locks import SpinLock
from ..osiris.queues import DescriptorQueue
from ..sim import Delay, Simulator


class LockedDescriptorQueue:
    """A descriptor FIFO guarded by the test-and-set spin-lock.

    Operations are timed generators; the host side additionally pays
    PIO for every word it touches (just like the lock-free queue), plus
    the lock acquire/release traffic and any spin time.
    """

    def __init__(self, sim: Simulator, tc: TurboChannel,
                 dualport: DualPortMemory, base: int, size: int,
                 host_is_writer: bool, name: str = "locked",
                 hold_overhead_us: float = 0.3):
        self.sim = sim
        self.tc = tc
        self.lock = SpinLock(sim, tc, name=f"{name}.lock")
        self.inner = DescriptorQueue(dualport, base, size,
                                     host_is_writer, name=name)
        # Extra bookkeeping the locked design needs inside the critical
        # section (the lock-free queue's single-writer invariants make
        # it unnecessary there).
        self.hold_overhead_us = hold_overhead_us

    def _charge(self, by_host: bool) -> Generator[Any, Any, None]:
        counter = (self.inner.host_access if by_host
                   else self.inner.board_access)
        reads, writes = counter.reset()
        if by_host:
            if reads:
                yield from self.tc.pio_read_words(reads)
            if writes:
                yield from self.tc.pio_write_words(writes)
        else:
            yield Delay(0.05 * (reads + writes))

    def push(self, desc: Descriptor,
             by_host: bool) -> Generator[Any, Any, bool]:
        yield from self.lock.acquire(by_host)
        try:
            ok = self.inner.push(desc, by_host=by_host)
            yield from self._charge(by_host)
            yield Delay(self.hold_overhead_us)
        finally:
            yield from self.lock.release(by_host)
        return ok

    def pop(self, by_host: bool
            ) -> Generator[Any, Any, Optional[Descriptor]]:
        yield from self.lock.acquire(by_host)
        try:
            desc = self.inner.pop(by_host=by_host)
            yield from self._charge(by_host)
            yield Delay(self.hold_overhead_us)
        finally:
            yield from self.lock.release(by_host)
        return desc


__all__ = ["LockedDescriptorQueue"]

"""A LANCE-class Ethernet adaptor model, for the paper's comparison.

Section 4: 'The measured latency numbers for 1 byte messages are
comparable to -- and in fact, a bit better than -- those obtained when
using the machines' Ethernet adaptors under otherwise identical
conditions.'  This model reproduces that comparison point: a
conventional 10 Mbps Ethernet with a copying driver and one interrupt
per frame.  Short-message latency lands in the same few-hundred-us
band as OSIRIS (it is dominated by the same host software), while
anything sizable is crushed by 10 Mbps serialization.

This is a cost-model adaptor (no descriptor rings are simulated); the
constants are conventional for DEC workstations of the era.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..hw.bus import MemorySystem, TurboChannel
from ..hw.cpu import HostCPU
from ..hw.specs import MachineSpec
from ..sim import Delay, Simulator, spawn

ETHERNET_MBPS = 10.0
FRAME_OVERHEAD_BYTES = 18 + 8 + 12     # header+CRC, preamble, IFG
MIN_FRAME_BYTES = 64
MTU_BYTES = 1500


@dataclass(frozen=True)
class EthernetCosts:
    """Per-direction driver costs (us), besides the host's own
    interrupt service and copy rates from its SoftwareCosts."""

    tx_setup: float = 30.0      # ring descriptor + device registers
    rx_service: float = 35.0    # ring scan + buffer handoff


def frame_count(nbytes: int) -> int:
    payload = MTU_BYTES - 28  # IP + UDP headers per fragment
    return max(1, -(-nbytes // payload))


def wire_time_us(nbytes: int) -> float:
    """Serialization of a message's frames at 10 Mbps."""
    frames = frame_count(nbytes)
    total = max(nbytes + frames * FRAME_OVERHEAD_BYTES,
                frames * MIN_FRAME_BYTES)
    return total * 8.0 / ETHERNET_MBPS


def one_way_us(machine: MachineSpec, nbytes: int,
               costs: EthernetCosts = EthernetCosts()) -> float:
    """Analytic one-way latency through the Ethernet path."""
    host = machine.costs
    frames = frame_count(nbytes)
    send = frames * (costs.tx_setup
                     + host.copy_per_byte * min(nbytes, MTU_BYTES))
    receive = frames * (host.interrupt_service + host.interrupt_dispatch
                        + costs.rx_service
                        + host.copy_per_byte * min(nbytes, MTU_BYTES))
    protocol = (host.udp_tx_pdu + host.ip_tx_pdu
                + host.udp_rx_pdu + host.ip_rx_pdu
                + 2 * host.test_program_pdu)
    return send + wire_time_us(nbytes) + receive + protocol


def round_trip(machine: MachineSpec, nbytes: int,
               costs: EthernetCosts = EthernetCosts(),
               protocol: str = "raw") -> float:
    """Simulated round trip over the Ethernet adaptor.

    ``protocol="raw"`` puts the test programs directly on the driver
    (the comparison the paper makes against its 'ATM' rows);
    ``"udp"`` adds the UDP/IP processing costs.

    Runs the two directions as timed processes on the host CPU model
    so the copies contend with nothing (an idle machine, as in the
    paper's latency runs); the wire is a fixed-rate pipe.
    """
    sim = Simulator()
    tc = TurboChannel(sim, machine.bus)
    cpu = HostCPU(sim, machine, MemorySystem(sim, machine, tc))
    host = machine.costs
    eth = costs
    done = {}

    proto_tx = (host.udp_tx_pdu + host.ip_tx_pdu
                if protocol == "udp" else 0.0)
    proto_rx = (host.udp_rx_pdu + host.ip_rx_pdu
                if protocol == "udp" else 0.0)

    def one_direction() -> Generator[Any, Any, None]:
        frames = frame_count(nbytes)
        per_frame_payload = min(nbytes, MTU_BYTES)
        yield from cpu.execute(host.test_program_pdu + proto_tx)
        for _ in range(frames):
            yield from cpu.execute(
                eth.tx_setup + host.copy_per_byte * per_frame_payload)
        yield Delay(wire_time_us(nbytes))
        for _ in range(frames):
            yield from cpu.execute(
                host.interrupt_service + host.interrupt_dispatch
                + eth.rx_service
                + host.copy_per_byte * per_frame_payload)
        yield from cpu.execute(proto_rx + host.test_program_pdu)

    def ping_pong() -> Generator[Any, Any, None]:
        yield from one_direction()
        yield from one_direction()
        done["rtt"] = sim.now

    spawn(sim, ping_pong(), "ethernet")
    sim.run()
    return done["rtt"]


__all__ = [
    "EthernetCosts", "round_trip", "one_way_us", "wire_time_us",
    "frame_count", "ETHERNET_MBPS", "MTU_BYTES",
]

"""Baseline: programmed I/O data movement (paper, section 2.7).

With PIO the host CPU itself reads network data from the adaptor and
writes it to the application buffer, word by word, across the
TURBOchannel.  The upside: the data ends up *in the cache*, so the
application's subsequent reads are cheap.  The downside: word-sized
reads across the TC are so slow that, on these machines, DMA wins even
after paying the cache-miss cost when the application touches the
data.  The paper's yardstick: 'the best way to compare DMA performance
versus PIO is to determine how fast an application program can access
the data in each case.'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..hw.bus import MemorySystem, TurboChannel
from ..hw.cpu import HostCPU
from ..hw.specs import AAL_PAYLOAD_BYTES, MachineSpec
from ..sim import Simulator, spawn


@dataclass
class AccessResult:
    """Throughput at which the application sees the data (Mbps)."""

    transfer_mbps: float     # adaptor -> host memory/cache movement
    app_access_mbps: float   # end-to-end: transfer + application read


def _run(sim: Simulator, gen) -> float:
    spawn(sim, gen, "pio-rig")
    sim.run()
    return sim.now


def pio_receive(machine: MachineSpec, nbytes: int) -> AccessResult:
    """PIO path: CPU copies from board to app buffer, data stays cached.

    The transfer occupies both the CPU and the bus for every word.
    """
    sim = Simulator()
    tc = TurboChannel(sim, machine.bus)
    cpu = HostCPU(sim, machine, MemorySystem(sim, machine, tc))
    words = -(-nbytes // 4)

    def rig() -> Generator[Any, Any, None]:
        # Word-at-a-time reads from the adaptor plus the store to the
        # application buffer (a cached write, ~1 CPU cycle/word).
        yield from tc.pio_read_words(words)
        yield from cpu.execute(words * machine.cpu_cycle_us,
                               bus_fraction=0.0)

    elapsed = _run(sim, rig())
    transfer = nbytes * 8.0 / elapsed
    # Data is in the cache: the application reads it at near-CPU speed
    # (one load per word), overlapping nothing (it already paid).
    sim2 = Simulator()
    tc2 = TurboChannel(sim2, machine.bus)
    cpu2 = HostCPU(sim2, machine, MemorySystem(sim2, machine, tc2))

    def app_read() -> Generator[Any, Any, None]:
        yield from cpu2.execute(words * 2 * machine.cpu_cycle_us, 0.0)

    read_time = _run(sim2, app_read())
    total = elapsed + read_time
    return AccessResult(transfer_mbps=transfer,
                        app_access_mbps=nbytes * 8.0 / total)


def dma_receive(machine: MachineSpec, nbytes: int) -> AccessResult:
    """DMA path: board writes memory in 44-byte bursts; then the
    application reads the (uncached, on the DS) data."""
    sim = Simulator()
    tc = TurboChannel(sim, machine.bus)
    cpu = HostCPU(sim, machine, MemorySystem(sim, machine, tc))
    cells = -(-nbytes // AAL_PAYLOAD_BYTES)

    def dma_stream() -> Generator[Any, Any, None]:
        for _ in range(cells):
            yield from tc.dma_write(AAL_PAYLOAD_BYTES)

    def app_read() -> Generator[Any, Any, None]:
        if machine.cache.coherent_with_dma and not \
                machine.shared_memory_path:
            # Crossbar machine: DMA updates the cache and the read can
            # proceed concurrently with the transfer (section 2.7).
            words = -(-nbytes // 4)
            yield from cpu.execute(words * 2 * machine.cpu_cycle_us, 0.0)
        else:
            # DS: the data is NOT in the cache; reading it costs the
            # full uncached-touch rate and contends for the bus.
            yield from cpu.touch_data(nbytes)

    done = {}

    def rig() -> Generator[Any, Any, None]:
        stream = spawn(sim, dma_stream(), "dma")
        if machine.shared_memory_path:
            # Sequential: the app can only read once data has landed.
            yield stream
            done["transfer"] = sim.now
            yield from app_read()
        else:
            # Concurrent on the crossbar machine.
            reader = spawn(sim, app_read(), "reader")
            yield stream
            done["transfer"] = sim.now
            if not reader.done:
                yield reader

    elapsed = _run(sim, rig())
    return AccessResult(
        transfer_mbps=nbytes * 8.0 / done["transfer"],
        app_access_mbps=nbytes * 8.0 / elapsed)


__all__ = ["AccessResult", "pio_receive", "dma_receive"]

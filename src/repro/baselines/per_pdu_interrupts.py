"""Baseline: the traditional one-interrupt-per-PDU discipline.

Section 2.1.2 replaces it with (a) transmit completion detected by
tail-pointer advance and (b) a receive interrupt only on the queue's
empty -> non-empty transition.  This helper runs the same receive
workload under both disciplines and reports interrupts per PDU and
the throughput cost (each interrupt burns 75 us of DS5000/200 CPU).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..driver.config import DriverConfig
from ..hw.specs import MachineSpec
from ..net.host_node import Host
from ..osiris.rx_processor import FramedPduSource, InterruptMode
from ..sim import Simulator
from ..bench.workloads import udp_ip_message_pdus


@dataclass
class InterruptDisciplineResult:
    mode: InterruptMode
    mbps: float
    interrupts: int
    pdus: int

    @property
    def interrupts_per_pdu(self) -> float:
        return self.interrupts / max(self.pdus, 1)


def run_interrupt_discipline(machine: MachineSpec, message_bytes: int,
                             mode: InterruptMode,
                             messages: int = 60
                             ) -> InterruptDisciplineResult:
    """Receive a burst of messages under the given interrupt mode."""
    config = DriverConfig.for_machine(machine)
    config.interrupt_mode = mode
    sim = Simulator()
    host = Host(sim, machine, config=config)
    host.connect_receive_only(flow_controlled=True)
    app, path = host.open_udp_path(local_port=7, remote_port=9)
    pdus = udp_ip_message_pdus(message_bytes, host.ip.mtu)
    FramedPduSource(sim, host.board, vci=path.vci, pdus=pdus,
                    repeat=messages)
    sim.run()
    times = [r.time for r in app.receptions]
    if times:
        # Whole-workload makespan: a burst of per-PDU interrupts can
        # starve the driver thread and defer every delivery, so a
        # first-to-last-reception window would hide the damage.
        data = sum(r.length for r in app.receptions)
        mbps = data * 8.0 / times[-1]
    else:
        mbps = 0.0
    return InterruptDisciplineResult(
        mode=mode, mbps=mbps,
        interrupts=host.kernel.interrupts_serviced,
        pdus=host.driver.pdus_received)


__all__ = ["run_interrupt_discipline", "InterruptDisciplineResult"]

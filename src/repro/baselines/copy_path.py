"""Baseline: copy-based cross-domain data path (versus fbufs).

The conventional microkernel data path copies network data at every
protection-domain boundary.  :func:`compare_cross_domain` runs the
same buffer stream through (a) cached fbufs, (b) uncached fbufs, and
(c) per-domain copies, returning effective Mbps for each -- the E13
ablation behind section 3.1's "order of magnitude" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..fbufs.fbuf import FbufAllocator
from ..fbufs.remap import copy_traverse
from ..host.kernel import HostOS
from ..hw.bus import MemorySystem, TurboChannel
from ..hw.cache import DataCache
from ..hw.cpu import HostCPU
from ..hw.memory import PhysicalMemory
from ..hw.specs import MachineSpec
from ..sim import Simulator, spawn


@dataclass
class CrossDomainResult:
    cached_fbuf_mbps: float
    uncached_fbuf_mbps: float
    copy_mbps: float


def _kernel(machine: MachineSpec) -> tuple[Simulator, HostOS]:
    sim = Simulator()
    memory = PhysicalMemory(16 * 1024 * 1024, machine.page_size,
                            reserved_bytes=2 * 1024 * 1024)
    cache = DataCache(machine.cache, memory)
    tc = TurboChannel(sim, machine.bus)
    cpu = HostCPU(sim, machine, MemorySystem(sim, machine, tc))
    return sim, HostOS(sim, cpu, cache, memory)


def compare_cross_domain(machine: MachineSpec, buffer_bytes: int,
                         n_domains: int = 2,
                         n_buffers: int = 50) -> CrossDomainResult:
    """Stream ``n_buffers`` buffers through ``n_domains`` domains under
    each transfer discipline."""
    results = {}

    # (a)/(b): fbufs, measured separately for cached and uncached by
    # controlling whether buffers return to the path's cache.
    for label, recycle in (("cached", True), ("uncached", False)):
        sim, kernel = _kernel(machine)
        domains = [kernel.create_domain(f"d{i}")
                   for i in range(n_domains)]
        allocator = FbufAllocator(kernel)
        allocator.register_path(1, domains)
        npages = -(-buffer_bytes // machine.page_size)

        def rig(recycle=recycle) -> Generator[Any, Any, None]:
            for _ in range(n_buffers):
                fbuf, _cached = allocator.allocate(1, npages)
                yield from allocator.traverse_path(fbuf, 1)
                if recycle:
                    allocator.release(fbuf, 1)

        spawn(sim, rig(), "fbuf-rig")
        sim.run()
        results[label] = n_buffers * buffer_bytes * 8.0 / sim.now

    # (c): copies.
    sim, kernel = _kernel(machine)
    domains = [kernel.create_domain(f"d{i}") for i in range(n_domains)]

    def copy_rig() -> Generator[Any, Any, None]:
        for _ in range(n_buffers):
            yield from copy_traverse(kernel, buffer_bytes, domains)

    spawn(sim, copy_rig(), "copy-rig")
    sim.run()
    results["copy"] = n_buffers * buffer_bytes * 8.0 / sim.now

    return CrossDomainResult(
        cached_fbuf_mbps=results["cached"],
        uncached_fbuf_mbps=results["uncached"],
        copy_mbps=results["copy"])


__all__ = ["compare_cross_domain", "CrossDomainResult"]

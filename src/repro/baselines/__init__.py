"""Baselines the paper compares against (implicitly or explicitly)."""

from .copy_path import CrossDomainResult, compare_cross_domain
from .ethernet import (
    ETHERNET_MBPS, EthernetCosts, frame_count, one_way_us, round_trip,
    wire_time_us,
)
from .locked_queue import LockedDescriptorQueue
from .per_pdu_interrupts import (
    InterruptDisciplineResult, run_interrupt_discipline,
)
from .pio import AccessResult, dma_receive, pio_receive

__all__ = [
    "LockedDescriptorQueue",
    "pio_receive", "dma_receive", "AccessResult",
    "run_interrupt_discipline", "InterruptDisciplineResult",
    "compare_cross_domain", "CrossDomainResult",
    "EthernetCosts", "round_trip", "one_way_us", "wire_time_us",
    "frame_count", "ETHERNET_MBPS",
]

"""Benchmark harness: regenerates every table and figure of the paper."""

from .harness import (
    ThroughputResult, measure_receive_throughput, measure_round_trip,
    measure_transmit_throughput, message_count_for,
)
from .latency import MESSAGE_SIZES, PAPER_TABLE_1, Table1Result, run_table1
from .report import format_series, format_table, jsonable, ratio_note, to_json
from .throughput import (
    FIGURE_SIZES_KB, FigureResult, PAPER_FIGURE_2, PAPER_FIGURE_3,
    PAPER_FIGURE_4, run_figure2, run_figure3, run_figure4,
)
from .workloads import (
    build_ip_fragments, build_udp_packet, pattern_data,
    udp_ip_message_pdus,
)

__all__ = [
    "measure_round_trip", "measure_receive_throughput",
    "measure_transmit_throughput", "ThroughputResult",
    "message_count_for",
    "run_table1", "Table1Result", "MESSAGE_SIZES", "PAPER_TABLE_1",
    "run_figure2", "run_figure3", "run_figure4", "FigureResult",
    "FIGURE_SIZES_KB", "PAPER_FIGURE_2", "PAPER_FIGURE_3",
    "PAPER_FIGURE_4",
    "format_table", "format_series", "ratio_note", "jsonable", "to_json",
    "pattern_data", "build_udp_packet", "build_ip_fragments",
    "udp_ip_message_pdus",
]

"""Table 1: round-trip latencies, as a complete experiment definition."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.specs import DEC3000_600, DS5000_200, MachineSpec
from .harness import measure_round_trip
from .report import format_table, to_json

MESSAGE_SIZES = (1, 1024, 2048, 4096)

# The paper's Table 1, verbatim (microseconds).
PAPER_TABLE_1 = {
    ("DECstation 5000/200", "atm"): (353, 417, 486, 778),
    ("DECstation 5000/200", "udp"): (598, 659, 725, 1011),
    ("DEC 3000/600", "atm"): (154, 215, 283, 449),
    ("DEC 3000/600", "udp"): (316, 376, 446, 619),
}


@dataclass
class Table1Result:
    rows: dict = field(default_factory=dict)

    def row(self, machine: MachineSpec, protocol: str) -> tuple:
        return self.rows[(machine.name, protocol)]

    def render(self) -> str:
        # Interleave measured and paper rows for side-by-side reading.
        display = {}
        for (machine, protocol), values in self.rows.items():
            key = f"{machine.split()[0]} {protocol.upper()}"
            display[key] = values
            display[f"{key} (paper)"] = PAPER_TABLE_1[(machine, protocol)]
        return format_table(
            "Table 1: Round-Trip Latencies (us)",
            "Machine / Protocol", MESSAGE_SIZES, display, unit="us")

    def to_dict(self) -> dict:
        return {
            "table": "table1",
            "unit": "us",
            "message_sizes_bytes": list(MESSAGE_SIZES),
            "measured": {f"{machine}/{protocol}": list(values)
                         for (machine, protocol), values
                         in self.rows.items()},
            "paper": {f"{machine}/{protocol}": list(values)
                      for (machine, protocol), values
                      in PAPER_TABLE_1.items()},
        }

    def to_json(self, indent: int = 2) -> str:
        return to_json(self.to_dict(), indent=indent)


def run_table1(rounds: int = 5) -> Table1Result:
    """Measure every cell of Table 1."""
    result = Table1Result()
    for machine in (DS5000_200, DEC3000_600):
        for protocol in ("atm", "udp"):
            result.rows[(machine.name, protocol)] = tuple(
                measure_round_trip(machine, size, protocol=protocol,
                                   rounds=rounds)
                for size in MESSAGE_SIZES)
    return result


__all__ = ["run_table1", "Table1Result", "MESSAGE_SIZES", "PAPER_TABLE_1"]

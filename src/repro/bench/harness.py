"""Experiment runners for the paper's tables and figures.

Each function builds the exact rig the paper describes, runs it to a
steady state, and returns the measured quantity.  The benchmark files
under ``benchmarks/`` print paper-style tables from these and assert
the *shape* claims (who wins, rough ratios, crossovers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..driver.config import CachePolicyKind, DriverConfig
from ..hw.dma import DmaMode
from ..hw.specs import MachineSpec
from ..net.host_node import Host
from ..net.network import BackToBack
from ..osiris.rx_processor import FramedPduSource
from ..sim import Simulator, spawn
from .workloads import udp_ip_message_pdus


@dataclass
class ThroughputResult:
    message_bytes: int
    mbps: float
    messages: int
    interrupts: int
    bus_utilization: float
    combined_dmas: int = 0
    single_dmas: int = 0


def message_count_for(message_bytes: int, target_bytes: int = 1 << 20,
                      lo: int = 4, hi: int = 400) -> int:
    """How many messages to run per point: enough bytes for a steady
    state without letting small sizes run forever."""
    return max(lo, min(hi, target_bytes // max(message_bytes, 1)))


# ---------------------------------------------------------------------------
# Table 1: round-trip latency
# ---------------------------------------------------------------------------

def measure_round_trip(machine: MachineSpec, message_bytes: int,
                       protocol: str = "udp", rounds: int = 5,
                       udp_checksum: bool = False) -> float:
    """Median round-trip latency (us) between two test programs."""
    net = BackToBack(machine, udp_checksum=udp_checksum)
    if protocol == "udp":
        app_a, app_b = net.open_udp_pair(echo_b=True)
    elif protocol == "atm":
        app_a, app_b = net.open_raw_pair(echo_b=True)
    else:
        raise ValueError(f"unknown protocol {protocol!r}")

    samples: list[float] = []

    def pinger():
        for _ in range(rounds):
            start = net.sim.now
            before = len(app_a.receptions)
            yield from app_a.send_length(message_bytes)
            while len(app_a.receptions) == before:
                yield app_a.on_receive
            samples.append(net.sim.now - start)

    spawn(net.sim, pinger(), "pinger")
    net.sim.run()
    samples.sort()
    return samples[len(samples) // 2]


# ---------------------------------------------------------------------------
# Figures 2 and 3: receive-side throughput in isolation
# ---------------------------------------------------------------------------

def measure_receive_throughput(machine: MachineSpec, message_bytes: int,
                               dma_mode: DmaMode = DmaMode.SINGLE_CELL,
                               cache_policy: Optional[CachePolicyKind] =
                               None,
                               udp_checksum: bool = False,
                               warmup: int = 2,
                               messages: Optional[int] = None
                               ) -> ThroughputResult:
    """The section 4 receive-isolation experiment.

    'The receiver processor of the OSIRIS board was programmed to
    generate fictitious PDUs as fast as the receiving host could
    absorb them.'  The PDUs are real UDP/IP fragments; the host runs
    its complete receive path.  Goodput is measured at the test
    program over the post-warmup window.
    """
    if cache_policy is None:
        cache_policy = (CachePolicyKind.NONE
                        if machine.cache.coherent_with_dma
                        else CachePolicyKind.LAZY)
    config = DriverConfig(rx_dma_mode=dma_mode, cache_policy=cache_policy)
    sim = Simulator()
    host = Host(sim, machine, config=config, udp_checksum=udp_checksum)
    host.connect_receive_only(flow_controlled=True)
    app, path = host.open_udp_path(local_port=7, remote_port=9)

    pdus = udp_ip_message_pdus(message_bytes, host.ip.mtu,
                               checksum=udp_checksum)
    total = warmup + (messages or message_count_for(message_bytes))

    stats = {"start": 0.0, "bytes": 0, "count": 0, "end": 0.0}

    def on_receive(reception):
        if stats["count"] == warmup - 1:
            stats["start"] = sim.now
        elif stats["count"] >= warmup:
            stats["bytes"] += reception.length
            stats["end"] = sim.now
        stats["count"] += 1

    app.on_receive.subscribe(on_receive)
    FramedPduSource(sim, host.board, vci=path.vci, pdus=pdus,
                    repeat=total)
    sim.run()
    elapsed = stats["end"] - stats["start"]
    mbps = stats["bytes"] * 8.0 / elapsed if elapsed > 0 else 0.0
    rxp = host.rxp
    return ThroughputResult(
        message_bytes=message_bytes, mbps=mbps, messages=stats["count"],
        interrupts=host.kernel.interrupts_serviced,
        bus_utilization=host.tc.utilization(),
        combined_dmas=rxp.combined_dmas if rxp else 0,
        single_dmas=rxp.single_dmas if rxp else 0)


# ---------------------------------------------------------------------------
# Figure 4: transmit-side throughput
# ---------------------------------------------------------------------------

def measure_transmit_throughput(machine: MachineSpec, message_bytes: int,
                                dma_mode: DmaMode = DmaMode.SINGLE_CELL,
                                udp_checksum: bool = False,
                                warmup: int = 2,
                                messages: Optional[int] = None,
                                wiring_style=None,
                                align_messages: bool = False,
                                ip_mtu: Optional[int] = None
                                ) -> ThroughputResult:
    """Transmit-side isolation: the host pumps messages through its
    full send path; cells leaving the board are discarded (an
    infinitely fast receiver).  Throughput counts message data bytes
    handed to the wire."""
    config = DriverConfig(tx_dma_mode=dma_mode)
    if wiring_style is not None:
        config.wiring_style = wiring_style
    sim = Simulator()
    host = Host(sim, machine, config=config, udp_checksum=udp_checksum,
                ip_mtu=ip_mtu)
    host.connect(link=None, deliver=lambda cell: None)
    app, path = host.open_udp_path(local_port=7, remote_port=9)

    n_messages = messages or message_count_for(message_bytes)
    total = warmup + n_messages
    marks = {"start": 0.0, "end": 0.0, "sent": 0}

    def sender():
        from ..sim import Delay
        for i in range(total):
            if i == warmup:
                marks["start"] = sim.now
            yield from app.send_message(b"\xA5" * message_bytes,
                                        align_page=align_messages)
            marks["sent"] += 1
        # Wait for the board to drain the final PDU.
        queue = host.board.kernel_channel.tx_queue
        while not queue.is_empty(by_host=True):
            yield Delay(50.0)

    spawn(sim, sender(), "tx-pump")
    sim.run()
    marks["end"] = sim.now
    elapsed = marks["end"] - marks["start"]
    data_bytes = n_messages * message_bytes
    mbps = data_bytes * 8.0 / elapsed if elapsed > 0 else 0.0
    return ThroughputResult(
        message_bytes=message_bytes, mbps=mbps, messages=marks["sent"],
        interrupts=host.kernel.interrupts_serviced,
        bus_utilization=host.tc.utilization())


__all__ = [
    "ThroughputResult", "message_count_for",
    "measure_round_trip", "measure_receive_throughput",
    "measure_transmit_throughput",
]

"""Workload builders: wire images of UDP/IP messages.

The receive-isolation experiments (figures 2 and 3) need the board to
generate PDUs that look exactly like what a peer's stack would have
sent: each IP fragment is one driver-level PDU carrying IP and
(for the first fragment) UDP headers.  These builders mirror the
sender-side logic of :mod:`repro.xkernel.protocols` byte-for-byte.
"""

from __future__ import annotations


from ..atm.crc import fast_internet_checksum as internet_checksum
from ..xkernel.protocols import ip as ip_proto
from ..xkernel.protocols import udp as udp_proto


def pattern_data(nbytes: int, tag: bytes = b"OSIRIS-DATA.") -> bytes:
    """Deterministic non-trivial payload bytes."""
    reps = nbytes // len(tag) + 1
    return (tag * reps)[:nbytes]


def build_udp_packet(data: bytes, src_port: int, dst_port: int,
                     checksum: bool) -> bytes:
    csum = internet_checksum(data) if checksum else 0
    header = udp_proto.HEADER.pack(src_port, dst_port, len(data), csum)
    return header + data


def build_ip_fragments(packet: bytes, mtu: int, ident: int,
                       proto_id: int = 17) -> list[bytes]:
    """Cut a transport packet into IP-fragment PDUs (sender view)."""
    payload_per_frag = mtu - ip_proto.HEADER_BYTES
    total = len(packet)
    fragments = []
    offset = 0
    while offset < total:
        take = min(payload_per_frag, total - offset)
        more = offset + take < total
        flags = ip_proto.FLAG_MORE_FRAGMENTS if more else 0
        header = ip_proto.HEADER.pack(ident, offset, total, flags,
                                      proto_id, 0)
        csum = internet_checksum(header)
        header = ip_proto.HEADER.pack(ident, offset, total, flags,
                                      proto_id, csum)
        fragments.append(header + packet[offset:offset + take])
        offset += take
    return fragments or [packet]


def udp_ip_message_pdus(message_bytes: int, mtu: int,
                        src_port: int = 9, dst_port: int = 7,
                        checksum: bool = False,
                        ident: int = 0x5150) -> list[bytes]:
    """Driver-level PDUs for one UDP/IP message of ``message_bytes``."""
    packet = build_udp_packet(pattern_data(message_bytes),
                              src_port, dst_port, checksum)
    return build_ip_fragments(packet, mtu, ident)


__all__ = [
    "pattern_data", "build_udp_packet", "build_ip_fragments",
    "udp_ip_message_pdus",
]

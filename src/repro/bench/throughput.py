"""Figures 2-4: throughput sweeps, as complete experiment definitions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..driver.config import CachePolicyKind
from ..hw.dma import DmaMode
from ..hw.specs import DEC3000_600, DS5000_200, MachineSpec
from .harness import (
    ThroughputResult, measure_receive_throughput,
    measure_transmit_throughput,
)
from .report import format_series, to_json

# Message sizes in KB, as on the figures' x axes (1..256 KB).
FIGURE_SIZES_KB = (1, 2, 4, 8, 16, 32, 64, 128, 256)

# Peak values read off the paper's figures (Mbps at large messages).
PAPER_FIGURE_2 = {
    "double cell DMA": 379,
    "single cell DMA": 340,
    "single cell DMA, cache invalidated": 250,
}
PAPER_FIGURE_3 = {
    "double cell DMA": 516,
    "double cell DMA, UDP-CS": 438,
    "single cell DMA": 460,
    "single cell DMA, UDP-CS": 438,
}
PAPER_FIGURE_4 = {
    "3000/600": 325,
    "3000/600, UDP-CS": 315,
    "5000/200": 280,
}


@dataclass
class FigureResult:
    title: str
    sizes_kb: tuple
    series: dict[str, list[float]] = field(default_factory=dict)
    details: dict[str, list[ThroughputResult]] = field(
        default_factory=dict)

    def peak(self, name: str) -> float:
        return max(self.series[name])

    def at(self, name: str, size_kb: int) -> float:
        return self.series[name][self.sizes_kb.index(size_kb)]

    def render(self, paper: Optional[dict] = None) -> str:
        note = None
        if paper:
            note = ", ".join(f"{k} peaks ~{v}" for k, v in paper.items())
        return format_series(self.title, "KB", "Mbps",
                             self.sizes_kb, self.series, paper_note=note)

    def to_dict(self, paper: Optional[dict] = None) -> dict:
        return {
            "figure": self.title,
            "unit": "Mbps",
            "sizes_kb": list(self.sizes_kb),
            "series": {name: list(values)
                       for name, values in self.series.items()},
            "paper_peaks": dict(paper) if paper else None,
        }

    def to_json(self, paper: Optional[dict] = None,
                indent: int = 2) -> str:
        return to_json(self.to_dict(paper), indent=indent)


def _sweep_receive(title: str, machine: MachineSpec, configs: dict,
                   sizes_kb=FIGURE_SIZES_KB) -> FigureResult:
    result = FigureResult(title=title, sizes_kb=tuple(sizes_kb))
    for name, kwargs in configs.items():
        points = []
        for kb in sizes_kb:
            points.append(measure_receive_throughput(
                machine, kb * 1024, **kwargs))
        result.details[name] = points
        result.series[name] = [p.mbps for p in points]
    return result


def run_figure2(sizes_kb=FIGURE_SIZES_KB) -> FigureResult:
    """DEC 5000/200 UDP/IP/OSIRIS receive-side throughput."""
    configs = {
        "double cell DMA": {"dma_mode": DmaMode.DOUBLE_CELL},
        "single cell DMA": {"dma_mode": DmaMode.SINGLE_CELL},
        "single cell DMA, cache invalidated": {
            "dma_mode": DmaMode.SINGLE_CELL,
            "cache_policy": CachePolicyKind.EAGER},
    }
    return _sweep_receive(
        "Figure 2: DEC 5000/200 UDP/IP/OSIRIS receive-side throughput",
        DS5000_200, configs, sizes_kb)


def run_figure3(sizes_kb=FIGURE_SIZES_KB) -> FigureResult:
    """DEC 3000/600 UDP/IP/OSIRIS receive-side throughput."""
    configs = {
        "double cell DMA": {"dma_mode": DmaMode.DOUBLE_CELL},
        "double cell DMA, UDP-CS": {"dma_mode": DmaMode.DOUBLE_CELL,
                                    "udp_checksum": True},
        "single cell DMA": {"dma_mode": DmaMode.SINGLE_CELL},
        "single cell DMA, UDP-CS": {"dma_mode": DmaMode.SINGLE_CELL,
                                    "udp_checksum": True},
    }
    return _sweep_receive(
        "Figure 3: DEC 3000/600 UDP/IP/OSIRIS receive-side throughput",
        DEC3000_600, configs, sizes_kb)


def run_figure4(sizes_kb=FIGURE_SIZES_KB) -> FigureResult:
    """UDP/IP/OSIRIS transmit-side throughput (single-cell DMA; the
    longer-DMA hardware change was not complete, section 4)."""
    result = FigureResult(
        title="Figure 4: UDP/IP/OSIRIS transmit-side throughput",
        sizes_kb=tuple(sizes_kb))
    configs = {
        "3000/600": (DEC3000_600, {}),
        "3000/600, UDP-CS": (DEC3000_600, {"udp_checksum": True}),
        "5000/200": (DS5000_200, {}),
    }
    for name, (machine, kwargs) in configs.items():
        points = []
        for kb in sizes_kb:
            # Enough messages that window-boundary effects stay small
            # even at 256 KB.
            count = max(8, min(200, (2 << 20) // (kb * 1024)))
            points.append(measure_transmit_throughput(
                machine, kb * 1024, messages=count, **kwargs))
        result.details[name] = points
        result.series[name] = [p.mbps for p in points]
    return result


__all__ = [
    "run_figure2", "run_figure3", "run_figure4", "FigureResult",
    "FIGURE_SIZES_KB", "PAPER_FIGURE_2", "PAPER_FIGURE_3",
    "PAPER_FIGURE_4",
]

"""ASCII and JSON rendering of paper-style tables and figure series."""

from __future__ import annotations

import json
import math
from typing import Any, Mapping, Optional, Sequence


def format_table(title: str, col_header: str,
                 columns: Sequence, rows: Mapping[str, Sequence[float]],
                 unit: str = "", width: int = 8) -> str:
    """A Table-1-like grid: one row label per series."""
    lines = [title, ""]
    header = f"{col_header:<28}" + "".join(
        f"{str(c):>{width}}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows.items():
        cells = "".join(
            f"{v:>{width}.0f}" if v == v else f"{'-':>{width}}"
            for v in values)
        lines.append(f"{label:<28}{cells}")
    if unit:
        lines.append(f"(values in {unit})")
    return "\n".join(lines)


def format_series(title: str, x_label: str, y_label: str,
                  xs: Sequence, series: Mapping[str, Sequence[float]],
                  paper_note: Optional[str] = None) -> str:
    """A figure as a column-per-series table plus an ascii sketch."""
    lines = [title, ""]
    header = f"{x_label:>12}" + "".join(
        f"{name:>24}" for name in series)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(xs):
        row = f"{str(x):>12}"
        for values in series.values():
            value = values[i] if i < len(values) else float("nan")
            row += f"{value:>24.1f}"
        lines.append(row)
    lines.append(f"({y_label})")
    if paper_note:
        lines.append(f"paper: {paper_note}")
    lines.append("")
    lines.append(_sketch(xs, series))
    return "\n".join(lines)


def _sketch(xs: Sequence, series: Mapping[str, Sequence[float]],
            height: int = 12, width: int = 60) -> str:
    """A crude ascii plot, one mark character per series."""
    marks = "*+o#x@"
    all_values = [v for vs in series.values() for v in vs if v == v]
    if not all_values:
        return "(no data)"
    top = max(all_values) * 1.05
    grid = [[" "] * width for _ in range(height)]
    n = max(len(xs) - 1, 1)
    for si, (_name, values) in enumerate(series.items()):
        for i, v in enumerate(values):
            if v != v:
                continue
            col = int(i / n * (width - 1))
            row = height - 1 - int(v / top * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[row][col] = marks[si % len(marks)]
    lines = []
    for i, row in enumerate(grid):
        level = top * (height - 1 - i) / (height - 1)
        lines.append(f"{level:7.0f} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    legend = "  ".join(
        f"{marks[i % len(marks)]}={name}"
        for i, name in enumerate(series))
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def jsonable(value: Any) -> Any:
    """Recursively coerce to JSON-serializable types.  Non-finite
    floats (the figures use NaN for missing points) become null;
    mapping keys become strings."""
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def to_json(payload: Any, indent: int = 2) -> str:
    """Canonical JSON for benchmark artifacts: keys sorted and
    non-finite floats nulled, so equal runs serialize to identical
    bytes -- the property that lets trajectories be diffed across
    PRs."""
    return json.dumps(jsonable(payload), indent=indent, sort_keys=True)


def ratio_note(measured: float, paper: float) -> str:
    """'361 vs paper 340 (1.06x)' -- used in EXPERIMENTS.md rows."""
    if paper == 0:
        return f"{measured:.0f} vs paper {paper}"
    return f"{measured:.0f} vs paper {paper:.0f} ({measured / paper:.2f}x)"


__all__ = ["format_table", "format_series", "ratio_note",
           "jsonable", "to_json"]

"""ADC protection analysis helpers.

The memory-access policing itself lives on the board
(:meth:`repro.osiris.board.Channel.page_authorized`, checked by the
transmit processor) and in the kernel's violation dispatch
(:meth:`repro.driver.osiris_driver.OsirisDriver.register_violation_handler`).
This module adds small utilities for reasoning about grants, used by
tests and the ADC example.
"""

from __future__ import annotations

from ..osiris.board import Channel
from .channel import AdcGrant


def authorized_page_count(grant: AdcGrant) -> int:
    """Number of physical pages the application may DMA to/from."""
    channel = grant.channel
    if channel.allowed_pages is None:
        return -1  # unrestricted (never the case for a real ADC)
    return len(channel.allowed_pages)


def grants_overlap(a: AdcGrant, b: AdcGrant) -> bool:
    """True when two ADCs share any authorized physical page --
    which would let one application corrupt another's buffers."""
    pages_a = a.channel.allowed_pages or set()
    pages_b = b.channel.allowed_pages or set()
    return bool(pages_a & pages_b)


def can_access(channel: Channel, addr: int, length: int,
               page_size: int) -> bool:
    """Would the board accept this buffer address from this channel?"""
    return channel.page_authorized(addr, length, page_size)


__all__ = ["authorized_page_count", "grants_overlap", "can_access"]

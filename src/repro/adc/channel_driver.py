"""The user-space ADC channel driver (paper, section 3.2).

'Linked with the application is an ADC channel driver, which performs
essentially the same functions as the in-kernel OSIRIS device driver.'
It talks to its own pair of dual-port pages directly -- no system
call, no domain crossing -- and its receive thread is signalled from
the kernel's interrupt handler.

Differences from the kernel driver that matter for latency:

* no per-send page wiring: the OS wired the ADC's buffers at setup;
* no protection-domain crossing anywhere on the data path;
* buffers come from the fixed OS-authorized set, recycled in place.
"""

from __future__ import annotations

import struct
from typing import Any, Generator, Optional

from ..host.kernel import HostOS
from ..osiris.board import OsirisBoard
from ..osiris.descriptors import Descriptor, FLAG_END_OF_PDU
from ..osiris.queues import DescriptorQueue
from ..sim import Resource, Signal, SimulationError, Simulator
from ..xkernel.message import Message
from ..xkernel.protocol import Protocol, Session
from .channel import AdcGrant

_TRAILER = struct.Struct(">II")


class AdcProtocol(Protocol):
    def __init__(self) -> None:
        super().__init__("adc")


class AdcSession(Session):
    """Bottom of an application-linked path over an ADC."""

    def __init__(self, protocol: AdcProtocol,
                 driver: "AdcChannelDriver", vci: int):
        super().__init__(protocol, below=None)
        self.driver = driver
        self.vci = vci
        self.space = driver.grant.domain.space

    def send(self, msg: Message) -> Generator[Any, Any, None]:
        yield from self.driver.send_pdu(msg, self.vci)

    def deliver(self, msg: Message) -> Generator[Any, Any, None]:
        yield from self._deliver_above(msg)


class AccessViolation(Exception):
    """The board rejected an unauthorized buffer address."""


class AdcChannelDriver:
    """Application-side driver over one ADC queue-pair."""

    def __init__(self, sim: Simulator, kernel: HostOS,
                 board: OsirisBoard, grant: AdcGrant, kernel_driver):
        self.sim = sim
        self.kernel = kernel
        self.board = board
        self.grant = grant
        self.protocol = AdcProtocol()
        self.bufsize = grant.buffer_bytes
        self._send_lock = Resource(sim, "adc-send", capacity=1)
        self._rx_signal = Signal("adc.rx")
        self._rx_pending = False
        self._tx_cursor = 0
        self._paths: dict[int, AdcSession] = {}
        self.pdus_sent = 0
        self.pdus_received = 0
        self.rx_errors = 0
        self.violations = 0

        channel = grant.channel
        for addr in grant.rx_buffers:
            if not channel.free_queue.push(
                    Descriptor(addr=addr, length=self.bufsize)):
                raise SimulationError("ADC free queue too small")
        channel.free_queue.host_access.reset()
        self._returned: list[Descriptor] = []

        kernel_driver.register_adc_rx(channel.channel_id, self._on_rx)
        kernel_driver.register_violation_handler(
            channel.channel_id, self._on_violation)
        self.rx_thread = kernel.spawn_thread(
            self._rx_loop(), f"adc{channel.channel_id}-rx")

    # -- paths --------------------------------------------------------------------

    def open_path(self, vci: Optional[int] = None) -> AdcSession:
        if vci is None:
            vci = self.grant.vcis[0]
        if vci not in self.grant.vcis:
            raise SimulationError(f"VCI {vci} not assigned to this ADC")
        if vci in self._paths:
            raise SimulationError(f"VCI {vci} already open")
        session = AdcSession(self.protocol, self, vci)
        self._paths[vci] = session
        return session

    # -- transmit ------------------------------------------------------------------

    def new_message(self, data: bytes) -> Message:
        """Place outgoing data in the ADC's authorized transmit region."""
        if self._tx_cursor + len(data) > self.grant.tx_region_bytes:
            self._tx_cursor = 0  # ring reuse
        vaddr = self.grant.tx_region_vaddr + self._tx_cursor
        self._tx_cursor += max(len(data), 1)
        space = self.grant.domain.space
        space.write(vaddr, data)
        return Message(space, [(vaddr, len(data))])

    def send_pdu(self, msg: Message,
                 vci: int) -> Generator[Any, Any, None]:
        """Queue a PDU directly -- no kernel, no wiring (pre-wired)."""
        grant = yield self._send_lock.request()
        try:
            yield from self._send_pdu_locked(msg, vci)
        finally:
            grant.release()

    def _send_pdu_locked(self, msg: Message,
                         vci: int) -> Generator[Any, Any, None]:
        costs = self.kernel.machine.costs
        cpu = self.kernel.cpu
        queue = self.grant.channel.tx_queue
        yield from cpu.execute(costs.driver_tx_pdu)
        buffers = msg.physical_buffers()
        for index, buf in enumerate(buffers):
            yield from cpu.execute(costs.driver_tx_buffer)
            flags = FLAG_END_OF_PDU if index == len(buffers) - 1 else 0
            desc = Descriptor(addr=buf.addr, length=buf.length,
                              flags=flags, vci=vci)
            while True:
                ok = queue.push(desc, by_host=True)
                yield from self._charge_queue_access(queue)
                if ok:
                    break
                from ..sim import Delay
                yield Delay(20.0)  # spin briefly; ADC queues are shallow
        self.pdus_sent += 1

    # -- receive --------------------------------------------------------------------

    def _on_rx(self) -> None:
        self._rx_pending = True
        self._rx_signal.fire()

    def _on_violation(self) -> None:
        self.violations += 1

    def _charge_queue_access(self, queue: DescriptorQueue
                             ) -> Generator[Any, Any, None]:
        reads, writes = queue.host_access.reset()
        if reads:
            yield from self.board.tc.pio_read_words(reads)
        if writes:
            yield from self.board.tc.pio_write_words(writes)

    def _rx_loop(self) -> Generator[Any, Any, None]:
        while True:
            if not self._rx_pending:
                yield self._rx_signal
            self._rx_pending = False
            yield from self._drain()

    def _drain(self) -> Generator[Any, Any, None]:
        costs = self.kernel.machine.costs
        cpu = self.kernel.cpu
        channel = self.grant.channel
        queue = channel.recv_queue
        pending: dict[int, list[Descriptor]] = {}
        while True:
            desc = queue.pop(by_host=True)
            yield from self._charge_queue_access(queue)
            if desc is None:
                if any(pending.values()):
                    yield queue.became_nonempty
                    continue
                return
            yield from cpu.execute(costs.driver_rx_buffer)
            yield from self._replenish()
            pdu = pending.setdefault(desc.vci, [])
            pdu.append(desc)
            if desc.error:
                self.rx_errors += 1
                self._returned.extend(
                    Descriptor(addr=d.addr, length=self.bufsize)
                    for d in pdu)
                del pending[desc.vci]
                continue
            if desc.end_of_pdu:
                del pending[desc.vci]
                yield from self._deliver(pdu)

    def _replenish(self) -> Generator[Any, Any, None]:
        queue = self.grant.channel.free_queue
        while self._returned:
            if not queue.push(self._returned[0]):
                queue.host_access.reset()
                break
            self._returned.pop(0)
            yield from self._charge_queue_access(queue)

    def _deliver(self, descs: list[Descriptor]
                 ) -> Generator[Any, Any, None]:
        costs = self.kernel.machine.costs
        cpu = self.kernel.cpu
        yield from cpu.execute(costs.driver_rx_pdu)
        total = sum(d.length for d in descs)
        yield from cpu.execute(costs.driver_rx_per_byte * total)
        session = self._paths.get(descs[-1].vci)
        if session is None:
            self.rx_errors += 1
            self._returned.extend(
                Descriptor(addr=d.addr, length=self.bufsize)
                for d in descs)
            return
        data_len = self._trailer_length(descs, total)
        if data_len is None:
            self.rx_errors += 1
            self._returned.extend(
                Descriptor(addr=d.addr, length=self.bufsize)
                for d in descs)
            return
        segments = [(d.addr, d.length) for d in descs]
        msg = Message(self.grant.domain.space, segments)
        captured = list(descs)
        msg.add_release(lambda: self._returned.extend(
            Descriptor(addr=d.addr, length=self.bufsize)
            for d in captured))
        msg.truncate(data_len)
        self.pdus_received += 1
        yield from session.deliver(msg)

    def _trailer_length(self, descs: list[Descriptor],
                        total: int) -> Optional[int]:
        if not self.board.fidelity.copy_data:
            return max(total - 8, 0)
        last = descs[-1]
        raw = self.kernel.cache.read(last.addr + last.length - 8, 8)
        length, _crc = _TRAILER.unpack(raw)
        pad = total - 8 - length
        if 0 <= pad < 44:
            return length
        return None


__all__ = ["AdcChannelDriver", "AdcSession", "AdcProtocol",
           "AccessViolation"]

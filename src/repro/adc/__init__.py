"""Application device channels: user-space direct adaptor access."""

from .channel import AdcGrant, AdcManager
from .channel_driver import (
    AccessViolation, AdcChannelDriver, AdcProtocol, AdcSession,
)
from .protection import authorized_page_count, can_access, grants_overlap

__all__ = [
    "AdcManager", "AdcGrant",
    "AdcChannelDriver", "AdcSession", "AdcProtocol", "AccessViolation",
    "authorized_page_count", "grants_overlap", "can_access",
]

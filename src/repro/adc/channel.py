"""Application device channels: OS-side setup (paper, section 3.2).

An ADC gives an application *restricted but direct* access to the
adaptor: the OS maps one transmit page and one receive page of the
board's dual-port memory into the application's address space, assigns
a set of VCIs, a priority, and a list of physical pages the
application may use as buffers.  Afterwards the kernel is bypassed on
the data path; it remains involved only in connection setup/teardown,
interrupt fielding, and policing (the board raises a protection
interrupt if the application queues an unauthorized address).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..host.domains import ProtectionDomain
from ..host.kernel import HostOS
from ..osiris.board import Channel, N_CHANNELS, OsirisBoard
from ..sim import SimulationError


@dataclass
class AdcGrant:
    """What the OS hands the application at ADC setup."""

    channel: Channel
    domain: ProtectionDomain
    vcis: list[int]
    priority: int
    # Physical receive buffers (OS-allocated, mapped into the app).
    rx_buffers: list[int]
    buffer_bytes: int
    # A transmit region the app may send from (pre-wired).
    tx_region_addr: int
    tx_region_bytes: int
    tx_region_vaddr: int = 0
    rx_buffer_vaddrs: list[int] = field(default_factory=list)


class AdcManager:
    """The kernel's ADC service: open/close application device channels."""

    def __init__(self, kernel: HostOS, board: OsirisBoard):
        self.kernel = kernel
        self.board = board
        self._next_vci = 0x4000
        self.grants: dict[int, AdcGrant] = {}

    def open(self, domain: ProtectionDomain, priority: int = 1,
             n_vcis: int = 1, n_rx_buffers: int = 8,
             tx_region_bytes: int = 64 * 1024,
             channel_id: Optional[int] = None) -> AdcGrant:
        """Create an ADC for ``domain``.

        Allocates physically contiguous buffers (the OS controls the
        page list, so it can), maps everything into the application's
        address space, wires it once, authorizes exactly those pages
        on the board, and binds the VCIs to the channel.
        """
        if channel_id is None:
            channel_id = self._pick_channel()
        if not 1 <= channel_id < N_CHANNELS:
            raise SimulationError("ADC channels are 1..15")
        memory = self.kernel.memory
        page = memory.page_size
        buffer_bytes = self.board.spec.recv_buffer_bytes

        rx_buffers = []
        rx_vaddrs = []
        allowed: set[int] = set()
        for _ in range(n_rx_buffers):
            addr = memory.alloc_contiguous(buffer_bytes)
            rx_buffers.append(addr)
            vaddr = domain.space.map_identity(addr, buffer_bytes)
            rx_vaddrs.append(vaddr)
            self._authorize(allowed, addr, buffer_bytes, page)

        tx_addr = memory.alloc_contiguous(tx_region_bytes)
        tx_vaddr = domain.space.map_identity(tx_addr, tx_region_bytes)
        self._authorize(allowed, tx_addr, tx_region_bytes, page)
        # ADC pages are wired once at setup -- no per-send wiring cost.
        domain.space.wire(tx_vaddr, tx_region_bytes)

        channel = self.board.open_channel(channel_id, priority=priority,
                                          allowed_pages=allowed)
        vcis = []
        for _ in range(n_vcis):
            vci = self._next_vci
            self._next_vci += 1
            self.board.bind_vci(vci, channel_id)
            vcis.append(vci)

        grant = AdcGrant(channel=channel, domain=domain, vcis=vcis,
                         priority=priority, rx_buffers=rx_buffers,
                         buffer_bytes=buffer_bytes,
                         tx_region_addr=tx_addr,
                         tx_region_bytes=tx_region_bytes,
                         tx_region_vaddr=tx_vaddr,
                         rx_buffer_vaddrs=rx_vaddrs)
        self.grants[channel_id] = grant
        return grant

    def close(self, grant: AdcGrant) -> None:
        channel_id = grant.channel.channel_id
        self.board.close_channel(channel_id)
        del self.grants[channel_id]

    def _pick_channel(self) -> int:
        for cid in range(1, N_CHANNELS):
            if not self.board.channels[cid].open:
                return cid
        raise SimulationError("no free ADC channels")

    @staticmethod
    def _authorize(allowed: set[int], addr: int, nbytes: int,
                   page: int) -> None:
        first = addr - (addr % page)
        last = addr + nbytes - 1
        pos = first
        while pos <= last:
            allowed.add(pos)
            pos += page


__all__ = ["AdcManager", "AdcGrant"]

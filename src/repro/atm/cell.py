"""ATM cells as they appear to the OSIRIS board.

The board strips the ATM and AAL headers in hardware and presents the
receive processor with (VCI, AAL info) pairs read from a FIFO (paper,
section 1).  We therefore model a cell as the information content that
survives that stripping:

* ``vci`` -- the virtual circuit identifier, the demultiplexing key.
* ``payload`` -- the 44-byte AAL payload (48-byte ATM payload minus
  AAL overhead, per the paper).
* ``eom`` -- the AAL5-style framing bit marking the last cell of a PDU.
* ``seq`` -- an optional per-cell sequence number carried in the AAL
  header; only used by the sequence-number skew strategy of
  section 2.6 (it is non-standard, as the paper notes).
* ``atm_last`` -- the optional extra framing bit in the ATM header
  that marks the very last cell of a PDU, proposed for the concurrent
  reassembly strategy when a PDU is shorter than the stripe width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hw.specs import AAL_PAYLOAD_BYTES, ATM_CELL_BYTES


@dataclass
class Cell:
    """One ATM cell after header stripping."""

    vci: int
    payload: bytes
    eom: bool = False
    seq: Optional[int] = None
    atm_last: bool = False

    # Bookkeeping stamped by the transmission path (not protocol data).
    link_id: int = field(default=-1, compare=False)
    tx_index: int = field(default=-1, compare=False)
    # EFCI: the explicit forward congestion indication bit of the ATM
    # header, set by a congested switch port and read by the receiver
    # (the cheap alternative to credit flow control).
    efci: bool = field(default=False, compare=False)
    # Set by a fault site when it flips a payload bit; the receiver's
    # AAL5 CRC is what actually detects it -- this flag only feeds the
    # delivered-corrupted accounting in the conservation law.
    corrupted: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.payload) > AAL_PAYLOAD_BYTES:
            raise ValueError(
                f"cell payload {len(self.payload)} exceeds "
                f"{AAL_PAYLOAD_BYTES} bytes")
        if self.vci < 0 or self.vci > 0xFFFF:
            raise ValueError(f"VCI {self.vci} out of range")

    def rewrite(self, vci: int, link_id: int, efci: bool) -> "Cell":
        """A switch-rewritten copy: new VCI, output lane, EFCI state.

        Bypasses ``__init__`` -- the payload and framing bits were
        validated when this cell was created, and VCI rewriting is the
        per-cell hot path of both the drain loop and the fused train
        commit, which must stay cheap and *identical*.
        """
        c = Cell.__new__(Cell)
        c.vci = vci
        c.payload = self.payload
        c.eom = self.eom
        c.seq = self.seq
        c.atm_last = self.atm_last
        c.link_id = link_id
        c.tx_index = self.tx_index
        c.efci = efci
        c.corrupted = self.corrupted
        return c

    @property
    def wire_bytes(self) -> int:
        """Bytes occupied on the wire (full 53-byte cell)."""
        return ATM_CELL_BYTES

    def __repr__(self) -> str:
        flags = "".join([
            "E" if self.eom else "",
            "L" if self.atm_last else "",
        ])
        seq = f" seq={self.seq}" if self.seq is not None else ""
        return (f"Cell(vci={self.vci}, {len(self.payload)}B"
                f"{seq} {flags} link={self.link_id})")


__all__ = ["Cell"]

"""Physical link models.

A :class:`CellPipe` is one 155 Mbps channel: cells serialize at line
rate, experience a propagation delay plus a per-cell queueing delay
supplied by a skew model, and are delivered *in order* (delays are
clamped so a cell never overtakes its predecessor on the same link --
precisely the paper's definition of skew-class misordering).

Two execution modes share the identical timing model:

* the **per-cell pump** (default): a generator process pays one heap
  event per cell for the serialization delay;
* the **fast path** (:meth:`CellPipe.enable_trains`, used by the
  cluster fabric when cell trains are on): serialization completion
  times are computed arithmetically at submission, contiguous
  surviving cells accumulate into a :class:`~repro.sim.trains.
  CellTrain`, and per-cell events exist only where ordering can
  matter -- a nonzero skew sample, an in-order clamp, or a fault
  site with a scheduled state change due before the cell finishes
  serializing (the *deferred* fallback, which replays the exact
  per-cell pump event for every queued cell until the hazard passes).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Optional

from ..hw.specs import ATM_CELL_BYTES
from ..sim import Simulator, Store, spawn
from .cell import Cell

DeliverFn = Callable[[Cell], None]

OC3_MBPS = 155.52


class CellPipe:
    """One point-to-point physical channel carrying ATM cells."""

    def __init__(self, sim: Simulator, link_id: int,
                 deliver: DeliverFn,
                 rate_mbps: float = OC3_MBPS,
                 prop_delay_us: float = 5.0,
                 queueing_delay: Optional[Callable[[], float]] = None,
                 name: str = ""):
        self.sim = sim
        self.link_id = link_id
        self.deliver = deliver
        self.rate_mbps = rate_mbps
        self.prop_delay_us = prop_delay_us
        self.queueing_delay = queueing_delay
        self.name = name or f"link{link_id}"
        self.cell_time_us = ATM_CELL_BYTES * 8.0 / rate_mbps
        self.cells_carried = 0
        self.max_queue = 0
        # Optional FaultSite (repro.faults): consulted at emission time;
        # a lost cell is simply never scheduled for delivery.
        self.fault_site = None
        self._queue: Store = Store(sim, f"{self.name}.q")
        self._last_arrival = 0.0
        # Pluggable delivery scheduler.  A sharded fabric replaces this
        # to route the arrival through a boundary mailbox instead of the
        # local event queue; `arrival >= emission time + prop_delay_us`
        # is the lookahead guarantee the replacement relies on.
        self.schedule_delivery: Callable[[float, Cell], None] = \
            self._schedule_local
        # Fast path (cell trains): installed by the fabric via
        # enable_trains(); None means the per-cell pump owns the link.
        self._train_port = None
        self._busy_until = 0.0
        self._open_train = None
        self._deferred: deque = deque()     # (cell, t_done) pairs
        self._inflight_starts: deque = deque()
        spawn(sim, self._pump(), f"{self.name}.pump")

    def enable_trains(self, train_port) -> None:
        """Switch the link to the arithmetic fast path.

        ``train_port`` is the fabric's emission helper for this lane's
        boundary channel: ``emit_single(arrival, cell)`` schedules the
        ordinary keyed per-cell event, ``open(arrival, cell)`` starts
        a train (allocating its key block), ``append_bump()`` burns
        one channel sequence number for an appended cell, and
        ``allowed(cell)`` says whether trains may form at all for this
        cell's destination (a shard forbids them across boundaries).
        """
        self._train_port = train_port

    def submit(self, cell: Cell) -> None:
        """Hand a cell to the link (never blocks; the pipe queues)."""
        cell.link_id = self.link_id
        if self._train_port is not None:
            self._submit_fast(cell)
            return
        self._queue.try_put(cell)
        self.max_queue = max(self.max_queue, len(self._queue))

    # -- fast path -----------------------------------------------------------

    def _submit_fast(self, cell: Cell) -> None:
        now = self.sim.now
        busy = self._busy_until
        start = busy if busy > now else now
        t_done = start + self.cell_time_us
        self._busy_until = t_done
        # max_queue tracks cells submitted but not yet serializing,
        # exactly what the pump's Store would hold.
        starts = self._inflight_starts
        while starts and starts[0] <= now:
            starts.popleft()
        if start > now:
            starts.append(start)
            if len(starts) > self.max_queue:
                self.max_queue = len(starts)
        site = self.fault_site
        if self._deferred or (site is not None
                              and site.next_scheduled() < t_done):
            # A scheduled flap/kill lands before this cell finishes
            # serializing: its fate cannot be decided now.  Queue it
            # behind a real per-cell event at its completion time --
            # the exact event the pump would have run -- and keep
            # deferring until the backlog drains past the hazard.
            self._open_train = None
            self._deferred.append((cell, t_done))
            if len(self._deferred) == 1:
                self.sim.call_at(t_done, self._deferred_step)
            return
        self._finish_cell(cell, t_done, absorbed=True)

    def _deferred_step(self) -> None:
        cell, t_done = self._deferred.popleft()
        self._finish_cell(cell, t_done, absorbed=False)
        if self._deferred:
            self.sim.call_at(self._deferred[0][1], self._deferred_step)

    def _finish_cell(self, cell: Cell, t_done: float,
                     absorbed: bool) -> None:
        """Serialization finished at ``t_done``: decide fate, stamp
        the arrival, and emit -- arithmetically (``absorbed``) or from
        a real deferred event.  Mirrors the pump body line for line;
        the timing math must stay bitwise identical."""
        if absorbed:
            self.sim.events_absorbed += 1
        if self.fault_site is not None:
            cell = self.fault_site.filter(cell, t_done)
            if cell is None:
                if absorbed:
                    # No later event covers a lost cell; the clock
                    # must still land where the pump's serialization
                    # event would have left it.  (A surviving cell is
                    # always covered: its arrival event, train commit,
                    # or expansion all postdate t_done.)
                    self.sim.note_model_time(t_done)
                self._open_train = None     # a gap breaks the train
                return
        extra = self.queueing_delay() if self.queueing_delay else 0.0
        arrival = t_done + self.prop_delay_us + max(0.0, extra)
        clamped = arrival < self._last_arrival
        if clamped:
            arrival = self._last_arrival
        self._last_arrival = arrival
        self.cells_carried += 1
        port = self._train_port
        if (not absorbed or extra != 0.0 or clamped
                or not port.allowed(cell)):
            # Ordering can matter here (skew sample, in-order clamp,
            # deferred fallback, or a shard boundary): per-cell event.
            self._open_train = None
            port.emit_single(arrival, cell)
            return
        train = self._open_train
        if train is not None and train.try_append(cell, arrival):
            port.append_bump()
        else:
            self._open_train = train = port.open(arrival, cell)
        if cell.eom or cell.atm_last:
            self._open_train = None     # trains carry one PDU's cells

    def submit_burst(self, cells: list) -> None:
        """Submit one PDU's slice for this lane in a single call.

        Bitwise-equivalent to calling :meth:`submit` per cell, but the
        per-cell scheduling overhead is hoisted: serialization times
        chain through one local accumulator, the fault hazard window
        is checked once against the last completion time, and the
        train-port ``allowed`` check runs once (all cells of a PDU
        share a VCI, which is all ``allowed`` may depend on).  Any
        hazard -- deferred backlog, a scheduled fault change inside
        the burst's span -- falls back to the per-cell path wholesale,
        which makes the exact per-cell decisions.
        """
        port = self._train_port
        if port is None or self._deferred or not cells:
            for cell in cells:
                self.submit(cell)
            return
        now = self.sim.now
        busy = self._busy_until
        ct = self.cell_time_us
        start0 = busy if busy > now else now
        # Completion times chain exactly like the per-cell path:
        # t_done[i] = t_done[i-1] + cell_time.
        t_dones = []
        t = start0
        for _ in cells:
            t += ct
            t_dones.append(t)
        site = self.fault_site
        if site is not None and site.next_scheduled() < t_dones[-1]:
            for cell in cells:
                self.submit(cell)
            return
        self._busy_until = t_dones[-1]
        # max_queue parity: the per-cell loop appends each queued
        # service start; within a burst every cell after the first
        # waits, so the deque peaks at the end of the batch.
        starts = self._inflight_starts
        while starts and starts[0] <= now:
            starts.popleft()
        if start0 > now:
            starts.append(start0)
        starts.extend(t_dones[:-1])
        if len(starts) > self.max_queue:
            self.max_queue = len(starts)
        sim = self.sim
        sim.events_absorbed += len(cells)
        filt = site.filter if site is not None else None
        qd = self.queueing_delay
        prop = self.prop_delay_us
        lid = self.link_id
        last = self._last_arrival
        train = self._open_train
        allowed = port.allowed(cells[0])
        carried = 0
        for cell, t_done in zip(cells, t_dones):
            cell.link_id = lid
            if filt is not None:
                cell = filt(cell, t_done)
                if cell is None:
                    sim.note_model_time(t_done)
                    train = None
                    continue
            extra = qd() if qd is not None else 0.0
            arrival = t_done + prop + (extra if extra > 0.0 else 0.0)
            clamped = arrival < last
            if clamped:
                arrival = last
            last = arrival
            carried += 1
            if extra != 0.0 or clamped or not allowed:
                train = None
                port.emit_single(arrival, cell)
                continue
            if train is not None and not train.fired:
                train.cells.append(cell)
                train.times.append(arrival)
                port.append_bump()
            else:
                train = port.open(arrival, cell)
            if cell.eom or cell.atm_last:
                train = None    # trains carry one PDU's cells
        self._last_arrival = last
        self.cells_carried += carried
        self._open_train = train

    def _pump(self) -> Generator[Any, Any, None]:
        from ..sim import Delay
        while True:
            cell = yield self._queue.get()
            yield Delay(self.cell_time_us)  # serialization at line rate
            if self.fault_site is not None:
                cell = self.fault_site.filter(cell, self.sim.now)
                if cell is None:
                    continue    # lost on the wire
            extra = self.queueing_delay() if self.queueing_delay else 0.0
            arrival = self.sim.now + self.prop_delay_us + max(0.0, extra)
            # Clamp: cells on one physical link stay in order.
            arrival = max(arrival, self._last_arrival)
            self._last_arrival = arrival
            self.cells_carried += 1
            self.schedule_delivery(arrival, cell)

    def _schedule_local(self, arrival: float, cell: Cell) -> None:
        self.sim.call_at(arrival, self._make_delivery(cell))

    def _make_delivery(self, cell: Cell) -> Callable[[], None]:
        def fire() -> None:
            self.deliver(cell)
        return fire


__all__ = ["CellPipe", "OC3_MBPS"]

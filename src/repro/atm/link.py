"""Physical link models.

A :class:`CellPipe` is one 155 Mbps channel: cells serialize at line
rate, experience a propagation delay plus a per-cell queueing delay
supplied by a skew model, and are delivered *in order* (delays are
clamped so a cell never overtakes its predecessor on the same link --
precisely the paper's definition of skew-class misordering).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..hw.specs import ATM_CELL_BYTES
from ..sim import Simulator, Store, spawn
from .cell import Cell

DeliverFn = Callable[[Cell], None]

OC3_MBPS = 155.52


class CellPipe:
    """One point-to-point physical channel carrying ATM cells."""

    def __init__(self, sim: Simulator, link_id: int,
                 deliver: DeliverFn,
                 rate_mbps: float = OC3_MBPS,
                 prop_delay_us: float = 5.0,
                 queueing_delay: Optional[Callable[[], float]] = None,
                 name: str = ""):
        self.sim = sim
        self.link_id = link_id
        self.deliver = deliver
        self.rate_mbps = rate_mbps
        self.prop_delay_us = prop_delay_us
        self.queueing_delay = queueing_delay
        self.name = name or f"link{link_id}"
        self.cell_time_us = ATM_CELL_BYTES * 8.0 / rate_mbps
        self.cells_carried = 0
        self.max_queue = 0
        # Optional FaultSite (repro.faults): consulted at emission time;
        # a lost cell is simply never scheduled for delivery.
        self.fault_site = None
        self._queue: Store = Store(sim, f"{self.name}.q")
        self._last_arrival = 0.0
        # Pluggable delivery scheduler.  A sharded fabric replaces this
        # to route the arrival through a boundary mailbox instead of the
        # local event queue; `arrival >= emission time + prop_delay_us`
        # is the lookahead guarantee the replacement relies on.
        self.schedule_delivery: Callable[[float, Cell], None] = \
            self._schedule_local
        spawn(sim, self._pump(), f"{self.name}.pump")

    def submit(self, cell: Cell) -> None:
        """Hand a cell to the link (never blocks; the pipe queues)."""
        cell.link_id = self.link_id
        self._queue.try_put(cell)
        self.max_queue = max(self.max_queue, len(self._queue))

    def _pump(self) -> Generator[Any, Any, None]:
        from ..sim import Delay
        while True:
            cell = yield self._queue.get()
            yield Delay(self.cell_time_us)  # serialization at line rate
            if self.fault_site is not None:
                cell = self.fault_site.filter(cell, self.sim.now)
                if cell is None:
                    continue    # lost on the wire
            extra = self.queueing_delay() if self.queueing_delay else 0.0
            arrival = self.sim.now + self.prop_delay_us + max(0.0, extra)
            # Clamp: cells on one physical link stay in order.
            arrival = max(arrival, self._last_arrival)
            self._last_arrival = arrival
            self.cells_carried += 1
            self.schedule_delivery(arrival, cell)

    def _schedule_local(self, arrival: float, cell: Cell) -> None:
        self.sim.call_at(arrival, self._make_delivery(cell))

    def _make_delivery(self, cell: Cell) -> Callable[[], None]:
        def fire() -> None:
            self.deliver(cell)
        return fire


__all__ = ["CellPipe", "OC3_MBPS"]

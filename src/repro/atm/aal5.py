"""AAL5-style framing: padding, trailer, CRC, segmentation.

A PDU handed to the adaptation layer is padded to a whole number of
44-byte payloads; the final 8 bytes of the last cell carry a trailer
(payload length + CRC-32), mirroring real AAL5.  The framing bit
("end of message") travels in the AAL header of the last cell.

Three segmentation modes support section 2.6's skew strategies:

* ``IN_ORDER`` -- plain AAL5: one framing bit on the last cell.  Only
  correct when the network preserves cell order.
* ``SEQUENCE`` -- like IN_ORDER but every cell also carries a sequence
  number in its AAL header (strategy 1; non-standard).
* ``CONCURRENT`` -- the PDU is treated as ``stripe_width`` interleaved
  sub-packets, each ending with its own framing bit; the very last cell
  additionally carries the proposed extra ATM-header framing bit
  (strategy 2).
"""

from __future__ import annotations

import enum
import struct

from ..hw.specs import AAL_PAYLOAD_BYTES, STRIPE_LINKS
from .cell import Cell
from .crc import fast_crc32 as crc32

TRAILER_BYTES = 8
_TRAILER = struct.Struct(">II")  # (length, crc32)


class Aal5Error(Exception):
    """Framing violation detected during reassembly."""


class BadLength(Aal5Error):
    """Trailer length does not match the reassembled size."""


class BadCrc(Aal5Error):
    """CRC-32 mismatch -- corrupted (or stale, section 2.3) data."""


class SegmentMode(enum.Enum):
    IN_ORDER = "in-order"
    SEQUENCE = "sequence"
    CONCURRENT = "concurrent"


def framed_size(data_len: int) -> int:
    """Total framed bytes (data + pad + trailer), a multiple of 44."""
    raw = data_len + TRAILER_BYTES
    cells = -(-raw // AAL_PAYLOAD_BYTES)
    return cells * AAL_PAYLOAD_BYTES


def cell_count(data_len: int) -> int:
    """Number of cells a PDU of ``data_len`` bytes occupies."""
    return framed_size(data_len) // AAL_PAYLOAD_BYTES


def encode_pdu(data: bytes) -> bytes:
    """Pad ``data`` and append the AAL5 trailer."""
    total = framed_size(len(data))
    pad = total - len(data) - TRAILER_BYTES
    body = data + b"\x00" * pad
    crc = crc32(body + _TRAILER.pack(len(data), 0)[:4])
    return body + _TRAILER.pack(len(data), crc)


def decode_pdu(framed: bytes) -> bytes:
    """Strip padding and trailer, verifying length and CRC."""
    if len(framed) < TRAILER_BYTES or len(framed) % AAL_PAYLOAD_BYTES:
        raise BadLength(f"framed size {len(framed)} is not a cell multiple")
    length, crc = _TRAILER.unpack(framed[-TRAILER_BYTES:])
    if length > len(framed) - TRAILER_BYTES:
        raise BadLength(f"trailer length {length} exceeds PDU")
    pad = len(framed) - TRAILER_BYTES - length
    if pad >= AAL_PAYLOAD_BYTES:
        raise BadLength(f"implausible padding {pad}")
    body = framed[:-TRAILER_BYTES]
    expect = crc32(body + framed[-TRAILER_BYTES:-4])
    if expect != crc:
        raise BadCrc(f"crc {crc:#010x} != computed {expect:#010x}")
    return framed[:length]


def segment(data: bytes, vci: int,
            mode: SegmentMode = SegmentMode.IN_ORDER,
            stripe_width: int = STRIPE_LINKS) -> list[Cell]:
    """Frame ``data`` and cut it into cells per the chosen mode."""
    framed = encode_pdu(data)
    n = len(framed) // AAL_PAYLOAD_BYTES
    cells = []
    for i in range(n):
        payload = framed[i * AAL_PAYLOAD_BYTES:(i + 1) * AAL_PAYLOAD_BYTES]
        if mode is SegmentMode.CONCURRENT:
            eom = i >= n - min(stripe_width, n)
        else:
            eom = i == n - 1
        cells.append(Cell(
            vci=vci,
            payload=payload,
            eom=eom,
            seq=i if mode is SegmentMode.SEQUENCE else None,
            atm_last=(mode is SegmentMode.CONCURRENT and i == n - 1),
            tx_index=i,
        ))
    return cells


class Reassembler:
    """Plain in-order AAL5 reassembly for one VCI.

    Feed cells in arrival order; :meth:`push` returns the decoded PDU
    when the framing bit completes one, else ``None``.  Raises
    :class:`Aal5Error` subclasses on corruption.
    """

    def __init__(self, vci: int):
        self.vci = vci
        self._chunks: list[bytes] = []
        self.pdus_completed = 0
        self.errors = 0

    @property
    def cells_pending(self) -> int:
        return len(self._chunks)

    def push(self, cell: Cell) -> bytes | None:
        if cell.vci != self.vci:
            raise Aal5Error(
                f"cell for VCI {cell.vci} fed to reassembler {self.vci}")
        self._chunks.append(cell.payload)
        if not cell.eom:
            return None
        framed = b"".join(self._chunks)
        self._chunks = []
        try:
            pdu = decode_pdu(framed)
        except Aal5Error:
            self.errors += 1
            raise
        self.pdus_completed += 1
        return pdu


__all__ = [
    "Aal5Error", "BadLength", "BadCrc", "SegmentMode", "Reassembler",
    "encode_pdu", "decode_pdu", "segment", "framed_size", "cell_count",
    "TRAILER_BYTES",
]

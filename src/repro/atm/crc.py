"""Checksums implemented from scratch.

* CRC-32 with the IEEE 802.3 polynomial -- what AAL5 uses to protect a
  reassembled PDU.  Table-driven, reflected form.
* The 16-bit one's-complement Internet checksum used by IP and UDP.

Both are real implementations over real bytes: the lazy cache
invalidation experiment (section 2.3) relies on a stale read actually
failing its checksum.
"""

from __future__ import annotations

CRC32_POLY_REFLECTED = 0xEDB88320


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ CRC32_POLY_REFLECTED
            else:
                crc >>= 1
        table.append(crc)
    return table


_CRC_TABLE = _build_table()


def crc32(data: bytes, crc: int = 0) -> int:
    """CRC-32 (IEEE 802.3 / AAL5 polynomial), incremental.

    ``crc`` is a previous return value for incremental computation over
    scattered buffers; start with 0.
    """
    crc ^= 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _CRC_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


try:  # accelerated path for long PDUs; equality with the table-driven
    import zlib as _zlib  # implementation above is asserted in tests
except ImportError:  # pragma: no cover
    _zlib = None

try:
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def fast_crc32(data: bytes, crc: int = 0) -> int:
    """CRC-32 identical to :func:`crc32`, using zlib when available.

    The from-scratch :func:`crc32` stays the reference implementation;
    this is the hot-path variant the AAL5 layer calls for multi-KB
    PDUs.
    """
    if _zlib is not None:
        return _zlib.crc32(data, crc)
    return crc32(data, crc)


def fast_internet_checksum(data: bytes) -> int:
    """Internet checksum identical to :func:`internet_checksum`,
    vectorised with numpy for long buffers."""
    if _np is None or len(data) < 512:
        return internet_checksum(data)
    buf = data if len(data) % 2 == 0 else data + b"\x00"
    words = _np.frombuffer(buf, dtype=">u2").astype(_np.uint64)
    total = int(words.sum())
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """RFC 1071 one's-complement 16-bit checksum."""
    total = initial
    length = len(data)
    # Sum 16-bit big-endian words.
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length % 2:
        total += data[-1] << 8
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_internet_checksum(data: bytes) -> bool:
    """True when ``data`` (including its checksum field) sums to zero."""
    total = 0
    length = len(data)
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length % 2:
        total += data[-1] << 8
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF


__all__ = ["crc32", "fast_crc32", "internet_checksum",
           "fast_internet_checksum", "verify_internet_checksum"]

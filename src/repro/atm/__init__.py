"""ATM substrate: cells, AAL5 framing, SAR algorithms, links, striping."""

from .aal5 import (
    Aal5Error, BadCrc, BadLength, Reassembler, SegmentMode, TRAILER_BYTES,
    cell_count, decode_pdu, encode_pdu, framed_size, segment,
)
from .cell import Cell
from .crc import crc32, internet_checksum, verify_internet_checksum
from .link import CellPipe, OC3_MBPS
from .sar import (
    ConcurrentReassembler, LossDetected, SequenceNumberReassembler,
    SkewOverflow,
)
from .striping import SkewModel, StripedLink
from .switch import BACKPRESSURE_MODES, DRAIN_POLICIES, CellSwitch

__all__ = [
    "Cell",
    "crc32", "internet_checksum", "verify_internet_checksum",
    "Aal5Error", "BadCrc", "BadLength", "SegmentMode", "Reassembler",
    "encode_pdu", "decode_pdu", "segment", "framed_size", "cell_count",
    "TRAILER_BYTES",
    "SequenceNumberReassembler", "ConcurrentReassembler", "SkewOverflow",
    "LossDetected",
    "CellPipe", "OC3_MBPS", "SkewModel", "StripedLink", "CellSwitch",
    "BACKPRESSURE_MODES", "DRAIN_POLICIES",
]

"""Skew-tolerant reassembly algorithms (paper, section 2.6).

Striping cells over four physical links introduces *skew*: cells on
one link stay ordered relative to each other but may be delayed
relative to cells on other links.  The paper identifies two coping
strategies; both are implemented here as pure algorithms (the timed
versions inside the receive processor delegate to these).

Strategy 1 -- :class:`SequenceNumberReassembler`: every cell carries a
sequence number in its AAL header; the number determines where the
payload lands.  Drawback: the sequence space must bound the skew.

Strategy 2 -- :class:`ConcurrentReassembler`: treat the PDU as
``stripe_width`` interleaved sub-packets, run an AAL5 reassembly per
link, and declare the PDU complete when every sub-packet has seen its
framing bit.  PDUs shorter than the stripe width are resolved with the
extra ATM-header framing bit on the very last cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hw.specs import AAL_PAYLOAD_BYTES, STRIPE_LINKS
from .aal5 import Aal5Error, decode_pdu
from .cell import Cell


class SkewOverflow(Aal5Error):
    """Sequence-number window exceeded -- unbounded switch skew.

    The paper's first objection to strategy 1: skew from switch
    queueing is essentially unbounded, so no sequence space is
    guaranteed to be large enough.
    """


class LossDetected(Aal5Error):
    """A sequence gap persisted past the loss-declaration bound.

    A destroyed cell leaves a gap no amount of waiting can fill, but
    :class:`SkewOverflow` only fires once the stream runs a whole
    window past it -- on a short-lived flow that may be never, and the
    receiver wedges with every later PDU buffered behind the hole.
    When ``loss_resync_cells`` is set, the reassembler instead counts
    arrivals while the oldest end-of-message marker stays blocked;
    crossing the bound declares the missing cells destroyed so the
    caller can :meth:`SequenceNumberReassembler.gap_resync` past the
    damaged PDU and keep delivering.
    """


class SequenceNumberReassembler:
    """Strategy 1: place each cell by its AAL sequence number.

    Sequence numbers are continuous per VCI across PDUs (they locate
    the cell in the reassembly buffer); the framing bit still marks PDU
    boundaries.  ``window`` bounds how far ahead of the oldest missing
    cell a sequence number may run.

    Reassembly state belongs to the receive processor alone: cells
    enter via ``push`` and the resync paths, never concurrently.

    SRSW: _cells via push, resync, gap_resync
    """

    def __init__(self, vci: int, window: int = 1024,
                 loss_resync_cells: "int | None" = None):
        self.vci = vci
        self.window = window
        # How many cells may arrive while the oldest EOM sits blocked
        # behind a gap before the gap is declared a loss (None: wait
        # for the window to overflow, however long that takes).
        self.loss_resync_cells = loss_resync_cells
        self._cells: dict[int, bytes] = {}
        self._eoms: set[int] = set()
        self._start = 0  # seq of the first cell of the oldest open PDU
        self._blocked_arrivals = 0
        self.pdus_completed = 0
        self.loss_resyncs = 0
        self.max_skew_seen = 0

    @property
    def cells_pending(self) -> int:
        return len(self._cells)

    @property
    def next_seq(self) -> int:
        """Sequence number the next PDU will start at."""
        return self._start

    def resync(self, start: int) -> int:
        """Abandon the wedged stream and resume at ``start``.

        A destroyed cell leaves a sequence gap no amount of waiting can
        fill (retransmissions arrive under *new* numbers), so once the
        window overflows the only way forward is to drop everything
        buffered and restart.  Partially-arrived PDUs straddling the
        resync complete with holes and are discarded by the AAL5 CRC --
        the CRC, not the resequencer, is the integrity backstop.
        """
        self._cells.clear()
        self._eoms.clear()
        self._start = max(self._start, start)
        self._blocked_arrivals = 0
        return self._start

    def gap_resync(self) -> int:
        """Abandon the oldest, gap-damaged PDU and resume just past
        its end-of-message marker.

        Unlike :meth:`resync`, which drops everything buffered, this
        confines the damage to the one PDU the gap sits in: cells of
        later PDUs already buffered stay put and drain normally once
        their own EOMs complete.
        """
        end = min(self._eoms)
        for seq in [s for s in self._cells if s <= end]:
            del self._cells[seq]
        self._eoms.discard(end)
        self._start = end + 1
        self._blocked_arrivals = 0
        self.loss_resyncs += 1
        return self._start

    def push(self, cell: Cell) -> list[bytes]:
        if cell.seq is None:
            raise Aal5Error("strategy-1 cell lacks a sequence number")
        if cell.seq < self._start:
            raise Aal5Error(f"stale sequence number {cell.seq}")
        if cell.seq - self._start >= self.window:
            raise SkewOverflow(
                f"seq {cell.seq} outruns window [{self._start}, "
                f"{self._start + self.window})")
        self.max_skew_seen = max(self.max_skew_seen, cell.seq - self._start)
        self._cells[cell.seq] = cell.payload
        if cell.eom:
            self._eoms.add(cell.seq)
        done = self._drain()
        if done or not self._eoms:
            self._blocked_arrivals = 0
        else:
            self._blocked_arrivals += 1
            if (self.loss_resync_cells is not None
                    and self._blocked_arrivals >= self.loss_resync_cells):
                raise LossDetected(
                    f"gap at seq {self._start} still open after "
                    f"{self._blocked_arrivals} later arrivals")
        return done

    def _drain(self) -> list[bytes]:
        done = []
        while self._eoms:
            end = min(self._eoms)
            needed = range(self._start, end + 1)
            if not all(seq in self._cells for seq in needed):
                break
            framed = b"".join(self._cells.pop(seq) for seq in needed)
            self._eoms.discard(end)
            self._start = end + 1
            done.append(decode_pdu(framed))
            self.pdus_completed += 1
        return done


@dataclass
class _SubPacket:
    """One link's share of a PDU (an AAL5 'packet' of strategy 2)."""

    payloads: list[bytes] = field(default_factory=list)
    complete: bool = False
    atm_last: bool = False

    @property
    def cell_count(self) -> int:
        return len(self.payloads)


class ConcurrentReassembler:
    """Strategy 2: one AAL5 reassembly per physical link.

    Cells must be pushed with the link they arrived on; per-link
    arrival order is the only ordering assumption (exactly the "skew"
    class of misordering).
    """

    def __init__(self, vci: int, stripe_width: int = STRIPE_LINKS):
        self.vci = vci
        self.stripe_width = stripe_width
        # Per link: completed sub-packets in order, plus one accumulating.
        self._done: list[list[_SubPacket]] = \
            [[] for _ in range(stripe_width)]
        self._open: list[Optional[_SubPacket]] = [None] * stripe_width
        self.pdus_completed = 0

    @property
    def cells_pending(self) -> int:
        pending = 0
        for queue in self._done:
            pending += sum(sub.cell_count for sub in queue)
        for sub in self._open:
            if sub is not None:
                pending += sub.cell_count
        return pending

    def push(self, cell: Cell, link_id: int) -> list[bytes]:
        if not 0 <= link_id < self.stripe_width:
            raise Aal5Error(f"link {link_id} outside stripe")
        sub = self._open[link_id]
        if sub is None:
            sub = _SubPacket()
            self._open[link_id] = sub
        sub.payloads.append(cell.payload)
        if cell.atm_last:
            sub.atm_last = True
        if cell.eom:
            sub.complete = True
            self._done[link_id].append(sub)
            self._open[link_id] = None
        return self._drain()

    def _head(self, link_id: int) -> Optional[_SubPacket]:
        queue = self._done[link_id]
        return queue[0] if queue else None

    def _drain(self) -> list[bytes]:
        done = []
        while True:
            pdu = self._try_assemble_head()
            if pdu is None:
                break
            done.append(pdu)
        return done

    def _try_assemble_head(self) -> Optional[bytes]:
        # The head PDU's very last cell carries atm_last; once the cell
        # has arrived it sits in a head sub-packet.  Its link position
        # reveals the PDU's total cell count (paper's extra framing
        # bit resolves PDUs shorter than the stripe).
        expected = None
        for link_id in range(self.stripe_width):
            head = self._head(link_id)
            if head is not None and head.atm_last:
                n = (head.cell_count - 1) * self.stripe_width + link_id + 1
                expected = min(n, self.stripe_width)
                break
        if expected is None:
            return None
        heads = []
        for link_id in range(expected):
            head = self._head(link_id)
            if head is None:
                return None
            heads.append(head)
        for link_id in range(expected):
            self._done[link_id].pop(0)
        total = sum(head.cell_count for head in heads)
        framed = bytearray()
        for index in range(total):
            framed += heads[index % expected].payloads[index // expected]
        if len(framed) != total * AAL_PAYLOAD_BYTES:
            raise Aal5Error("interleave size mismatch")
        self.pdus_completed += 1
        return decode_pdu(bytes(framed))


__all__ = [
    "SequenceNumberReassembler", "ConcurrentReassembler", "SkewOverflow",
    "LossDetected",
]

"""Cell-level striping over four physical links (paper, section 2.6).

The OSIRIS interface reaches 622 Mbps by grouping four 155 Mbps
channels and striping at the cell level.  The paper names three causes
of the resulting skew:

1. different physical path lengths (eliminated in AURORA by wavelength
   multiplexing onto one fiber) -- modelled as fixed per-link offsets;
2. delays introduced by multiplexing equipment -- modelled as slowly
   varying per-link queueing delay;
3. different switch queueing per port -- modelled as random per-cell
   queueing delay (potentially unbounded).

A :class:`SkewModel` composes these; :class:`StripedLink` wires four
:class:`CellPipe` instances behind a round-robin striper that restarts
at link 0 for every PDU (so cell *i* of a PDU always rides link
``i mod 4`` -- the property both reassembly strategies rely on).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..hw.specs import STRIPE_LINKS
from ..sim import Simulator
from .cell import Cell
from .link import OC3_MBPS, CellPipe

DeliverFn = Callable[[Cell], None]


@dataclass
class SkewModel:
    """Per-link delay generator composing the paper's three skew causes."""

    fixed_offsets_us: tuple[float, ...] = (0.0,) * STRIPE_LINKS
    mux_amplitude_us: float = 0.0       # slowly varying mux delay
    mux_period_cells: int = 64
    switch_jitter_us: float = 0.0       # random switch queueing, per cell
    seed: int = 0x0522
    _rngs: list[random.Random] = field(default_factory=list, repr=False)
    _mux_state: list[float] = field(default_factory=list, repr=False)
    _mux_count: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        n = len(self.fixed_offsets_us)
        self._rngs = [random.Random(self.seed + i) for i in range(n)]
        self._mux_state = [0.0] * n
        self._mux_count = [0] * n

    @staticmethod
    def none() -> "SkewModel":
        """An ideal network: no skew at all."""
        return SkewModel()

    @staticmethod
    def aurora_like(amplitude_us: float = 6.0,
                    seed: int = 0x0522) -> "SkewModel":
        """Mux-induced skew only (causes 1 and 3 absent, as in AURORA
        after single-fiber multiplexing)."""
        return SkewModel(mux_amplitude_us=amplitude_us, seed=seed)

    @staticmethod
    def severe(offset_step_us: float = 3.0, jitter_us: float = 10.0,
               seed: int = 0x0522) -> "SkewModel":
        """All three causes active -- a hostile wide-area path."""
        offsets = tuple(i * offset_step_us for i in range(STRIPE_LINKS))
        return SkewModel(fixed_offsets_us=offsets,
                         mux_amplitude_us=jitter_us / 2.0,
                         switch_jitter_us=jitter_us, seed=seed)

    def clone(self, seed_offset: int = 0) -> "SkewModel":
        """A fresh :class:`SkewModel` with the same parameters but its
        own RNG streams, offset by ``seed_offset``.

        Every link in a fabric needs statistically identical but
        independent skew; cloning with distinct offsets keeps the
        per-link streams uncorrelated and the whole run deterministic.
        """
        return SkewModel(fixed_offsets_us=self.fixed_offsets_us,
                         mux_amplitude_us=self.mux_amplitude_us,
                         mux_period_cells=self.mux_period_cells,
                         switch_jitter_us=self.switch_jitter_us,
                         seed=self.seed + seed_offset)

    def delay_fn(self, link_id: int) -> Callable[[], float]:
        """Per-cell extra queueing delay callable for one link."""

        def sample() -> float:
            extra = self.fixed_offsets_us[link_id]
            if self.mux_amplitude_us > 0.0:
                count = self._mux_count[link_id]
                if count % self.mux_period_cells == 0:
                    self._mux_state[link_id] = \
                        self._rngs[link_id].uniform(0.0,
                                                    self.mux_amplitude_us)
                self._mux_count[link_id] = count + 1
                extra += self._mux_state[link_id]
            if self.switch_jitter_us > 0.0:
                extra += self._rngs[link_id].expovariate(
                    1.0 / self.switch_jitter_us)
            return extra

        return sample

    @property
    def introduces_skew(self) -> bool:
        return (any(self.fixed_offsets_us)
                or self.mux_amplitude_us > 0.0
                or self.switch_jitter_us > 0.0)


class StripedLink:
    """Four cell pipes behind a per-PDU round-robin striper."""

    def __init__(self, sim: Simulator, deliver: DeliverFn,
                 skew: Optional[SkewModel] = None,
                 n_links: int = STRIPE_LINKS,
                 rate_mbps: float = OC3_MBPS,
                 prop_delay_us: float = 5.0,
                 name: str = "stripe"):
        self.sim = sim
        self.skew = skew or SkewModel.none()
        self.n_links = n_links
        self.name = name
        # A skew-free model's sampler always returns 0.0 and draws no
        # randomness; passing None lets the pipes skip the call on
        # their per-cell hot path.
        skewed = self.skew.introduces_skew
        self.pipes = [
            CellPipe(sim, i, deliver, rate_mbps=rate_mbps,
                     prop_delay_us=prop_delay_us,
                     queueing_delay=(self.skew.delay_fn(i) if skewed
                                     else None),
                     name=f"{name}.l{i}")
            for i in range(n_links)
        ]
        self._next_link = 0
        self.cells_sent = 0
        self.pdus_sent = 0
        self._dead_lanes: set[int] = set()
        self._alive_lanes: list[int] = list(range(n_links))
        self._respread_rr = 0

    def degrade(self, lane: int) -> None:
        """Remove a dead lane from the striping group.

        Subsequent cells are re-spread across the surviving lanes.  The
        re-spread breaks the ``i mod 4`` reassembly invariant, so the
        cells are un-stamped (``tx_index = -1``): receivers must place
        them by sequence number, which is exactly what the paper's
        sequence-number skew strategy provides.
        """
        if not 0 <= lane < self.n_links:
            raise ValueError(f"lane {lane} out of range")
        self._dead_lanes.add(lane)
        self._alive_lanes = [i for i in range(self.n_links)
                             if i not in self._dead_lanes]

    @property
    def degraded(self) -> bool:
        return bool(self._dead_lanes)

    def start_pdu(self) -> None:
        """Reset the striper so the next cell rides link 0."""
        self._next_link = 0
        self.pdus_sent += 1

    def submit(self, cell: Cell) -> None:
        """Send one cell on its stripe.

        Cells stamped with their PDU-local ``tx_index`` ride link
        ``tx_index mod n`` -- this keeps the reassembly invariant even
        when the transmit processor interleaves several PDUs at cell
        granularity.  Unstamped cells fall back to plain round-robin
        from the last :meth:`start_pdu`.
        """
        if cell.tx_index >= 0:
            link_id = cell.tx_index % self.n_links
        else:
            link_id = self._next_link
            self._next_link = (self._next_link + 1) % self.n_links
        if self._dead_lanes and self._alive_lanes:
            # Degraded group: re-spread round-robin over the survivors
            # so every alive lane carries an equal share (a modulo
            # remap would double-load some lanes, and the resulting
            # queue skew grows without bound).  Un-stamp the cell --
            # its lane is no longer derivable from tx_index, so
            # downstream width guards must not be applied to it.
            link_id = self._alive_lanes[
                self._respread_rr % len(self._alive_lanes)]
            self._respread_rr += 1
            cell.tx_index = -1
        self.cells_sent += 1
        self.pipes[link_id].submit(cell)

    def submit_pdu(self, cells: list[Cell]) -> None:
        """Start a PDU and submit all of its cells.

        When the group is healthy, the cells are stamped with their
        canonical ``tx_index`` order, and they share one VCI, each
        lane takes its whole slice in a single :meth:`CellPipe.
        submit_burst` call -- the bulk-submission fast path.  Anything
        irregular falls back to per-cell :meth:`submit`.
        """
        self.start_pdu()
        if self._dead_lanes or not cells:
            for cell in cells:
                self.submit(cell)
            return
        vci = cells[0].vci
        for i, cell in enumerate(cells):
            if cell.tx_index != i or cell.vci != vci:
                for c in cells:
                    self.submit(c)
                return
        self.cells_sent += len(cells)
        n = self.n_links
        for k, pipe in enumerate(self.pipes):
            lane_cells = cells[k::n]
            if lane_cells:
                pipe.submit_burst(lane_cells)

    @property
    def aggregate_payload_mbps(self) -> float:
        from ..hw.specs import AAL_PAYLOAD_BYTES, ATM_CELL_BYTES
        line = self.n_links * self.pipes[0].rate_mbps
        return line * AAL_PAYLOAD_BYTES / ATM_CELL_BYTES


__all__ = ["SkewModel", "StripedLink"]

"""An output-queued ATM cell switch.

Section 2.6 names three causes of striping skew; the third is
'different queuing delays experienced by cells on different links as
they pass through distinct ports on the switches in the network' --
and the paper notes it could only be eliminated by coordinating the
ports, 'negating the advantage of striping'.  This switch model makes
that cause real: each striped link's lane terminates in its own output
port with its own queue, so cross traffic on one port delays exactly
one lane.

The switch routes by VCI: the routing table maps an input VCI to
(output trunk, output VCI).  A *trunk* is a group of ``n_lanes``
output ports feeding one striped link, so striped traffic keeps its
lane (cell ``tx_index mod n`` stays on lane ``n``) while competing
with whatever else shares that port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from ..hw.specs import ATM_CELL_BYTES, STRIPE_LINKS
from ..sim import Delay, SimulationError, Simulator, Store, spawn
from .cell import Cell
from .link import OC3_MBPS

DeliverFn = Callable[[Cell], None]


@dataclass
class _OutputPort:
    """One output port: a FIFO of cells draining at line rate."""

    queue: Store
    cells_enqueued: int = 0
    cells_forwarded: int = 0
    max_queue_seen: int = 0

    @property
    def cells_held(self) -> int:
        """Cells accepted but not yet handed to the trunk: the queue
        plus at most one cell inside the drain loop's delay."""
        return self.cells_enqueued - self.cells_forwarded


@dataclass(frozen=True)
class PortStats:
    """Snapshot of one output port's counters."""

    trunk_id: int
    lane: int
    cells_enqueued: int
    cells_forwarded: int
    max_queue_seen: int
    depth: int


class CellSwitch:
    """VCI-routed, output-queued cell switch with per-lane ports."""

    def __init__(self, sim: Simulator, name: str = "switch",
                 port_rate_mbps: float = OC3_MBPS,
                 switching_delay_us: float = 1.0,
                 port_queue_cells: int = 256):
        self.sim = sim
        self.name = name
        self.port_rate_mbps = port_rate_mbps
        self.switching_delay_us = switching_delay_us
        self.port_queue_cells = port_queue_cells
        self.cell_time_us = ATM_CELL_BYTES * 8.0 / port_rate_mbps
        # trunk id -> list of output ports (one per lane).
        self._trunks: dict[int, list[_OutputPort]] = {}
        self._trunk_deliver: dict[int, DeliverFn] = {}
        # input VCI -> (trunk id, output VCI).
        self._routes: dict[int, tuple[int, int]] = {}
        self.cells_switched = 0
        self.cells_dropped = 0
        self.cross_cells_injected = 0

    # -- fabric configuration --------------------------------------------------

    def add_trunk(self, trunk_id: int, deliver: DeliverFn,
                  n_lanes: int = STRIPE_LINKS) -> None:
        """Attach an output trunk whose lanes feed ``deliver``.

        ``deliver`` receives cells in per-lane order (each lane is its
        own FIFO); cross-lane order is whatever port queueing produces
        -- the skew the receiving board must tolerate.
        """
        if trunk_id in self._trunks:
            raise SimulationError(f"trunk {trunk_id} exists")
        ports = []
        for lane in range(n_lanes):
            port = _OutputPort(queue=Store(
                self.sim, f"{self.name}.t{trunk_id}.l{lane}",
                capacity=self.port_queue_cells))
            ports.append(port)
            spawn(self.sim, self._drain(port, trunk_id),
                  f"{self.name}-t{trunk_id}-l{lane}")
        self._trunks[trunk_id] = ports
        self._trunk_deliver[trunk_id] = deliver

    def add_route(self, in_vci: int, trunk_id: int,
                  out_vci: Optional[int] = None) -> None:
        """Route ``in_vci`` to ``trunk_id``, rewriting to ``out_vci``."""
        if in_vci in self._routes:
            raise SimulationError(f"VCI {in_vci} already routed")
        if trunk_id not in self._trunks:
            raise SimulationError(f"unknown trunk {trunk_id}")
        self._routes[in_vci] = (trunk_id, out_vci if out_vci is not None
                                else in_vci)

    # -- data path -----------------------------------------------------------------

    def input_cell(self, cell: Cell) -> None:
        """An arriving cell: route, rewrite, queue on its lane's port."""
        route = self._routes.get(cell.vci)
        if route is None:
            self.cells_dropped += 1
            return
        trunk_id, out_vci = route
        ports = self._trunks[trunk_id]
        lane = (cell.tx_index % len(ports) if cell.tx_index >= 0
                else cell.link_id % len(ports))
        rewritten = Cell(vci=out_vci, payload=cell.payload,
                         eom=cell.eom, seq=cell.seq,
                         atm_last=cell.atm_last, tx_index=cell.tx_index)
        rewritten.link_id = lane
        port = ports[lane]
        if not port.queue.try_put(rewritten):
            self.cells_dropped += 1
            return
        port.cells_enqueued += 1
        port.max_queue_seen = max(port.max_queue_seen, len(port.queue))
        self.cells_switched += 1

    def _drain(self, port: _OutputPort,
               trunk_id: int) -> Generator[Any, Any, None]:
        while True:
            cell = yield port.queue.get()
            yield Delay(self.switching_delay_us + self.cell_time_us)
            port.cells_forwarded += 1
            self._trunk_deliver[trunk_id](cell)

    # -- background load (the cross traffic that causes cause-3 skew) --------------

    def inject_cross_traffic(self, trunk_id: int, lane: int,
                             rate_mbps: float, vci: int = 0xFFF0,
                             duration_us: float = float("inf")) -> None:
        """A competing flow occupying one lane's output port."""
        ports = self._trunks[trunk_id]
        port = ports[lane]
        interval = ATM_CELL_BYTES * 8.0 / rate_mbps
        stop_at = self.sim.now + duration_us

        def pump() -> Generator[Any, Any, None]:
            while self.sim.now < stop_at:
                filler = Cell(vci=vci, payload=b"")
                filler.link_id = lane
                self.cross_cells_injected += 1
                if port.queue.try_put(filler):
                    port.cells_enqueued += 1
                    port.max_queue_seen = max(port.max_queue_seen,
                                              len(port.queue))
                else:
                    self.cells_dropped += 1
                yield Delay(interval)

        spawn(self.sim, pump(), f"cross-t{trunk_id}-l{lane}")

    # -- observability --------------------------------------------------------------

    def port_depths(self, trunk_id: int) -> list[int]:
        return [len(p.queue) for p in self._trunks[trunk_id]]

    def queued_cells(self) -> int:
        """Cells currently inside the switch (queued or draining)."""
        return sum(p.cells_held
                   for ports in self._trunks.values() for p in ports)

    def port_stats(self) -> list[PortStats]:
        """Per-port counter snapshots, ordered (trunk, lane)."""
        return [
            PortStats(trunk_id=trunk_id, lane=lane,
                      cells_enqueued=port.cells_enqueued,
                      cells_forwarded=port.cells_forwarded,
                      max_queue_seen=port.max_queue_seen,
                      depth=len(port.queue))
            for trunk_id, ports in sorted(self._trunks.items())
            for lane, port in enumerate(ports)
        ]


__all__ = ["CellSwitch", "PortStats"]

"""An output-queued ATM cell switch with per-VCI fair queueing.

Section 2.6 names three causes of striping skew; the third is
'different queuing delays experienced by cells on different links as
they pass through distinct ports on the switches in the network' --
and the paper notes it could only be eliminated by coordinating the
ports, 'negating the advantage of striping'.  This switch model makes
that cause real: each striped link's lane terminates in its own output
port with its own queues, so cross traffic on one port delays exactly
one lane.

The switch routes by VCI: the routing table maps an input VCI to
(output trunk, output VCI).  A *trunk* is a group of ``n_lanes``
output ports feeding one striped link, so striped traffic keeps its
lane (cell ``tx_index mod n`` stays on lane ``n``) while competing
with whatever else shares that port.

Each output port keeps one queue **per VCI** and drains them
round-robin (``drain_policy="rr"``, the network-processor discipline
of Papaefstathiou et al.), so a single open-loop hog can no longer
starve a well-behaved flow sharing its port; ``drain_policy="fifo"``
restores the single shared FIFO for comparison.  When a port is full,
the round-robin policy makes room by pushing out the tail of the
*longest* per-VCI backlog (fair buffer sharing) instead of
tail-dropping the arrival.

Congestion control (``backpressure``):

* ``"none"`` -- drop at the ``port_queue_cells`` cap (the seed
  behaviour; incast collapse is emergent).
* ``"credit"`` -- ports never drop for occupancy; admission is bounded
  upstream by receiver-driven per-VCI credit windows (see
  :mod:`repro.cluster.backpressure`), and the drain loop returns a
  credit to the registered hook every time it forwards a cell.
* ``"efci"`` -- the cheap alternative: cells enqueued on a port whose
  occupancy is at or above ``efci_threshold_cells`` get the explicit
  forward congestion indication bit set; the receiver's fabric edge
  relays the mark back to the source, which pauses briefly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from ..hw.specs import ATM_CELL_BYTES, STRIPE_LINKS
from ..sim import Delay, Signal, SimulationError, Simulator, spawn
from ..sim.trains import CellTrain
from ..topology.queues import ActiveQueueIndex, VirtualOccupancy
from .cell import Cell
from .link import OC3_MBPS

DeliverFn = Callable[[Cell], None]

BACKPRESSURE_MODES = ("none", "credit", "efci")
DRAIN_POLICIES = ("rr", "fifo")


@dataclass
class _VciCounters:
    """Per-VCI occupancy counters inside one output port."""

    enqueued: int = 0
    forwarded: int = 0
    dropped: int = 0
    max_depth: int = 0


class _OutputPort:
    """One output port: per-VCI queues drained at line rate.

    All queue state lives in an :class:`ActiveQueueIndex`, so drain,
    FIFO service, and push-out-longest stay O(1) amortized however
    many VCIs are live on the port -- the million-circuit requirement
    the flat dict-scan design could not meet.  The incremental
    longest-queue tracking applies under *both* drain policies, so a
    full port never pays a per-VCI scan whichever scheduler runs.
    """

    def __init__(self, sim: Simulator, name: str, drain_policy: str):
        self.name = name
        self.drain_policy = drain_policy
        self.work = Signal(f"{name}.work")
        self.index = ActiveQueueIndex()
        self.cells_enqueued = 0
        self.cells_forwarded = 0
        self.cells_pushed_out = 0
        self.dropped_queue_full = 0
        self.max_queue_seen = 0
        self.vci_counters: dict[int, _VciCounters] = {}
        # Fault state: a killed port loses arrivals (lost_to_faults);
        # its backlog is allowed to drain.
        self.fault_dead = False
        self.lost_to_faults = 0
        # Cell-train state.  ``virtual`` tracks cells a fused commit
        # carried past this port: they occupy it for real simulated
        # time without ever entering ``index``, so admission and depth
        # statistics for later per-cell arrivals must add the residual.
        # ``busy_until`` is when the port's (real or virtual) service
        # chain ends; ``kill_at`` < inf means a port kill is armed and
        # the port's future is not predictable at commit time;
        # ``no_fuse`` is set once cross traffic shares the port.
        self.virtual = VirtualOccupancy()
        self.virtual_vci = -1
        self.busy_until = 0.0
        self.kill_at = float("inf")
        self.no_fuse = False

    @property
    def depth(self) -> int:
        """Total cells queued on this port."""
        return self.index.depth

    @property
    def cells_held(self) -> int:
        """Cells accepted but not yet handed to the trunk: the queues
        plus at most one cell inside the drain loop's delay."""
        return (self.cells_enqueued - self.cells_forwarded
                - self.cells_pushed_out)

    def _counters(self, vci: int) -> _VciCounters:
        counters = self.vci_counters.get(vci)
        if counters is None:
            counters = self.vci_counters[vci] = _VciCounters()
        return counters

    def enqueue(self, cell: Cell, virtual_same_vci: int = 0,
                virtual_total: int = 0) -> None:
        backlog = self.index.enqueue(cell.vci, cell,
                                     fifo=self.drain_policy != "rr")
        self.cells_enqueued += 1
        depth = self.index.depth + virtual_total
        if depth > self.max_queue_seen:
            self.max_queue_seen = depth
        counters = self._counters(cell.vci)
        counters.enqueued += 1
        if backlog + virtual_same_vci > counters.max_depth:
            counters.max_depth = backlog + virtual_same_vci
        self.work.fire()

    def pop_next(self) -> Optional[Cell]:
        """Next cell under the drain policy, or None when idle."""
        popped = (self.index.pop_rr() if self.drain_policy == "rr"
                  else self.index.pop_fifo())
        if popped is None:
            return None
        return popped[1]

    def push_out_longest(self, arriving_vci: int) -> Optional[int]:
        """Make room for ``arriving_vci`` by dropping the tail of the
        longest per-VCI backlog (fair buffer sharing).  Returns the
        victim VCI, or None when the arrival itself has the longest
        backlog and should be dropped instead.  O(1): the occupancy
        index tracks the longest queue incrementally."""
        longest = self.index.longest()
        if longest is None:
            return None
        victim, backlog = longest
        if backlog <= self.index.queue_len(arriving_vci):
            return None
        self.index.drop_tail(victim)
        self.cells_pushed_out += 1
        self.dropped_queue_full += 1
        self._counters(victim).dropped += 1
        return victim

    def note_arrival_drop(self, vci: int) -> None:
        self.dropped_queue_full += 1
        self._counters(vci).dropped += 1

    def record_forwarded(self, vci: int) -> None:
        self.cells_forwarded += 1
        self._counters(vci).forwarded += 1


@dataclass(frozen=True)
class PortStats:
    """Snapshot of one output port's counters."""

    trunk_id: int
    lane: int
    cells_enqueued: int
    cells_forwarded: int
    max_queue_seen: int
    depth: int
    dropped_queue_full: int
    lost_to_faults: int = 0
    dead: bool = False
    vcis: dict = field(default_factory=dict)


class CellSwitch:
    """VCI-routed, output-queued cell switch with per-lane ports.

    ``input_train`` is the fused cell-train commit: it may only do
    arithmetic on counters and virtual queue state (RACE203), since
    per-cell expansion replays the same cells as individual
    ``input_cell`` events.

    Fold: input_train
    """

    def __init__(self, sim: Simulator, name: str = "switch",
                 port_rate_mbps: float = OC3_MBPS,
                 switching_delay_us: float = 1.0,
                 port_queue_cells: int = 256,
                 backpressure: str = "none",
                 drain_policy: str = "rr",
                 efci_threshold_cells: Optional[int] = None):
        if backpressure not in BACKPRESSURE_MODES:
            raise SimulationError(
                f"unknown backpressure mode {backpressure!r}; "
                f"choose from {BACKPRESSURE_MODES}")
        if drain_policy not in DRAIN_POLICIES:
            raise SimulationError(
                f"unknown drain policy {drain_policy!r}; "
                f"choose from {DRAIN_POLICIES}")
        self.sim = sim
        self.name = name
        self.port_rate_mbps = port_rate_mbps
        self.switching_delay_us = switching_delay_us
        self.port_queue_cells = port_queue_cells
        self.backpressure = backpressure
        self.drain_policy = drain_policy
        self.efci_threshold_cells = (
            efci_threshold_cells if efci_threshold_cells is not None
            else port_queue_cells // 2)
        self.cell_time_us = ATM_CELL_BYTES * 8.0 / port_rate_mbps
        # trunk id -> list of output ports (one per lane).
        self._trunks: dict[int, list[_OutputPort]] = {}
        self._trunk_deliver: dict[int, DeliverFn] = {}
        # trunk id -> lane count for trunks owned by another shard's
        # replica of this switch; routes may reference them but cells
        # must never be queued here.
        self._remote_trunks: dict[int, int] = {}
        # input VCI -> (trunk id, output VCI).
        self._routes: dict[int, tuple[int, int]] = {}
        # trunk id -> number of routes targeting it.  A fused train
        # commit requires exactly one (only then can no other routed
        # flow interleave with the train's cells on its port).
        self._trunk_route_count: dict[int, int] = {}
        # (trunk id, cell VCI at the port) -> credit-return callback.
        self._forward_hooks: dict[tuple[int, int], Callable[[], None]] = {}
        self.cells_switched = 0
        self.dropped_no_route = 0
        self.dropped_queue_full = 0
        self.cells_lost_to_faults = 0
        self.cross_cells_injected = 0

    @property
    def cells_dropped(self) -> int:
        """All cells the switch lost, whatever the cause."""
        return self.dropped_no_route + self.dropped_queue_full

    # -- fabric configuration --------------------------------------------------

    def add_trunk(self, trunk_id: int, deliver: DeliverFn,
                  n_lanes: int = STRIPE_LINKS) -> None:
        """Attach an output trunk whose lanes feed ``deliver``.

        ``deliver`` receives cells in per-lane order (each lane is its
        own FIFO per VCI); cross-lane order is whatever port queueing
        produces -- the skew the receiving board must tolerate.
        """
        if trunk_id in self._trunks:
            raise SimulationError(f"trunk {trunk_id} exists")
        ports = []
        for lane in range(n_lanes):
            port = _OutputPort(self.sim,
                               f"{self.name}.t{trunk_id}.l{lane}",
                               self.drain_policy)
            ports.append(port)
            spawn(self.sim, self._drain(port, trunk_id),
                  f"{self.name}-t{trunk_id}-l{lane}")
        self._trunks[trunk_id] = ports
        self._trunk_deliver[trunk_id] = deliver

    def add_remote_trunk(self, trunk_id: int,
                         n_lanes: int = STRIPE_LINKS) -> None:
        """Register a trunk whose ports live on another shard.

        A sharded fabric keeps one replica of each switch per shard;
        every replica knows the full routing table (so any shard can
        look up where a cell is headed) but only the owning shard's
        replica has real ports.  Remote trunks carry just their lane
        count, for route validation.
        """
        if trunk_id in self._trunks or trunk_id in self._remote_trunks:
            raise SimulationError(f"trunk {trunk_id} exists")
        self._remote_trunks[trunk_id] = n_lanes

    def add_route(self, in_vci: int, trunk_id: int,
                  out_vci: Optional[int] = None) -> None:
        """Route ``in_vci`` to ``trunk_id``, rewriting to ``out_vci``."""
        if in_vci in self._routes:
            raise SimulationError(f"VCI {in_vci} already routed")
        if (trunk_id not in self._trunks
                and trunk_id not in self._remote_trunks):
            raise SimulationError(f"unknown trunk {trunk_id}")
        self._routes[in_vci] = (trunk_id, out_vci if out_vci is not None
                                else in_vci)
        self._trunk_route_count[trunk_id] = \
            self._trunk_route_count.get(trunk_id, 0) + 1

    def route_for(self, vci: int) -> Optional[tuple[int, int]]:
        """(trunk id, output VCI) for an input VCI, or None."""
        return self._routes.get(vci)

    def has_trunk(self, trunk_id: int) -> bool:
        """Does this switch own real ports for ``trunk_id``?"""
        return trunk_id in self._trunks

    def has_remote_trunk(self, trunk_id: int) -> bool:
        """Is ``trunk_id`` registered as another shard's?"""
        return trunk_id in self._remote_trunks

    def on_cell_forwarded(self, trunk_id: int, vci: int,
                          callback: Callable[[], None]) -> None:
        """Invoke ``callback`` each time this trunk forwards a cell
        carrying ``vci`` -- the switch end of a credit-return channel
        back to the flow's source."""
        if trunk_id not in self._trunks:
            raise SimulationError(f"unknown trunk {trunk_id}")
        self._forward_hooks[(trunk_id, vci)] = callback

    def forward_hook(self, trunk_id: int,
                     vci: int) -> Optional[Callable[[], None]]:
        """The registered forward callback for ``(trunk, vci)``, if
        any -- the fused train path invokes it per cell at the exact
        departure times the drain loop would have."""
        return self._forward_hooks.get((trunk_id, vci))

    def port_dead(self, trunk_id: int, lane: int) -> bool:
        """Liveness probe for one output port -- the recovery control
        plane's heartbeat target.  False for unknown ports (a shard
        probes only trunks it owns)."""
        ports = self._trunks.get(trunk_id)
        if ports is None or not 0 <= lane < len(ports):
            return False
        return ports[lane].fault_dead

    def kill_port(self, trunk_id: int, lane: int) -> None:
        """Fail one output port: subsequent arrivals are lost to the
        fault; cells already queued drain normally."""
        ports = self._trunks.get(trunk_id)
        if ports is None or not 0 <= lane < len(ports):
            raise SimulationError(
                f"{self.name}: no port (trunk {trunk_id}, lane {lane})")
        ports[lane].fault_dead = True

    def arm_port_kill(self, trunk_id: int, lane: int,
                      at_us: float) -> None:
        """Record that :meth:`kill_port` is scheduled for ``at_us``.

        An armed port never accepts fused train commits: a commit
        decides departures beyond the kill time, which the kill would
        have prevented.  Per-cell events stay exact."""
        ports = self._trunks.get(trunk_id)
        if ports is None or not 0 <= lane < len(ports):
            raise SimulationError(
                f"{self.name}: no port (trunk {trunk_id}, lane {lane})")
        port = ports[lane]
        port.kill_at = min(port.kill_at, at_us)

    # -- data path -----------------------------------------------------------------

    def input_cell(self, cell: Cell) -> None:
        """An arriving cell: route, rewrite, queue on its lane's port."""
        route = self._routes.get(cell.vci)
        if route is None:
            self.dropped_no_route += 1
            return
        trunk_id, out_vci = route
        if trunk_id in self._remote_trunks:
            raise SimulationError(
                f"{self.name}: cell for VCI {cell.vci} routed to remote "
                f"trunk {trunk_id}; the owning shard must queue it")
        ports = self._trunks[trunk_id]
        if cell.tx_index >= 0:
            lane = cell.tx_index % len(ports)
            # A striped cell arrives stamped with the upstream lane it
            # rode; if the trunk's lane count disagrees with the
            # upstream striping width the modulo would silently put the
            # cell on the wrong lane, breaking the reassembly invariant.
            if cell.link_id >= 0 and cell.link_id != lane:
                raise SimulationError(
                    f"{self.name}: striping width mismatch on trunk "
                    f"{trunk_id}: cell tx_index {cell.tx_index} rode "
                    f"upstream lane {cell.link_id} but the trunk has "
                    f"{len(ports)} lanes")
        else:
            if cell.link_id >= len(ports):
                raise SimulationError(
                    f"{self.name}: striping width mismatch on trunk "
                    f"{trunk_id}: unstamped cell from upstream lane "
                    f"{cell.link_id} but the trunk has "
                    f"{len(ports)} lanes")
            lane = cell.link_id % len(ports)
        rewritten = cell.rewrite(out_vci, lane, cell.efci)
        if self._admit(ports[lane], rewritten):
            self.cells_switched += 1

    def _train_lane(self, ports: list, cells: list) -> Optional[int]:
        """The single output lane all of a train's cells map to, or
        None when any cell disagrees (the per-cell path must run so
        its width-mismatch diagnostics fire exactly as before)."""
        lane = -1
        for cell in cells:
            if cell.tx_index >= 0:
                mapped = cell.tx_index % len(ports)
                if cell.link_id >= 0 and cell.link_id != mapped:
                    return None
            else:
                if cell.link_id >= len(ports):
                    return None
                mapped = cell.link_id % len(ports)
            if lane < 0:
                lane = mapped
            elif mapped != lane:
                return None
        return lane

    def input_train(self, train: CellTrain) -> Optional[tuple]:
        """Absorb a whole cell train in one fused commit, if safe.

        Safe means no per-cell effect can depend on event
        interleaving: the cells' port is idle (no real backlog, no
        cross traffic, not dead, no kill armed), carries no other
        routed flow that could interleave, and cannot drop under the
        occupancy cap during the span.  The commit then computes each
        cell's full trajectory arithmetically -- service start chained
        through the port's busy time, departure one service later --
        and applies every counter, depth statistic, and EFCI mark the
        per-cell path would have produced, in one event.

        Returns ``(trunk_id, lane, cells_out, deps)`` where
        ``cells_out`` are the rewritten cells and ``deps`` their
        departure times, or None when the caller must expand the train
        into the per-cell events the plain path would have run.
        """
        cells = train.cells
        route = self._routes.get(cells[0].vci)
        if route is None:
            return None
        trunk_id, out_vci = route
        ports = self._trunks.get(trunk_id)
        if ports is None:               # remote trunk: owning shard's
            return None
        if self._trunk_route_count.get(trunk_id, 0) != 1:
            return None
        lane = self._train_lane(ports, cells)
        if lane is None:
            return None
        port = ports[lane]
        if (port.fault_dead or port.no_fuse
                or port.kill_at != float("inf")
                or port.index.depth > 0):
            return None
        now = self.sim.now
        n = len(cells)
        pending = port.virtual.pending(now)
        if (self.backpressure != "credit"
                and len(pending) + n > self.port_queue_cells):
            return None                 # the span could hit the cap
        service = self.switching_delay_us + self.cell_time_us
        times = train.times
        busy = port.busy_until
        efci_mode = self.backpressure == "efci"
        threshold = self.efci_threshold_cells
        n_pending = len(pending)
        starts: list = []
        deps: list = []
        cells_out: list = []
        push_start = starts.append
        push_dep = deps.append
        push_cell = cells_out.append
        maxd = port.max_queue_seen
        vp = 0      # virtual cells whose service started by arrival i
        sp = 0      # train cells j < i whose service started by then
        for i, arrival in enumerate(times):
            cell = cells[i]
            start = arrival if arrival > busy else busy
            dep = start + service
            busy = dep
            while vp < n_pending and pending[vp] <= arrival:
                vp += 1
            while sp < i and starts[sp] <= arrival:
                sp += 1
            depth_before = (n_pending - vp) + (i - sp)
            if depth_before + 1 > maxd:
                maxd = depth_before + 1
            push_start(start)
            push_dep(dep)
            push_cell(cell.rewrite(
                out_vci, lane,
                cell.efci or (efci_mode
                              and depth_before >= threshold)))
        port.virtual.commit(starts)
        port.virtual_vci = out_vci
        port.busy_until = busy
        port.cells_enqueued += n
        port.cells_forwarded += n
        port.max_queue_seen = maxd
        counters = port._counters(out_vci)
        counters.enqueued += n
        counters.forwarded += n
        if maxd > counters.max_depth:
            counters.max_depth = maxd
        self.cells_switched += n
        # This one event replaced n - 1 per-cell arrival events; the
        # caller accounts for the drain events, which fold only where
        # it does not re-materialize per-cell downstream events.
        self.sim.events_absorbed += n - 1
        self.sim.note_model_time(deps[-1])
        return trunk_id, lane, cells_out, deps

    def _admit(self, port: _OutputPort, cell: Cell) -> bool:
        """Admission control for one port; returns False on a
        queue-full drop.  Credit mode never drops for occupancy: the
        per-VCI windows upstream bound what can arrive."""
        if port.fault_dead:
            port.lost_to_faults += 1
            self.cells_lost_to_faults += 1
            return False
        virtual = (port.virtual.residual(self.sim.now)
                   if port.virtual else 0)
        if (self.backpressure != "credit"
                and port.depth + virtual >= self.port_queue_cells):
            victim = (port.push_out_longest(cell.vci)
                      if self.drain_policy == "rr" else None)
            if victim is None:
                port.note_arrival_drop(cell.vci)
                self.dropped_queue_full += 1
                return False
            self.dropped_queue_full += 1  # the pushed-out victim
        if (self.backpressure == "efci"
                and port.depth + virtual >= self.efci_threshold_cells):
            cell.efci = True
        port.enqueue(cell,
                     virtual if cell.vci == port.virtual_vci else 0,
                     virtual)
        return True

    def _drain(self, port: _OutputPort,
               trunk_id: int) -> Generator[Any, Any, None]:
        service = self.switching_delay_us + self.cell_time_us
        while True:
            # A fused train commit may have claimed the port's service
            # chain into the future: real cells wait their turn behind
            # the virtually-occupying cells, exactly as they would have
            # waited behind the same cells queued for real.
            wait = port.busy_until - self.sim.now
            if wait > 0.0:
                yield Delay(wait)
                continue
            cell = port.pop_next()
            if cell is None:
                yield port.work
                continue
            port.busy_until = self.sim.now + service
            yield Delay(service)
            port.record_forwarded(cell.vci)
            self._trunk_deliver[trunk_id](cell)
            hook = self._forward_hooks.get((trunk_id, cell.vci))
            if hook is not None:
                hook()

    # -- background load (the cross traffic that causes cause-3 skew) --------------

    def inject_cross_traffic(self, trunk_id: int, lane: int,
                             rate_mbps: float, vci: int = 0xFFF0,
                             duration_us: float = float("inf")) -> None:
        """A competing flow occupying one lane's output port."""
        if rate_mbps <= 0.0:
            raise SimulationError(
                f"cross-traffic rate must be positive, got {rate_mbps}")
        ports = self._trunks[trunk_id]
        port = ports[lane]
        port.no_fuse = True     # trains can no longer assume the
        #                         port carries a single routed flow
        interval = ATM_CELL_BYTES * 8.0 / rate_mbps
        stop_at = self.sim.now + duration_us

        def pump() -> Generator[Any, Any, None]:
            while True:
                # Stop check BEFORE injecting: a zero-length window
                # must inject nothing at all.
                if self.sim.now >= stop_at:
                    return
                filler = Cell(vci=vci, payload=b"")
                filler.link_id = lane
                self.cross_cells_injected += 1
                self._admit(port, filler)
                yield Delay(interval)

        spawn(self.sim, pump(), f"cross-t{trunk_id}-l{lane}")

    # -- observability --------------------------------------------------------------

    def port_depths(self, trunk_id: int) -> list[int]:
        return [p.depth for p in self._trunks[trunk_id]]

    def queued_cells(self) -> int:
        """Cells currently inside the switch (queued or draining)."""
        return sum(p.cells_held
                   for ports in self._trunks.values() for p in ports)

    def port_stats(self) -> list[PortStats]:
        """Per-port counter snapshots, ordered (trunk, lane)."""
        return [
            PortStats(trunk_id=trunk_id, lane=lane,
                      cells_enqueued=port.cells_enqueued,
                      cells_forwarded=port.cells_forwarded,
                      max_queue_seen=port.max_queue_seen,
                      depth=port.depth,
                      dropped_queue_full=port.dropped_queue_full,
                      lost_to_faults=port.lost_to_faults,
                      dead=port.fault_dead,
                      vcis={vci: {"enqueued": c.enqueued,
                                  "forwarded": c.forwarded,
                                  "dropped": c.dropped,
                                  "max_depth": c.max_depth}
                            for vci, c in sorted(port.vci_counters.items())})
            for trunk_id, ports in sorted(self._trunks.items())
            for lane, port in enumerate(ports)
        ]


__all__ = ["CellSwitch", "PortStats", "BACKPRESSURE_MODES",
           "DRAIN_POLICIES"]

"""Cost-model comparison: fbufs versus copying (section 3.1 context).

The alternative to transferring buffers by (cached) page remapping is
copying the data into the target domain's memory, paying a per-byte
CPU cost plus an IPC crossing.  These helpers run the two disciplines
over the same workload so the fbuf ablation (E13) can compare them.
"""

from __future__ import annotations

from typing import Any, Generator

from ..host.domains import ProtectionDomain, cross_domain
from ..host.kernel import HostOS


def copy_transfer(kernel: HostOS, nbytes: int,
                  to_domain: ProtectionDomain) -> Generator[Any, Any, None]:
    """Copy-based cross-domain transfer: IPC + per-byte copy."""
    costs = kernel.machine.costs
    yield from cross_domain(kernel.cpu, to_domain)
    yield from kernel.cpu.execute(
        nbytes * costs.copy_per_byte,
        bus_fraction=costs.data_touch_bus_fraction)


def copy_traverse(kernel: HostOS, nbytes: int,
                  domains: list[ProtectionDomain]
                  ) -> Generator[Any, Any, None]:
    """Copy the data through every domain of a path."""
    for domain in domains:
        yield from copy_transfer(kernel, nbytes, domain)


__all__ = ["copy_transfer", "copy_traverse"]

"""Fast buffers: cached cross-domain buffer transfer (section 3.1)."""

from .fbuf import Fbuf, FbufAllocator
from .remap import copy_transfer, copy_traverse

__all__ = ["Fbuf", "FbufAllocator", "copy_transfer", "copy_traverse"]

"""Fast buffers: cached cross-domain buffer transfer (paper, section 3.1).

An fbuf is a page-aligned buffer that travels across protection
domains by *page remapping*, with the twist that the mappings are
cached: once a buffer's pages have been mapped into the set of domains
a data path traverses, later transfers along the same path reuse the
mappings and cost almost nothing.  The board's early demultiplexing
(VCI -> path) is what makes it possible to pick an already-cached fbuf
*before* the data lands in memory.

'Being able to use a cached fbuf, as opposed to an uncached fbuf that
is not mapped into any domains, can mean an order of magnitude
difference in how fast the data can be transferred across a domain
boundary.'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..host.domains import ProtectionDomain
from ..host.kernel import HostOS
from ..sim import SimulationError


@dataclass
class Fbuf:
    """One fast buffer: physical pages plus its mapping cache."""

    fbuf_id: int
    pages: list[int]                      # physical page base addresses
    page_size: int
    path_id: Optional[int] = None         # path whose cache holds it
    mapped_domains: set[str] = field(default_factory=set)
    owner: Optional[str] = None           # domain currently holding it

    @property
    def size(self) -> int:
        return len(self.pages) * self.page_size


class FbufAllocator:
    """Allocates fbufs and manages per-path mapping caches.

    A *path* here is the sequence of protection domains a connection's
    data traverses (e.g. kernel -> protocol server -> application).
    The allocator keeps cached fbufs for the most recently used paths
    (16 in the paper) and a pool of uncached fbufs for everything else.
    """

    def __init__(self, kernel: HostOS, cached_paths: int = 16,
                 buffers_per_path: int = 4):
        self.kernel = kernel
        self.cached_paths = cached_paths
        self.buffers_per_path = buffers_per_path
        self._next_id = 0
        self._paths: dict[int, list[ProtectionDomain]] = {}
        self._cache: dict[int, list[Fbuf]] = {}
        self._mru: list[int] = []
        self._uncached: list[Fbuf] = []
        self.cached_hits = 0
        self.uncached_allocations = 0
        self.transfers = 0

    # -- path registry ----------------------------------------------------------

    def register_path(self, path_id: int,
                      domains: list[ProtectionDomain]) -> None:
        """Declare the domain sequence of a data path."""
        if path_id in self._paths:
            raise SimulationError(f"path {path_id} already registered")
        self._paths[path_id] = domains

    def _touch(self, path_id: int) -> None:
        if path_id in self._mru:
            self._mru.remove(path_id)
        self._mru.insert(0, path_id)
        for evicted in self._mru[self.cached_paths:]:
            # Evicted paths lose their cached mappings.
            for fbuf in self._cache.pop(evicted, []):
                fbuf.mapped_domains.clear()
                fbuf.path_id = None
                self._uncached.append(fbuf)
        del self._mru[self.cached_paths:]

    # -- allocation ----------------------------------------------------------------

    def _new_fbuf(self, npages: int) -> Fbuf:
        pages = [self.kernel.memory.alloc_frame() for _ in range(npages)]
        fbuf = Fbuf(fbuf_id=self._next_id, pages=pages,
                    page_size=self.kernel.memory.page_size)
        self._next_id += 1
        return fbuf

    def allocate(self, path_id: int,
                 npages: int = 4) -> tuple[Fbuf, bool]:
        """Pick a buffer for incoming data on ``path_id``.

        Returns ``(fbuf, cached)`` -- exactly the decision the OSIRIS
        receive processor makes when it needs a reassembly buffer.
        """
        if path_id not in self._paths:
            raise SimulationError(f"unknown path {path_id}")
        self._touch(path_id)
        cache = self._cache.get(path_id, [])
        if cache:
            self.cached_hits += 1
            return cache.pop(0), True
        self.uncached_allocations += 1
        for i, fbuf in enumerate(self._uncached):
            if len(fbuf.pages) == npages:
                return self._uncached.pop(i), False
        return self._new_fbuf(npages), False

    def release(self, fbuf: Fbuf, path_id: int) -> None:
        """Return a buffer after the application consumed it.

        It re-enters the path's cache (mappings intact) when the path
        is hot and under quota; otherwise it becomes uncached.
        """
        fbuf.owner = None
        if (path_id in self._mru[:self.cached_paths]
                and len(self._cache.get(path_id, []))
                < self.buffers_per_path):
            fbuf.path_id = path_id
            self._cache.setdefault(path_id, []).append(fbuf)
        else:
            fbuf.mapped_domains.clear()
            fbuf.path_id = None
            self._uncached.append(fbuf)

    # -- transfer ---------------------------------------------------------------------

    def transfer(self, fbuf: Fbuf, path_id: int,
                 to_domain: ProtectionDomain) -> Generator[Any, Any, None]:
        """Move an fbuf to the next domain of its path (timed).

        A cached fbuf (already mapped into ``to_domain``) costs the
        small fixed handoff; an uncached one pays the page-remapping
        cost per transfer plus per page.
        """
        costs = self.kernel.machine.costs
        self.transfers += 1
        if to_domain.name in fbuf.mapped_domains:
            yield from self.kernel.cpu.execute(costs.fbuf_cached_transfer)
        else:
            per_page = costs.fbuf_uncached_transfer / 4.0
            cost = (costs.fbuf_uncached_transfer
                    + per_page * max(len(fbuf.pages) - 4, 0))
            yield from self.kernel.cpu.execute(cost)
            fbuf.mapped_domains.add(to_domain.name)
        fbuf.owner = to_domain.name
        to_domain.crossings_in += 1

    def traverse_path(self, fbuf: Fbuf,
                      path_id: int) -> Generator[Any, Any, None]:
        """Carry the fbuf through every domain of its path."""
        for domain in self._paths[path_id]:
            yield from self.transfer(fbuf, path_id, domain)


__all__ = ["Fbuf", "FbufAllocator"]

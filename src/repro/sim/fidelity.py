"""Fidelity switches for expensive model features.

Timing fidelity is always on; *data* fidelity (moving real payload
bytes, tag-accurate cache contents) is optional because the long
throughput sweeps do not need it.  Tests run with full fidelity so that
correctness properties (checksums detect stale cache data, reassembly
reproduces the transmitted bytes) are exercised for real.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Fidelity:
    """Configuration of model fidelity.

    Attributes:
        copy_data: move actual payload bytes through simulated memory and
            compute real CRCs/checksums over them.
        track_cache_lines: keep a tag-and-contents cache model so that
            stale reads after non-coherent DMA return genuinely stale
            bytes (needed by the lazy-invalidation experiments).
    """

    copy_data: bool = True
    track_cache_lines: bool = True

    @staticmethod
    def full() -> "Fidelity":
        """Byte-accurate everything (default for tests and examples)."""
        return Fidelity(copy_data=True, track_cache_lines=True)

    @staticmethod
    def timing_only() -> "Fidelity":
        """Timing-accurate, data-free (used by long benchmark sweeps)."""
        return Fidelity(copy_data=False, track_cache_lines=False)


__all__ = ["Fidelity"]

"""Conservative parallel discrete-event simulation.

K *shard programs*, each owning a private :class:`~repro.sim.core.
Simulator`, advance in lockstep time windows.  The engine assumes the
model guarantees a **lookahead** of ``window_us``: any message a shard
emits for another shard is stamped at least ``window_us`` after the
emitting event.  Then a window of exactly that width is safe -- every
shard runs freely up to the horizon, all emitted messages are
exchanged at the barrier, and no shard ever receives a message
stamped in its past:

    horizon = T_min + W   where T_min = earliest pending event or
                                        undelivered message, fabric-wide
    a message emitted by an event at t (>= T_min) is stamped
    t + W >= T_min + W = horizon,

so delivery at the barrier always lands at or beyond the next
window's start.  For the cluster fabric the lookahead is the trunk
propagation delay -- hosts only interact through links that are at
least that long (see DESIGN.md, "Parallel simulation").

**Adaptive window coalescing** sharpens the bound with one extra bit
per shard: whether its *model state* can ever emit a cross-shard
message again (``may_emit()``, a pure function of the cluster flow
table).  A shard that provably cannot emit contributes an infinite
emission bound, so its peers' horizons stretch past it -- in the
limit where no shard can emit (a workload whose flows never cross the
partition cut), every shard runs to quiescence in a single window
instead of hundreds of fixed-width barriers.  With every shard
capable (or ``coalesce=False``) the horizons reduce exactly to the
fixed-window formula above, so coalescing never changes *which*
events a window may run -- only how many windows it takes -- and
results stay byte-identical either way.

A shard program is anything with::

    sim            -- its Simulator
    deliver(batch) -- schedule [(when, key, msg), ...] from peers
    drain_outbox() -- return and clear [(dest, when, key, msg), ...]
    collect(t_end) -- picklable result after the clock reaches t_end
    codec          -- optional batch encoder (see repro.cluster.
                      boundary); enables the compact struct transport
    may_emit()     -- optional capability bit for coalescing; absent
                      means "always capable"

Three backends execute the shards: ``proc`` (one OS process per
shard, the fast path), ``thread`` (one thread per shard -- no
parallelism under the GIL, but real concurrency bugs still surface),
and ``inline`` (a sequential loop over the shards in the calling
thread, the debugging backend).  All three run the identical
coordinator loop, so they produce identical results.

With a codec, boundary batches travel as fixed-width records instead
of pickled tuples: the proc backend maps one anonymous shared-memory
region per direction per worker (inherited over fork), workers encode
their outboxes straight into it, and only a tiny ``(offset, length)``
span crosses the pipe; thread/inline hand the encoded buffer over by
reference.  The coordinator copies a span's bytes exactly once --
mailboxes outlive the window that produced them, the mappings do not.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Callable, Optional

from .core import SimulationError

BACKENDS = ("proc", "thread", "inline")

# Shared-memory staging area per direction per proc-backend worker.
# Outboxes larger than this fall back to bytes over the pipe.
_SHM_BYTES = 1 << 20

_INF = float("inf")


@dataclass
class ParallelRunResult:
    """What a sharded run produced."""

    t_end: float                # fabric-wide last event time
    partials: list              # one collect() result per shard
    windows: int                # synchronization barriers executed
    events_processed: int       # summed over shards
    events_absorbed: int = 0    # per-cell events folded into trains
    boundary_msgs: int = 0      # messages exchanged between shards
    boundary_bytes: int = 0     # transport payload bytes for them


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class _Worker:
    """One shard's command executor.  Runs in the worker thread or
    child process -- or directly in the coordinator for the inline
    backend -- so every backend shares one implementation."""

    def __init__(self, factory: Callable, index: int,
                 shm_in=None, shm_out=None):
        self.program = factory(index)
        self.codec = getattr(self.program, "codec", None)
        self._may_emit = getattr(self.program, "may_emit", None)
        self._shm_in = memoryview(shm_in) if shm_in is not None else None
        self._shm_out = shm_out

    def _capable(self) -> bool:
        if self._may_emit is None:
            return True
        return bool(self._may_emit())

    def ready(self) -> tuple:
        return ("ready", self.program.sim.peek(), self._capable())

    def handle(self, cmd: tuple) -> Optional[tuple]:
        program = self.program
        op = cmd[0]
        if op == "window":
            _, horizon, inbox = cmd
            if inbox:
                self._deliver(inbox)
            program.sim.run_window(horizon)
            return ("report", program.sim.peek(), self._pack_outbox(),
                    program.sim.last_event_time,
                    program.sim.events_processed,
                    program.sim.events_absorbed,
                    self._capable())
        if op == "probe":
            return ("counters", program.probe())
        if op == "collect":
            program.sim.advance_to(cmd[1])
            return ("partial", program.collect(cmd[1]))
        if op == "stop":
            return None
        raise SimulationError(f"unknown shard command {op!r}")

    def _deliver(self, inbox: list) -> None:
        codec = self.codec
        if codec is None:
            self.program.deliver(inbox)
            return
        for span in inbox:
            if isinstance(span, tuple):         # ("shm", off, length)
                _, off, length = span
                buf = self._shm_in[off:off + length]
            else:                               # standalone bytes
                buf = span
            self.program.deliver(codec.decode_batch(buf))

    def _pack_outbox(self):
        outbox = self.program.drain_outbox()
        codec = self.codec
        if codec is None or not outbox:
            return outbox
        by_dest: dict[int, list] = {}
        for dest, when, key, msg in outbox:
            by_dest.setdefault(dest, []).append((when, key, msg))
        payload = []
        cursor = 0
        for dest in sorted(by_dest):
            batch = by_dest[dest]
            span = None
            if self._shm_out is not None:
                end = codec.encode_into(batch, self._shm_out, cursor)
                if end is not None:
                    span = ("shm", cursor, end - cursor)
                    cursor = end
            if span is None:                    # no shm, or overflow
                span = codec.encode_batch(batch)
            payload.append(("enc", dest, len(batch),
                            min(when for when, _k, _m in batch), span))
        return payload


def _serve(factory: Callable, index: int, recv: Callable,
           send: Callable, shm_in=None, shm_out=None) -> None:
    """Run one shard's command loop (in a thread or child process)."""
    try:
        worker = _Worker(factory, index, shm_in, shm_out)
        send(worker.ready())
        while True:
            reply = worker.handle(recv())
            if reply is None:
                return
            send(reply)
    except Exception:  # every failure is relayed to the coordinator
        import traceback
        try:
            send(("error", index, traceback.format_exc()))
        except Exception:
            pass


class _Channel:
    """Coordinator's handle on one worker: send a command, await a
    reply.  Subclasses bind the transport; the span methods let the
    proc backend stage encoded batches in shared memory while the
    in-process backends pass buffers by reference."""

    def send(self, cmd: tuple) -> None:
        raise NotImplementedError

    def recv(self) -> tuple:
        reply = self._recv()
        if reply[0] == "error":
            raise SimulationError(
                f"shard {reply[1]} failed:\n{reply[2]}")
        return reply

    def _recv(self) -> tuple:
        raise NotImplementedError

    def begin_window(self) -> None:
        """Reset the coordinator->worker staging area (barrier safe:
        the worker consumed the previous window's spans before it
        reported)."""

    def pack_span(self, data):
        """Stage one encoded batch for this worker; returns what to
        put on the wire (a span tuple or the bytes themselves)."""
        return data

    def fetch(self, span) -> bytes:
        """Materialize a span from a worker's report as standalone
        bytes (mailboxes outlive the staging buffers)."""
        return span

    def close(self) -> None:
        pass


class _InlineChannel(_Channel):
    """The shard runs synchronously inside send(); recv() returns the
    stored reply.  No parallelism -- this is the debugging backend."""

    def __init__(self, factory: Callable, index: int):
        self._worker = _Worker(factory, index)
        self._reply: Optional[tuple] = self._worker.ready()

    def send(self, cmd: tuple) -> None:
        self._reply = self._worker.handle(cmd)

    def _recv(self) -> tuple:
        return self._reply


class _ThreadChannel(_Channel):
    def __init__(self, factory: Callable, index: int):
        import queue
        import threading
        self._to_worker: "queue.Queue" = queue.Queue()
        self._from_worker: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=_serve,
            args=(factory, index, self._to_worker.get,
                  self._from_worker.put),
            name=f"shard-{index}", daemon=True)
        self._thread.start()

    def send(self, cmd: tuple) -> None:
        self._to_worker.put(cmd)

    def _recv(self) -> tuple:
        return self._from_worker.get()

    def close(self) -> None:
        self._thread.join(timeout=10.0)


class _ProcChannel(_Channel):
    def __init__(self, ctx, factory: Callable, index: int,
                 use_shm: bool):
        self._shm_in = self._shm_out = None
        self._in_cursor = 0
        if use_shm:
            # Anonymous mappings made before fork are inherited by the
            # child: no names, no files, no resource tracker -- they
            # vanish with the processes.
            import mmap
            self._shm_in = mmap.mmap(-1, _SHM_BYTES)
            self._shm_out = mmap.mmap(-1, _SHM_BYTES)
        parent, child = ctx.Pipe()
        self._conn = parent
        self._proc = ctx.Process(
            target=_serve,
            args=(factory, index, child.recv, child.send,
                  self._shm_in, self._shm_out),
            name=f"shard-{index}", daemon=True)
        self._proc.start()
        child.close()

    def send(self, cmd: tuple) -> None:
        self._conn.send(cmd)

    def _recv(self) -> tuple:
        return self._conn.recv()

    def begin_window(self) -> None:
        self._in_cursor = 0

    def pack_span(self, data):
        shm = self._shm_in
        size = len(data)
        if shm is None or self._in_cursor + size > _SHM_BYTES:
            return data
        off = self._in_cursor
        shm[off:off + size] = data
        self._in_cursor = off + size
        return ("shm", off, size)

    def fetch(self, span) -> bytes:
        if isinstance(span, tuple):
            _, off, size = span
            return bytes(self._shm_out[off:off + size])
        return span

    def close(self) -> None:
        self._conn.close()
        self._proc.join(timeout=10.0)
        if self._proc.is_alive():
            self._proc.terminate()
        for shm in (self._shm_in, self._shm_out):
            if shm is not None:
                shm.close()


def _open_channels(factory: Callable, n_shards: int,
                   backend: str) -> list:
    if backend == "inline":
        return [_InlineChannel(factory, i) for i in range(n_shards)]
    if backend == "thread":
        return [_ThreadChannel(factory, i) for i in range(n_shards)]
    if backend == "proc":
        import multiprocessing
        try:
            ctx = multiprocessing.get_context("fork")
            use_shm = True
        except ValueError:          # platform without fork
            ctx = multiprocessing.get_context()
            use_shm = False         # children could not inherit a map
        return [_ProcChannel(ctx, factory, i, use_shm)
                for i in range(n_shards)]
    raise SimulationError(
        f"unknown shard backend {backend!r}; choose from {BACKENDS}")


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------

def _wire_inbox(channel: _Channel, entries: list) -> list:
    """Turn a shard's mailbox into what goes over its channel."""
    wire = []
    for when, _count, data in entries:
        if isinstance(data, tuple):             # legacy (key, msg)
            key, msg = data
            wire.append((when, key, msg))
        else:                                   # encoded batch bytes
            wire.append(channel.pack_span(data))
    return wire


def run_shards(factory: Callable, n_shards: int, window_us: float,
               backend: str = "proc",
               window_probe: Optional[Callable[[int, list], None]] = None,
               coalesce: bool = True,
               ) -> ParallelRunResult:
    """Drive ``n_shards`` shard programs to global quiescence.

    ``factory(index)`` builds shard ``index``'s program; with the
    ``proc`` backend it runs in the child, so it (and whatever it
    closes over) must survive the journey into a worker process.
    ``window_us`` is the model's lookahead -- for the cluster fabric,
    the trunk propagation delay.

    ``window_probe(window_index, counters)``, when given, is called at
    every barrier with each shard's ``program.probe()`` result -- a
    true global snapshot, since no shard is mid-event at a barrier.
    The sanitizers use it to re-assert the conservation law every
    window instead of only at quiescence.  With coalescing the probe
    fires once per *coalesced* window -- fewer, wider snapshots, same
    invariant.

    ``coalesce=False`` pins every shard's emission bound to the fixed
    lookahead, reproducing the classic one-W-per-round schedule (the
    A/B baseline for benchmarks and determinism tests).
    """
    if window_us <= 0.0:
        raise SimulationError(
            f"window_us must be positive, got {window_us}")
    if n_shards < 1:
        raise SimulationError(f"need at least one shard, got {n_shards}")

    channels = _open_channels(factory, n_shards, backend)
    try:
        peeks: list[Optional[float]] = []
        capable: list[bool] = []
        for channel in channels:
            reply = channel.recv()
            peeks.append(reply[1])
            capable.append(bool(reply[2]))
        # Mailbox entries are (min_when, message count, data) where
        # data is an encoded batch (bytes) or one legacy (key, msg).
        inboxes: list[list] = [[] for _ in range(n_shards)]
        lasts = [0.0] * n_shards
        events = [0] * n_shards
        absorbed = [0] * n_shards
        windows = 0
        boundary_msgs = 0
        boundary_bytes = 0

        while True:
            # The frontier: every place a future cross-shard effect
            # can originate -- a shard's next pending event, or an
            # undelivered message.
            loc_min = [_INF] * n_shards
            for i, peek in enumerate(peeks):
                if peek is not None:
                    loc_min[i] = peek
            for i, box in enumerate(inboxes):
                for when, _count, _data in box:
                    if when < loc_min[i]:
                        loc_min[i] = when
            if min(loc_min) == _INF:
                break

            # Emission bound: the earliest instant shard j could
            # stamp a *cross-shard* message.  Anything j emits comes
            # from an event at loc_min[j] or later and carries the
            # lookahead, so eb[j] = loc_min[j] + W -- unless j's model
            # state rules out cross-shard emission entirely, in which
            # case the bound is infinite and j stops constraining its
            # peers (the whole point of coalescing).
            #
            # A message can reach shard i either directly from a
            # foreign emission (eb[j]) or by a chain that starts at
            # i's own frontier, crosses to a peer, and bounces back
            # (eb[i] + W minimum -- the credit-return loop is exactly
            # that shape); longer chains only add more +W hops, so
            # the two terms dominate by induction:
            #
            #     horizon_i = min(min_{j!=i} eb[j],  eb[i] + W)
            #
            # With every shard capable this is the classic fixed
            # window (W past the fabric-wide frontier, 2W for a shard
            # whose peers all idle) -- coalescing strictly widens it.
            # Track the two smallest bounds to get min-over-others
            # per shard in O(1).
            eb = [_INF] * n_shards
            for i in range(n_shards):
                if loc_min[i] < _INF and (capable[i] or not coalesce):
                    eb[i] = loc_min[i] + window_us
            lo = lo2 = _INF
            lo_at = -1
            for i, value in enumerate(eb):
                if value < lo:
                    lo2, lo, lo_at = lo, value, i
                elif value < lo2:
                    lo2 = value

            active = []
            for i, channel in enumerate(channels):
                foreign = lo2 if lo_at == i else lo
                echo = eb[i] + window_us
                horizon = echo if echo < foreign else foreign
                runnable = peeks[i] is not None and peeks[i] < horizon
                deliverable = any(when < horizon
                                  for when, _c, _d in inboxes[i])
                if not (runnable or deliverable):
                    continue        # idle this window; keep its mailbox
                if not runnable and coalesce and not capable[i] \
                        and horizon < _INF:
                    # Deliver-only work on a shard that provably
                    # cannot emit: deferring it is invisible to every
                    # peer, so batch it into the shard's next real
                    # window instead of paying a round-trip now.
                    continue
                active.append(i)
                channel.begin_window()
                channel.send(("window", horizon,
                              _wire_inbox(channel, inboxes[i])))
                inboxes[i] = []
            if not active:
                # Unreachable: the shard holding the smallest finite
                # emission bound is always runnable or deliverable and
                # never deferred; if no bound is finite, horizons are
                # infinite and deferral is off.  Guard anyway -- a
                # silent `continue` here would spin forever.
                raise SimulationError(
                    "window engine stalled with work pending")
            for i in active:
                (_tag, peek, payload, last, n_events, n_absorbed,
                 is_capable) = channels[i].recv()
                peeks[i] = peek
                lasts[i] = last
                events[i] = n_events
                absorbed[i] = n_absorbed
                capable[i] = bool(is_capable)
                if not payload:
                    continue
                if payload[0][0] == "enc":
                    for _e, dest, count, min_when, span in payload:
                        data = channels[i].fetch(span)
                        inboxes[dest].append((min_when, count, data))
                        boundary_msgs += count
                        boundary_bytes += len(data)
                else:                           # legacy tuple transport
                    for dest, when, key, msg in payload:
                        inboxes[dest].append((when, 1, (key, msg)))
                    boundary_msgs += len(payload)
                    boundary_bytes += len(pickle.dumps(payload))
            windows += 1
            if window_probe is not None:
                for channel in channels:
                    channel.send(("probe",))
                window_probe(windows,
                             [channel.recv()[1] for channel in channels])

        t_end = max(lasts)
        for channel in channels:
            channel.send(("collect", t_end))
        partials = [channel.recv()[1] for channel in channels]
        for channel in channels:
            channel.send(("stop",))
        return ParallelRunResult(t_end=t_end, partials=partials,
                                 windows=windows,
                                 events_processed=sum(events),
                                 events_absorbed=sum(absorbed),
                                 boundary_msgs=boundary_msgs,
                                 boundary_bytes=boundary_bytes)
    finally:
        for channel in channels:
            channel.close()


__all__ = ["run_shards", "ParallelRunResult", "BACKENDS"]

"""Conservative parallel discrete-event simulation.

K *shard programs*, each owning a private :class:`~repro.sim.core.
Simulator`, advance in lockstep time windows.  The engine assumes the
model guarantees a **lookahead** of ``window_us``: any message a shard
emits for another shard is stamped at least ``window_us`` after the
emitting event.  Then a window of exactly that width is safe -- every
shard runs freely up to the horizon, all emitted messages are
exchanged at the barrier, and no shard ever receives a message
stamped in its past:

    horizon = T_min + W   where T_min = earliest pending event or
                                        undelivered message, fabric-wide
    a message emitted by an event at t (>= T_min) is stamped
    t + W >= T_min + W = horizon,

so delivery at the barrier always lands at or beyond the next
window's start.  For the cluster fabric the lookahead is the trunk
propagation delay -- hosts only interact through links that are at
least that long (see DESIGN.md, "Parallel simulation").

A shard program is anything with::

    sim            -- its Simulator
    deliver(batch) -- schedule [(when, key, msg), ...] from peers
    drain_outbox() -- return and clear [(dest, when, key, msg), ...]
    collect(t_end) -- picklable result after the clock reaches t_end

Three backends execute the shards: ``proc`` (one OS process per
shard, the fast path), ``thread`` (one thread per shard -- no
parallelism under the GIL, but real concurrency bugs still surface),
and ``inline`` (a sequential loop over the shards in the calling
thread, the debugging backend).  All three run the identical
coordinator loop, so they produce identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .core import SimulationError

BACKENDS = ("proc", "thread", "inline")


@dataclass
class ParallelRunResult:
    """What a sharded run produced."""

    t_end: float                # fabric-wide last event time
    partials: list              # one collect() result per shard
    windows: int                # synchronization barriers executed
    events_processed: int       # summed over shards
    events_absorbed: int = 0    # per-cell events folded into trains


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _serve(factory: Callable, index: int, recv: Callable,
           send: Callable) -> None:
    """Run one shard's command loop (in a thread or child process)."""
    try:
        program = factory(index)
        send(("ready", program.sim.peek()))
        while True:
            cmd = recv()
            op = cmd[0]
            if op == "window":
                _, horizon, inbox = cmd
                if inbox:
                    program.deliver(inbox)
                program.sim.run_window(horizon)
                send(("report", program.sim.peek(),
                      program.drain_outbox(),
                      program.sim.last_event_time,
                      program.sim.events_processed,
                      program.sim.events_absorbed))
            elif op == "probe":
                send(("counters", program.probe()))
            elif op == "collect":
                program.sim.advance_to(cmd[1])
                send(("partial", program.collect(cmd[1])))
            elif op == "stop":
                return
            else:
                raise SimulationError(f"unknown shard command {op!r}")
    except Exception:  # every failure is relayed to the coordinator
        import traceback
        try:
            send(("error", index, traceback.format_exc()))
        except Exception:
            pass


class _Channel:
    """Coordinator's handle on one worker: send a command, await a
    reply.  Subclasses bind the transport."""

    def send(self, cmd: tuple) -> None:
        raise NotImplementedError

    def recv(self) -> tuple:
        reply = self._recv()
        if reply[0] == "error":
            raise SimulationError(
                f"shard {reply[1]} failed:\n{reply[2]}")
        return reply

    def _recv(self) -> tuple:
        raise NotImplementedError

    def close(self) -> None:
        pass


class _InlineChannel(_Channel):
    """The shard runs synchronously inside send(); recv() returns the
    stored reply.  No parallelism -- this is the debugging backend."""

    def __init__(self, factory: Callable, index: int):
        self._program = factory(index)
        self._reply: Optional[tuple] = ("ready", self._program.sim.peek())

    def send(self, cmd: tuple) -> None:
        program = self._program
        op = cmd[0]
        if op == "window":
            _, horizon, inbox = cmd
            if inbox:
                program.deliver(inbox)
            program.sim.run_window(horizon)
            self._reply = ("report", program.sim.peek(),
                           program.drain_outbox(),
                           program.sim.last_event_time,
                           program.sim.events_processed,
                           program.sim.events_absorbed)
        elif op == "probe":
            self._reply = ("counters", program.probe())
        elif op == "collect":
            program.sim.advance_to(cmd[1])
            self._reply = ("partial", program.collect(cmd[1]))
        elif op == "stop":
            self._reply = None
        else:
            raise SimulationError(f"unknown shard command {op!r}")

    def _recv(self) -> tuple:
        return self._reply


class _ThreadChannel(_Channel):
    def __init__(self, factory: Callable, index: int):
        import queue
        import threading
        self._to_worker: "queue.Queue" = queue.Queue()
        self._from_worker: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=_serve,
            args=(factory, index, self._to_worker.get,
                  self._from_worker.put),
            name=f"shard-{index}", daemon=True)
        self._thread.start()

    def send(self, cmd: tuple) -> None:
        self._to_worker.put(cmd)

    def _recv(self) -> tuple:
        return self._from_worker.get()

    def close(self) -> None:
        self._thread.join(timeout=10.0)


class _ProcChannel(_Channel):
    def __init__(self, ctx, factory: Callable, index: int):
        parent, child = ctx.Pipe()
        self._conn = parent
        self._proc = ctx.Process(
            target=_serve,
            args=(factory, index, child.recv, child.send),
            name=f"shard-{index}", daemon=True)
        self._proc.start()
        child.close()

    def send(self, cmd: tuple) -> None:
        self._conn.send(cmd)

    def _recv(self) -> tuple:
        return self._conn.recv()

    def close(self) -> None:
        self._conn.close()
        self._proc.join(timeout=10.0)
        if self._proc.is_alive():
            self._proc.terminate()


def _open_channels(factory: Callable, n_shards: int,
                   backend: str) -> list:
    if backend == "inline":
        return [_InlineChannel(factory, i) for i in range(n_shards)]
    if backend == "thread":
        return [_ThreadChannel(factory, i) for i in range(n_shards)]
    if backend == "proc":
        import multiprocessing
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:          # platform without fork
            ctx = multiprocessing.get_context()
        return [_ProcChannel(ctx, factory, i) for i in range(n_shards)]
    raise SimulationError(
        f"unknown shard backend {backend!r}; choose from {BACKENDS}")


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------

def run_shards(factory: Callable, n_shards: int, window_us: float,
               backend: str = "proc",
               window_probe: Optional[Callable[[int, list], None]] = None,
               ) -> ParallelRunResult:
    """Drive ``n_shards`` shard programs to global quiescence.

    ``factory(index)`` builds shard ``index``'s program; with the
    ``proc`` backend it runs in the child, so it (and whatever it
    closes over) must survive the journey into a worker process.
    ``window_us`` is the model's lookahead -- for the cluster fabric,
    the trunk propagation delay.

    ``window_probe(window_index, counters)``, when given, is called at
    every barrier with each shard's ``program.probe()`` result -- a
    true global snapshot, since no shard is mid-event at a barrier.
    The sanitizers use it to re-assert the conservation law every
    window instead of only at quiescence.
    """
    if window_us <= 0.0:
        raise SimulationError(
            f"window_us must be positive, got {window_us}")
    if n_shards < 1:
        raise SimulationError(f"need at least one shard, got {n_shards}")

    channels = _open_channels(factory, n_shards, backend)
    try:
        peeks: list[Optional[float]] = []
        for channel in channels:
            reply = channel.recv()
            peeks.append(reply[1])
        inboxes: list[list] = [[] for _ in range(n_shards)]
        lasts = [0.0] * n_shards
        events = [0] * n_shards
        absorbed = [0] * n_shards
        windows = 0

        while True:
            # The frontier: every place a future cross-shard effect can
            # originate -- a shard's next pending event, or an
            # undelivered message.  A message can reach shard i either
            # directly from a foreign frontier element (one hop, +W) or
            # by a chain that starts at i's *own* frontier, crosses to
            # a peer, and bounces back (two hops minimum, +2W) -- the
            # credit-return loop is exactly that shape.  So
            #
            #     horizon_i = W + min(min_{j!=i} loc_min[j],
            #                         loc_min[i] + W)
            #
            # Longer chains only add more +W hops, so the two terms
            # dominate by induction.  A shard whose peers are all idle
            # advances 2W per round instead of being stuck at the
            # global-window W; idle shards skip the barrier entirely.
            # Track the two smallest per-location minima to get
            # min-over-others per shard in O(1).
            loc_min = [float("inf")] * n_shards
            for i, peek in enumerate(peeks):
                if peek is not None:
                    loc_min[i] = peek
            for i, box in enumerate(inboxes):
                for when, _key, _msg in box:
                    if when < loc_min[i]:
                        loc_min[i] = when
            lo = lo2 = float("inf")
            lo_at = -1
            for i, value in enumerate(loc_min):
                if value < lo:
                    lo2, lo, lo_at = lo, value, i
                elif value < lo2:
                    lo2 = value
            if lo == float("inf"):
                break

            active = []
            for i, channel in enumerate(channels):
                foreign = lo2 if lo_at == i else lo
                own = loc_min[i] + window_us
                horizon = (own if own < foreign else foreign) + window_us
                runnable = peeks[i] is not None and peeks[i] < horizon
                deliverable = any(when < horizon
                                  for when, _k, _m in inboxes[i])
                if not (runnable or deliverable):
                    continue        # idle this window; keep its mailbox
                active.append(i)
                channel.send(("window", horizon, inboxes[i]))
                inboxes[i] = []
            for i in active:
                (_, peek, outbox, last, n_events,
                 n_absorbed) = channels[i].recv()
                peeks[i] = peek
                lasts[i] = last
                events[i] = n_events
                absorbed[i] = n_absorbed
                for dest, when, key, msg in outbox:
                    inboxes[dest].append((when, key, msg))
            windows += 1
            if window_probe is not None:
                for channel in channels:
                    channel.send(("probe",))
                window_probe(windows,
                             [channel.recv()[1] for channel in channels])

        t_end = max(lasts)
        for channel in channels:
            channel.send(("collect", t_end))
        partials = [channel.recv()[1] for channel in channels]
        for channel in channels:
            channel.send(("stop",))
        return ParallelRunResult(t_end=t_end, partials=partials,
                                 windows=windows,
                                 events_processed=sum(events),
                                 events_absorbed=sum(absorbed))
    finally:
        for channel in channels:
            channel.close()


__all__ = ["run_shards", "ParallelRunResult", "BACKENDS"]

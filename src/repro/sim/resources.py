"""Timed resources for simulation processes.

:class:`Resource` models a server with finite capacity and a FIFO (or
priority) wait queue -- the TURBOchannel bus, a DMA engine, or a CPU are
all capacity-1 resources.  :class:`Store` is a producer/consumer channel
used for cell pipes and inter-process queues.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Optional

from .core import SimulationError, Simulator
from .process import Delay


class Grant:
    """A held unit of a resource; release exactly once."""

    __slots__ = ("resource", "released", "acquired_at")

    def __init__(self, resource: "Resource", acquired_at: float):
        self.resource = resource
        self.released = False
        self.acquired_at = acquired_at

    def release(self) -> None:
        if self.released:
            raise SimulationError("double release of resource grant")
        self.released = True
        self.resource._on_release(self)


class _Request:
    """Awaitable command produced by :meth:`Resource.request`."""

    __slots__ = ("resource", "priority", "seq", "_resume")

    def __init__(self, resource: "Resource", priority: float, seq: int):
        self.resource = resource
        self.priority = priority
        self.seq = seq
        self._resume: Optional[Callable[[Any], None]] = None

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        self._resume = resume
        self.resource._enqueue(self)

    def __lt__(self, other: "_Request") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class Resource:
    """Finite-capacity resource with priority/FIFO queueing.

    Statistics (:attr:`busy_time`, :attr:`grants`) feed utilisation
    reports in the benchmark harness.
    """

    def __init__(self, sim: Simulator, name: str = "resource",
                 capacity: int = 1):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiting: list[_Request] = []
        self._seq = itertools.count()
        self.busy_time = 0.0
        self.grants = 0
        self._busy_since: Optional[float] = None

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, priority: float = 0.0) -> _Request:
        """Awaitable: yields a :class:`Grant` once capacity is available.

        Lower ``priority`` values are served first; ties are FIFO.
        """
        return _Request(self, priority, next(self._seq))

    def use(self, duration: float,
            priority: float = 0.0) -> Generator[Any, Any, None]:
        """Subroutine: acquire, hold ``duration`` microseconds, release.

        Use as ``yield from resource.use(t)`` inside a process.
        """
        grant = yield self.request(priority)
        try:
            yield Delay(duration)
        finally:
            grant.release()

    def _enqueue(self, request: _Request) -> None:
        if self._in_use < self.capacity:
            self._grant(request)
        else:
            heapq.heappush(self._waiting, request)

    def _grant(self, request: _Request) -> None:
        self._in_use += 1
        self.grants += 1
        if self._busy_since is None:
            self._busy_since = self.sim.now
        grant = Grant(self, self.sim.now)
        assert request._resume is not None
        request._resume(grant)

    def _on_release(self, grant: Grant) -> None:
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        if self._waiting and self._in_use < self.capacity:
            self._grant(heapq.heappop(self._waiting))

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the resource was busy (any units in use)."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        total = elapsed if elapsed is not None else self.sim.now
        if total <= 0:
            return 0.0
        return busy / total

    def __repr__(self) -> str:
        return (f"Resource({self.name!r}, {self._in_use}/{self.capacity} "
                f"in use, {len(self._waiting)} waiting)")


class _Get:
    __slots__ = ("store", "_resume")

    def __init__(self, store: "Store"):
        self.store = store
        self._resume: Optional[Callable[[Any], None]] = None

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        self._resume = resume
        self.store._enqueue_get(self)


class _Put:
    __slots__ = ("store", "item", "_resume")

    def __init__(self, store: "Store", item: Any):
        self.store = store
        self.item = item
        self._resume: Optional[Callable[[Any], None]] = None

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        self._resume = resume
        self.store._enqueue_put(self)


class Store:
    """FIFO channel between processes, with optional capacity bound.

    ``yield store.get()`` blocks until an item is available;
    ``yield store.put(item)`` blocks while the store is full.
    """

    def __init__(self, sim: Simulator, name: str = "store",
                 capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError("store capacity must be >= 1 or None")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: list[Any] = []
        self._getters: list[_Get] = []
        self._putters: list[_Put] = []
        self.total_put = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        return tuple(self._items)

    def get(self) -> _Get:
        return _Get(self)

    def put(self, item: Any) -> _Put:
        return _Put(self, item)

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._deposit(item)
        return True

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if not self._items:
            return False, None
        item = self._items.pop(0)
        self._admit_putter()
        return True, item

    def _deposit(self, item: Any) -> None:
        self.total_put += 1
        if self._getters:
            getter = self._getters.pop(0)
            assert getter._resume is not None
            getter._resume(item)
        else:
            self._items.append(item)

    def _admit_putter(self) -> None:
        if self._putters and (self.capacity is None
                              or len(self._items) < self.capacity):
            putter = self._putters.pop(0)
            self._deposit(putter.item)
            assert putter._resume is not None
            putter._resume(None)

    def _enqueue_get(self, getter: _Get) -> None:
        if self._items:
            item = self._items.pop(0)
            assert getter._resume is not None
            getter._resume(item)
            self._admit_putter()
        else:
            self._getters.append(getter)

    def _enqueue_put(self, putter: _Put) -> None:
        if self.capacity is None or len(self._items) < self.capacity:
            self._deposit(putter.item)
            assert putter._resume is not None
            putter._resume(None)
        else:
            self._putters.append(putter)

    def __repr__(self) -> str:
        return (f"Store({self.name!r}, {len(self._items)} items, "
                f"{len(self._getters)} getters, {len(self._putters)} putters)")


__all__ = ["Resource", "Grant", "Store"]

"""Generator-based simulation processes.

A *process* is a Python generator that yields *commands* to the process
kernel.  This mirrors how the real system is structured: the on-board
i960 loops, the host interrupt handlers and the driver threads of the
paper all become processes that explicitly spend simulated time.

Supported commands (anything a process may ``yield``):

* :class:`Delay` -- advance simulated time.
* :class:`Signal` (yield it directly) -- block until the signal fires;
  the value passed to :meth:`Signal.fire` becomes the yield's value.
* :class:`Process` (yield it directly) -- join another process; its
  return value becomes the yield's value.
* ``None`` -- reschedule immediately (a cooperative yield point).

Resources (:mod:`repro.sim.resources`) provide further awaitables.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from .core import SimulationError, Simulator

ProcessGen = Generator[Any, Any, Any]


class Delay:
    """Command: suspend the process for ``duration`` microseconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise SimulationError(f"negative delay {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Delay({self.duration})"


class Signal:
    """A broadcast wake-up point.

    Processes that yield a Signal block until :meth:`fire` is called;
    all current waiters wake with the fired value.  A Signal has no
    memory: firing with no waiters is a no-op (see :class:`Latch` for
    the sticky variant).
    """

    def __init__(self, name: str = "signal"):
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self._subscribers: list[Callable[[Any], None]] = []
        self.fire_count = 0

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        self._waiters.append(resume)

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        """Register a persistent callback invoked on every fire."""
        self._subscribers.append(callback)

    def fire(self, value: Any = None) -> int:
        """Wake all waiters; returns how many were woken."""
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume(value)
        for callback in list(self._subscribers):
            callback(value)
        return len(waiters)

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class Latch(Signal):
    """A sticky signal: once fired, subsequent waits return immediately."""

    def __init__(self, name: str = "latch"):
        super().__init__(name)
        self.fired = False
        self.value: Any = None

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        if self.fired:
            resume(self.value)
        else:
            super()._add_waiter(resume)

    def fire(self, value: Any = None) -> int:
        self.fired = True
        self.value = value
        return super().fire(value)


class Interrupted(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process:
    """A running generator, driven by the simulator.

    Yielding a Process from another process joins it.  The generator's
    ``return`` value is exposed as :attr:`result` once :attr:`done`.
    """

    def __init__(self, sim: Simulator, gen: ProcessGen, name: str = "proc"):
        self.sim = sim
        self.name = name
        self._gen = gen
        self.done = False
        self.failed = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._done_latch = Latch(f"{name}.done")
        self._pending_timer = None
        sim.call_now(lambda: self._step(None))

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        # Duck-typed with Signal so `yield process` joins it.
        self._done_latch._add_waiter(resume)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its yield point."""
        if self.done:
            return
        if self._pending_timer is not None:
            self._pending_timer.cancel()
            self._pending_timer = None
        self._throw(Interrupted(cause))

    def _throw(self, exc: BaseException) -> None:
        try:
            command = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupted:
            self._finish(None)
            return
        except BaseException as err:  # propagate model bugs loudly
            self._fail(err)
            raise
        self._dispatch(command)

    def _step(self, value: Any) -> None:
        self._pending_timer = None
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as err:
            self._fail(err)
            raise
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if command is None:
            self._pending_timer = self.sim.call_now(lambda: self._step(None))
        elif isinstance(command, Delay):
            self._pending_timer = self.sim.call_after(
                command.duration, lambda: self._step(None))
        elif hasattr(command, "_add_waiter"):
            command._add_waiter(self._step)
        else:
            err = SimulationError(
                f"process {self.name!r} yielded unsupported {command!r}")
            self._fail(err)
            raise err

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        self._done_latch.fire(result)

    def _fail(self, err: BaseException) -> None:
        self.done = True
        self.failed = True
        self.error = err
        self._done_latch.fire(None)

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


def spawn(sim: Simulator, gen: ProcessGen, name: str = "proc") -> Process:
    """Start ``gen`` as a process on ``sim``."""
    return Process(sim, gen, name)


def all_of(sim: Simulator, processes: Iterable[Process]) -> Process:
    """A process that completes when every process in the list has."""

    def waiter() -> ProcessGen:
        results = []
        for proc in processes:
            results.append((yield proc))
        return results

    return spawn(sim, waiter(), "all_of")


__all__ = [
    "Delay", "Signal", "Latch", "Process", "Interrupted", "spawn", "all_of",
]

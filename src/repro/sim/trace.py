"""Measurement helpers: counters, time series, and rate meters.

The benchmark harness reads these monitors after a run to produce the
paper-style tables and figure series.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from .core import Simulator


class Counter:
    """A named monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}={self.value})"


class Series:
    """An append-only (time, value) series."""

    def __init__(self, name: str):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        if not self.values:
            return float("nan")
        return sum(self.values) / len(self.values)

    def stdev(self) -> float:
        n = len(self.values)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (n - 1))

    def percentile(self, pct: float) -> float:
        if not self.values:
            return float("nan")
        ordered = sorted(self.values)
        k = (len(ordered) - 1) * pct / 100.0
        lo = math.floor(k)
        hi = math.ceil(k)
        if lo == hi:
            return ordered[int(k)]
        return ordered[lo] * (hi - k) + ordered[hi] * (k - lo)


class Throughput:
    """Byte meter that converts to Mbps over a measured window."""

    def __init__(self, sim: Simulator, name: str = "throughput"):
        self.sim = sim
        self.name = name
        self.bytes = 0
        self.messages = 0
        self._window_start: Optional[float] = None
        self._window_bytes_base = 0
        self._window_messages_base = 0

    def account(self, nbytes: int) -> None:
        self.bytes += nbytes
        self.messages += 1

    def open_window(self) -> None:
        """Start the measurement window (skip warm-up traffic)."""
        self._window_start = self.sim.now
        self._window_bytes_base = self.bytes
        self._window_messages_base = self.messages

    @property
    def window_bytes(self) -> int:
        return self.bytes - self._window_bytes_base

    @property
    def window_messages(self) -> int:
        return self.messages - self._window_messages_base

    def mbps(self, end_time: Optional[float] = None) -> float:
        """Megabits per second over the open window (or since t=0)."""
        start = self._window_start if self._window_start is not None else 0.0
        end = end_time if end_time is not None else self.sim.now
        elapsed = end - start
        if elapsed <= 0:
            return 0.0
        return self.window_bytes * 8.0 / elapsed  # bytes/us * 8 == Mbps


def mbps_from_bytes(nbytes: int, elapsed_us: float) -> float:
    """Convert a byte count over an interval in microseconds to Mbps."""
    if elapsed_us <= 0:
        return 0.0
    return nbytes * 8.0 / elapsed_us


def mean(values: Iterable[float]) -> float:
    data = list(values)
    if not data:
        return float("nan")
    return sum(data) / len(data)


__all__ = [
    "Counter", "Series", "Throughput", "mbps_from_bytes", "mean",
]

"""Cell trains: one event standing in for a burst of contiguous cells.

The simulator's throughput ceiling is per-cell heap traffic: a cell
crossing the fabric costs a serialization delay on its link, a keyed
switch-arrival event, a drain delay at its output port, and a delivery
event -- four heap operations for work whose timing is pure arithmetic
whenever nothing contends.  A :class:`CellTrain` is the DPDK burst
idiom applied to simulation: on an uncontended segment, a contiguous
run of cells from one PDU travels as a *single* event carrying the
cells and their per-cell timestamps, and the receiving stage either
*fuses* (absorbs the whole burst arithmetically, bumping
``Simulator.events_absorbed`` for the events it folded) or *expands*
back to ordinary per-cell events wherever ordering can matter.

Invariants (see DESIGN.md section 10):

* A train only forms while the emitting link is continuously busy --
  ``times`` is the exact per-cell arrival sequence the per-cell path
  would have produced, bit for bit.
* Every cell keeps the boundary-channel ordering key it would have
  carried alone: the train owns the block ``(chan, n0) .. (chan,
  n0 + len - 1)``, and the train event itself is keyed ``(chan, n0)``
  -- the first cell's key -- so it sorts exactly where the first
  per-cell event would have.
* A train is mutable only until its event fires: the emitter may
  append cells while simulation time is still before ``times[0]``;
  the ``fired`` flag closes it.
* Trains never cross a shard boundary; the emitting side expands
  them into per-cell messages first (a mailboxed train could not
  accept appends consistently across backends).
"""

from __future__ import annotations

from typing import List


class CellTrain:
    """A contiguous burst of cells riding one boundary channel.

    ``cells[i]`` arrives at ``times[i]``; its ordering key on the
    channel is ``chan + (n0 + i,)``.  Arrival times are explicit (not
    a stride) so a train can carry any in-order burst -- uplink
    serialization grids and switch departure grids alike.
    """

    __slots__ = ("cells", "times", "chan", "n0", "fired")

    def __init__(self, cells: List, times: List[float], chan: tuple,
                 n0: int):
        self.cells = cells
        self.times = times
        self.chan = chan
        self.n0 = n0
        self.fired = False

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def key(self) -> tuple:
        """The train event's ordering key: the first cell's."""
        return self.chan + (self.n0,)

    def cell_key(self, i: int) -> tuple:
        """The ordering key cell ``i`` would carry alone."""
        return self.chan + (self.n0 + i,)

    def try_append(self, cell, time: float) -> bool:
        """Append one cell if the train is still open (its event has
        not fired).  The caller owns the channel counter: a successful
        append must be matched by one bump of ``chan``'s sequence."""
        if self.fired:
            return False
        self.cells.append(cell)
        self.times.append(time)
        return True


__all__ = ["CellTrain"]

"""Discrete-event simulation core.

The engine keeps a priority queue of timestamped callbacks.  Everything
else in the library (bus transactions, on-board processors, interrupt
handlers, protocol threads) is built on top of this single event loop,
either directly via :meth:`Simulator.call_at` or through the
generator-based processes in :mod:`repro.sim.process`.

Time is measured in **microseconds** throughout the library.  The paper
reasons about costs in microseconds and 40 ns bus cycles, so a float
microsecond clock gives comfortable resolution (a 25 MHz cycle is
0.04 us) without the bookkeeping of integer picoseconds.

The queue is a plain heap of ``(time, key, seq)`` tuples with the
callbacks held in a side table keyed by ``seq``:

* ``key`` is an *ordering key* that breaks same-time ties **by
  content** instead of by insertion order.  Ordinary events use the
  empty tuple and therefore order by ``seq`` (schedule order), exactly
  as before.  Events that cross a boundary between independently
  running simulators -- cells arriving at a switch, returning credits
  -- carry a ``(channel..., channel_seq)`` key, so their order at a
  merge point is the same whether they were scheduled locally or
  delivered from another shard's mailbox.  This is what makes the
  sharded cluster runs of :mod:`repro.sim.parallel` bit-identical to
  single-process runs.
* Cancellation removes the side-table entry in O(1); stale heap tuples
  are skipped lazily on pop, and the heap is compacted whenever more
  than half of it is dead, so cancel-heavy models no longer accumulate
  garbage.  :attr:`Simulator.pending` is the side table's length --
  O(1), and it counts *live* entries only.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

# Ordinary events carry the empty ordering key: at equal times they
# sort before any keyed (boundary) event and among themselves by
# schedule order.
NO_KEY: tuple = ()
_INF = float("inf")

# Compaction policy: rebuild the heap once it holds this many entries
# and more than half of them are dead (cancelled or already popped
# from the side table).
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


# Installed by repro.analysis.sanitize: when set, every Simulator
# constructed afterwards owns a sanitizer instance whose on_event /
# window_begin / window_end hooks watch for monotone-time and
# shard-horizon violations.  None (the default) costs one attribute
# check per event.
_sanitizer_factory: Optional[Callable[[], object]] = None


def set_sanitizer_factory(factory: Optional[Callable[[], object]]) -> None:
    """Install (or clear) the per-Simulator sanitizer factory."""
    global _sanitizer_factory
    _sanitizer_factory = factory


class Timer:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("_sim", "_seq", "_time", "_cancelled")

    def __init__(self, sim: "Simulator", seq: int, time: float):
        self._sim = sim
        self._seq = seq
        self._time = time
        self._cancelled = False

    @property
    def time(self) -> float:
        """Absolute simulation time at which the callback fires."""
        return self._time

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if self._cancelled:
            return
        self._cancelled = True
        sim = self._sim
        sim._live.pop(self._seq, None)
        if (len(sim._heap) >= _COMPACT_MIN
                and len(sim._live) * 2 < len(sim._heap)):
            sim._compact()


class Simulator:
    """The event loop.

    A single :class:`Simulator` instance is shared by every component of
    one experiment (or, in a sharded run, by every component of one
    *shard*).  Components schedule work with :meth:`call_at` /
    :meth:`call_after` and the experiment driver advances time with
    :meth:`run`, :meth:`run_until`, or -- for conservatively
    synchronized shards -- :meth:`run_window`.
    """

    def __init__(self) -> None:
        self._heap: list[tuple] = []            # (time, key, seq)
        self._live: dict[int, tuple] = {}       # seq -> (time, key, cb)
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.events_processed = 0
        # Per-cell operations a fast path (repro.sim.trains) folded
        # into arithmetic instead of heap events.  events_processed +
        # events_absorbed is the *model* event count -- comparable
        # across train and per-cell runs of the same workload.
        self.events_absorbed = 0
        self._last_event_time = 0.0
        # Latest model time a fast path computed arithmetically (a
        # folded serialization or drain completion).  Folded work can
        # postdate every heap event -- e.g. a cell lost on the wire
        # whose serialization delay was the run's final occurrence --
        # so `now` is bumped to this on drain and `last_event_time`
        # reports the max of both.
        self._model_last = 0.0
        self.sanitizer = (_sanitizer_factory()
                          if _sanitizer_factory is not None else None)

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def last_event_time(self) -> float:
        """Timestamp of the last event executed *or* folded -- unlike
        `now`, never advanced by run_until/advance_to clamping."""
        if self._model_last > self._last_event_time:
            return self._model_last
        return self._last_event_time

    def note_model_time(self, time: float) -> None:
        """Record that folded (non-event) model work occurred at
        ``time``.  Fast paths call this for every per-cell operation
        they absorb, so quiescence time matches the per-cell run."""
        if time > self._model_last:
            self._model_last = time

    def call_at(self, time: float, callback: Callable[[], None],
                key: tuple = NO_KEY) -> Timer:
        """Schedule ``callback`` at absolute simulation ``time``.

        ``key`` is the same-time ordering key (see module docstring);
        leave it empty for ordinary events.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past ({time} < {self._now})"
            )
        seq = next(self._seq)
        self._live[seq] = (time, key, callback)
        heapq.heappush(self._heap, (time, key, seq))
        return Timer(self, seq, time)

    def call_after(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, callback)

    def call_now(self, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at the current time (after pending events)."""
        return self.call_at(self._now, callback)

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) queued entries -- O(1)."""
        return len(self._live)

    def _compact(self) -> None:
        """Drop dead tuples by rebuilding the heap from the live set."""
        self._heap = [(time, key, seq)
                      for seq, (time, key, _cb) in self._live.items()]
        heapq.heapify(self._heap)

    def peek(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        heap, live = self._heap, self._live
        while heap and heap[0][2] not in live:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def step(self) -> bool:
        """Run the single next event.  Returns False when queue is empty."""
        heap, live = self._heap, self._live
        while heap:
            time, _key, seq = heapq.heappop(heap)
            entry = live.pop(seq, None)
            if entry is None:
                continue                      # cancelled
            self._now = time
            self._last_event_time = time
            self.events_processed += 1
            if self.sanitizer is not None:
                self.sanitizer.on_event(time)
            entry[2]()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Returns the number of events executed, so callers can tell a
        drained queue from an exhausted budget: the queue drained iff
        the return value is below ``max_events`` (always, when no
        budget was given).
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            count = 0
            while self.step():
                count += 1
                if max_events is not None and count >= max_events:
                    return count
            # Drained.  Folded model work may postdate the last heap
            # event; land the clock where the per-cell run would.
            if self._model_last > self._now:
                self._now = self._model_last
            return count
        finally:
            self._running = False

    def run_until(self, time: float) -> None:
        """Run events with timestamps <= ``time``; advance clock to ``time``."""
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            while True:
                nxt = self.peek()
                if nxt is None or nxt > time:
                    break
                self.step()
            self._now = max(self._now, time)
        finally:
            self._running = False

    def run_window(self, horizon: float) -> int:
        """Run events with timestamps strictly below ``horizon``.

        This is the conservative-synchronization primitive: a shard
        runs one window, then exchanges boundary messages with its
        peers before the horizon advances.  Unlike :meth:`run_until`
        the clock is *not* clamped to the horizon -- ``now`` stays at
        the last executed event, so an idle shard's clock (and its
        hosts' statistics) match what a single-process run would show.
        Returns the number of events executed.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        executed = 0
        if self.sanitizer is not None:
            self.sanitizer.window_begin(horizon)
        try:
            if horizon == _INF:
                # Unbounded window (a coalesced run's final drain):
                # skip the per-event peek -- the horizon check cannot
                # fire, and the peek's heap probe costs ~15% per event.
                while self.step():
                    executed += 1
            else:
                while True:
                    nxt = self.peek()
                    if nxt is None or nxt >= horizon:
                        break
                    self.step()
                    executed += 1
        finally:
            if self.sanitizer is not None:
                self.sanitizer.window_end()
            self._running = False
        return executed

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` without running events.

        Used after a sharded run terminates: every shard's clock is
        fast-forwarded to the fabric-wide last event time so snapshots
        (host statistics, reports) read one consistent instant.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        if time > self._now:
            nxt = self.peek()
            if nxt is not None and nxt < time:
                raise SimulationError(
                    f"advance_to({time}) would skip an event at {nxt}")
            self._now = time

    def run_while(self, predicate: Callable[[], bool],
                  max_events: int = 50_000_000) -> None:
        """Run while ``predicate()`` is true and events remain."""
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            count = 0
            while predicate():
                if not self.step():
                    return
                count += 1
                if count >= max_events:
                    raise SimulationError(
                        f"run_while exceeded {max_events} events; "
                        "likely a livelock in the model"
                    )
        finally:
            self._running = False


__all__ = ["Simulator", "SimulationError", "Timer", "NO_KEY",
           "set_sanitizer_factory"]

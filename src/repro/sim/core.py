"""Discrete-event simulation core.

The engine keeps a priority queue of timestamped callbacks.  Everything
else in the library (bus transactions, on-board processors, interrupt
handlers, protocol threads) is built on top of this single event loop,
either directly via :meth:`Simulator.call_at` or through the
generator-based processes in :mod:`repro.sim.process`.

Time is measured in **microseconds** throughout the library.  The paper
reasons about costs in microseconds and 40 ns bus cycles, so a float
microsecond clock gives comfortable resolution (a 25 MHz cycle is
0.04 us) without the bookkeeping of integer picoseconds.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


@dataclass(order=True)
class _Entry:
    """A scheduled callback, ordered by (time, sequence)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Timer:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry):
        self._entry = entry

    @property
    def time(self) -> float:
        """Absolute simulation time at which the callback fires."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self._entry.cancelled = True


class Simulator:
    """The event loop.

    A single :class:`Simulator` instance is shared by every component of
    one experiment.  Components schedule work with :meth:`call_at` /
    :meth:`call_after` and the experiment driver advances time with
    :meth:`run` or :meth:`run_until`.
    """

    def __init__(self) -> None:
        self._queue: list[_Entry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    def call_at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past ({time} < {self._now})"
            )
        entry = _Entry(time, next(self._seq), callback)
        heapq.heappush(self._queue, entry)
        return Timer(entry)

    def call_after(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, callback)

    def call_now(self, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at the current time (after pending events)."""
        return self.call_at(self._now, callback)

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) entries."""
        return sum(1 for e in self._queue if not e.cancelled)

    def peek(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Run the single next event.  Returns False when queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self._now = entry.time
            self.events_processed += 1
            entry.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (or ``max_events`` fire)."""
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            count = 0
            while self.step():
                count += 1
                if max_events is not None and count >= max_events:
                    return
        finally:
            self._running = False

    def run_until(self, time: float) -> None:
        """Run events with timestamps <= ``time``; advance clock to ``time``."""
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            while True:
                nxt = self.peek()
                if nxt is None or nxt > time:
                    break
                self.step()
            self._now = max(self._now, time)
        finally:
            self._running = False

    def run_while(self, predicate: Callable[[], bool],
                  max_events: int = 50_000_000) -> None:
        """Run while ``predicate()`` is true and events remain."""
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            count = 0
            while predicate():
                if not self.step():
                    return
                count += 1
                if count >= max_events:
                    raise SimulationError(
                        f"run_while exceeded {max_events} events; "
                        "likely a livelock in the model"
                    )
        finally:
            self._running = False


__all__ = ["Simulator", "SimulationError", "Timer"]

"""Event tracing: timestamped records for post-mortem analysis.

A :class:`Tracer` collects (time, component, event, detail) records
from instrumented components and renders them as a text timeline.
Tracing is opt-in and zero-cost when disabled; the hook points on the
board and driver are the ones a developer debugging an OSIRIS-like
system actually needs -- cell arrival, DMA issue, queue transitions,
interrupts, PDU hand-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from .core import Simulator


@dataclass(frozen=True)
class TraceRecord:
    time: float
    component: str
    event: str
    detail: str = ""

    def render(self) -> str:
        detail = f"  {self.detail}" if self.detail else ""
        return f"{self.time:12.2f}  {self.component:<14} {self.event}{detail}"


class Tracer:
    """An append-only trace buffer with filtering and rendering."""

    def __init__(self, sim: Simulator, capacity: int = 100_000):
        self.sim = sim
        self.capacity = capacity
        self.records: list[TraceRecord] = []
        self.dropped = 0
        self.enabled = True

    def emit(self, component: str, event: str, detail: str = "") -> None:
        if not self.enabled:
            return
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(
            TraceRecord(self.sim.now, component, event, detail))

    def hook(self, component: str, event: str) -> Callable[[str], None]:
        """A pre-bound emitter for cheap call sites."""

        def fire(detail: str = "") -> None:
            self.emit(component, event, detail)

        return fire

    # -- querying ---------------------------------------------------------------

    def select(self, component: Optional[str] = None,
               event: Optional[str] = None,
               start: float = 0.0,
               end: float = float("inf")) -> list[TraceRecord]:
        return [
            r for r in self.records
            if (component is None or r.component == component)
            and (event is None or r.event == event)
            and start <= r.time <= end
        ]

    def count(self, component: Optional[str] = None,
              event: Optional[str] = None) -> int:
        return len(self.select(component, event))

    def intervals(self, component: str, start_event: str,
                  end_event: str) -> list[tuple[float, float]]:
        """Pair up start/end events into (start_time, duration)."""
        out = []
        open_time: Optional[float] = None
        for record in self.records:
            if record.component != component:
                continue
            if record.event == start_event:
                open_time = record.time
            elif record.event == end_event and open_time is not None:
                out.append((open_time, record.time - open_time))
                open_time = None
        return out

    # -- rendering -----------------------------------------------------------------

    def render(self, records: Optional[Iterable[TraceRecord]] = None,
               limit: int = 200) -> str:
        rows = list(records if records is not None else self.records)
        lines = [r.render() for r in rows[:limit]]
        if len(rows) > limit:
            lines.append(f"... {len(rows) - limit} more records")
        if self.dropped:
            lines.append(f"... {self.dropped} records dropped (capacity)")
        return "\n".join(lines)

    def summary(self) -> str:
        """Per-(component, event) counts."""
        counts: dict[tuple[str, str], int] = {}
        for record in self.records:
            key = (record.component, record.event)
            counts[key] = counts.get(key, 0) + 1
        lines = [
            f"{component:<14} {event:<24} {count:>8}"
            for (component, event), count in sorted(counts.items())
        ]
        return "\n".join(lines)


def attach_board_tracer(tracer: Tracer, board) -> None:
    """Instrument an OsirisBoard: cell arrivals, drops, interrupts,
    and kernel-channel queue transitions."""
    def on_cell(cell):
        tracer.emit("board", "cell-arrival",
                    f"vci={cell.vci} eom={cell.eom}")

    board.on_cell_arrival = on_cell

    original_assert = board.irq.assert_irq

    def traced_assert(kind, channel_id=0):
        tracer.emit("board", "interrupt",
                    f"{kind.value} ch={channel_id}")
        original_assert(kind, channel_id)

    board.irq.assert_irq = traced_assert

    for channel in board.channels[:1]:
        channel.recv_queue.became_nonempty.subscribe(
            lambda _v, c=channel: tracer.emit(
                "recv-queue", "non-empty", f"ch={c.channel_id}"))
        channel.tx_queue.became_nonfull.subscribe(
            lambda _v, c=channel: tracer.emit(
                "tx-queue", "non-full", f"ch={c.channel_id}"))


def attach_driver_tracer(tracer: Tracer, driver) -> None:
    """Instrument an OsirisDriver: PDU send/receive hand-offs."""
    original_send = driver.send_pdu

    def traced_send(msg, vci):
        tracer.emit("driver", "send-pdu",
                    f"vci={vci} bytes={msg.length}")
        yield from original_send(msg, vci)

    driver.send_pdu = traced_send

    original_deliver = driver._deliver_pdu

    def traced_deliver(descs):
        tracer.emit("driver", "deliver-pdu",
                    f"vci={descs[-1].vci} buffers={len(descs)}")
        yield from original_deliver(descs)

    driver._deliver_pdu = traced_deliver


__all__ = ["Tracer", "TraceRecord", "attach_board_tracer",
           "attach_driver_tracer"]

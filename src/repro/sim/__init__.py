"""Discrete-event simulation kernel used by every model in the library."""

from .core import NO_KEY, SimulationError, Simulator, Timer
from .fidelity import Fidelity
from .parallel import BACKENDS, ParallelRunResult, run_shards
from .process import (
    Delay, Interrupted, Latch, Process, Signal, all_of, spawn,
)
from .resources import Grant, Resource, Store
from .trace import Counter, Series, Throughput, mbps_from_bytes
from .trains import CellTrain
from .tracing import (
    TraceRecord, Tracer, attach_board_tracer, attach_driver_tracer,
)

__all__ = [
    "Simulator", "SimulationError", "Timer", "NO_KEY",
    "run_shards", "ParallelRunResult", "BACKENDS",
    "Delay", "Signal", "Latch", "Process", "Interrupted", "spawn", "all_of",
    "Resource", "Grant", "Store", "CellTrain",
    "Counter", "Series", "Throughput", "mbps_from_bytes",
    "Tracer", "TraceRecord", "attach_board_tracer", "attach_driver_tracer",
    "Fidelity",
]

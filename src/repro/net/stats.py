"""Aggregate statistics snapshots for a host.

Pulls every counter the models maintain into one flat, printable
structure -- the first thing a user wants after a run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class HostStats:
    """A point-in-time snapshot of one host's counters."""

    name: str
    sim_time_us: float

    # Bus.
    bus_utilization: float
    dma_bytes_read: int
    dma_bytes_written: int
    pio_words: int

    # CPU and kernel.
    cpu_busy_us: float
    interrupts_serviced: int
    interrupt_time_us: float
    pages_wired: int
    pages_unwired: int

    # Board.
    tx_dma_transactions: int
    rx_dma_transactions: int
    rx_fifo_drops: int
    unknown_vci_drops: int
    cells_sent: int
    cells_received: int
    combined_dmas: int
    single_dmas: int

    # Driver.
    pdus_sent: int
    pdus_received: int
    rx_errors: int
    rx_crc_errors: int
    tx_full_events: int
    cached_buffer_hits: int
    uncached_buffer_uses: int
    lazy_recoveries: int
    eager_invalidations: int

    def render(self) -> str:
        lines = [f"Host {self.name!r} at t={self.sim_time_us:.1f} us"]
        for key, value in asdict(self).items():
            if key in ("name", "sim_time_us"):
                continue
            if isinstance(value, float):
                lines.append(f"  {key:<24} {value:12.2f}")
            else:
                lines.append(f"  {key:<24} {value:12d}")
        return "\n".join(lines)


def snapshot(host) -> HostStats:
    """Collect a :class:`HostStats` from a :class:`repro.net.Host`."""
    kernel_channel = host.board.kernel_channel
    return HostStats(
        name=host.name,
        sim_time_us=host.sim.now,
        bus_utilization=host.tc.utilization(),
        dma_bytes_read=host.tc.dma_bytes_read,
        dma_bytes_written=host.tc.dma_bytes_written,
        pio_words=host.tc.pio_words,
        cpu_busy_us=host.cpu.busy_us,
        interrupts_serviced=host.kernel.interrupts_serviced,
        interrupt_time_us=host.kernel.interrupt_time,
        pages_wired=host.kernel.wiring.pages_wired,
        pages_unwired=host.kernel.wiring.pages_unwired,
        tx_dma_transactions=host.board.tx_dma.transactions,
        rx_dma_transactions=host.board.rx_dma.transactions,
        rx_fifo_drops=host.board.rx_fifo_drops,
        unknown_vci_drops=host.board.unknown_vci_drops,
        cells_sent=host.txp.cells_sent if host.txp else 0,
        cells_received=host.rxp.cells_received if host.rxp else 0,
        combined_dmas=host.rxp.combined_dmas if host.rxp else 0,
        single_dmas=host.rxp.single_dmas if host.rxp else 0,
        pdus_sent=host.driver.pdus_sent,
        pdus_received=host.driver.pdus_received,
        rx_errors=host.driver.rx_errors,
        rx_crc_errors=host.rxp.crc_errors if host.rxp else 0,
        tx_full_events=host.driver.tx_full_events,
        cached_buffer_hits=kernel_channel.cached_buffer_hits,
        uncached_buffer_uses=kernel_channel.uncached_buffer_uses,
        lazy_recoveries=host.driver.cache_policy.lazy_recoveries,
        eager_invalidations=host.driver.cache_policy.eager_invalidations,
    )


__all__ = ["HostStats", "snapshot"]

"""Two hosts back-to-back -- the paper's measurement topology.

'Round-trip latencies achieved between a pair of workstations
connected by a pair of OSIRIS boards linked back-to-back' (section 4).
Each direction is an independent four-way striped link.
"""

from __future__ import annotations

from typing import Optional

from ..atm.aal5 import SegmentMode
from ..atm.striping import SkewModel, StripedLink
from ..hw.specs import MachineSpec
from ..sim import Fidelity, Simulator
from .host_node import Host


class BackToBack:
    """Two hosts joined by striped links in both directions."""

    def __init__(self, machine_a: MachineSpec,
                 machine_b: Optional[MachineSpec] = None,
                 skew: Optional[SkewModel] = None,
                 segment_mode: SegmentMode = SegmentMode.IN_ORDER,
                 prop_delay_us: float = 2.0,
                 fidelity: Optional[Fidelity] = None,
                 **host_kw):
        self.sim = Simulator()
        machine_b = machine_b or machine_a
        self.a = Host(self.sim, machine_a, name="a", fidelity=fidelity,
                      **host_kw)
        self.b = Host(self.sim, machine_b, name="b", fidelity=fidelity,
                      **host_kw)
        # Two skew models so per-link RNG streams stay independent.
        skew_ab = skew
        skew_ba = None
        if skew is not None:
            skew_ba = SkewModel(
                fixed_offsets_us=skew.fixed_offsets_us,
                mux_amplitude_us=skew.mux_amplitude_us,
                mux_period_cells=skew.mux_period_cells,
                switch_jitter_us=skew.switch_jitter_us,
                seed=skew.seed + 1)
        self.link_ab = StripedLink(self.sim, self.b.board.deliver_cell,
                                   skew=skew_ab,
                                   prop_delay_us=prop_delay_us,
                                   name="ab")
        self.link_ba = StripedLink(self.sim, self.a.board.deliver_cell,
                                   skew=skew_ba,
                                   prop_delay_us=prop_delay_us,
                                   name="ba")
        self.a.connect(self.link_ab, segment_mode=segment_mode)
        self.b.connect(self.link_ba, segment_mode=segment_mode)

    def open_udp_pair(self, vci: int = 300, port_a: int = 1000,
                      port_b: int = 2000, echo_b: bool = True, **kw):
        """Matching UDP test programs on both hosts, same VCI."""
        app_a, _ = self.a.open_udp_path(port_a, port_b, vci=vci, **kw)
        app_b, _ = self.b.open_udp_path(port_b, port_a, vci=vci,
                                        echo=echo_b, **kw)
        return app_a, app_b

    def open_raw_pair(self, vci: int = 300, echo_b: bool = True, **kw):
        """Matching raw-ATM test programs on both hosts."""
        app_a, _ = self.a.open_raw_path(vci=vci, **kw)
        app_b, _ = self.b.open_raw_path(vci=vci, echo=echo_b, **kw)
        return app_a, app_b


__all__ = ["BackToBack"]

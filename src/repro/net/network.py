"""Two hosts back-to-back -- the paper's measurement topology.

'Round-trip latencies achieved between a pair of workstations
connected by a pair of OSIRIS boards linked back-to-back' (section 4).
Each direction is an independent four-way striped link.

:class:`BackToBack` is the two-host, switchless special case of
:class:`repro.cluster.Fabric`; anything larger (N hosts, cell
switches, routed VCIs) lives in :mod:`repro.cluster`.
"""

from __future__ import annotations

from typing import Optional

from ..atm.aal5 import SegmentMode
from ..atm.striping import SkewModel
from ..cluster.fabric import Fabric
from ..hw.specs import MachineSpec
from ..sim import Fidelity


class BackToBack(Fabric):
    """Two hosts joined by striped links in both directions."""

    def __init__(self, machine_a: MachineSpec,
                 machine_b: Optional[MachineSpec] = None,
                 skew: Optional[SkewModel] = None,
                 segment_mode: SegmentMode = SegmentMode.IN_ORDER,
                 prop_delay_us: float = 2.0,
                 fidelity: Optional[Fidelity] = None,
                 **host_kw):
        # The reverse link gets a cloned skew model (seed offset 1) so
        # the two directions' per-link RNG streams stay independent.
        super().__init__([machine_a, machine_b or machine_a],
                         topology="direct", skew=skew,
                         segment_mode=segment_mode,
                         prop_delay_us=prop_delay_us,
                         fidelity=fidelity, names=("a", "b"),
                         **host_kw)
        self.a, self.b = self.hosts
        self.link_ab, self.link_ba = self.uplinks

    def open_udp_pair(self, vci: int = 300, port_a: int = 1000,
                      port_b: int = 2000, echo_b: bool = True, **kw):
        """Matching UDP test programs on both hosts, same VCI."""
        app_a, _ = self.a.open_udp_path(port_a, port_b, vci=vci, **kw)
        app_b, _ = self.b.open_udp_path(port_b, port_a, vci=vci,
                                        echo=echo_b, **kw)
        return app_a, app_b

    def open_raw_pair(self, vci: int = 300, echo_b: bool = True, **kw):
        """Matching raw-ATM test programs on both hosts."""
        app_a, _ = self.a.open_raw_path(vci=vci, **kw)
        app_b, _ = self.b.open_raw_path(vci=vci, echo=echo_b, **kw)
        return app_a, app_b


__all__ = ["BackToBack"]

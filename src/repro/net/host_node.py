"""A complete host: hardware + OS + board + driver + protocol stack.

This is the library's main entry point: a :class:`Host` assembles the
CPU/cache/bus models, the OSIRIS board, the kernel, the driver, and
an x-kernel graph (test programs over UDP/IP or raw over the driver),
all sharing one simulator.
"""

from __future__ import annotations

from typing import Optional

from ..atm.aal5 import SegmentMode
from ..atm.striping import StripedLink
from ..driver.config import DriverConfig
from ..driver.osiris_driver import OsirisDriver
from ..host.kernel import HostOS
from ..hw.bus import MemorySystem, TurboChannel
from ..hw.cache import DataCache
from ..hw.cpu import HostCPU
from ..hw.memory import PhysicalMemory
from ..hw.specs import BoardSpec, MachineSpec
from ..osiris.board import OsirisBoard
from ..osiris.rx_processor import RxProcessor
from ..osiris.tx_processor import TxProcessor
from ..sim import Fidelity, SimulationError, Simulator
from ..xkernel.protocol import Path
from ..xkernel.protocols.ip import IpProtocol, IpSession
from ..xkernel.protocols.testproto import TestProgram, TestProtocol
from ..xkernel.protocols.udp import UdpProtocol, UdpSession


class Host:
    """One workstation with an OSIRIS board."""

    def __init__(self, sim: Simulator, machine: MachineSpec,
                 name: str = "host",
                 config: Optional[DriverConfig] = None,
                 fidelity: Optional[Fidelity] = None,
                 board_spec: Optional[BoardSpec] = None,
                 ip_mtu: Optional[int] = None,
                 udp_checksum: bool = False,
                 memory_bytes: int = 16 * 1024 * 1024,
                 reserved_bytes: int = 4 * 1024 * 1024):
        self.sim = sim
        self.machine = machine
        self.name = name
        self.fidelity = fidelity or Fidelity.full()
        self.config = config or DriverConfig.for_machine(machine)

        self.memory = PhysicalMemory(memory_bytes, machine.page_size,
                                     fidelity=self.fidelity,
                                     reserved_bytes=reserved_bytes)
        self.cache = DataCache(machine.cache, self.memory, self.fidelity)
        self.tc = TurboChannel(sim, machine.bus, name=f"{name}.tc")
        self.memsys = MemorySystem(sim, machine, self.tc)
        self.cpu = HostCPU(sim, machine, self.memsys)
        self.kernel = HostOS(sim, self.cpu, self.cache, self.memory,
                             wiring_style=self.config.wiring_style)
        self.board = OsirisBoard(sim, machine, self.tc, self.memory,
                                 self.cache, spec=board_spec,
                                 fidelity=self.fidelity,
                                 tx_dma_mode=self.config.tx_dma_mode,
                                 rx_dma_mode=self.config.rx_dma_mode)
        self.driver = OsirisDriver(sim, self.kernel, self.board,
                                   self.config)

        # (paper, section 4): IP MTU of 16 KB -- fragment payloads are
        # page-multiples, so fragment boundaries align with pages.
        from ..xkernel.protocols.ip import HEADER_BYTES as IP_HEADER
        self.ip = IpProtocol(self.cpu,
                             mtu=ip_mtu or (16 * 1024 + IP_HEADER))
        self.udp = UdpProtocol(self.cpu, cache=self.cache,
                               checksum_enabled=udp_checksum,
                               cache_policy=self.driver.cache_policy)
        self.test = TestProtocol(self.cpu, sim)

        self.txp: Optional[TxProcessor] = None
        self.rxp: Optional[RxProcessor] = None

    # -- wiring to the network -----------------------------------------------------

    def connect(self, link: Optional[StripedLink],
                segment_mode: SegmentMode = SegmentMode.IN_ORDER,
                flow_controlled: bool = False,
                deliver=None) -> None:
        """Attach the board's processor loops to an outgoing link (or a
        direct deliver callback for loopback rigs)."""
        if self.txp is not None:
            raise SimulationError(f"{self.name} is already connected")
        self.txp = TxProcessor(self.sim, self.board, link=link,
                               deliver=deliver, segment_mode=segment_mode)
        self.rxp = RxProcessor(
            self.sim, self.board, reassembly_mode=segment_mode,
            interrupt_mode=self.config.interrupt_mode,
            flow_controlled=flow_controlled)

    def connect_receive_only(self, flow_controlled: bool = True,
                             segment_mode: SegmentMode =
                             SegmentMode.IN_ORDER) -> None:
        """Receive-side isolation rig (figures 2 and 3): no transmit."""
        self.rxp = RxProcessor(
            self.sim, self.board, reassembly_mode=segment_mode,
            interrupt_mode=self.config.interrupt_mode,
            flow_controlled=flow_controlled)

    # -- path construction -------------------------------------------------------------

    def open_udp_path(self, local_port: int, remote_port: int,
                      vci: Optional[int] = None,
                      echo: bool = False, touch_data: bool = False,
                      keep_data: bool = False) -> tuple[TestProgram, Path]:
        """Test program over UDP/IP over the driver, bound to a VCI."""
        drv = self.driver.open_path(vci)
        ip = IpSession(self.ip, drv)
        udp = UdpSession(self.udp, ip, local_port, remote_port)
        app = TestProgram(self.test, udp, echo=echo,
                          touch_data=touch_data, keep_data=keep_data)
        return app, Path(drv.vci, [drv, ip, udp, app])

    def stats(self):
        """A :class:`repro.net.stats.HostStats` snapshot of every
        counter this host's models maintain."""
        from .stats import snapshot
        return snapshot(self)

    def open_raw_path(self, vci: Optional[int] = None, echo: bool = False,
                      touch_data: bool = False,
                      keep_data: bool = False) -> tuple[TestProgram, Path]:
        """Test program directly on the driver (Table 1's 'ATM' rows)."""
        drv = self.driver.open_path(vci)
        app = TestProgram(self.test, drv, echo=echo,
                          touch_data=touch_data, keep_data=keep_data)
        return app, Path(drv.vci, [drv, app])


__all__ = ["Host"]

"""End-to-end assembly: hosts and back-to-back networks."""

from .host_node import Host
from .network import BackToBack
from .stats import HostStats, snapshot

__all__ = ["Host", "BackToBack", "HostStats", "snapshot"]

"""Command-line interface: regenerate the paper's results by name.

Usage::

    python -m repro table1
    python -m repro figure2 --quick
    python -m repro figure3 --sizes 4,16,64
    python -m repro figure4
    python -m repro all --quick
    python -m repro latency --machine alpha --size 4096 --protocol udp
    python -m repro receive --machine ds --size 16384 --dma double
    python -m repro cluster --hosts 8 --pattern incast --seed 1 --json
"""

from __future__ import annotations

import argparse
import sys
import time

from .bench import (
    PAPER_FIGURE_2, PAPER_FIGURE_3, PAPER_FIGURE_4, measure_receive_throughput,
    measure_round_trip, measure_transmit_throughput, run_figure2,
    run_figure3, run_figure4, run_table1, to_json,
)
from .hw.dma import DmaMode
from .hw.specs import DEC3000_600, DS5000_200, MachineSpec

QUICK_SIZES = (1, 4, 16, 64, 256)
FULL_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256)

_MACHINES = {
    "ds": DS5000_200, "ds5000": DS5000_200, "5000/200": DS5000_200,
    "alpha": DEC3000_600, "3000": DEC3000_600, "3000/600": DEC3000_600,
}

_DMA = {"single": DmaMode.SINGLE_CELL, "double": DmaMode.DOUBLE_CELL,
        "arbitrary": DmaMode.ARBITRARY}


def _machine(name: str) -> MachineSpec:
    try:
        return _MACHINES[name.lower()]
    except KeyError:
        raise SystemExit(
            f"unknown machine {name!r}; choose from "
            f"{sorted(_MACHINES)}") from None


def _sizes(args) -> tuple:
    if args.sizes:
        return tuple(int(s) for s in args.sizes.split(","))
    return QUICK_SIZES if args.quick else FULL_SIZES


def _cmd_table1(args) -> None:
    result = run_table1(rounds=3 if args.quick else 5)
    print(result.to_json() if args.json else result.render())


def _cmd_figure(args, runner, paper) -> None:
    result = runner(_sizes(args))
    print(result.to_json(paper) if args.json else result.render(paper))


def _cmd_all(args) -> None:
    if args.json:
        # One combined document, canonically serialized, so bench
        # trajectories can be diffed across PRs.
        payload = {
            "table1": run_table1(rounds=3 if args.quick else 5).to_dict(),
        }
        for name, runner, paper in (
                ("figure2", run_figure2, PAPER_FIGURE_2),
                ("figure3", run_figure3, PAPER_FIGURE_3),
                ("figure4", run_figure4, PAPER_FIGURE_4)):
            payload[name] = runner(_sizes(args)).to_dict(paper)
        print(to_json(payload))
        return
    start = time.time()
    _cmd_table1(args)
    for runner, paper in ((run_figure2, PAPER_FIGURE_2),
                          (run_figure3, PAPER_FIGURE_3),
                          (run_figure4, PAPER_FIGURE_4)):
        print()
        _cmd_figure(args, runner, paper)
    print(f"\ntotal wall time: {time.time() - start:.0f} s")


def _cmd_cluster(args) -> None:
    from .atm.aal5 import SegmentMode
    from .cluster import (
        Fabric, WorkloadSpec, collect, run_workload, sweep_offered_load,
    )
    from .sim import SimulationError

    segment = (SegmentMode.SEQUENCE if args.segment == "sequence"
               else SegmentMode.IN_ORDER)

    torus_dims = None
    if args.dims:
        try:
            torus_dims = tuple(int(d) for d in args.dims.split(","))
        except ValueError:
            raise SystemExit(
                f"cluster: bad --dims {args.dims!r} "
                "(want X,Y,Z)") from None

    fabric_kwargs = {
        "machines": _machine(args.machine), "n_hosts": args.hosts,
        "n_switches": args.switches, "segment_mode": segment,
        "topology": args.topology, "pods": args.pods,
        "torus_dims": torus_dims, "oversubscription": args.oversub,
        "routing_seed": args.seed,
        "backpressure": args.backpressure,
        "credit_window_cells": args.window,
        "drain_policy": args.drain,
        "trains": args.train}
    if args.faults:
        from .faults import FaultPlan
        # Port kills may name switches by topology coordinate
        # (port=leaf0:... / port=t0.1.1:...); resolve against the same
        # spec the fabric will build, which also validates every
        # switch/host/lane token at parse time.
        topo = None
        if args.topology != "direct":
            from .topology import build_spec
            try:
                topo = build_spec(
                    args.topology, args.hosts,
                    n_switches=args.switches, pods=args.pods,
                    dims=torus_dims,
                    oversubscription=args.oversub)
            except SimulationError as exc:
                raise SystemExit(f"cluster: {exc}") from None
        try:
            fabric_kwargs["faults"] = FaultPlan.parse(
                args.faults, seed=args.seed, topology=topo,
                n_hosts=args.hosts)
        except ValueError as exc:
            raise SystemExit(f"cluster: {exc}") from None
    if args.recovery != "off":
        from .recovery import RecoveryConfig
        fabric_kwargs["recovery"] = RecoveryConfig(
            mode=args.recovery,
            hb_interval_us=args.hb_interval,
            detect_timeout_us=args.detect_timeout)
    if args.regen_timeout is not None:
        fabric_kwargs["credit_regen_timeout_us"] = args.regen_timeout
    if args.watchdog is not None:
        fabric_kwargs["credit_watchdog_us"] = args.watchdog

    if args.sanitize:
        from .analysis import sanitize as sanitize_mod
        sanitize_mod.enable()

    def make_fabric() -> Fabric:
        return Fabric(**fabric_kwargs)

    spec = WorkloadSpec(
        pattern=args.pattern, kind=args.workload, seed=args.seed,
        message_bytes=args.size, messages_per_client=args.messages,
        rate_mbps=args.rate,
        arrival="poisson" if args.poisson else "constant",
        requests_per_client=args.messages)
    try:
        if args.shards > 1 or args.trace_out:
            if args.sweep:
                raise SimulationError(
                    "--sweep runs many independent fabrics; combine "
                    "it with --shards 1")
            from .cluster.sharded import run_cluster_sharded
            report, _run = run_cluster_sharded(
                fabric_kwargs, spec, args.shards,
                backend=args.shard_backend, sanitize=args.sanitize,
                coalesce=args.coalesce,
                trace_path=args.trace_out)
            print(report.to_json() if args.json else report.render())
            return
        if args.sweep:
            rates = [float(r) for r in args.sweep.split(",")]
            points = sweep_offered_load(make_fabric, spec, rates)
            if args.json:
                from .bench.report import to_json
                print(to_json({"backpressure": args.backpressure,
                               "drain_policy": args.drain,
                               "points": points}))
            else:
                print("offered Mbps/client -> goodput Mbps "
                      f"({args.backpressure} backpressure, "
                      f"{args.drain} drain)")
                for pt in points:
                    drops = pt["drops"]
                    print(f"  {pt['offered_mbps_per_client']:>8.1f} -> "
                          f"{pt['goodput_mbps']:>7.1f}  "
                          f"({pt['messages_received']}/"
                          f"{pt['messages_sent']} messages, "
                          f"{drops['queue_full']} queue-full drops)")
            return
        fabric = make_fabric()
    except SimulationError as exc:
        raise SystemExit(f"cluster: {exc}") from None
    result = run_workload(fabric, spec)
    report = collect(fabric, result)
    print(report.to_json() if args.json else report.render())


def _cmd_chaos(args) -> None:
    from .faults.chaos import main as chaos_main

    argv = ["--seed", str(args.seed), "--shards", args.shards,
            "--backend", args.backend]
    if args.quick:
        argv.append("--quick")
    if args.json:
        argv.append("--json")
    if args.sanitize:
        argv.append("--sanitize")
    raise SystemExit(chaos_main(argv))


def _cmd_lint(args) -> None:
    from .analysis.lint import main as lint_main

    argv = []
    if args.root:
        argv += ["--root", args.root]
    if args.allowlist:
        argv += ["--allowlist", args.allowlist]
    if args.json:
        argv.append("--json")
    raise SystemExit(lint_main(argv))


def _cmd_check(args) -> None:
    from .analysis.ownership import main as check_main

    argv = []
    if args.root:
        argv += ["--root", args.root]
    if args.suppressions:
        argv += ["--suppressions", args.suppressions]
    if args.json:
        argv.append("--json")
    for trace in args.replay or ():
        argv += ["--replay", trace]
    raise SystemExit(check_main(argv))


def _cmd_latency(args) -> None:
    machine = _machine(args.machine)
    rtt = measure_round_trip(machine, args.size, protocol=args.protocol,
                             rounds=5)
    print(f"{machine.name}, {args.protocol.upper()}, {args.size} B: "
          f"{rtt:.1f} us round trip")


def _cmd_receive(args) -> None:
    machine = _machine(args.machine)
    result = measure_receive_throughput(
        machine, args.size, dma_mode=_DMA[args.dma],
        udp_checksum=args.checksum)
    print(f"{machine.name}, receive, {args.size} B messages, "
          f"{args.dma}-cell DMA"
          f"{', UDP-CS' if args.checksum else ''}: "
          f"{result.mbps:.1f} Mbps "
          f"(bus {result.bus_utilization:.0%} busy, "
          f"{result.interrupts} interrupts)")


def _cmd_transmit(args) -> None:
    machine = _machine(args.machine)
    result = measure_transmit_throughput(
        machine, args.size, dma_mode=_DMA[args.dma],
        udp_checksum=args.checksum)
    print(f"{machine.name}, transmit, {args.size} B messages, "
          f"{args.dma}-cell DMA: {result.mbps:.1f} Mbps")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate results from 'Experiences with a "
                    "High-Speed Network Adaptor' (SIGCOMM 1994).")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--quick", action="store_true",
                       help="coarser, faster sweep")
        p.add_argument("--sizes", default=None,
                       help="comma-separated message sizes in KB")
        p.add_argument("--json", action="store_true",
                       help="machine-readable JSON output")

    for name in ("table1", "figure2", "figure3", "figure4", "all"):
        p = sub.add_parser(name)
        common(p)

    cluster = sub.add_parser(
        "cluster", help="run a workload over an N-host switched fabric")
    cluster.add_argument("--hosts", type=int, default=8,
                         help="number of hosts on the fabric")
    cluster.add_argument("--pattern", default="incast",
                         choices=("incast", "all2all", "pairs"))
    cluster.add_argument("--workload", default="open",
                         choices=("open", "rpc"),
                         help="open-loop senders or closed-loop RPC mix")
    cluster.add_argument("--machine", default="ds", help="ds | alpha")
    cluster.add_argument("--topology", default="switched",
                         choices=("direct", "switched", "clos", "torus"),
                         help="fabric shape: two hosts back-to-back, a "
                              "flat full mesh of --switches, a "
                              "leaf/spine Clos, or a 3D torus")
    cluster.add_argument("--switches", type=int, default=1,
                         help="cell switches for --topology switched "
                              "(hosts spread round-robin)")
    cluster.add_argument("--pods", type=int, default=4,
                         help="leaf switches for --topology clos")
    cluster.add_argument("--oversub", type=float, default=2.0,
                         help="Clos oversubscription ratio "
                              "(leaves : spines)")
    cluster.add_argument("--dims", default=None, metavar="X,Y,Z",
                         help="torus dimensions for --topology torus "
                              "(default 2,2,2)")
    cluster.add_argument("--size", type=int, default=4096,
                         help="message size in bytes (open-loop)")
    cluster.add_argument("--messages", type=int, default=8,
                         help="messages (or RPC calls) per client")
    cluster.add_argument("--rate", type=float, default=0.0,
                         help="per-client offered rate in Mbps "
                              "(0 = unpaced)")
    cluster.add_argument("--poisson", action="store_true",
                         help="Poisson instead of constant spacing")
    cluster.add_argument("--backpressure", default="none",
                         choices=("none", "credit", "efci"),
                         help="fabric flow control: per-VCI credits, "
                              "EFCI marking, or nothing")
    cluster.add_argument("--window", type=int, default=64,
                         help="credit window in cells per flow VCI")
    cluster.add_argument("--drain", default="rr",
                         choices=("rr", "fifo"),
                         help="output-port scheduler: per-VCI "
                              "round-robin or a single shared FIFO")
    cluster.add_argument("--sweep", default=None, metavar="MBPS,...",
                         help="run a goodput-vs-offered-load sweep over "
                              "these per-client rates instead of a "
                              "single run")
    cluster.add_argument("--segment", default="sequence",
                         choices=("sequence", "in-order"),
                         help="reassembly strategy at the receivers")
    cluster.add_argument("--shards", type=int, default=1,
                         help="partition hosts across N simulators "
                              "(conservative window sync; results are "
                              "bit-identical to --shards 1)")
    cluster.add_argument("--shard-backend", default="proc",
                         choices=["proc", "thread", "inline"],
                         help="execution backend for --shards > 1: "
                              "processes (parallel), threads, or an "
                              "in-process loop (debugging)")
    cluster.add_argument("--coalesce", action="store_true",
                         default=True,
                         help="adaptive window coalescing: shards "
                              "that provably cannot emit cross-shard "
                              "messages stop bounding their peers' "
                              "horizons (default; reports stay "
                              "byte-identical)")
    cluster.add_argument("--no-coalesce", dest="coalesce",
                         action="store_false",
                         help="classic fixed-width windows (one "
                              "lookahead per barrier)")
    cluster.add_argument("--trace-out", metavar="FILE", default=None,
                         help="record every cross-shard boundary "
                              "send/delivery into a happens-before "
                              "trace document, verifiable with "
                              "'repro check --replay FILE' (routes "
                              "through the sharded engine even for "
                              "--shards 1)")
    cluster.add_argument("--faults", default=None, metavar="SPEC",
                         help="fault plan, e.g. 'loss=0.01,corrupt="
                              "0.001,flap=2:1@500+200,kill=0:3@1000,"
                              "port=0:0:1@800,credit-loss=0.05' "
                              "(seeded by --seed)")
    cluster.add_argument("--recovery", default="off",
                         choices=("off", "detect", "reroute"),
                         help="self-healing control plane: heartbeat "
                              "failure detection only, or detection "
                              "plus deterministic ECMP path failover "
                              "for flows crossing a killed switch "
                              "port")
    cluster.add_argument("--hb-interval", type=float, default=50.0,
                         metavar="US",
                         help="recovery heartbeat probe period")
    cluster.add_argument("--detect-timeout", type=float, default=100.0,
                         metavar="US",
                         help="how long an element must stay down "
                              "before it is declared dead")
    cluster.add_argument("--regen-timeout", type=float, default=None,
                         metavar="US",
                         help="credit regeneration: refill a flow's "
                              "full window after this many us stalled "
                              "with zero refills (recovers lost "
                              "credits)")
    cluster.add_argument("--watchdog", type=float, default=None,
                         metavar="US",
                         help="credit deadlock watchdog: raise a "
                              "diagnosable error instead of hanging "
                              "when a flow is stalled this long with "
                              "zero refills")
    cluster.add_argument("--train", action="store_true", default=True,
                         help="cell-train fast path: carry uncontended "
                              "cell bursts as single events (default; "
                              "reports stay byte-identical)")
    cluster.add_argument("--no-train", dest="train",
                         action="store_false",
                         help="force one event per cell everywhere")
    cluster.add_argument("--seed", type=int, default=1)
    cluster.add_argument("--sanitize", action="store_true",
                         help="enable the runtime sanitizers (SRSW "
                              "queue ownership, monotone time, "
                              "per-window conservation); the report "
                              "stays byte-identical")
    cluster.add_argument("--json", action="store_true",
                         help="machine-readable JSON report")
    cluster.set_defaults(func=_cmd_cluster)

    chaos = sub.add_parser(
        "chaos", help="seeded fault matrix: conservation + "
                      "shard-determinism checks")
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument("--quick", action="store_true")
    chaos.add_argument("--shards", default="1,2",
                       help="comma-separated shard counts to compare")
    chaos.add_argument("--backend", default="thread",
                       choices=("proc", "thread", "inline"))
    chaos.add_argument("--sanitize", action="store_true",
                       help="run the matrix with the runtime "
                            "sanitizers enabled")
    chaos.add_argument("--json", action="store_true")
    chaos.set_defaults(func=_cmd_chaos)

    lint = sub.add_parser(
        "lint", help="determinism linter: flag nondeterminism hazards "
                     "in the simulation tree")
    lint.add_argument("--root", default=None,
                      help="directory to lint (default: the installed "
                           "repro package)")
    lint.add_argument("--allowlist", default=None,
                      help="audited-exception file (default: "
                           "repro/analysis/allowlist.txt)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable findings")
    lint.set_defaults(func=_cmd_lint)

    check = sub.add_parser(
        "check", help="ownership/race checker: static SRSW and actor "
                      "analysis (RACE201-RACE204) plus happens-before "
                      "trace replay")
    check.add_argument("--root", default=None,
                       help="directory to check (default: the "
                            "installed repro package)")
    check.add_argument("--suppressions", default=None,
                       help="audited-exception file (default: "
                            "repro/analysis/ownership_baseline.txt)")
    check.add_argument("--json", action="store_true",
                       help="machine-readable findings")
    check.add_argument("--replay", metavar="TRACE", action="append",
                       default=None,
                       help="verify a happens-before trace recorded "
                            "with 'repro cluster --trace-out'; "
                            "repeatable")
    check.set_defaults(func=_cmd_check)

    for name, fn in (("latency", _cmd_latency),
                     ("receive", _cmd_receive),
                     ("transmit", _cmd_transmit)):
        p = sub.add_parser(name, help=f"one {name} measurement")
        p.add_argument("--machine", default="ds",
                       help="ds | alpha")
        p.add_argument("--size", type=int, default=16 * 1024,
                       help="message size in bytes")
        if name == "latency":
            p.add_argument("--protocol", default="udp",
                           choices=("udp", "atm"))
        else:
            p.add_argument("--dma", default="single",
                           choices=sorted(_DMA))
            p.add_argument("--checksum", action="store_true")
        p.set_defaults(func=fn)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        _cmd_table1(args)
    elif args.command == "figure2":
        _cmd_figure(args, run_figure2, PAPER_FIGURE_2)
    elif args.command == "figure3":
        _cmd_figure(args, run_figure3, PAPER_FIGURE_3)
    elif args.command == "figure4":
        _cmd_figure(args, run_figure4, PAPER_FIGURE_4)
    elif args.command == "all":
        _cmd_all(args)
    else:
        args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())


__all__ = ["main", "build_parser"]

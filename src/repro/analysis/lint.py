"""AST-based determinism linter for the simulation tree.

The repo rests on two fragile disciplines: the paper's SRSW descriptor
queues (section 2.1.1) and the sharded runs' byte-identity contract
(``--shards N`` == ``--shards 1``).  Both die quietly when ordinary
Python nondeterminism leaks into event scheduling or report
serialization -- a module-level ``random.random()``, an unsorted
``dict.values()`` walk that feeds JSON, a ``hash()``-derived key.  The
end-to-end determinism tests tell you *that* a run diverged; this
linter names the line.

Rule catalog (full rationale in DESIGN.md section 8):

``DET101 global-rng``
    Calls to the module-global ``random.*`` functions, or ``Random()``
    constructed without a seed.  The global RNG couples unrelated call
    sites through shared state, so adding one draw anywhere reorders
    every draw after it.
``DET102 wall-clock``
    ``time.time`` / ``perf_counter`` / ``monotonic`` / ``datetime.now``
    and friends outside ``bench/``.  Simulated time is the only clock
    the models may read.
``DET103 unordered-iteration``
    Iteration over ``dict.items()/.values()/.keys()``, set literals,
    set comprehensions, or ``set()``/``frozenset()`` calls anywhere
    outside the exempt packages (``bench/``, ``baselines/``)
    when the result feeds an ordered consumer (a ``for`` loop, a
    list/dict comprehension, ``list()``/``tuple()``/``dict()``).
    Wrapping the producer in ``sorted()`` -- or consuming it with an
    order-insensitive reducer (``sum``, ``min``, ``max``, ``any``,
    ``all``, ``len``, ``set``, ``frozenset``) -- satisfies the rule.
``DET104 identity-hash``
    Calls to ``id()`` or builtin ``hash()``.  ``id()`` is an address;
    ``hash()`` of a str is salted per process (PYTHONHASHSEED), so
    neither may feed keys, ordering, or reports.
``DET105 env-read``
    ``os.cpu_count()``, ``os.environ``, ``os.getenv`` outside the
    exempt packages.  Host facts belong in ``bench/`` metadata,
    never in model logic.
``DET106 fs-order``
    ``os.listdir`` / ``os.scandir`` / ``os.walk`` / ``glob.*`` /
    ``Path.iterdir|glob|rglob`` consumed without ``sorted()`` --
    filesystem enumeration order is platform noise.

Audited exceptions live in an allowlist file (default:
``repro/analysis/allowlist.txt``), one entry per line::

    RULE path[:line] -- reason the exception is sound

Usage::

    python -m repro lint            # human output, exit 1 on findings
    python -m repro lint --json     # machine-readable findings
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

RULES = {
    "DET101": "global-rng: module-level random.* call or unseeded Random()",
    "DET102": "wall-clock: real-time clock read outside bench/",
    "DET103": "unordered-iteration: dict/set iteration feeding an "
              "ordered consumer without sorted()",
    "DET104": "identity-hash: id() or builtin hash() call",
    "DET105": "env-read: os.cpu_count/environ/getenv in model logic",
    "DET106": "fs-order: unsorted filesystem enumeration",
}

# Every package is order-sensitive unless listed here: benchmarks
# measure the host (wall clocks, cpu counts) and baselines only render
# published tables, so DET103/DET105 don't apply to them.  New model
# packages are covered by default -- an explicit inclusion list
# silently missed adc/, atm/, osiris/, and xkernel/ for four PRs.
ORDER_EXEMPT_PACKAGES = frozenset({"bench", "baselines"})

# Wall-clock reads are the whole point of benchmarking code.
WALL_CLOCK_EXEMPT_PACKAGES = frozenset({"bench"})

_GLOBAL_RNG_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "expovariate", "gauss", "normalvariate",
    "betavariate", "gammavariate", "lognormvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "triangular", "getrandbits",
    "randbytes", "seed",
})

_WALL_CLOCK_FNS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

_FS_ENUM_FNS = frozenset({
    "os.listdir", "os.scandir", "os.walk",
    "glob.glob", "glob.iglob",
})
_FS_ENUM_METHODS = frozenset({"iterdir", "glob", "rglob"})

# Reducers whose result does not depend on input order; a producer (or
# a generator expression over one) consumed directly by these is safe.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "sum", "min", "max", "any", "all", "len",
    "set", "frozenset",
})

# Calls that materialize an ordered sequence: feeding them an
# unordered producer bakes the nondeterministic order in.
_ORDERED_MATERIALIZERS = frozenset({"list", "tuple", "dict"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str           # posix path relative to the linted root
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class AllowlistEntry:
    rule: str
    path: str                   # suffix-matched, posix
    line: Optional[int]         # None: whole file
    reason: str

    def matches(self, finding: Finding) -> bool:
        if self.rule != finding.rule:
            return False
        if self.line is not None and self.line != finding.line:
            return False
        return (finding.path == self.path
                or finding.path.endswith("/" + self.path))


def parse_allowlist(text: str,
                    rules: Optional[dict] = None) -> list[AllowlistEntry]:
    """Parse ``RULE path[:line] -- reason`` lines; '#' comments.

    ``rules`` is the accepted rule catalog (default: the DET rules);
    the ownership checker reuses this format for its suppressions.
    """
    if rules is None:
        rules = RULES
    entries = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        head, _, reason = line.partition("--")
        parts = head.split()
        if len(parts) != 2 or parts[0] not in rules:
            raise ValueError(
                f"allowlist line {lineno}: expected "
                f"'RULE path[:line] -- reason', got {raw!r}")
        rule, where = parts
        path, _, line_part = where.partition(":")
        entry_line = int(line_part) if line_part else None
        entries.append(AllowlistEntry(rule=rule, path=path,
                                      line=entry_line,
                                      reason=reason.strip()))
    return entries


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _FileLinter:
    """Lint one parsed module."""

    def __init__(self, tree: ast.Module, relpath: str):
        self.tree = tree
        self.relpath = relpath
        top = relpath.split("/", 1)[0]
        self.order_sensitive = top not in ORDER_EXEMPT_PACKAGES
        self.wall_clock_exempt = top in WALL_CLOCK_EXEMPT_PACKAGES
        self.findings: list[Finding] = []
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, path=self.relpath, line=node.lineno,
            col=node.col_offset + 1, message=message))

    def run(self) -> list[Finding]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._check_call(node)
            self._check_unordered_producer(node)
        return self.findings

    # -- call-shaped rules --------------------------------------------------

    def _check_call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        # DET101: module-global RNG, or unseeded Random().
        if dotted is not None and "." in dotted:
            base, _, attr = dotted.rpartition(".")
            if base == "random" and attr in _GLOBAL_RNG_FNS:
                self._flag("DET101", node,
                           f"call to the process-global RNG "
                           f"'random.{attr}'; use a seeded "
                           f"random.Random instance")
        if dotted in ("Random", "random.Random") and not node.args:
            self._flag("DET101", node,
                       "Random() without a seed draws from OS entropy")
        # DET102: wall clocks.
        if (dotted in _WALL_CLOCK_FNS
                and not self.wall_clock_exempt):
            self._flag("DET102", node,
                       f"wall-clock read '{dotted}()'; simulated time "
                       f"(sim.now) is the only clock model code may "
                       f"read")
        # DET104: identity and salted hashes.
        if isinstance(node.func, ast.Name) and node.func.id in ("id",
                                                                "hash"):
            self._flag("DET104", node,
                       f"'{node.func.id}()' is per-process state "
                       f"(address / salted hash); derive keys from "
                       f"content instead")
        # DET105: host environment reads in model logic.
        if self.order_sensitive and dotted in ("os.cpu_count",
                                               "os.getenv",
                                               "os.environ.get"):
            self._flag("DET105", node,
                       f"'{dotted}()' read inside order-sensitive "
                       f"model code; thread configuration in "
                       f"explicitly")
        # DET106: filesystem enumeration.
        if dotted in _FS_ENUM_FNS and not self._safely_consumed(node):
            self._flag("DET106", node,
                       f"'{dotted}()' order is platform noise; wrap "
                       f"in sorted()")
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _FS_ENUM_METHODS
                and _dotted(node.func.value) not in ("glob",)
                and not self._safely_consumed(node)):
            self._flag("DET106", node,
                       f"'.{node.func.attr}()' enumeration order is "
                       f"platform noise; wrap in sorted()")

    def _check_env_subscript(self, node: ast.Subscript) -> None:
        if self.order_sensitive and _dotted(node.value) == "os.environ":
            self._flag("DET105", node,
                       "'os.environ[...]' read inside order-sensitive "
                       "model code; thread configuration in explicitly")

    # -- DET103 -------------------------------------------------------------

    def _unordered_producer(self, node: ast.AST) -> Optional[str]:
        """A description if ``node`` yields unordered elements."""
        if isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("items", "values", "keys")
                    and not node.args and not node.keywords):
                return f".{node.func.attr}()"
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("set", "frozenset")):
                return f"{node.func.id}()"
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, ast.SetComp):
            return "set comprehension"
        return None

    def _safely_consumed(self, node: ast.AST) -> bool:
        """Is ``node`` a direct argument of an order-insensitive
        reducer (``sorted(d.items())``, ``sum(s)``, ...)?"""
        parent = self._parents.get(node)
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_INSENSITIVE
                and node in parent.args)

    def _comprehension_consumer_safe(self, comp: ast.AST) -> bool:
        """A generator/list comprehension over an unordered producer
        is safe when the comprehension itself is fed to an
        order-insensitive reducer -- ``sum(x for x in d.values())``."""
        return self._safely_consumed(comp)

    def _check_unordered_producer(self, node: ast.AST) -> None:
        if isinstance(node, ast.Subscript):
            self._check_env_subscript(node)
        if not self.order_sensitive:
            return
        reason = self._unordered_producer(node)
        if reason is None or self._safely_consumed(node):
            return
        parent = self._parents.get(node)
        # for x in d.items(): ...
        if isinstance(parent, ast.For) and parent.iter is node:
            self._flag("DET103", node,
                       f"iteration over {reason} without sorted(); "
                       f"order leaks into event/report order")
            return
        # [.. for x in d.items()] / {..} / (..)
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            comp = self._parents.get(parent)
            if isinstance(comp, ast.SetComp):
                return      # set output: order cannot leak further here
            if isinstance(comp, ast.GeneratorExp) \
                    and self._comprehension_consumer_safe(comp):
                return
            if isinstance(comp, (ast.ListComp, ast.DictComp)) \
                    and self._comprehension_consumer_safe(comp):
                return
            self._flag("DET103", node,
                       f"comprehension over {reason} without sorted(); "
                       f"order leaks into the materialized result")
            return
        # list(d.values()) / tuple(...) / dict(...)
        if (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDERED_MATERIALIZERS
                and node in parent.args):
            self._flag("DET103", node,
                       f"{parent.func.id}() over {reason} without "
                       f"sorted(); order leaks into the materialized "
                       f"result")


def lint_source(source: str, relpath: str) -> list[Finding]:
    """Lint one module's source as if it lived at ``relpath``
    (posix, relative to the ``repro`` package root)."""
    tree = ast.parse(source, filename=relpath)
    return _FileLinter(tree, relpath).run()


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parent.parent


def default_allowlist_path() -> Path:
    return Path(__file__).resolve().parent / "allowlist.txt"


@dataclass
class LintResult:
    findings: list[Finding]
    checked_files: int
    allowlisted: int
    unused_allowlist: list[AllowlistEntry]


def lint_tree(root: Optional[Path] = None,
              allowlist: Optional[list[AllowlistEntry]] = None,
              ) -> LintResult:
    """Lint every ``*.py`` under ``root`` (default: the repro
    package), filtering findings through the allowlist."""
    root = (default_root() if root is None else root).resolve()
    if allowlist is None:
        path = default_allowlist_path()
        allowlist = (parse_allowlist(path.read_text())
                     if path.exists() else [])
    findings: list[Finding] = []
    checked = 0
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        checked += 1
        relpath = path.relative_to(root).as_posix()
        findings.extend(lint_source(path.read_text(), relpath))
    kept: list[Finding] = []
    used: set[AllowlistEntry] = set()
    allowlisted = 0
    for finding in findings:
        entry = next((e for e in allowlist if e.matches(finding)), None)
        if entry is None:
            kept.append(finding)
        else:
            used.add(entry)
            allowlisted += 1
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(
        findings=kept, checked_files=checked, allowlisted=allowlisted,
        unused_allowlist=[e for e in allowlist if e not in used])


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism linter for the simulation tree")
    parser.add_argument("--root", default=None,
                        help="directory to lint (default: the "
                             "installed repro package)")
    parser.add_argument("--allowlist", default=None,
                        help="audited-exception file (default: "
                             "repro/analysis/allowlist.txt)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    args = parser.parse_args(argv)

    allowlist = None
    if args.allowlist is not None:
        allowlist = parse_allowlist(Path(args.allowlist).read_text())
    result = lint_tree(
        root=Path(args.root) if args.root else None,
        allowlist=allowlist)

    if args.json:
        print(json.dumps({
            "checked_files": result.checked_files,
            "allowlisted": result.allowlisted,
            "findings": [asdict(f) for f in result.findings],
            "unused_allowlist": [asdict(e)
                                 for e in result.unused_allowlist],
        }, indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        for entry in result.unused_allowlist:
            print(f"note: unused allowlist entry {entry.rule} "
                  f"{entry.path}" + (f":{entry.line}" if entry.line
                                     else ""))
        print(f"{result.checked_files} files checked, "
              f"{len(result.findings)} finding(s), "
              f"{result.allowlisted} allowlisted")
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())


__all__ = ["Finding", "AllowlistEntry", "LintResult", "RULES",
           "lint_source", "lint_tree", "parse_allowlist", "main"]

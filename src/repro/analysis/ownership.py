"""Static ownership / race checker for the model tree (RACE2xx).

The paper's central software discipline is the lock-free single-reader/
single-writer descriptor queue between host driver and adaptor firmware
(section 2.1.1).  PR 5 enforces it *dynamically*: the ``--sanitize``
SRSW hook fires on whichever actor pair a given seed happens to
exercise.  This module proves the discipline *statically*, for every
code path: it builds an actor/attribute access graph over the model
packages and checks declared ownership contracts against it, without
running the simulator.

Actor model
-----------

An *actor* is a logical thread of control from the paper's split:
``rx-processor`` and ``tx-processor`` (the two on-board processors),
``boundary`` (the cross-shard boundary-message dispatcher -- the only
context allowed to apply remote effects), ``recovery`` (the heartbeat
chain of the owning shard), and ``setup`` (construction time, before
concurrency exists, exempt from all rules).  Actors come from three
sources, mirroring the dynamic sanitizer:

1. *Entry points*: every method of ``RxProcessor`` / ``TxProcessor``
   runs as that processor; ``ShardFabric.deliver`` runs as the
   boundary dispatcher.  Entry points are **barriers**: their actor is
   fixed regardless of callers.
2. *Annotations* in class docstrings (grammar below).
3. *Propagation*: a function reachable from an actor's code runs as
   that actor, unless it is itself a barrier; a call made inside a
   lexical ``sanitize.actor("x")`` / ``maybe_actor("x")`` block runs
   as ``x``.  ``__init__`` is always ``setup``.  Unreachable functions
   are *anonymous* and make no claims.

Annotation grammar (lines anywhere in a class docstring)::

    Owner: <actor>                  # root every method as <actor>
    Owner: <field> -> <actor>       # field is written only by <actor>
    SRSW: <field> via <m1>[, m2..]  # pointer field, mutated via m1..
    Boundary: <m1>[, m2...]         # boundary portals (actor 'boundary')
    Fold: <m1>[, m2...]             # cell-train fused-fold roots
    Root: <method> -> <actor>       # root one method as <actor>
    Effect: <m1>[, m2...]           # cross-shard effectors (RACE202)

Rule catalog (full rationale in DESIGN.md section 13):

``RACE201 srsw-second-writer``
    Two distinct concrete actors reach mutators of the same declared
    SRSW field on the same structure instance (grouped by receiver
    class + field path).  One actor per pointer is the whole contract.
``RACE202 unmediated-cross-shard-effect``
    A cross-shard effector (``CellSwitch.input_cell``,
    ``CreditGate.refill`` ...) invoked directly by a concrete
    non-boundary actor.  Effects must travel as boundary messages
    (``_emit_boundary`` -> ``repro.cluster.boundary`` codec ->
    ``_apply_boundary``), or the sharded run diverges from ``--shards
    1``.
``RACE203 order-op-in-fold``
    An order-sensitive operation (queue push/pop, signal fire, credit
    acquire/refill ...) reachable from a cell-train fused fold.  The
    fold commits a whole train in one event; per-cell expansion would
    interleave these ops differently, breaking byte-identity.
``RACE204 foreign-owner-write``
    A field with a declared ``Owner:`` written under a different
    concrete actor -- e.g. recovery-manager replicated state written
    outside the owning shard's heartbeat or boundary chain.

Audited exceptions live in a suppression file with the same syntax and
unused-entry reporting as the DET allowlist (default:
``repro/analysis/ownership_baseline.txt``).

Usage::

    python -m repro check              # static pass, exit 1 on findings
    python -m repro check --json       # machine-readable findings
    python -m repro check --replay t.json   # happens-before verifier
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

from .lint import AllowlistEntry, Finding, parse_allowlist

RULES = {
    "RACE201": "srsw-second-writer: second distinct actor mutates a "
               "declared SRSW field",
    "RACE202": "unmediated-cross-shard-effect: effector invoked "
               "directly instead of via a boundary message",
    "RACE203": "order-op-in-fold: order-sensitive operation inside a "
               "cell-train fused fold",
    "RACE204": "foreign-owner-write: field written by an actor other "
               "than its declared owner",
}

# Packages (top-level directories under the scanned root) that hold
# model code; analysis/, bench/, driver-side harnesses etc. are out of
# scope.  Loose files directly under the root are always included so
# fixture corpora check without package structure.
MODEL_PACKAGES = frozenset({"atm", "cluster", "faults", "osiris",
                            "recovery", "sim", "topology"})

SETUP_ACTOR = "setup"
BOUNDARY_ACTOR = "boundary"


def actor_root(label: str) -> str:
    """Dotted actor labels form a hierarchy: 'boundary.train-fold'
    is a sub-actor of 'boundary' -- the same thread of control,
    refined for sanitizer attribution.  Rules compare roots, so a
    sub-actor never races with its parent."""
    return label.split(".", 1)[0]

# Entry-point barriers (ISSUE: reachability from RxProcessor /
# TxProcessor / ShardFabric / RecoveryManager).  RecoveryManager's
# roots are docstring annotations: its methods split between the
# heartbeat chain ('recovery') and the broadcast receiver ('boundary').
ENTRY_CLASS_ACTORS = {
    "RxProcessor": "rx-processor",
    "TxProcessor": "tx-processor",
}
ENTRY_METHOD_ACTORS = {
    ("ShardFabric", "deliver"): BOUNDARY_ACTOR,
}

# Built-in cross-shard effectors (class, method): applying one of
# these mutates state that remote shards also observe, so the call
# must come from the boundary dispatcher.  Classes may add their own
# with an `Effect:` docstring line.
BUILTIN_EFFECTORS = frozenset({
    ("CellSwitch", "input_cell"),
    ("CellSwitch", "input_train"),
    ("CreditGate", "refill"),
    ("CreditGate", "pause"),
    ("RecoveryManager", "apply_dead"),
    ("OsirisBoard", "deliver_cell"),
})

# Operations whose relative order is observable (queue pointers,
# signals, credits, IRQs): banned inside a fused cell-train fold,
# where one event stands in for many per-cell events.
ORDER_OPS = frozenset({
    "push", "pop", "pop_rr", "pop_fifo", "push_out_longest",
    "fire", "acquire", "refill", "pause", "put", "try_put",
    "enqueue", "input_cell", "deliver_cell", "raise_receive_irq",
})

# Method names that mutate their receiver: a call to one of these on
# `self.<field>` counts as a write to <field> for RACE204.
MUTATOR_METHODS = frozenset({
    "append", "add", "clear", "pop", "popitem", "update",
    "setdefault", "extend", "remove", "discard", "insert", "popleft",
    "appendleft",
})

_ANNOTATION_RE = re.compile(
    r"^\s*(Owner|SRSW|Boundary|Fold|Root|Effect):\s*(.+?)\s*$",
    re.MULTILINE)

_IDENT = r"[A-Za-z_][A-Za-z0-9_.*<>-]*"


class AnnotationError(ValueError):
    """A malformed ownership annotation in a class docstring."""


@dataclass
class ClassAnnotations:
    class_actor: Optional[str] = None
    owners: dict = field(default_factory=dict)      # field -> actor
    srsw: dict = field(default_factory=dict)        # field -> (methods,)
    boundary: tuple = ()
    fold: tuple = ()
    roots: dict = field(default_factory=dict)       # method -> actor
    effects: tuple = ()

    @property
    def empty(self) -> bool:
        return not (self.class_actor or self.owners or self.srsw
                    or self.boundary or self.fold or self.roots
                    or self.effects)


def parse_annotations(docstring: Optional[str],
                      where: str = "?") -> ClassAnnotations:
    """Extract ownership annotations from one class docstring."""
    ann = ClassAnnotations()
    if not docstring:
        return ann
    for kind, payload in _ANNOTATION_RE.findall(docstring):
        if kind == "Owner":
            if "->" in payload:
                fld, _, actor = payload.partition("->")
                fld, actor = fld.strip(), actor.strip()
                if not fld or not actor:
                    raise AnnotationError(
                        f"{where}: bad 'Owner: field -> actor' "
                        f"annotation: {payload!r}")
                ann.owners[fld] = actor
            else:
                ann.class_actor = payload.strip()
        elif kind == "SRSW":
            fld, sep, methods = payload.partition(" via ")
            names = tuple(m.strip() for m in methods.split(",")
                          if m.strip())
            if not sep or not fld.strip() or not names:
                raise AnnotationError(
                    f"{where}: bad 'SRSW: field via m1, m2' "
                    f"annotation: {payload!r}")
            ann.srsw[fld.strip()] = names
        elif kind == "Root":
            meth, sep, actor = payload.partition("->")
            if not sep or not meth.strip() or not actor.strip():
                raise AnnotationError(
                    f"{where}: bad 'Root: method -> actor' "
                    f"annotation: {payload!r}")
            ann.roots[meth.strip()] = actor.strip()
        else:   # Boundary / Fold / Effect: comma-separated methods
            names = tuple(m.strip() for m in payload.split(",")
                          if m.strip())
            if not names or not all(re.fullmatch(_IDENT, n)
                                    for n in names):
                raise AnnotationError(
                    f"{where}: bad '{kind}:' method list: {payload!r}")
            if kind == "Boundary":
                ann.boundary += names
            elif kind == "Fold":
                ann.fold += names
            else:
                ann.effects += names
    return ann


# -- the access-graph index ---------------------------------------------------


@dataclass
class _CallSite:
    name: str                       # method/function name invoked
    recv_class: Optional[str]       # resolved receiver class, if any
    recv_tail: Optional[str]        # field path tail naming the instance
    recv_is_self: bool
    is_attr: bool                   # obj.m() vs bare f()
    line: int
    col: int
    deferred: bool                  # inside a nested def / lambda
    ctx_actor: Optional[str]        # lexical sanitize.actor(...) label


@dataclass
class _WriteSite:
    owner_class: Optional[str]      # resolved class owning the attr
    attr: str
    line: int
    col: int
    deferred: bool
    ctx_actor: Optional[str]


@dataclass
class _FuncInfo:
    key: tuple                      # (relpath, class_name, func_name)
    class_name: str                 # "" for module-level functions
    name: str
    relpath: str
    line: int
    calls: list = field(default_factory=list)
    writes: list = field(default_factory=list)


@dataclass
class _ClassInfo:
    name: str
    relpath: str
    line: int
    ann: ClassAnnotations
    attr_types: dict = field(default_factory=dict)   # attr -> class
    elem_types: dict = field(default_factory=dict)   # attr -> elem class
    methods: dict = field(default_factory=dict)      # name -> _FuncInfo


def _ann_to_class(node: Optional[ast.AST]) -> tuple:
    """(direct class name, element class name) for an annotation
    expression -- shallow: Name, 'quoted', Optional[X], list[X],
    dict[K, V], tuple[X, ...]."""
    if node is None:
        return None, None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        m = re.fullmatch(r"Optional\[(\w+)\]|(\w+)", text)
        if m:
            return (m.group(1) or m.group(2)), None
        return None, None
    if isinstance(node, ast.Name):
        return node.id, None
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.attr if isinstance(base, ast.Attribute) \
            else (base.id if isinstance(base, ast.Name) else None)
        inner = node.slice
        if base_name == "Optional":
            return _ann_to_class(inner)
        if base_name in ("list", "List", "Sequence", "Iterable",
                         "tuple", "Tuple", "set", "frozenset", "deque",
                         "Deque"):
            first = (inner.elts[0] if isinstance(inner, ast.Tuple)
                     and inner.elts else inner)
            return None, _ann_to_class(first)[0]
        if base_name in ("dict", "Dict", "defaultdict", "Mapping",
                         "WeakKeyDictionary", "OrderedDict"):
            value = (inner.elts[1] if isinstance(inner, ast.Tuple)
                     and len(inner.elts) == 2 else None)
            return None, _ann_to_class(value)[0]
    return None, None


class _Index:
    """Classes, functions, and access sites for a set of modules."""

    def __init__(self) -> None:
        self.classes: dict[str, _ClassInfo] = {}
        # (relpath, name) -> _ClassInfo; ``classes`` keeps only the
        # last definition of a bare name (cross-module resolution is
        # name-based), but every version is scanned.
        self.all_classes: dict[tuple, _ClassInfo] = {}
        self.funcs: dict[tuple, _FuncInfo] = {}
        # method name -> [keys]; fallback for unresolved receivers.
        self.by_name: dict[str, list] = {}
        # module relpath -> {name: key} for bare-name calls.
        self.module_funcs: dict[str, dict] = {}
        # class name -> base class names (textual, shallow).
        self.bases: dict[str, tuple] = {}

    def subclasses(self, cls: str) -> set:
        """Transitive textual subclasses of ``cls``."""
        out: set[str] = set()
        work = [cls]
        while work:
            cur = work.pop()
            for name, bases in sorted(self.bases.items()):
                if cur in bases and name not in out:
                    out.add(name)
                    work.append(name)
        return out

    def hierarchy_methods(self, cls: str, name: str) -> list:
        """Keys of methods ``name`` may dispatch to on a ``cls``
        receiver: the definition in ``cls`` or its nearest ancestor,
        plus every override in a subclass (the static type may
        underestimate the dynamic one)."""
        keys = []
        for candidate in [cls, *sorted(self.subclasses(cls))]:
            cinfo = self.classes.get(candidate)
            if cinfo is not None and name in cinfo.methods:
                keys.append(cinfo.methods[name].key)
        if not keys or self.classes.get(cls) is not None \
                and name not in self.classes[cls].methods:
            # Not defined on cls itself: inherit from the nearest
            # ancestor that defines it.
            seen = {cls}
            work = list(self.bases.get(cls, ()))
            while work:
                base = work.pop(0)
                if base in seen:
                    continue
                seen.add(base)
                cinfo = self.classes.get(base)
                if cinfo is not None and name in cinfo.methods:
                    keys.append(cinfo.methods[name].key)
                    break
                work.extend(self.bases.get(base, ()))
        return keys

    # -- phase A: declarations + attribute types -----------------------------

    def add_module(self, tree: ast.Module, relpath: str) -> None:
        self.module_funcs.setdefault(relpath, {})
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self._add_class(node, relpath)
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                info = _FuncInfo(key=(relpath, "", node.name),
                                 class_name="", name=node.name,
                                 relpath=relpath, line=node.lineno)
                self.funcs[info.key] = info
                self.module_funcs[relpath][node.name] = info.key

    def _add_class(self, node: ast.ClassDef, relpath: str) -> None:
        ann = parse_annotations(ast.get_docstring(node),
                                where=f"{relpath}:{node.lineno} "
                                      f"class {node.name}")
        cinfo = _ClassInfo(name=node.name, relpath=relpath,
                           line=node.lineno, ann=ann)
        self.classes[node.name] = cinfo
        self.all_classes[(relpath, node.name)] = cinfo
        self.bases[node.name] = tuple(
            b.id for b in node.bases if isinstance(b, ast.Name))
        for item in node.body:
            if isinstance(item, ast.AnnAssign) \
                    and isinstance(item.target, ast.Name):
                direct, elem = _ann_to_class(item.annotation)
                if direct:
                    cinfo.attr_types[item.target.id] = direct
                if elem:
                    cinfo.elem_types[item.target.id] = elem
            elif isinstance(item, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                finfo = _FuncInfo(key=(relpath, node.name, item.name),
                                  class_name=node.name, name=item.name,
                                  relpath=relpath, line=item.lineno)
                self.funcs[finfo.key] = finfo
                cinfo.methods[item.name] = finfo
                self.by_name.setdefault(item.name, []).append(finfo.key)
                self._infer_attr_types(cinfo, item)

    def _infer_attr_types(self, cinfo: _ClassInfo,
                          func: ast.FunctionDef) -> None:
        """self.x = ClassName(...) / self.x = <annotated param>."""
        params = {}
        args = func.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            direct, elem = _ann_to_class(arg.annotation)
            if direct:
                params[arg.arg] = direct
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                value = stmt.value
                if (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)):
                    cinfo.attr_types.setdefault(target.attr,
                                                value.func.id)
                elif (isinstance(value, ast.Name)
                        and value.id in params):
                    cinfo.attr_types.setdefault(target.attr,
                                                params[value.id])


# -- phase B: per-function body scans ----------------------------------------


_ACTOR_CTX_NAMES = frozenset({"actor", "maybe_actor"})


def _actor_label(call: ast.Call) -> Optional[str]:
    """The actor name a `with actor(...)` context establishes."""
    fn = call.func
    name = fn.attr if isinstance(fn, ast.Attribute) else (
        fn.id if isinstance(fn, ast.Name) else None)
    if name not in _ACTOR_CTX_NAMES or not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        return "".join(
            part.value if isinstance(part, ast.Constant) else "*"
            for part in arg.values)
    return "<dynamic>"


class _BodyScanner:
    """Collect call and write sites of one function body, resolving
    receivers through shallow type inference."""

    def __init__(self, index: _Index, finfo: _FuncInfo,
                 cinfo: Optional[_ClassInfo]):
        self.index = index
        self.finfo = finfo
        self.cinfo = cinfo
        # local name -> (class name, tail) -- tail is the attribute
        # name the value came from, used to group SRSW instances.
        self.env: dict[str, tuple] = {}

    def scan(self, node: ast.FunctionDef) -> None:
        args = node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            direct, _ = _ann_to_class(arg.annotation)
            if direct:
                self.env[arg.arg] = (direct, arg.arg)
        for stmt in node.body:
            self._visit(stmt, deferred=False, ctx=None)

    # -- resolution ----------------------------------------------------------

    def _class_info(self, base_cls) -> Optional[_ClassInfo]:
        """Class info for a resolved base, preferring the scanner's
        own class over a same-named definition in another module."""
        if base_cls is None:
            return None
        if self.cinfo is not None and base_cls == self.cinfo.name:
            return self.cinfo
        return self.index.classes.get(base_cls)

    def _resolve(self, node: ast.AST) -> tuple:
        """(class name or None, tail name or None) of an expression."""
        if isinstance(node, ast.Name):
            if node.id == "self" and self.cinfo is not None:
                return self.cinfo.name, "self"
            return self.env.get(node.id, (None, None))
        if isinstance(node, ast.Attribute):
            base_cls, _ = self._resolve(node.value)
            cinfo = self._class_info(base_cls)
            if cinfo is not None:
                return cinfo.attr_types.get(node.attr), node.attr
            return None, node.attr
        if isinstance(node, ast.Subscript):
            base = node.value
            if isinstance(base, ast.Attribute):
                base_cls, _ = self._resolve(base.value)
                cinfo = self._class_info(base_cls)
                if cinfo is not None:
                    return (cinfo.elem_types.get(base.attr),
                            base.attr)
            return None, None
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id in self.index.classes:
            return node.func.id, None
        return None, None

    # -- traversal -----------------------------------------------------------

    def _visit(self, node: ast.AST, deferred: bool,
               ctx: Optional[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            body = node.body if isinstance(node.body, list) \
                else [node.body]
            for child in body:
                self._visit(child, deferred=True, ctx=ctx)
            return
        if isinstance(node, ast.With):
            inner = ctx
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    label = _actor_label(item.context_expr)
                    if label is not None:
                        inner = label
                self._visit(item.context_expr, deferred, ctx)
            for child in node.body:
                self._visit(child, deferred, inner)
            return
        if isinstance(node, ast.Assign):
            self._record_assign(node, deferred, ctx)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if node.target is not None:
                self._record_write_target(node.target, deferred, ctx)
        elif isinstance(node, ast.Call):
            self._record_call(node, deferred, ctx)
        for child in ast.iter_child_nodes(node):
            self._visit(child, deferred, ctx)

    def _record_assign(self, node: ast.Assign, deferred: bool,
                       ctx: Optional[str]) -> None:
        for target in node.targets:
            self._record_write_target(target, deferred, ctx)
        # Local type inference: v = <resolvable expression>.
        if (len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and not deferred):
            cls, tail = self._resolve(node.value)
            name = node.targets[0].id
            if cls is not None:
                self.env[name] = (cls, tail or name)
            else:
                self.env.pop(name, None)

    def _record_write_target(self, target: ast.AST, deferred: bool,
                             ctx: Optional[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_write_target(elt, deferred, ctx)
            return
        # Peel subscripts: self._records[k] = v writes _records.
        while isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute):
            owner_cls, _ = self._resolve(target.value)
            self.finfo.writes.append(_WriteSite(
                owner_class=owner_cls, attr=target.attr,
                line=target.lineno, col=target.col_offset + 1,
                deferred=deferred, ctx_actor=ctx))

    def _record_call(self, node: ast.Call, deferred: bool,
                     ctx: Optional[str]) -> None:
        fn = node.func
        if isinstance(fn, ast.Attribute):
            recv_cls, tail = self._resolve(fn.value)
            is_self = (isinstance(fn.value, ast.Name)
                       and fn.value.id == "self")
            self.finfo.calls.append(_CallSite(
                name=fn.attr, recv_class=recv_cls, recv_tail=tail,
                recv_is_self=is_self, is_attr=True,
                line=node.lineno, col=node.col_offset + 1,
                deferred=deferred, ctx_actor=ctx))
            # A mutator call on an attribute chain is also a write to
            # that attribute: self._masked.add(x) writes _masked.
            if fn.attr in MUTATOR_METHODS \
                    and isinstance(fn.value, ast.Attribute):
                owner_cls, _ = self._resolve(fn.value.value)
                self.finfo.writes.append(_WriteSite(
                    owner_class=owner_cls, attr=fn.value.attr,
                    line=node.lineno, col=node.col_offset + 1,
                    deferred=deferred, ctx_actor=ctx))
        elif isinstance(fn, ast.Name):
            self.finfo.calls.append(_CallSite(
                name=fn.id, recv_class=None, recv_tail=None,
                recv_is_self=False, is_attr=False,
                line=node.lineno, col=node.col_offset + 1,
                deferred=deferred, ctx_actor=ctx))


# -- the checker --------------------------------------------------------------


class OwnershipChecker:
    """Run the RACE2xx rules over a set of parsed modules."""

    def __init__(self, modules: list) -> None:
        # modules: [(relpath, ast.Module)]
        self.index = _Index()
        for relpath, tree in modules:
            self.index.add_module(tree, relpath)
        for relpath, tree in modules:
            self._scan_bodies(tree, relpath)
        self.roots = self._find_roots()
        self.actors = self._propagate_actors()
        self.fold_funcs = self._fold_reachable()
        self.findings: list[Finding] = []

    # -- construction --------------------------------------------------------

    def _scan_bodies(self, tree: ast.Module, relpath: str) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                finfo = self.index.funcs[(relpath, "", node.name)]
                _BodyScanner(self.index, finfo, None).scan(node)
            elif isinstance(node, ast.ClassDef):
                cinfo = self.index.all_classes.get(
                    (relpath, node.name))
                if cinfo is None:
                    continue
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        finfo = self.index.funcs[
                            (relpath, node.name, item.name)]
                        _BodyScanner(self.index, finfo, cinfo).scan(item)

    def _find_roots(self) -> dict:
        """func key -> fixed actor (propagation barrier)."""
        roots: dict[tuple, str] = {}
        for key, finfo in sorted(self.index.funcs.items()):
            cls = finfo.class_name
            cinfo = self.index.classes.get(cls) if cls else None
            ann = cinfo.ann if cinfo else None
            if finfo.name == "__init__":
                roots[key] = SETUP_ACTOR
            elif ann and finfo.name in ann.roots:
                roots[key] = ann.roots[finfo.name]
            elif ann and finfo.name in ann.boundary:
                roots[key] = BOUNDARY_ACTOR
            elif (cls, finfo.name) in ENTRY_METHOD_ACTORS:
                roots[key] = ENTRY_METHOD_ACTORS[(cls, finfo.name)]
            elif cls in ENTRY_CLASS_ACTORS:
                roots[key] = ENTRY_CLASS_ACTORS[cls]
            elif ann and ann.class_actor:
                roots[key] = ann.class_actor
        return roots

    def _callees(self, finfo: _FuncInfo, site: _CallSite) -> list:
        """Candidate function keys a call site may invoke."""
        if site.recv_class is not None:
            keys = self.index.hierarchy_methods(site.recv_class,
                                                site.name)
            if keys:
                return keys
            # Resolved class, unknown method: a stdlib container --
            # fall through to the name match.
        if not site.is_attr:
            # Bare name: a module-level function of the same module.
            key = self.index.module_funcs.get(finfo.relpath,
                                              {}).get(site.name)
            return [key] if key else []
        if site.recv_is_self and finfo.class_name:
            keys = self.index.hierarchy_methods(finfo.class_name,
                                                site.name)
            if keys:
                return keys
        # Unresolved receiver: over-approximate by method name.
        return list(self.index.by_name.get(site.name, ()))

    def _propagate_actors(self) -> dict:
        """func key -> set of actors it may run as."""
        actors: dict[tuple, set] = {k: set()
                                    for k in self.index.funcs}
        work = []
        for key, actor in sorted(self.roots.items()):
            actors[key].add(actor)
            work.append((key, actor))
        while work:
            key, actor = work.pop()
            finfo = self.index.funcs[key]
            for site in finfo.calls:
                effective = site.ctx_actor or actor
                for callee in self._callees(finfo, site):
                    if callee in self.roots:
                        continue
                    if effective not in actors[callee]:
                        actors[callee].add(effective)
                        work.append((callee, effective))
        return actors

    def _fold_reachable(self) -> set:
        """Function keys reachable from a fused-fold root through
        direct (non-deferred) calls.  Nested defs and scheduled
        callbacks run as their own events, outside the fold."""
        reach: set[tuple] = set()
        work = []
        for _, cinfo in sorted(self.index.classes.items()):
            for meth in cinfo.ann.fold:
                finfo = cinfo.methods.get(meth)
                if finfo is not None:
                    reach.add(finfo.key)
                    work.append(finfo.key)
        while work:
            key = work.pop()
            finfo = self.index.funcs[key]
            for site in finfo.calls:
                if site.deferred:
                    continue
                for callee in self._callees(finfo, site):
                    if callee not in reach:
                        reach.add(callee)
                        work.append(callee)
        return reach

    # -- shared helpers ------------------------------------------------------

    def _funcs_in_order(self) -> list:
        """Functions in deterministic (path, class, name) order so
        finding order never depends on dict insertion order."""
        return [self.index.funcs[k] for k in sorted(self.index.funcs)]

    def _site_actors(self, finfo: _FuncInfo, site) -> set:
        """Concrete actors a call/write site may execute under."""
        if site.ctx_actor is not None:
            return {site.ctx_actor}
        return set(self.actors.get(finfo.key, ()))

    def _flag(self, rule: str, finfo: _FuncInfo, site,
              message: str) -> None:
        self.findings.append(Finding(
            rule=rule, path=finfo.relpath, line=site.line,
            col=site.col, message=message))

    # -- rules ---------------------------------------------------------------

    def run(self) -> list:
        self._check_srsw()
        self._check_effectors()
        self._check_folds()
        self._check_owners()
        self.findings.sort(key=lambda f: (f.path, f.line, f.col,
                                          f.rule))
        return self.findings

    def _check_srsw(self) -> None:
        """RACE201: group mutator call sites of declared SRSW fields
        by (receiver class, instance path tail); each group admits
        exactly one concrete actor."""
        groups: dict[tuple, list] = {}
        for finfo in self._funcs_in_order():
            for site in finfo.calls:
                cinfo = self.index.classes.get(site.recv_class) \
                    if site.recv_class else None
                if cinfo is None or cinfo.ann.empty:
                    continue
                for fld, methods in sorted(cinfo.ann.srsw.items()):
                    if site.name in methods:
                        key = (cinfo.name, fld,
                               site.recv_tail or "?")
                        groups.setdefault(key, []).append(
                            (finfo, site))
        for (cls, fld, tail), sites in sorted(
                groups.items(), key=lambda kv: kv[0]):
            attributed = []
            for finfo, site in sites:
                actors = {a for a in self._site_actors(finfo, site)
                          if actor_root(a) != SETUP_ACTOR}
                for actor in sorted(actors):
                    attributed.append((finfo, site, actor))
            attributed.sort(key=lambda t: (t[0].relpath, t[1].line,
                                           t[1].col, t[2]))
            if len({actor_root(a) for _, _, a in attributed}) < 2:
                continue
            owner_finfo, owner_site, owner = attributed[0]
            for finfo, site, actor in attributed[1:]:
                if actor_root(actor) == actor_root(owner):
                    continue
                self._flag(
                    "RACE201", finfo, site,
                    f"second actor '{actor}' mutates SRSW field "
                    f"'{cls}.{fld}' (instance '{tail}') via "
                    f".{site.name}(); already written by '{owner}' "
                    f"at {owner_finfo.relpath}:{owner_site.line} -- "
                    f"one actor per pointer (paper section 2.1.1)")

    def _check_effectors(self) -> None:
        """RACE202: direct invocation of a cross-shard effector by a
        concrete non-boundary actor."""
        effectors = set(BUILTIN_EFFECTORS)
        for _, cinfo in sorted(self.index.classes.items()):
            for meth in cinfo.ann.effects:
                effectors.add((cinfo.name, meth))
        for finfo in self._funcs_in_order():
            for site in finfo.calls:
                if site.recv_class is None or site.recv_is_self:
                    continue
                if (site.recv_class, site.name) not in effectors:
                    continue
                actors = sorted(
                    a for a in self._site_actors(finfo, site)
                    if actor_root(a) not in (SETUP_ACTOR,
                                             BOUNDARY_ACTOR))
                if not actors:
                    continue
                self._flag(
                    "RACE202", finfo, site,
                    f"actor '{actors[0]}' invokes "
                    f"{site.recv_class}.{site.name}() directly; "
                    f"cross-shard effects must travel as a boundary "
                    f"message (_emit_boundary -> "
                    f"repro.cluster.boundary -> _apply_boundary)")

    def _check_folds(self) -> None:
        """RACE203: order-sensitive operation inside a fused fold."""
        for key in sorted(self.fold_funcs):
            finfo = self.index.funcs[key]
            for site in finfo.calls:
                if site.deferred or site.name not in ORDER_OPS:
                    continue
                self._flag(
                    "RACE203", finfo, site,
                    f"order-sensitive '.{site.name}()' inside a "
                    f"cell-train fused fold ({finfo.class_name or ''}"
                    f".{finfo.name}); per-cell expansion would order "
                    f"this differently -- emit per-cell events or "
                    f"move the operation outside the fused commit")

    def _check_owners(self) -> None:
        """RACE204: write to an Owner:-annotated field under a
        different concrete actor."""
        for finfo in self._funcs_in_order():
            for site in finfo.writes:
                cinfo = self.index.classes.get(site.owner_class) \
                    if site.owner_class else None
                if cinfo is None or site.attr not in cinfo.ann.owners:
                    continue
                owner = cinfo.ann.owners[site.attr]
                actors = sorted(
                    a for a in self._site_actors(finfo, site)
                    if actor_root(a) not in (SETUP_ACTOR,
                                             actor_root(owner)))
                if not actors:
                    continue
                self._flag(
                    "RACE204", finfo, site,
                    f"field '{cinfo.name}.{site.attr}' is owned by "
                    f"actor '{owner}' (Owner: annotation) but "
                    f"written here under actor '{actors[0]}'")

    # -- reporting helpers ---------------------------------------------------

    def stats(self) -> dict:
        by_actor: dict[str, int] = {}
        anonymous = 0
        for key in self.index.funcs:
            actors = self.actors.get(key, set())
            if not actors:
                anonymous += 1
            for actor in actors:
                by_actor[actor] = by_actor.get(actor, 0) + 1
        return {
            "classes": len(self.index.classes),
            "functions": len(self.index.funcs),
            "annotated_classes": sum(
                1 for c in self.index.classes.values()
                if not c.ann.empty),
            "anonymous_functions": anonymous,
            "functions_by_actor": dict(sorted(by_actor.items())),
            "fold_reachable": len(self.fold_funcs),
        }


# -- public API ---------------------------------------------------------------


def check_source(source: str, relpath: str) -> list:
    """Check one module's source as if it lived at ``relpath``."""
    tree = ast.parse(source, filename=relpath)
    checker = OwnershipChecker([(relpath, tree)])
    return checker.run()


def default_root() -> Path:
    return Path(__file__).resolve().parent.parent


def default_suppressions_path() -> Path:
    return Path(__file__).resolve().parent / "ownership_baseline.txt"


@dataclass
class CheckResult:
    findings: list
    checked_files: int
    suppressed: int
    unused_suppressions: list
    stats: dict


def _collect_files(root: Path) -> list:
    files = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(root)
        top = rel.parts[0]
        if len(rel.parts) == 1 or top in MODEL_PACKAGES:
            files.append((path, rel.as_posix()))
    return files


def check_tree(root: Optional[Path] = None,
               suppressions: Optional[list] = None) -> CheckResult:
    """Check every model-package module under ``root`` (default: the
    installed repro package), filtering through the suppression
    file."""
    root = (default_root() if root is None else root).resolve()
    if suppressions is None:
        path = default_suppressions_path()
        suppressions = (parse_allowlist(path.read_text(), rules=RULES)
                        if path.exists() else [])
    modules = []
    for path, relpath in _collect_files(root):
        modules.append((relpath,
                        ast.parse(path.read_text(), filename=relpath)))
    checker = OwnershipChecker(modules)
    findings = checker.run()
    kept: list[Finding] = []
    used: set[AllowlistEntry] = set()
    suppressed = 0
    for finding in findings:
        entry = next((e for e in suppressions if e.matches(finding)),
                     None)
        if entry is None:
            kept.append(finding)
        else:
            used.add(entry)
            suppressed += 1
    return CheckResult(
        findings=kept, checked_files=len(modules),
        suppressed=suppressed,
        unused_suppressions=[e for e in suppressions
                             if e not in used],
        stats=checker.stats())


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="static ownership/race checker (RACE201-RACE204) "
                    "and happens-before trace verifier")
    parser.add_argument("--root", default=None,
                        help="directory to check (default: the "
                             "installed repro package)")
    parser.add_argument("--suppressions", default=None,
                        help="audited-exception file (default: "
                             "repro/analysis/ownership_baseline.txt)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    parser.add_argument("--replay", metavar="TRACE", action="append",
                        default=None,
                        help="verify a recorded happens-before trace "
                             "(repro cluster --trace-out) instead of "
                             "running the static pass; repeatable")
    args = parser.parse_args(argv)

    if args.replay:
        from .causality import verify_trace_file
        failed = 0
        reports = []
        for trace in args.replay:
            violations = verify_trace_file(Path(trace))
            reports.append({"trace": trace,
                            "violations": violations})
            failed += bool(violations)
            if not args.json:
                for v in violations:
                    print(f"{trace}: {v}")
                print(f"{trace}: "
                      f"{len(violations)} violation(s)")
        if args.json:
            print(json.dumps({"replay": reports}, indent=2,
                             sort_keys=True))
        return 1 if failed else 0

    suppressions = None
    if args.suppressions is not None:
        text = Path(args.suppressions).read_text() \
            if Path(args.suppressions).exists() else ""
        suppressions = parse_allowlist(text, rules=RULES)
    result = check_tree(
        root=Path(args.root) if args.root else None,
        suppressions=suppressions)

    if args.json:
        print(json.dumps({
            "checked_files": result.checked_files,
            "suppressed": result.suppressed,
            "findings": [asdict(f) for f in result.findings],
            "unused_suppressions": [asdict(e) for e in
                                    result.unused_suppressions],
            "stats": result.stats,
        }, indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        for entry in result.unused_suppressions:
            print(f"note: unused suppression {entry.rule} "
                  f"{entry.path}" + (f":{entry.line}" if entry.line
                                     else ""))
        stats = result.stats
        print(f"{result.checked_files} files checked "
              f"({stats['classes']} classes, "
              f"{stats['annotated_classes']} annotated), "
              f"{len(result.findings)} finding(s), "
              f"{result.suppressed} suppressed")
    return 1 if (result.findings or result.unused_suppressions) else 0


if __name__ == "__main__":
    sys.exit(main())


__all__ = ["RULES", "CheckResult", "OwnershipChecker",
           "ClassAnnotations", "AnnotationError", "parse_annotations",
           "check_source", "check_tree", "main"]

"""Static analysis and runtime sanitizers for the simulation tree.

:mod:`repro.analysis.lint` -- the AST determinism linter
(``python -m repro lint``); :mod:`repro.analysis.sanitize` -- the
SRSW / windowing / conservation sanitizers (``--sanitize``).
"""

from . import lint, sanitize
from .lint import Finding, lint_source, lint_tree
from .sanitize import SanitizerError

__all__ = ["lint", "sanitize", "Finding", "lint_source", "lint_tree",
           "SanitizerError"]

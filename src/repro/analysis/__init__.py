"""Static analysis and runtime sanitizers for the simulation tree.

:mod:`repro.analysis.lint` -- the AST determinism linter
(``python -m repro lint``); :mod:`repro.analysis.ownership` -- the
static SRSW/actor race checker (``python -m repro check``);
:mod:`repro.analysis.causality` -- the trace-driven happens-before
verifier (``repro check --replay``); :mod:`repro.analysis.sanitize`
-- the SRSW / windowing / conservation sanitizers (``--sanitize``).
"""

from . import causality, lint, ownership, sanitize
from .causality import build_trace_doc, verify_trace
from .lint import Finding, lint_source, lint_tree
from .ownership import check_source, check_tree
from .sanitize import SanitizerError

__all__ = ["causality", "lint", "ownership", "sanitize", "Finding",
           "lint_source", "lint_tree", "check_source", "check_tree",
           "build_trace_doc", "verify_trace", "SanitizerError"]

"""Runtime sanitizers for the SRSW and windowing disciplines.

Two invariants hold this repo together and neither is visible to a
static pass:

* **SRSW ownership** (paper section 2.1.1): each descriptor-queue
  pointer is mutated by exactly one actor for the queue's lifetime --
  the head by the writer, the tail by the reader.  The queue classes
  already reject a *wrong-side* push/pop, but two distinct actors on
  the *same* side (two driver threads sharing a transmit queue) slip
  straight through: which object "is" the writer is a runtime fact
  about aliasing, not a property of any call site.
* **Conservative windowing** (DESIGN.md section 6): virtual time is
  monotone within a shard, no event executes at or past the shard's
  current horizon, and the extended conservation law ``injected ==
  delivered + corrupted + queued + dropped + lost_to_faults`` holds
  fabric-wide at every window barrier -- not just at quiescence,
  where a slow leak has already been averaged away.

When enabled (``pytest --sanitize``, ``python -m repro cluster
--sanitize``, ``python -m repro chaos --sanitize``) this module
installs hooks into :mod:`repro.osiris.queues` and
:mod:`repro.sim.core`.  The hooks observe; they never perturb event
order, so a sanitized run's report is byte-identical to an
unsanitized one (tests/test_sanitize.py pins this).

Actor identity defaults to the accessing side (``"host"`` /
``"board"``).  Code that wants finer attribution -- e.g. two driver
threads -- wraps its queue operations in :func:`actor`::

    with sanitize.actor("txproc-0"):
        queue.push(desc)
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from typing import Callable, Optional


class SanitizerError(RuntimeError):
    """A checked discipline was violated at runtime."""


# ---------------------------------------------------------------------------
# Actor attribution
# ---------------------------------------------------------------------------

_ACTOR_STACK: list[str] = []


@contextmanager
def actor(name: str):
    """Attribute queue-pointer mutations in this block to ``name``."""
    _ACTOR_STACK.append(name)
    try:
        yield
    finally:
        _ACTOR_STACK.pop()


class _NullContext:
    """Reusable no-op context; cheaper than contextlib.nullcontext()
    on the per-cell fast path (no allocation per entry)."""

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


def maybe_actor(name: str):
    """``actor(name)`` when the sanitizers are enabled, free
    otherwise -- model fast paths (cell-train fold/expansion, the
    per-cell processor loops) use this so attribution costs nothing
    in unsanitized runs."""
    return actor(name) if _enabled else _NULL_CONTEXT


def current_actor(by_host: bool) -> str:
    if _ACTOR_STACK:
        return _ACTOR_STACK[-1]
    return "host" if by_host else "board"


# ---------------------------------------------------------------------------
# SRSW ownership checking
# ---------------------------------------------------------------------------

# queue -> {"head"|"tail": {actor names seen mutating it}}.  Weak keys
# so sanitizing never extends a queue's lifetime.
_QUEUE_OWNERS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _pointer_hook(queue, pointer: str, by_host: bool) -> None:
    """Called by DescriptorQueue after every head/tail store."""
    who = current_actor(by_host)
    owners = _QUEUE_OWNERS.setdefault(queue, {}).setdefault(
        pointer, set())
    owners.add(who)
    if len(owners) > 1:
        raise SanitizerError(
            f"{queue.name}: SRSW violation: '{pointer}' pointer "
            f"mutated by {len(owners)} actors {sorted(owners)}; the "
            f"paper's discipline (section 2.1.1) allows exactly one")


# ---------------------------------------------------------------------------
# Simulator-core checking
# ---------------------------------------------------------------------------

class SimSanitizer:
    """Per-simulator monotone-time and horizon watchdog.

    Installed as the :mod:`repro.sim.core` sanitizer factory; every
    ``Simulator`` built while sanitizing owns one instance.
    """

    __slots__ = ("_last_time", "_horizon")

    def __init__(self) -> None:
        self._last_time = 0.0
        self._horizon: Optional[float] = None

    def on_event(self, time: float) -> None:
        if time < self._last_time:
            raise SanitizerError(
                f"virtual time ran backwards: event at {time} after "
                f"event at {self._last_time}")
        if self._horizon is not None and time >= self._horizon:
            raise SanitizerError(
                f"shard horizon violated: event at {time} inside a "
                f"window bounded by {self._horizon}; a cross-shard "
                f"message undercut the lookahead")
        self._last_time = time

    def window_begin(self, horizon: float) -> None:
        if self._horizon is not None:
            raise SanitizerError(
                f"nested run_window: horizon {horizon} opened inside "
                f"an unfinished window bounded by {self._horizon}")
        self._horizon = horizon

    def window_end(self) -> None:
        self._horizon = None


# ---------------------------------------------------------------------------
# Window-boundary conservation
# ---------------------------------------------------------------------------

def check_window_conservation(window: int, probes: list) -> None:
    """Assert the extended conservation law over per-shard probes.

    Every counter is updated transactionally inside a single event, so
    at a barrier -- no shard mid-event -- each cell sits in exactly
    one bucket even though the shards' clocks differ: a cell parked in
    a cross-shard mailbox is counted by its source shard's
    ``uplink_cells_sent`` (or ``isw_in_flight``) term until the
    destination shard absorbs it.
    """
    sent = sum(p["uplink_cells_sent"] for p in probes)
    arrived = sum(p["uplink_arrived"] for p in probes)
    uplink_fault_lost = sum(p["uplink_fault_lost"] for p in probes)
    injected = sent + sum(p["cross_injected"] for p in probes)
    delivered = sum(p["delivered"] for p in probes)
    corrupted = sum(p["corrupted"] for p in probes)
    queued = (sent - arrived - uplink_fault_lost
              + sum(p["isw_in_flight"] for p in probes)
              + sum(p["switch_queued"] for p in probes))
    dropped = sum(p["dropped"] for p in probes)
    lost = uplink_fault_lost + sum(p["switch_fault_lost"]
                                   for p in probes)
    accounted = delivered + corrupted + queued + dropped + lost
    if injected != accounted:
        raise SanitizerError(
            f"conservation violated at window {window}: injected="
            f"{injected} != delivered={delivered} + corrupted="
            f"{corrupted} + queued={queued} + dropped={dropped} + "
            f"lost_to_faults={lost} (= {accounted})")


# ---------------------------------------------------------------------------
# Enable / disable
# ---------------------------------------------------------------------------

_enabled = False


def is_enabled() -> bool:
    return _enabled


def enable() -> None:
    """Install the queue-pointer hook and simulator sanitizer factory.

    Idempotent; affects queues touched and simulators *constructed*
    after the call.  With the ``proc`` shard backend each worker
    enables independently (see ``cluster.sharded._build_shard``), so
    fork timing never matters.
    """
    global _enabled
    from ..osiris import queues as _queues
    from ..sim import core as _core
    _QUEUE_OWNERS.clear()
    _queues._POINTER_HOOK = _pointer_hook
    _core.set_sanitizer_factory(SimSanitizer)
    _enabled = True


def disable() -> None:
    global _enabled
    from ..osiris import queues as _queues
    from ..sim import core as _core
    _queues._POINTER_HOOK = None
    _core.set_sanitizer_factory(None)
    _QUEUE_OWNERS.clear()
    _enabled = False


@contextmanager
def enabled():
    """Sanitize for the duration of a ``with`` block (test helper)."""
    was = _enabled
    enable()
    try:
        yield
    finally:
        if not was:
            disable()


__all__ = [
    "SanitizerError", "SimSanitizer", "actor", "maybe_actor",
    "current_actor",
    "check_window_conservation", "enable", "disable", "enabled",
    "is_enabled",
]

"""Trace-driven happens-before verifier for sharded runs.

The sharded engine's byte-identity claim (``--shards N`` == ``--shards
1``) rests on one causality invariant: *every cross-shard effect is
applied through a boundary message emitted at least one lookahead
window before its effect time*.  The conservative window engine only
exchanges mailboxes at horizon barriers, so a message scheduled closer
than the lookahead could arrive after its effect time has already been
simulated on the destination shard -- a happens-before violation that
the determinism tests would surface only as a mysterious byte diff.

``repro cluster --trace-out t.json`` records every boundary send and
delivery (:class:`~repro.cluster.sharded.ShardFabric` keeps the log;
zero-cost when off).  This module replays such a trace and checks:

1. **Emission horizon**: each send satisfies ``when - emit >=
   lookahead`` -- the message was emitted a full window before its
   effect time, so the window engine provably delivers it in time.
2. **Timeliness**: each delivery was handed to the destination
   simulator at ``now <= when`` -- the effect was scheduled, never
   applied late.
3. **Pairing**: sends and deliveries match one-to-one on
   ``(dest shard, when, key, kind)`` -- nothing lost, nothing applied
   without a corresponding emission.
4. **Channel monotonicity**: per boundary channel (the content key
   minus its sequence counter), both emit and effect times are
   non-decreasing in sequence order -- FIFO per channel, the property
   the content-keyed ordering relies on.

Violation messages name both events of an unordered pair.

Usage::

    python -m repro cluster --hosts 8 --shards 2 --trace-out t.json
    python -m repro check --replay t.json
"""

from __future__ import annotations

import json
from pathlib import Path

TRACE_VERSION = 1

# Slack for float round-trips through JSON; simulation times are
# microseconds, so 1e-9 us is far below any real scheduling delta.
_EPS = 1e-9


def build_trace_doc(shard_traces: list, n_shards: int,
                    lookahead_us: float) -> dict:
    """Assemble the per-shard event logs into one trace document.

    ``shard_traces`` is a list (one entry per shard) of event-record
    lists as accumulated by ``ShardFabric``; entries may be ``None``
    when a shard recorded nothing.
    """
    events = []
    for records in shard_traces:
        events.extend(records or ())
    events.sort(key=lambda e: (e["when"], str(e["key"]), e["type"],
                               e["shard"]))
    return {
        "version": TRACE_VERSION,
        "n_shards": n_shards,
        "lookahead_us": lookahead_us,
        "events": events,
    }


def _fmt(event: dict) -> str:
    key = tuple(event["key"])
    if event["type"] == "send":
        return (f"send(shard {event['shard']} -> {event['dest']}, "
                f"kind '{event['kind']}', key {key}, "
                f"emit t={event['emit']:.3f}, "
                f"effect t={event['when']:.3f})")
    return (f"recv(shard {event['shard']}, kind '{event['kind']}', "
            f"key {key}, delivered t={event['at']:.3f}, "
            f"effect t={event['when']:.3f})")


def verify_trace(doc: dict) -> list:
    """All happens-before violations in one trace document."""
    if doc.get("version") != TRACE_VERSION:
        return [f"unknown trace version {doc.get('version')!r} "
                f"(expected {TRACE_VERSION})"]
    lookahead = float(doc["lookahead_us"])
    events = doc.get("events", [])
    violations = []

    sends = [e for e in events if e["type"] == "send"]
    recvs = [e for e in events if e["type"] == "recv"]

    # 1. Emission horizon.
    for e in sends:
        if e["when"] - e["emit"] < lookahead - _EPS:
            violations.append(
                f"emission horizon violated: {_fmt(e)} schedules its "
                f"effect only {e['when'] - e['emit']:.3f} us after "
                f"emission, inside the {lookahead:.3f} us lookahead "
                f"window -- the destination shard may already have "
                f"simulated past t={e['when']:.3f}")

    # 2. Timeliness of deliveries.
    for e in recvs:
        if e["at"] > e["when"] + _EPS:
            violations.append(
                f"late delivery: {_fmt(e)} arrived at "
                f"t={e['at']:.3f}, after its effect time "
                f"t={e['when']:.3f} had already been simulated")

    # 3. Send/recv pairing on (dest, when, key, kind).
    def pair_key(e: dict) -> tuple:
        shard = e["dest"] if e["type"] == "send" else e["shard"]
        return (shard, round(e["when"], 9), tuple(e["key"]),
                e["kind"])

    send_index: dict = {}
    for e in sends:
        send_index.setdefault(pair_key(e), []).append(e)
    for e in recvs:
        bucket = send_index.get(pair_key(e))
        if bucket:
            bucket.pop()
        else:
            violations.append(
                f"effect without a boundary message: {_fmt(e)} has "
                f"no matching send -- cross-shard state reached "
                f"without passing through a boundary channel")
    for _, bucket in sorted(send_index.items(),
                            key=lambda kv: str(kv[0])):
        for e in bucket:
            violations.append(
                f"lost boundary message: {_fmt(e)} was never "
                f"delivered on shard {e['dest']}")

    # 4. Per-channel monotonicity: the content key is chan + (seq,).
    channels: dict = {}
    for e in sends:
        key = tuple(e["key"])
        if len(key) < 2 or not isinstance(key[-1], int):
            continue
        channels.setdefault(key[:-1], []).append(e)
    for chan, chan_events in sorted(channels.items(),
                                    key=lambda kv: str(kv[0])):
        chan_events.sort(key=lambda e: e["key"][-1])
        for prev, cur in zip(chan_events, chan_events[1:]):
            if cur["when"] < prev["when"] - _EPS:
                violations.append(
                    f"happens-before violation on channel {chan}: "
                    f"{_fmt(cur)} takes effect before its "
                    f"predecessor {_fmt(prev)} despite the later "
                    f"sequence number -- this event pair is "
                    f"unordered")
            if cur["emit"] < prev["emit"] - _EPS:
                violations.append(
                    f"emission-order violation on channel {chan}: "
                    f"{_fmt(cur)} was emitted before its "
                    f"predecessor {_fmt(prev)} despite the later "
                    f"sequence number -- this event pair is "
                    f"unordered")
    return violations


def verify_trace_file(path: Path) -> list:
    """Load and verify a trace written by ``--trace-out``."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable trace: {exc}"]
    return verify_trace(doc)


__all__ = ["TRACE_VERSION", "build_trace_doc", "verify_trace",
           "verify_trace_file"]

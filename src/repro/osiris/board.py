"""The OSIRIS board: dual-port layout, channels, demux tables.

The 128 KB dual-port memory is split exactly as section 3.2 describes:
the transmit half is divided into sixteen 4 KB pages, each holding one
transmit queue; the receive half is partitioned likewise, each page
holding a free-buffer queue and a receive queue.  Channel 0 is the
operating system's; the rest can be mapped into application address
spaces as application device channels.

The board performs *early demultiplexing*: a VCI table maps each
incoming cell to a channel (and hence to that channel's buffers and
receive queue) before a single host cycle is spent -- the property
both fbufs and ADCs build on (sections 3.1, 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hw.bus import TurboChannel
from ..hw.cache import DataCache
from ..hw.dma import DmaController, DmaMode
from ..hw.memory import DualPortMemory, PhysicalMemory, TestAndSetRegister
from ..hw.specs import BoardSpec, MachineSpec
from ..sim import Fidelity, SimulationError, Simulator, Store
from .descriptors import Descriptor
from .interrupts import InterruptKind, InterruptLine
from .queues import DescriptorQueue

N_CHANNELS = 16
_TX_PAGE = 4096
_RX_BASE = 64 * 1024
_RECV_OFFSET = 2048


@dataclass
class Channel:
    """One transmit/receive queue-pair page group.

    ``allowed_pages`` is the list of physical page base addresses the
    OS authorized for this channel's DMA (None = unrestricted, used by
    the kernel channel).  ``priority`` orders transmit service; lower
    is served first.
    """

    channel_id: int
    tx_queue: DescriptorQueue
    free_queue: DescriptorQueue
    recv_queue: DescriptorQueue
    priority: int = 0
    vcis: set[int] = field(default_factory=set)
    allowed_pages: Optional[set[int]] = None
    open: bool = False

    # Board-local receive buffer pools filled from the free queue.
    # Descriptors pushed with vci=0 are anonymous (uncached fbufs);
    # descriptors tagged with a VCI form that path's cached-fbuf pool.
    anon_pool: list[Descriptor] = field(default_factory=list)
    path_pools: dict[int, list[Descriptor]] = field(default_factory=dict)

    # Statistics.
    pdus_sent: int = 0
    pdus_received: int = 0
    cells_dropped: int = 0
    cached_buffer_hits: int = 0
    uncached_buffer_uses: int = 0

    def page_authorized(self, addr: int, length: int, page_size: int) -> bool:
        if self.allowed_pages is None:
            return True
        first = addr - (addr % page_size)
        last = (addr + length - 1) - ((addr + length - 1) % page_size)
        page = first
        while page <= last:
            if page not in self.allowed_pages:
                return False
            page += page_size
        return True


class OsirisBoard:
    """The adaptor: dual-port memory, queues, DMA engines, IRQ line.

    The processor loops live in :mod:`repro.osiris.tx_processor` and
    :mod:`repro.osiris.rx_processor`; they are attached by
    :meth:`repro.net.host_node.Host` assembly (or directly in tests).
    """

    def __init__(self, sim: Simulator, machine: MachineSpec,
                 tc: TurboChannel, memory: PhysicalMemory,
                 cache: Optional[DataCache],
                 spec: Optional[BoardSpec] = None,
                 fidelity: Optional[Fidelity] = None,
                 tx_dma_mode: DmaMode = DmaMode.SINGLE_CELL,
                 rx_dma_mode: DmaMode = DmaMode.SINGLE_CELL):
        self.sim = sim
        self.machine = machine
        self.spec = spec or BoardSpec()
        self.fidelity = fidelity or Fidelity.full()
        self.tc = tc
        self.memory = memory
        self.dualport = DualPortMemory(self.spec.dualport_bytes)
        self.irq = InterruptLine(sim, self.spec.interrupt_assert_us)
        self.tx_lock = TestAndSetRegister()
        self.rx_lock = TestAndSetRegister()

        self.tx_dma = DmaController(
            sim, tc, memory, cache, mode=tx_dma_mode,
            page_boundary_stop=True, page_size=machine.page_size,
            fidelity=self.fidelity)
        self.rx_dma = DmaController(
            sim, tc, memory, cache, mode=rx_dma_mode,
            page_boundary_stop=True, page_size=machine.page_size,
            fidelity=self.fidelity)

        self.channels: list[Channel] = []
        entries = self.spec.queue_entries
        for cid in range(N_CHANNELS):
            tx_base = cid * _TX_PAGE
            rx_base = _RX_BASE + cid * _TX_PAGE
            self.channels.append(Channel(
                channel_id=cid,
                tx_queue=DescriptorQueue(
                    self.dualport, tx_base, entries,
                    host_is_writer=True, name=f"ch{cid}.tx"),
                free_queue=DescriptorQueue(
                    self.dualport, rx_base, entries,
                    host_is_writer=True, name=f"ch{cid}.free"),
                recv_queue=DescriptorQueue(
                    self.dualport, rx_base + _RECV_OFFSET, entries,
                    host_is_writer=False, name=f"ch{cid}.recv"),
            ))

        # VCI -> channel id, maintained by the OS at connection setup.
        self.vci_table: dict[int, int] = {}
        # On-board receive cell FIFO (bounded; overflowing cells drop).
        self.rx_fifo: Store = Store(sim, "rx-fifo",
                                    capacity=self.spec.fifo_cells)
        self.rx_fifo_drops = 0
        # Optional instrumentation hook (see repro.sim.tracing).
        self.on_cell_arrival = None
        self.unknown_vci_drops = 0

        # Set by the host to request a transmit-space interrupt when
        # the queue drains to half empty (per channel).
        self.tx_interrupt_wanted: set[int] = set()

    # -- channel management (OS side) ---------------------------------------

    @property
    def kernel_channel(self) -> Channel:
        return self.channels[0]

    def open_channel(self, channel_id: int, priority: int = 0,
                     allowed_pages: Optional[set[int]] = None) -> Channel:
        channel = self.channels[channel_id]
        if channel.open:
            raise SimulationError(f"channel {channel_id} already open")
        channel.open = True
        channel.priority = priority
        channel.allowed_pages = allowed_pages
        return channel

    def close_channel(self, channel_id: int) -> None:
        channel = self.channels[channel_id]
        for vci in list(channel.vcis):
            self.unbind_vci(vci)
        channel.open = False
        channel.anon_pool.clear()
        channel.path_pools.clear()

    def bind_vci(self, vci: int, channel_id: int) -> None:
        """Route incoming cells with ``vci`` to ``channel_id``."""
        if vci in self.vci_table:
            raise SimulationError(f"VCI {vci} already bound")
        self.vci_table[vci] = channel_id
        self.channels[channel_id].vcis.add(vci)

    def unbind_vci(self, vci: int) -> None:
        channel_id = self.vci_table.pop(vci, None)
        if channel_id is not None:
            self.channels[channel_id].vcis.discard(vci)

    # -- cell arrival from the network --------------------------------------

    def deliver_cell(self, cell) -> None:
        """Link-side entry point; drops when the on-board FIFO is full."""
        if self.on_cell_arrival is not None:
            self.on_cell_arrival(cell)
        if not self.rx_fifo.try_put(cell):
            self.rx_fifo_drops += 1

    # -- receive buffer intake (board side) ----------------------------------

    def intake_free_buffers(self, channel: Channel) -> int:
        """Drain the channel's free queue into the board-local pools.

        Descriptors tagged with a VCI feed that path's cached-fbuf
        pool; anonymous descriptors feed the shared pool.  Returns how
        many descriptors were taken.
        """
        taken = 0
        while True:
            desc = channel.free_queue.pop(by_host=False)
            if desc is None:
                break
            if desc.vci:
                channel.path_pools.setdefault(desc.vci, []).append(desc)
            else:
                channel.anon_pool.append(desc)
            taken += 1
        return taken

    def take_receive_buffer(self, channel: Channel,
                            vci: int) -> Optional[Descriptor]:
        """Pick a reassembly buffer for ``vci`` (section 3.1 strategy).

        Prefer the path's preallocated (cached-fbuf) pool; fall back to
        the anonymous (uncached) pool; replenish from the free queue on
        demand; return None when the host has starved the board.
        """
        pool = channel.path_pools.get(vci)
        if not pool:
            self.intake_free_buffers(channel)
            pool = channel.path_pools.get(vci)
        if pool:
            channel.cached_buffer_hits += 1
            return pool.pop(0)
        if not channel.anon_pool:
            self.intake_free_buffers(channel)
        if channel.anon_pool:
            channel.uncached_buffer_uses += 1
            return channel.anon_pool.pop(0)
        return None

    # -- interrupt helpers ----------------------------------------------------

    def raise_receive_irq(self, channel: Channel) -> None:
        self.irq.assert_irq(InterruptKind.RECEIVE, channel.channel_id)

    def raise_tx_space_irq(self, channel: Channel) -> None:
        self.irq.assert_irq(InterruptKind.TRANSMIT_SPACE, channel.channel_id)

    def raise_protection_irq(self, channel: Channel) -> None:
        self.irq.assert_irq(InterruptKind.PROTECTION_VIOLATION,
                            channel.channel_id)


__all__ = ["OsirisBoard", "Channel", "N_CHANNELS"]

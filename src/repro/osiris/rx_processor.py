"""The receive-side i960 loop.

The receive processor reads (VCI, AAL info) for each incoming cell
from the on-board FIFO, decides where in host memory the payload
belongs, and issues a DMA command -- typically one per cell (paper,
section 1).  This module implements that loop with:

* early demultiplexing through the VCI table (sections 3.1/3.2);
* buffer selection from per-path cached-fbuf pools with fallback to
  the uncached pool (section 3.1);
* the double-cell DMA optimisation: the processor looks at two cell
  headers and combines two payloads destined for contiguous addresses
  into one 88-byte transaction (section 2.5.1);
* stop-at-page-boundary bursts (section 2.5.2);
* all three reassembly strategies of section 2.6 (in-order, sequence
  numbers, concurrent per-link AAL5);
* the interrupt discipline of section 2.1.2: one interrupt per
  receive-queue empty->non-empty transition, or the traditional
  one-per-PDU as a baseline.

Skew-tolerant modes require full data fidelity and assume PDUs on one
VCI do not overlap by more than the stripe reorder window (the pure
algorithms in :mod:`repro.atm.sar` handle unrestricted pipelining and
are property-tested separately).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..analysis.sanitize import maybe_actor
from ..atm.aal5 import Aal5Error, BadCrc, Reassembler, SegmentMode, encode_pdu
from ..atm.cell import Cell
from ..atm.sar import (
    ConcurrentReassembler, LossDetected, SequenceNumberReassembler,
    SkewOverflow,
)
from ..hw.dma import DmaMode
from ..hw.specs import AAL_PAYLOAD_BYTES
from ..sim import (
    Delay, Process, SimulationError, Simulator, Store, spawn,
)
from .board import Channel, OsirisBoard
from .descriptors import Descriptor, FLAG_END_OF_PDU, FLAG_ERROR


class InterruptMode(enum.Enum):
    COALESCED = "coalesced"    # the paper's discipline
    PER_PDU = "per-pdu"        # traditional baseline


@dataclass
class _Bucket:
    """One receive buffer holding a slice of the open PDU."""

    desc: Descriptor
    filled: int = 0


class _CountDetector:
    """Timing-only in-order completion: count cells until the framing
    bit, no payload reconstruction."""

    def __init__(self) -> None:
        self.cells = 0

    def push(self, cell: Cell) -> Optional[bool]:
        self.cells += 1
        return cell.eom


@dataclass
class _VciState:
    channel: Channel
    detector: Any
    vci: int = 0
    # In-order placement cursor (bytes into the open PDU's framing).
    offset: int = 0
    cells_in_pdu: int = 0
    base_seq: int = 0
    link_counts: list[int] = field(default_factory=lambda: [0, 0, 0, 0])
    buckets: dict[int, _Bucket] = field(default_factory=dict)
    max_offset_seen: int = 0
    last_dma: Optional[Process] = None
    dropping: bool = False


@dataclass
class _Placement:
    state: _VciState
    cell: Cell
    offset: int           # byte offset within the open PDU
    addr: int             # physical destination address
    bucket_index: int


class RxProcessor:
    """Receive processor: cells in, filled buffers + interrupts out."""

    def __init__(self, sim: Simulator, board: OsirisBoard,
                 reassembly_mode: SegmentMode = SegmentMode.IN_ORDER,
                 interrupt_mode: InterruptMode = InterruptMode.COALESCED,
                 flow_controlled: bool = False,
                 stripe_width: int = 4,
                 combine_wait_us: float = 0.75,
                 loss_resync_cells: Optional[int] = 32):
        if (reassembly_mode is not SegmentMode.IN_ORDER
                and not board.fidelity.copy_data):
            raise SimulationError(
                "skew-tolerant reassembly requires data fidelity")
        self.sim = sim
        self.board = board
        self.reassembly_mode = reassembly_mode
        self.interrupt_mode = interrupt_mode
        self.flow_controlled = flow_controlled
        self.stripe_width = stripe_width
        self.combine_wait_us = combine_wait_us
        # SEQUENCE mode: declare a destroyed cell after this many later
        # arrivals instead of wedging until the skew window overflows
        # (which a short flow may never do).  None restores the wedge.
        self.loss_resync_cells = loss_resync_cells
        self.bufsize = board.spec.recv_buffer_bytes
        self._states: dict[int, _VciState] = {}
        self._dma_tokens = Store(sim, "rx-dma-tokens")
        for _ in range(board.spec.rx_dma_queue_depth):
            self._dma_tokens.try_put(None)
        self.pdus_received = 0
        self.pdus_errored = 0
        # Subset of pdus_errored caught specifically by the AAL5 CRC
        # (corrupted payload bits, as opposed to framing/length damage).
        self.crc_errors = 0
        # Loss recovery in SEQUENCE mode: resyncs after a destroyed
        # cell wedged the resequencer, and stale duplicates dropped
        # after base_seq moved past them.
        self.skew_resyncs = 0
        self.loss_resyncs = 0
        self.cells_stale = 0
        self.cells_received = 0
        self.cells_dropped_no_buffer = 0
        self.combined_dmas = 0
        self.single_dmas = 0
        self.process = spawn(sim, self._run(), "rx-processor")

    # -- main loop ----------------------------------------------------------

    def _run(self) -> Generator[Any, Any, None]:
        spec = self.board.spec
        while True:
            cell = yield self.board.rx_fifo.get()
            yield Delay(spec.rx_cell_us)
            first = yield from self._plan(cell)
            if first is None:
                continue
            second = None
            if self.board.rx_dma.mode is DmaMode.DOUBLE_CELL:
                second = yield from self._try_combine(first)
            yield from self._issue_dma(first, second)
            yield from self._post_dma(first)
            if second is not None:
                yield from self._post_dma(second)

    # -- placement ------------------------------------------------------------

    def _state_for(self, cell: Cell) -> Optional[_VciState]:
        channel_id = self.board.vci_table.get(cell.vci)
        if channel_id is None:
            self.board.unknown_vci_drops += 1
            return None
        channel = self.board.channels[channel_id]
        state = self._states.get(cell.vci)
        if state is None:
            state = _VciState(channel=channel, vci=cell.vci,
                              detector=self._new_detector(cell.vci))
            self._states[cell.vci] = state
        return state

    def _new_detector(self, vci: int) -> Any:
        if self.reassembly_mode is SegmentMode.SEQUENCE:
            return SequenceNumberReassembler(
                vci, loss_resync_cells=self.loss_resync_cells)
        if self.reassembly_mode is SegmentMode.CONCURRENT:
            return ConcurrentReassembler(vci, self.stripe_width)
        if self.board.fidelity.copy_data:
            return Reassembler(vci)
        return _CountDetector()

    def _cell_offset(self, state: _VciState, cell: Cell) -> int:
        mode = self.reassembly_mode
        if mode is SegmentMode.IN_ORDER:
            return state.offset
        if mode is SegmentMode.SEQUENCE:
            if cell.seq is None:
                raise SimulationError("sequence mode needs numbered cells")
            return (cell.seq - state.base_seq) * AAL_PAYLOAD_BYTES
        m = state.link_counts[cell.link_id]
        return (m * self.stripe_width + cell.link_id) * AAL_PAYLOAD_BYTES

    def _plan(self, cell: Cell) -> Generator[Any, Any, Optional[_Placement]]:
        """Demux, compute placement, secure a buffer, update counters."""
        self.cells_received += 1
        state = self._state_for(cell)
        if state is None:
            return None
        if state.dropping:
            # Discard the rest of a PDU that lost its buffer.
            if cell.eom and self.reassembly_mode is SegmentMode.IN_ORDER:
                state.dropping = False
                state.detector = self._new_detector(cell.vci)
                self._reset_pdu(state)
            return None
        offset = self._cell_offset(state, cell)
        if offset < 0:
            # A duplicate from before a loss resync advanced base_seq;
            # its bytes were already abandoned, so drop it quietly.
            self.cells_stale += 1
            return None
        bucket_index = offset // self.bufsize
        bucket = state.buckets.get(bucket_index)
        if bucket is None:
            bucket = yield from self._allocate_bucket(state, cell,
                                                      bucket_index)
            if bucket is None:
                return None
        addr = bucket.desc.addr + (offset % self.bufsize)
        # Advance per-mode cursors.
        if self.reassembly_mode is SegmentMode.IN_ORDER:
            state.offset += AAL_PAYLOAD_BYTES
        elif self.reassembly_mode is SegmentMode.CONCURRENT:
            state.link_counts[cell.link_id] += 1
        state.cells_in_pdu += 1
        state.max_offset_seen = max(state.max_offset_seen,
                                    offset + AAL_PAYLOAD_BYTES)
        bucket.filled += AAL_PAYLOAD_BYTES
        return _Placement(state=state, cell=cell, offset=offset,
                          addr=addr, bucket_index=bucket_index)

    def _allocate_bucket(self, state: _VciState, cell: Cell,
                         bucket_index: int
                         ) -> Generator[Any, Any, Optional[_Bucket]]:
        channel = state.channel
        while True:
            desc = self.board.take_receive_buffer(channel, cell.vci)
            if desc is not None:
                if desc.length != self.bufsize:
                    raise SimulationError(
                        f"receive buffer of {desc.length} bytes; the "
                        f"board expects uniform {self.bufsize}")
                bucket = _Bucket(desc=desc)
                state.buckets[bucket_index] = bucket
                return bucket
            if not self.flow_controlled:
                self.cells_dropped_no_buffer += 1
                channel.cells_dropped += 1
                if self.reassembly_mode is SegmentMode.IN_ORDER:
                    state.dropping = not cell.eom
                    state.detector = self._new_detector(cell.vci)
                    if cell.eom:
                        self._reset_pdu(state)
                    else:
                        self._discard_open_buffers(state)
                return None
            # Flow-controlled source: wait for the host to feed buffers.
            yield channel.free_queue.became_nonempty

    def _discard_open_buffers(self, state: _VciState) -> None:
        for _, bucket in sorted(state.buckets.items()):
            state.channel.anon_pool.append(bucket.desc)
        state.buckets.clear()

    # -- double-cell combining ---------------------------------------------------

    def _try_combine(self, first: _Placement
                     ) -> Generator[Any, Any, Optional[_Placement]]:
        """Peek the next FIFO cell; combine when its payload lands
        immediately after the first (section 2.5.1)."""
        if first.cell.eom:
            return None
        items = self.board.rx_fifo.items
        if not items:
            # The successor may be one cell-time behind on the wire;
            # waiting for its header costs less than a separate DMA's
            # overhead, so the firmware holds briefly.
            yield Delay(self.combine_wait_us)
            items = self.board.rx_fifo.items
            if not items:
                return None
        nxt: Cell = items[0]
        if nxt.vci != first.cell.vci:
            return None
        if not self._is_contiguous(first, nxt):
            return None
        # Both payloads must fit in one burst in the same buffer/page.
        if (first.offset % self.bufsize) + 2 * AAL_PAYLOAD_BYTES > \
                self.bufsize:
            return None
        if self.board.rx_dma.max_burst(first.addr, 2 * AAL_PAYLOAD_BYTES) \
                < 2 * AAL_PAYLOAD_BYTES:
            return None
        ok, cell = self.board.rx_fifo.try_get()
        assert ok and cell is nxt
        yield Delay(self.board.spec.rx_cell_us)
        second = yield from self._plan(cell)
        return second

    def _is_contiguous(self, first: _Placement, nxt: Cell) -> bool:
        mode = self.reassembly_mode
        if mode is SegmentMode.IN_ORDER:
            return True  # in-order cells on one VCI are consecutive
        if mode is SegmentMode.SEQUENCE:
            return (nxt.seq is not None and first.cell.seq is not None
                    and nxt.seq == first.cell.seq + 1)
        state = first.state
        expected = self._cell_offset(state, nxt)
        return expected == first.offset + AAL_PAYLOAD_BYTES

    # -- DMA ------------------------------------------------------------------

    def _issue_dma(self, first: _Placement,
                   second: Optional[_Placement]
                   ) -> Generator[Any, Any, None]:
        if second is not None:
            data = None
            if self.board.fidelity.copy_data:
                data = first.cell.payload + second.cell.payload
            self.combined_dmas += 1
            proc = yield from self._spawn_dma(first.addr, data,
                                              2 * AAL_PAYLOAD_BYTES)
            first.state.last_dma = proc
        else:
            data = (first.cell.payload
                    if self.board.fidelity.copy_data else None)
            self.single_dmas += 1
            proc = yield from self._spawn_dma(first.addr, data,
                                              AAL_PAYLOAD_BYTES)
            first.state.last_dma = proc

    def _spawn_dma(self, addr: int, data: Optional[bytes], nbytes: int
                   ) -> Generator[Any, Any, Process]:
        """Issue a DMA command; blocks only when the command queue is
        full (the engine runs concurrently with cell processing)."""
        yield self._dma_tokens.get()

        def dma_task() -> Generator[Any, Any, None]:
            # The controller stops at page boundaries and waits for a
            # continuation address (section 2.5.2), so a payload that
            # straddles a boundary costs two transactions.
            pos = addr
            left = nbytes
            offset = 0
            while left > 0:
                burst = self.board.rx_dma.max_burst(pos, left)
                chunk = (data[offset:offset + burst]
                         if data is not None else None)
                yield from self.board.rx_dma.write_host(
                    pos, data=chunk, nbytes=burst)
                pos += burst
                offset += burst
                left -= burst
            self._dma_tokens.try_put(None)

        return spawn(self.sim, dma_task(), "rx-dma")

    # -- completion ----------------------------------------------------------------

    def _post_dma(self, placement: _Placement
                  ) -> Generator[Any, Any, None]:
        state = placement.state
        cell = placement.cell
        try:
            result = state.detector.push(
                cell, cell.link_id) \
                if self.reassembly_mode is SegmentMode.CONCURRENT \
                else state.detector.push(cell)
        except Aal5Error as exc:
            self.pdus_errored += 1
            if isinstance(exc, BadCrc):
                self.crc_errors += 1
            if isinstance(exc, SkewOverflow):
                # A destroyed cell wedged the sequence stream; abandon
                # everything buffered and resume just past the cell
                # that overflowed (see SequenceNumberReassembler.resync).
                self.skew_resyncs += 1
                state.detector.resync(cell.seq + 1)
            elif isinstance(exc, LossDetected):
                # The gap outlived the loss bound: skip the damaged
                # PDU only; later PDUs stay buffered and drain as
                # their own EOMs complete.
                self.loss_resyncs += 1
                state.detector.gap_resync()
            yield from self._deliver_pdu(state, error=True)
            return
        completed = self._completed(result)
        if completed:
            yield from self._deliver_pdu(state, error=False)
        elif self.reassembly_mode is SegmentMode.IN_ORDER:
            # 'When the buffer is filled ... the processor adds the
            # buffer to the receive queue' (section 2.1.1): hand over
            # buffers the PDU has grown past without waiting for the
            # end of the PDU.
            yield from self._deliver_filled_buckets(
                state, placement.bucket_index)

    def _completed(self, result: Any) -> bool:
        if result is None or result is False:
            return False
        if result is True:
            return True
        if isinstance(result, bytes):
            return True
        if isinstance(result, list):
            return len(result) > 0
        return False

    def _deliver_filled_buckets(self, state: _VciState,
                                current_index: int
                                ) -> Generator[Any, Any, None]:
        ready = [i for i in sorted(state.buckets) if i < current_index]
        if not ready:
            return
        if state.last_dma is not None and not state.last_dma.done:
            yield state.last_dma
        for index in ready:
            bucket = state.buckets.pop(index)
            desc = Descriptor(addr=bucket.desc.addr, length=self.bufsize,
                              flags=0, vci=state.vci)
            yield from self._enqueue_received(state.channel, desc)

    def _deliver_pdu(self, state: _VciState,
                     error: bool) -> Generator[Any, Any, None]:
        """PDU complete: wait for its last DMA, enqueue buffers, maybe
        interrupt, reset per-PDU state."""
        spec = self.board.spec
        yield Delay(spec.rx_pdu_overhead_us)
        if state.last_dma is not None and not state.last_dma.done:
            yield state.last_dma
        channel = state.channel
        total = state.max_offset_seen
        indices = sorted(state.buckets)
        for position, index in enumerate(indices):
            bucket = state.buckets[index]
            start = index * self.bufsize
            length = min(self.bufsize, total - start)
            flags = 0
            if position == len(indices) - 1:
                flags |= FLAG_END_OF_PDU
            if error:
                flags |= FLAG_ERROR
            desc = Descriptor(addr=bucket.desc.addr, length=length,
                              flags=flags, vci=state.vci)
            yield from self._enqueue_received(channel, desc)
        channel.pdus_received += 1
        self.pdus_received += 1
        self._reset_pdu(state)

    def _enqueue_received(self, channel: Channel,
                          desc: Descriptor) -> Generator[Any, Any, None]:
        queue = channel.recv_queue
        while True:
            # The adaptor-side pointer moves under the rx-processor
            # actor so the SRSW sanitizer can name the second writer
            # if one ever appears (paper section 2.1.1).
            with maybe_actor("rx-processor"):
                was_empty = queue.is_empty(by_host=False)
                pushed = queue.push(desc, by_host=False)
            if pushed:
                if self.interrupt_mode is InterruptMode.PER_PDU:
                    if desc.end_of_pdu:
                        self.board.raise_receive_irq(channel)
                elif was_empty:
                    self.board.raise_receive_irq(channel)
                return
            if self.flow_controlled:
                yield queue.became_nonfull
            else:
                # Host overrun: drop and recycle the buffer on-board.
                channel.anon_pool.append(
                    Descriptor(addr=desc.addr, length=self.bufsize))
                channel.cells_dropped += 1
                return

    def _reset_pdu(self, state: _VciState) -> None:
        state.offset = 0
        state.cells_in_pdu = 0
        state.max_offset_seen = 0
        state.buckets.clear()
        state.link_counts = [0] * self.stripe_width
        if self.reassembly_mode is SegmentMode.SEQUENCE:
            reasm: SequenceNumberReassembler = state.detector
            state.base_seq = reasm.next_seq


class FramedPduSource:
    """Fictitious-PDU generator fed with explicit PDU contents.

    Used by the figure 2/3 harness: the PDUs are the IP fragments a
    sending host's stack would have produced (UDP/IP headers included),
    so the receiving host runs its full protocol path.  The list is
    replayed ``repeat`` times at link cell pace.
    """

    def __init__(self, sim: Simulator, board: OsirisBoard, vci: int,
                 pdus: list[bytes], repeat: int,
                 cell_pace_us: float = 0.682):
        self.sim = sim
        self.board = board
        self.vci = vci
        self.repeat = repeat
        self.cell_pace_us = cell_pace_us
        self.rounds_generated = 0
        if board.fidelity.copy_data:
            self._framed = [encode_pdu(p) for p in pdus]
        else:
            from ..atm.aal5 import framed_size
            self._framed = [b"\x00" * framed_size(len(p)) for p in pdus]
        self.process = spawn(sim, self._run(), "framed-source")

    def _run(self) -> Generator[Any, Any, None]:
        copy = self.board.fidelity.copy_data
        for _ in range(self.repeat):
            for framed in self._framed:
                n = len(framed) // AAL_PAYLOAD_BYTES
                for i in range(n):
                    payload = (framed[i * AAL_PAYLOAD_BYTES:
                                      (i + 1) * AAL_PAYLOAD_BYTES]
                               if copy else b"")
                    cell = Cell(vci=self.vci, payload=payload,
                                eom=(i == n - 1), tx_index=i)
                    yield Delay(self.cell_pace_us)
                    yield self.board.rx_fifo.put(cell)
            self.rounds_generated += 1


class FictitiousPduSource:
    """The receive-side isolation workload of section 4.

    'The receiver processor of the OSIRIS board was programmed to
    generate fictitious PDUs as fast as the receiving host could
    absorb them.'  Cells are synthesized at the striped link's
    aggregate cell rate (0.682 us per cell -> 516 Mbps of payload) and
    pushed through the normal receive FIFO; the bounded FIFO provides
    the absorb-rate flow control.
    """

    def __init__(self, sim: Simulator, board: OsirisBoard, vci: int,
                 pdu_bytes: int, pdu_count: int,
                 cell_pace_us: float = 0.682):
        self.sim = sim
        self.board = board
        self.vci = vci
        self.pdu_bytes = pdu_bytes
        self.pdu_count = pdu_count
        self.cell_pace_us = cell_pace_us
        self.pdus_generated = 0
        if board.fidelity.copy_data:
            pattern = (b"OSIRIS!" * (pdu_bytes // 7 + 1))[:pdu_bytes]
            self._framed = encode_pdu(pattern)
        else:
            from ..atm.aal5 import framed_size
            self._framed = None
            self._framed_len = framed_size(pdu_bytes)
        self.process = spawn(sim, self._run(), "fictitious-source")

    def _cells(self):
        if self._framed is not None:
            n = len(self._framed) // AAL_PAYLOAD_BYTES
        else:
            n = self._framed_len // AAL_PAYLOAD_BYTES
        for i in range(n):
            if self._framed is not None:
                payload = self._framed[i * AAL_PAYLOAD_BYTES:
                                       (i + 1) * AAL_PAYLOAD_BYTES]
            else:
                payload = b""
            yield Cell(vci=self.vci, payload=payload, eom=(i == n - 1),
                       tx_index=i)

    def _run(self) -> Generator[Any, Any, None]:
        for _ in range(self.pdu_count):
            for cell in self._cells():
                yield Delay(self.cell_pace_us)
                yield self.board.rx_fifo.put(cell)
            self.pdus_generated += 1


__all__ = ["RxProcessor", "InterruptMode", "FictitiousPduSource",
           "FramedPduSource"]

"""The transmit-side i960 loop.

Section 2.1.1's algorithm, verbatim:

* wait until the transmit queue is not empty
* read the descriptor at ``xmitQueue[tail]``
* transmit the buffer
* increment the tail pointer

extended with everything sections 2.1.2, 2.5 and 3.2 layer on top:
PDUs spanning several descriptors, the transmit-space interrupt (only
when the host found the queue full), DMA-length discipline including
the stop-at-page-boundary continuation, per-channel priorities, and
the ADC page-authorization check.

Two multiplexing disciplines (section 2.5.1):

* **sequential** (default) -- one PDU at a time, maximizing throughput
  to a single application;
* **interleaved** -- one cell from each active PDU in turn ('the host
  could queue a number of packets and the microprocessor could
  transmit one cell from each in turn'), the fine-grained multiplexing
  that favors latency and switch behaviour.

Data fidelity: the AAL5 framing (padding, CRC trailer) is computed by
the cell generator hardware at no modelled cost; the timed part is the
per-cell command issue plus every DMA transaction on the bus.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..analysis.sanitize import maybe_actor
from ..atm.aal5 import SegmentMode, cell_count, encode_pdu
from ..atm.cell import Cell
from ..atm.striping import StripedLink
from ..hw.specs import AAL_PAYLOAD_BYTES
from ..sim import Delay, Signal, Simulator, spawn
from .board import Channel, OsirisBoard
from .descriptors import Descriptor

DeliverFn = Callable[[Cell], None]


class _PduTransmission:
    """Cursor state for one PDU being segmented onto the wire.

    ``step()`` advances by exactly one cell (including any DMA bursts
    needed to gather its payload), so the processor can interleave
    several of these at cell granularity.
    """

    def __init__(self, txp: "TxProcessor", channel: Channel,
                 descs: list[Descriptor]):
        self.txp = txp
        self.channel = channel
        self.descs = descs
        self.vci = descs[0].vci
        self.total_len = sum(d.length for d in descs)
        self.n_cells = cell_count(self.total_len)
        self.framed: Optional[bytes] = None
        if txp.board.fidelity.copy_data:
            data = b"".join(
                self._read_buffer(d.addr, d.length) for d in descs)
            self.framed = encode_pdu(data)
        self.seq_base = txp._seq_counters.get(self.vci, 0)
        if txp.segment_mode is SegmentMode.SEQUENCE:
            txp._seq_counters[self.vci] = self.seq_base + self.n_cells
        self.emitted = 0
        self._acc = 0
        self._desc_index = 0
        self._buf_offset = 0
        self._data_left = self.total_len

    def _read_buffer(self, addr: int, length: int) -> bytes:
        """Descriptor contents, translating I/O-virtual addresses
        through the scatter/gather map page by page."""
        memory = self.txp.board.memory
        sgmap = self.txp.board.tx_dma.sgmap
        if sgmap is None or not sgmap.covers(addr):
            return memory.read(addr, length)
        out = bytearray()
        pos = addr
        left = length
        page = sgmap.page_size
        while left > 0:
            take = min(page - (pos % page), left)
            out += memory.read(sgmap.translate(pos), take)
            pos += take
            left -= take
        return bytes(out)

    @property
    def done(self) -> bool:
        return self.emitted >= self.n_cells

    def consume_remaining(self) -> None:
        """Pop any descriptors not consumed by the data walk (empty
        buffers of a degenerate PDU)."""
        while self._desc_index < len(self.descs):
            with maybe_actor("tx-processor"):
                self.channel.tx_queue.pop(by_host=False)
            self.txp._maybe_tx_space_irq(self.channel)
            self._desc_index += 1

    def step(self) -> Generator[Any, Any, None]:
        """Gather (via DMA) and emit the next cell."""
        dma = self.txp.board.tx_dma
        cap = dma.mode.max_bytes or 1 << 30
        # DMA until one whole cell's payload has been gathered (two
        # bursts at buffer/page edges -- the section 2.5.2 two-address
        # continuation).  In double-cell mode one burst may gather two
        # cells; emit both.
        gathered = self._acc // AAL_PAYLOAD_BYTES
        while self._data_left > 0 and gathered == 0:
            desc = self.descs[self._desc_index]
            addr = desc.addr + self._buf_offset
            buf_left = desc.length - self._buf_offset
            room = cap - self._acc
            want = min(self._data_left, buf_left, room)
            burst = dma.max_burst(addr, want)
            yield from dma.read_host(addr, burst)
            self._buf_offset += burst
            self._data_left -= burst
            self._acc += burst
            if self._buf_offset == desc.length:
                # Buffer fully read: NOW advance the tail pointer --
                # the host's transmission-complete signal.
                with maybe_actor("tx-processor"):
                    popped = self.channel.tx_queue.pop(by_host=False)
                assert popped == desc
                self.txp._maybe_tx_space_irq(self.channel)
                self._desc_index += 1
                self._buf_offset = 0
            gathered = self._acc // AAL_PAYLOAD_BYTES
            if self._data_left == 0 and self._acc % AAL_PAYLOAD_BYTES:
                gathered += 1  # final partial cell (pad+trailer follow)
        if gathered > 0:
            emit = max(gathered, 1)
            self._acc -= min(self._acc, gathered * AAL_PAYLOAD_BYTES)
            for _ in range(emit):
                if self.emitted < self.n_cells:
                    yield from self._emit_cell()
            return
        # Pad/trailer-only cells carry no host data.
        yield from self._emit_cell()

    def _emit_cell(self) -> Generator[Any, Any, None]:
        txp = self.txp
        index = self.emitted
        if txp.credit_gate is not None:
            # Fabric backpressure: hold the cell until its VCI may
            # emit (credit available / EFCI cooldown elapsed).
            yield from txp.credit_gate.acquire(self.vci)
        yield Delay(txp.board.spec.tx_cell_us)
        if self.framed is not None:
            payload = self.framed[index * AAL_PAYLOAD_BYTES:
                                  (index + 1) * AAL_PAYLOAD_BYTES]
        else:
            payload = b""
        if txp.segment_mode is SegmentMode.CONCURRENT:
            stripe = txp.link.n_links if txp.link else 4
            eom = index >= self.n_cells - min(stripe, self.n_cells)
        else:
            eom = index == self.n_cells - 1
        cell = Cell(
            vci=self.vci,
            payload=payload,
            eom=eom,
            seq=(self.seq_base + index
                 if txp.segment_mode is SegmentMode.SEQUENCE else None),
            atm_last=(txp.segment_mode is SegmentMode.CONCURRENT
                      and index == self.n_cells - 1),
            tx_index=index,
        )
        self.emitted += 1
        txp.cells_sent += 1
        if txp.link is not None:
            txp.link.submit(cell)
        else:
            assert txp.deliver is not None
            txp.deliver(cell)


class TxProcessor:
    """Transmit processor: drains tx queues into cells on the link."""

    def __init__(self, sim: Simulator, board: OsirisBoard,
                 link: Optional[StripedLink] = None,
                 deliver: Optional[DeliverFn] = None,
                 segment_mode: SegmentMode = SegmentMode.IN_ORDER,
                 interleave: bool = False):
        if link is None and deliver is None:
            raise ValueError("TxProcessor needs a link or a deliver callback")
        self.sim = sim
        self.board = board
        self.link = link
        self.deliver = deliver
        self.segment_mode = segment_mode
        self.interleave = interleave
        self.work = Signal("tx.work")
        # Optional per-VCI emission gate (duck-typed: anything with an
        # ``acquire(vci)`` subroutine, e.g. repro.cluster.backpressure.
        # CreditGate).  The fabric installs one when flow control is on.
        self.credit_gate = None
        self.pdus_sent = 0
        self.cells_sent = 0
        self.violations = 0
        self._seq_counters: dict[int, int] = {}
        self.seq_migrations = 0
        self._last_served = 0
        self._active: dict[int, _PduTransmission] = {}
        for channel in board.channels:
            channel.tx_queue.became_nonempty.subscribe(
                lambda _v: self.work.fire())
        self.process = spawn(sim, self._run(), "tx-processor")

    def migrate_seq(self, old_vci: int, new_vci: int) -> None:
        """Carry a flow's cell sequence numbering to a new VCI (path
        failover).  The receiver's reassembler keys its state by the
        *delivered* VCI, which a reroute never changes, so numbering
        must stay monotone across the retarget -- otherwise every
        post-failover cell reads as a stale duplicate and is dropped.
        A PDU already mid-transmission keeps the old VCI (and the old,
        possibly dead, path); the gap it leaves is ordinary loss to
        the AAL5 layer."""
        self._seq_counters[new_vci] = self._seq_counters.get(old_vci, 0)
        self.seq_migrations += 1

    # -- scheduling -----------------------------------------------------------

    def _ready_channels(self) -> list[Channel]:
        """Channels with queued work or an in-flight transmission."""
        ready = [
            ch for ch in self.board.channels
            if (ch.channel_id == 0 or ch.open)
            and (ch.channel_id in self._active
                 or not ch.tx_queue.is_empty(by_host=False))
        ]
        if not ready:
            return []
        best = min(ch.priority for ch in ready)
        ring = [ch for ch in ready if ch.priority == best]
        n = len(self.board.channels)
        ring.sort(key=lambda ch: (ch.channel_id - self._last_served - 1) % n)
        return ring

    def _run(self) -> Generator[Any, Any, None]:
        while True:
            ring = self._ready_channels()
            if not ring:
                yield self.work
                continue
            if self.interleave:
                yield from self._step_interleaved(ring)
            else:
                channel = ring[0]
                self._last_served = channel.channel_id
                yield from self._transmit_whole_pdu(channel)

    # -- sequential discipline ---------------------------------------------------

    def _transmit_whole_pdu(self, channel: Channel
                            ) -> Generator[Any, Any, None]:
        tx = yield from self._start_transmission(channel)
        if tx is None:
            return
        while not tx.done:
            yield from tx.step()
        self._finish_transmission(tx)

    # -- interleaved discipline -----------------------------------------------------

    def _step_interleaved(self, ring: list[Channel]
                          ) -> Generator[Any, Any, None]:
        """One cell from each ready channel's active PDU, in turn."""
        for channel in ring:
            cid = channel.channel_id
            tx = self._active.get(cid)
            if tx is None:
                tx = yield from self._start_transmission(channel)
                if tx is None:
                    continue
                self._active[cid] = tx
            self._last_served = cid
            yield from tx.step()
            if tx.done:
                del self._active[cid]
                self._finish_transmission(tx)

    # -- shared ----------------------------------------------------------------------

    def _start_transmission(self, channel: Channel
                            ) -> Generator[Any, Any,
                                           Optional[_PduTransmission]]:
        descs = yield from self._gather_pdu(channel)
        for desc in descs:
            if not channel.page_authorized(desc.addr, desc.length,
                                           self.board.machine.page_size):
                self.violations += 1
                self.board.raise_protection_irq(channel)
                for _ in descs:  # discard the whole PDU
                    with maybe_actor("tx-processor"):
                        channel.tx_queue.pop(by_host=False)
                    self._maybe_tx_space_irq(channel)
                return None
        yield Delay(self.board.spec.tx_pdu_overhead_us)
        if self.link is not None and not self.interleave:
            self.link.start_pdu()
        return _PduTransmission(self, channel, descs)

    def _finish_transmission(self, tx: _PduTransmission) -> None:
        tx.consume_remaining()
        tx.channel.pdus_sent += 1
        self.pdus_sent += 1

    def _gather_pdu(self, channel: Channel
                    ) -> Generator[Any, Any, list[Descriptor]]:
        """Peek descriptors up to the END_OF_PDU flag.

        The tail pointer is NOT advanced here: it only moves as each
        buffer finishes transmission, because the host reads its
        advance as the completion signal (section 2.1.2).
        """
        descs: list[Descriptor] = []
        while True:
            desc = channel.tx_queue.peek_at(len(descs), by_host=False)
            if desc is None:
                # Host is still queueing the PDU's remaining buffers.
                yield channel.tx_queue.pushed
                continue
            descs.append(desc)
            if desc.end_of_pdu:
                return descs

    def _maybe_tx_space_irq(self, channel: Channel) -> None:
        """Assert the transmit-space interrupt when the host asked for
        one and the queue has drained to half empty (section 2.1.2)."""
        if channel.channel_id not in self.board.tx_interrupt_wanted:
            return
        occupancy = channel.tx_queue.occupancy(by_host=False)
        if occupancy <= channel.tx_queue.capacity // 2:
            self.board.tx_interrupt_wanted.discard(channel.channel_id)
            self.board.raise_tx_space_irq(channel)


__all__ = ["TxProcessor"]

"""Buffer descriptors exchanged through the dual-port memory.

Each queue element describes a single *physical buffer* in main memory
(paper, section 2.1.1): its physical address and length.  We add the
flag and VCI words the OSIRIS firmware keeps alongside:

* ``END_OF_PDU`` -- this buffer completes a PDU (a PDU may span
  several descriptors in either direction).
* ``ERROR`` -- receive side: reassembly detected a framing error.

A descriptor occupies four 32-bit words in the dual-port memory
(address, length, flags, vci), so every read or write of one costs a
known number of word transactions across the TURBOchannel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import SimulationError

WORDS_PER_DESCRIPTOR = 4

FLAG_END_OF_PDU = 0x1
FLAG_ERROR = 0x2


@dataclass(frozen=True)
class Descriptor:
    """One physical buffer: the unit passed between host and board."""

    addr: int
    length: int
    flags: int = 0
    vci: int = 0

    def __post_init__(self) -> None:
        if self.addr < 0 or self.addr > 0xFFFFFFFF:
            raise SimulationError(f"descriptor address {self.addr:#x}")
        if self.length < 0 or self.length > 0xFFFFFFFF:
            raise SimulationError(f"descriptor length {self.length}")
        if self.vci < 0 or self.vci > 0xFFFF:
            raise SimulationError(f"descriptor vci {self.vci}")

    @property
    def end_of_pdu(self) -> bool:
        return bool(self.flags & FLAG_END_OF_PDU)

    @property
    def error(self) -> bool:
        return bool(self.flags & FLAG_ERROR)

    def to_words(self) -> tuple[int, int, int, int]:
        return (self.addr, self.length, self.flags, self.vci)

    @staticmethod
    def from_words(words: tuple[int, int, int, int]) -> "Descriptor":
        addr, length, flags, vci = words
        return Descriptor(addr=addr, length=length, flags=flags, vci=vci)

    def __repr__(self) -> str:
        marks = "E" if self.end_of_pdu else ""
        marks += "!" if self.error else ""
        return (f"Desc(addr={self.addr:#x}, len={self.length}, "
                f"vci={self.vci}{', ' + marks if marks else ''})")


__all__ = [
    "Descriptor", "WORDS_PER_DESCRIPTOR", "FLAG_END_OF_PDU", "FLAG_ERROR",
]

"""The paper's lock-free one-reader/one-writer descriptor queues.

Section 2.1.1 verbatim: the queue is an array of buffer descriptors
with a head pointer and a tail pointer in dual-port memory; the head
is only modified by the writer, the tail only by the reader, and the
status is derived by comparing them::

    head == tail                 -> queue is empty
    (head + 1) mod size == tail  -> queue is full

Only 32-bit load/store atomicity is assumed -- exactly what the
dual-port memory guarantees.  The queue state itself lives *in* the
simulated :class:`~repro.hw.memory.DualPortMemory`, so every operation
performs real word accesses whose counts the driver charges against
the TURBOchannel.

Simulation-only conveniences: ``became_nonempty``/``became_nonfull``
signals let processes sleep instead of busy-polling; they carry no
timing and model the real board's tight poll loop (the board polls its
own side of the dual-port memory for free).
"""

from __future__ import annotations

from typing import Optional

from ..hw.memory import DualPortMemory
from ..sim import Signal, SimulationError
from .descriptors import Descriptor, WORDS_PER_DESCRIPTOR

_HEAD_OFF = 0
_TAIL_OFF = 4
_ENTRIES_OFF = 8

# Installed by repro.analysis.sanitize: called as
# hook(queue, "head"|"tail", by_host) after every pointer store, so
# the SRSW ownership discipline can be asserted without the queue
# paying any cost when sanitizing is off.
_POINTER_HOOK = None


def queue_region_bytes(entries: int) -> int:
    """Dual-port bytes occupied by a queue with ``entries`` slots."""
    return _ENTRIES_OFF + entries * WORDS_PER_DESCRIPTOR * 4


class AccessCounter:
    """Tallies word accesses so callers can charge bus time."""

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0

    def reset(self) -> tuple[int, int]:
        reads, writes = self.reads, self.writes
        self.reads = 0
        self.writes = 0
        return reads, writes


class DescriptorQueue:
    """Lock-free 1R1W FIFO over a region of dual-port memory.

    One side (host or board) is the writer, the other the reader;
    ``host_is_writer`` fixes which.  The *capacity* is ``size - 1``
    because of the full test above.

    Ownership contract (paper section 2.1.1), checked statically by
    ``repro check`` and dynamically by ``--sanitize``: exactly one
    actor advances each pointer.

    SRSW: head via push
    SRSW: tail via pop
    """

    def __init__(self, dualport: DualPortMemory, base: int, size: int,
                 host_is_writer: bool, name: str = "queue"):
        if size < 2:
            raise SimulationError("queue size must be at least 2")
        needed = queue_region_bytes(size)
        if base % 4 != 0 or base + needed > dualport.size_bytes:
            raise SimulationError(
                f"queue region [{base:#x}, +{needed}) does not fit")
        self.dp = dualport
        self.base = base
        self.size = size
        self.host_is_writer = host_is_writer
        self.name = name
        self.host_access = AccessCounter()
        self.board_access = AccessCounter()
        self.became_nonempty = Signal(f"{name}.nonempty")
        self.became_nonfull = Signal(f"{name}.nonfull")
        self.pushed = Signal(f"{name}.pushed")  # fires on every push
        self.pushes = 0
        self.pops = 0
        self.dp.write_word(base + _HEAD_OFF, 0, by_host=host_is_writer)
        self.dp.write_word(base + _TAIL_OFF, 0, by_host=not host_is_writer)

    @property
    def capacity(self) -> int:
        return self.size - 1

    # -- raw word access with accounting ------------------------------------

    def _counter(self, by_host: bool) -> AccessCounter:
        return self.host_access if by_host else self.board_access

    def _read(self, offset: int, by_host: bool) -> int:
        self._counter(by_host).reads += 1
        return self.dp.read_word(self.base + offset, by_host)

    def _write(self, offset: int, value: int, by_host: bool) -> None:
        self._counter(by_host).writes += 1
        self.dp.write_word(self.base + offset, value, by_host)

    # -- status (either side may ask; each access is a word load) -----------

    def head(self, by_host: bool) -> int:
        return self._read(_HEAD_OFF, by_host)

    def tail(self, by_host: bool) -> int:
        return self._read(_TAIL_OFF, by_host)

    def is_empty(self, by_host: bool) -> bool:
        return self.head(by_host) == self.tail(by_host)

    def is_full(self, by_host: bool) -> bool:
        return (self.head(by_host) + 1) % self.size == self.tail(by_host)

    def occupancy(self, by_host: bool) -> int:
        head = self.head(by_host)
        tail = self.tail(by_host)
        return (head - tail) % self.size

    # -- writer side ---------------------------------------------------------

    def push(self, desc: Descriptor,
             by_host: Optional[bool] = None) -> bool:
        """Queue a descriptor; returns False when full.

        Performs: one tail load (full check), one head load, four entry
        stores, one head store -- all visible in the access counters.
        Fires ``became_nonempty`` on the empty -> non-empty transition
        (the condition the receive interrupt discipline keys on).
        """
        writer = self.host_is_writer if by_host is None else by_host
        if writer != self.host_is_writer:
            raise SimulationError(f"{self.name}: wrong side pushed")
        head = self._read(_HEAD_OFF, writer)
        tail = self._read(_TAIL_OFF, writer)
        if (head + 1) % self.size == tail:
            return False
        was_empty = head == tail
        entry = _ENTRIES_OFF + head * WORDS_PER_DESCRIPTOR * 4
        for i, word in enumerate(desc.to_words()):
            self._write(entry + i * 4, word, writer)
        self._write(_HEAD_OFF, (head + 1) % self.size, writer)
        if _POINTER_HOOK is not None:
            _POINTER_HOOK(self, "head", writer)
        self.pushes += 1
        if was_empty:
            self.became_nonempty.fire(self)
        self.pushed.fire(self)
        return True

    # -- reader side ---------------------------------------------------------

    def pop(self, by_host: Optional[bool] = None) -> Optional[Descriptor]:
        """Dequeue a descriptor; returns None when empty.

        Fires ``became_nonfull`` on the full -> non-full transition
        (the condition the transmit-full interrupt keys on).
        """
        reader = (not self.host_is_writer) if by_host is None else by_host
        if reader == self.host_is_writer:
            raise SimulationError(f"{self.name}: wrong side popped")
        head = self._read(_HEAD_OFF, reader)
        tail = self._read(_TAIL_OFF, reader)
        if head == tail:
            return None
        was_full = (head + 1) % self.size == tail
        entry = _ENTRIES_OFF + tail * WORDS_PER_DESCRIPTOR * 4
        words = tuple(
            self._read(entry + i * 4, reader)
            for i in range(WORDS_PER_DESCRIPTOR))
        self._write(_TAIL_OFF, (tail + 1) % self.size, reader)
        if _POINTER_HOOK is not None:
            _POINTER_HOOK(self, "tail", reader)
        self.pops += 1
        if was_full:
            self.became_nonfull.fire(self)
        return Descriptor.from_words(words)  # type: ignore[arg-type]

    def peek(self, by_host: Optional[bool] = None) -> Optional[Descriptor]:
        """Read the next descriptor without consuming it."""
        return self.peek_at(0, by_host)

    def peek_at(self, index: int,
                by_host: Optional[bool] = None) -> Optional[Descriptor]:
        """Read the ``index``-th queued descriptor without consuming.

        Lets the reader examine a whole multi-descriptor PDU before
        advancing the tail pointer -- the tail advance is the writer's
        transmission-complete signal (section 2.1.2), so it must not
        move until the buffer has actually been transmitted.
        """
        reader = (not self.host_is_writer) if by_host is None else by_host
        head = self._read(_HEAD_OFF, reader)
        tail = self._read(_TAIL_OFF, reader)
        if index >= (head - tail) % self.size:
            return None
        slot = (tail + index) % self.size
        entry = _ENTRIES_OFF + slot * WORDS_PER_DESCRIPTOR * 4
        words = tuple(
            self._read(entry + i * 4, reader)
            for i in range(WORDS_PER_DESCRIPTOR))
        return Descriptor.from_words(words)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return (f"DescriptorQueue({self.name!r}, size={self.size}, "
                f"writer={'host' if self.host_is_writer else 'board'})")


__all__ = ["DescriptorQueue", "AccessCounter", "queue_region_bytes"]

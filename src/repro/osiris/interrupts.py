"""Host interrupt signalling from the OSIRIS board.

Either on-board processor can assert an interrupt to the host.  The
*discipline* -- when interrupts are asserted -- lives in the processor
loops (section 2.1.2); this module is just the wire: a small assertion
delay, per-kind counters, and dispatch into whatever handler the host
kernel registered.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from ..sim import Simulator


class InterruptKind(enum.Enum):
    RECEIVE = "receive"                  # receive queue became non-empty
    TRANSMIT_SPACE = "transmit-space"    # tx queue drained to half empty
    PROTECTION_VIOLATION = "protection"  # ADC queued an unauthorized page


HandlerFn = Callable[[InterruptKind, int], None]


class InterruptLine:
    """The board->host interrupt wire."""

    def __init__(self, sim: Simulator, assert_delay_us: float = 1.0):
        self.sim = sim
        self.assert_delay_us = assert_delay_us
        self._handler: Optional[HandlerFn] = None
        self.counts: dict[InterruptKind, int] = {
            kind: 0 for kind in InterruptKind}

    def register_handler(self, handler: HandlerFn) -> None:
        """Host kernel installs its interrupt handler."""
        self._handler = handler

    def assert_irq(self, kind: InterruptKind, channel_id: int = 0) -> None:
        """Board raises an interrupt; the handler runs after the wire
        delay (interrupt *service* time is charged by the host)."""
        self.counts[kind] += 1
        if self._handler is None:
            return
        handler = self._handler
        self.sim.call_after(self.assert_delay_us,
                            lambda: handler(kind, channel_id))

    @property
    def total(self) -> int:
        return sum(self.counts.values())


__all__ = ["InterruptKind", "InterruptLine"]

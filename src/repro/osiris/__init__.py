"""The OSIRIS adaptor: board, lock-free queues, i960 processor models."""

from .board import Channel, N_CHANNELS, OsirisBoard
from .descriptors import (
    Descriptor, FLAG_END_OF_PDU, FLAG_ERROR, WORDS_PER_DESCRIPTOR,
)
from .interrupts import InterruptKind, InterruptLine
from .locks import SpinLock
from .queues import AccessCounter, DescriptorQueue, queue_region_bytes
from .rx_processor import (
    FictitiousPduSource, FramedPduSource, InterruptMode, RxProcessor,
)
from .tx_processor import TxProcessor

__all__ = [
    "OsirisBoard", "Channel", "N_CHANNELS",
    "Descriptor", "FLAG_END_OF_PDU", "FLAG_ERROR", "WORDS_PER_DESCRIPTOR",
    "DescriptorQueue", "AccessCounter", "queue_region_bytes",
    "InterruptKind", "InterruptLine", "SpinLock",
    "TxProcessor", "RxProcessor", "InterruptMode", "FictitiousPduSource",
    "FramedPduSource",
]

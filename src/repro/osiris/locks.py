"""Spin-lock over the board's test-and-set register.

The hardware offers one test-and-set register per board half for
mutually exclusive access to the dual-port memory.  The paper's
software rejects this design in favour of lock-free queues
(section 2.1.1); this timed spin-lock exists for the baseline
comparison in :mod:`repro.baselines.locked_queue`.

Every test-and-set attempt by the host is a word access across the
TURBOchannel and is charged accordingly; contention therefore costs
both latency *and* bus bandwidth -- the double penalty the paper
avoids.
"""

from __future__ import annotations

from typing import Any, Generator

from ..hw.bus import TurboChannel
from ..hw.memory import TestAndSetRegister
from ..sim import Delay, Signal, Simulator


class SpinLock:
    """A timed spin-lock shared by the host CPU and one i960."""

    def __init__(self, sim: Simulator, tc: TurboChannel,
                 spin_interval_us: float = 0.5, name: str = "spinlock"):
        self.sim = sim
        self.tc = tc
        self.register = TestAndSetRegister()
        self.spin_interval_us = spin_interval_us
        self.name = name
        self._released = Signal(f"{name}.released")
        self.host_spin_time = 0.0
        self.board_spin_time = 0.0

    def acquire(self, by_host: bool) -> Generator[Any, Any, None]:
        """Spin until the register is won.

        The host pays a bus word-read per attempt; the board spins on
        its local side for free but still burns its own time.
        """
        start = self.sim.now
        while True:
            if by_host:
                yield from self.tc.pio_read_words(1)
            if self.register.test_and_set():
                break
            yield Delay(self.spin_interval_us)
        waited = self.sim.now - start
        if by_host:
            self.host_spin_time += waited
        else:
            self.board_spin_time += waited

    def release(self, by_host: bool) -> Generator[Any, Any, None]:
        if by_host:
            yield from self.tc.pio_write_words(1)
        self.register.clear()
        self._released.fire(self)


__all__ = ["SpinLock"]

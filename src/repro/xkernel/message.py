"""x-kernel style messages: directed buffer chains, copy-free.

A message is a list of (virtual address, length) segments in one
address space.  Pushing a protocol header allocates a *separate* small
buffer -- which is why "the header portion usually contributes one
physical buffer" (paper, section 2.2, figure 1).  Fragmenting a
message produces subrange views over the same buffers; nothing is
copied on the data path.

Reads used for checksum verification can be routed through the host
data cache (``cache=...``) so that stale lines after a non-coherent
DMA are actually observed -- the lazy-invalidation mechanism of
section 2.3 depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..hw.cache import DataCache
from ..sim import SimulationError
from ..host.vm import AddressSpace, PhysBuffer

ReleaseFn = Callable[[], None]


@dataclass
class _Segment:
    vaddr: int
    length: int


class Message:
    """A directed buffer chain within one address space."""

    def __init__(self, space: AddressSpace,
                 segments: Optional[list[tuple[int, int]]] = None,
                 release: Optional[ReleaseFn] = None):
        self.space = space
        self._segments = [
            _Segment(v, n) for v, n in (segments or []) if n > 0]
        self._release_fns: list[ReleaseFn] = [release] if release else []
        self.released = False

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_bytes(cls, space: AddressSpace, data: bytes,
                   align_page: bool = False, offset: int = 0) -> "Message":
        """Allocate a fresh buffer in ``space`` holding ``data``.

        ``offset``/``align_page`` control page alignment of the data
        (section 2.2: alignment decides the physical buffer count).
        """
        if not data:
            return cls(space, [])  # header-only messages (e.g. ACKs)
        vaddr = space.alloc(len(data), align_page=align_page,
                            offset=offset)
        space.write(vaddr, data)
        return cls(space, [(vaddr, len(data))])

    # -- inspection ----------------------------------------------------------------

    @property
    def length(self) -> int:
        return sum(seg.length for seg in self._segments)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def segments(self) -> list[tuple[int, int]]:
        """(vaddr, length) pairs -- what the driver wires and maps."""
        return [(seg.vaddr, seg.length) for seg in self._segments]

    def physical_buffers(self) -> list[PhysBuffer]:
        """The DMA view: every segment shattered by page mapping."""
        buffers: list[PhysBuffer] = []
        for seg in self._segments:
            buffers.extend(
                self.space.physical_buffers(seg.vaddr, seg.length))
        return buffers

    def read_all(self, cache: Optional[DataCache] = None) -> bytes:
        """Concatenate the message bytes (optionally through the cache)."""
        out = bytearray()
        for seg in self._segments:
            out += self._read_segment(seg, 0, seg.length, cache)
        return bytes(out)

    def peek(self, nbytes: int,
             cache: Optional[DataCache] = None) -> bytes:
        """Read the first ``nbytes`` without consuming them."""
        if nbytes > self.length:
            raise SimulationError("peek beyond message end")
        out = bytearray()
        for seg in self._segments:
            if len(out) >= nbytes:
                break
            take = min(seg.length, nbytes - len(out))
            out += self._read_segment(seg, 0, take, cache)
        return bytes(out)

    def _read_segment(self, seg: _Segment, offset: int, nbytes: int,
                      cache: Optional[DataCache]) -> bytes:
        if cache is None:
            return self.space.read(seg.vaddr + offset, nbytes)
        out = bytearray()
        for buf in self.space.physical_buffers(seg.vaddr + offset, nbytes):
            out += cache.read(buf.addr, buf.length)
        return bytes(out)

    # -- mutation -------------------------------------------------------------------

    def push_header(self, header: bytes) -> None:
        """Prepend a header in its own freshly allocated buffer."""
        vaddr = self.space.alloc(len(header))
        self.space.write(vaddr, header)
        self._segments.insert(0, _Segment(vaddr, len(header)))

    def pop_bytes(self, nbytes: int,
                  cache: Optional[DataCache] = None) -> bytes:
        """Consume and return the first ``nbytes`` (header strip)."""
        if nbytes > self.length:
            raise SimulationError("pop beyond message end")
        data = self.peek(nbytes, cache)
        remaining = nbytes
        while remaining > 0:
            seg = self._segments[0]
            if seg.length <= remaining:
                remaining -= seg.length
                self._segments.pop(0)
            else:
                seg.vaddr += remaining
                seg.length -= remaining
                remaining = 0
        return data

    def truncate(self, new_length: int) -> None:
        """Drop bytes beyond ``new_length`` (AAL5 pad/trailer strip)."""
        if new_length > self.length:
            raise SimulationError("truncate beyond message end")
        kept: list[_Segment] = []
        remaining = new_length
        for seg in self._segments:
            if remaining == 0:
                break
            take = min(seg.length, remaining)
            kept.append(_Segment(seg.vaddr, take))
            remaining -= take
        self._segments = kept

    def subrange(self, offset: int, nbytes: int) -> "Message":
        """A view over ``[offset, offset+nbytes)`` -- used by IP
        fragmentation; shares the underlying buffers (copy-free)."""
        if offset + nbytes > self.length:
            raise SimulationError("subrange beyond message end")
        segments: list[tuple[int, int]] = []
        pos = 0
        for seg in self._segments:
            seg_end = pos + seg.length
            lo = max(pos, offset)
            hi = min(seg_end, offset + nbytes)
            if lo < hi:
                segments.append((seg.vaddr + (lo - pos), hi - lo))
            pos = seg_end
        return Message(self.space, segments)

    def append(self, other: "Message") -> None:
        """Concatenate another chain (IP reassembly); adopts its
        release obligations."""
        if other.space is not self.space:
            raise SimulationError("cannot append across address spaces")
        self._segments.extend(other._segments)
        self._release_fns.extend(other._release_fns)
        other._release_fns = []

    # -- buffer lifetime --------------------------------------------------------------

    def add_release(self, fn: ReleaseFn) -> None:
        self._release_fns.append(fn)

    def release(self) -> None:
        """Return loaned buffers (e.g. driver receive buffers)."""
        if self.released:
            return
        self.released = True
        for fn in self._release_fns:
            fn()
        self._release_fns = []

    def __repr__(self) -> str:
        return (f"Message({self.length}B in {len(self._segments)} "
                f"segments, space={self.space.name!r})")


__all__ = ["Message"]

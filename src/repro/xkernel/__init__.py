"""x-kernel protocol framework and the protocols built on it."""

from .message import Message
from .protocol import Path, Protocol, Session
from .protocols.ip import IpProtocol, IpSession
from .protocols.testproto import Reception, TestProgram, TestProtocol
from .protocols.rdp import RdpProtocol, RdpSession
from .protocols.udp import UdpProtocol, UdpSession

__all__ = [
    "Message", "Protocol", "Session", "Path",
    "IpProtocol", "IpSession",
    "UdpProtocol", "UdpSession",
    "RdpProtocol", "RdpSession",
    "TestProtocol", "TestProgram", "Reception",
]

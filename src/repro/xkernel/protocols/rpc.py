"""A minimal RPC protocol: request/response with transaction matching.

Section 2.5.2 motivates page-boundary-respecting DMA with 'network
file system (NFS) traffic', whose PDUs are multiples of the page size
and whose 'higher-layer services expect to see full pages'.  This RPC
layer (Sun-RPC-shaped: transaction ids, procedure numbers, a reply
matched to its call) lets the examples and tests run exactly that
workload over the full OSIRIS stack.

Header layout (12 bytes, big-endian)::

    kind:1  proc:1  pad:2  xid:4  length:4
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Generator

from ...hw.cpu import HostCPU
from ...sim import Signal, SimulationError, Simulator
from ..message import Message
from ..protocol import Protocol, Session

HEADER = struct.Struct(">BB2xII")
HEADER_BYTES = HEADER.size

KIND_CALL = 0
KIND_REPLY = 1

assert HEADER_BYTES == 12

# A handler takes the request bytes and returns the reply bytes.
HandlerFn = Callable[[bytes], bytes]


class RpcProtocol(Protocol):
    def __init__(self, cpu: HostCPU, sim: Simulator,
                 per_call_us: float = 15.0):
        super().__init__("rpc")
        self.cpu = cpu
        self.sim = sim
        self.per_call_us = per_call_us
        self.calls_sent = 0
        self.calls_served = 0
        self.orphan_replies = 0


class RpcClient(Session):
    """Issues calls and matches replies by transaction id."""

    def __init__(self, protocol: RpcProtocol, below: Session):
        super().__init__(protocol, below)
        self.rpc: RpcProtocol = protocol
        self._next_xid = 1
        self._pending: dict[int, Signal] = {}
        self._replies: dict[int, bytes] = {}

    def call(self, proc: int, request: bytes,
             page_align: bool = False) -> Generator[Any, Any, bytes]:
        """Send a call and block until its reply arrives."""
        rpc = self.rpc
        yield from rpc.cpu.execute(rpc.per_call_us)
        xid = self._next_xid
        self._next_xid += 1
        signal = Signal(f"rpc.xid{xid}")
        self._pending[xid] = signal
        header = HEADER.pack(KIND_CALL, proc, xid, len(request))
        msg = Message.from_bytes(self._bottom_space(), request,
                                 align_page=page_align)
        msg.push_header(header)
        rpc.calls_sent += 1
        yield from self._send_below(msg)
        while xid not in self._replies:
            yield signal
        del self._pending[xid]
        return self._replies.pop(xid)

    def _bottom_space(self):
        session = self.below
        while session.below is not None:
            session = session.below
        return session.space

    def deliver(self, msg: Message) -> Generator[Any, Any, None]:
        rpc = self.rpc
        yield from rpc.cpu.execute(rpc.per_call_us)
        raw = msg.pop_bytes(HEADER_BYTES)
        kind, proc, xid, length = HEADER.unpack(raw)
        if kind != KIND_REPLY or xid not in self._pending:
            rpc.orphan_replies += 1
            msg.release()
            return
        self._replies[xid] = msg.read_all()
        msg.release()
        self._pending[xid].fire(xid)


class RpcServer(Session):
    """Dispatches calls to registered procedure handlers."""

    def __init__(self, protocol: RpcProtocol, below: Session):
        super().__init__(protocol, below)
        self.rpc: RpcProtocol = protocol
        self._handlers: dict[int, HandlerFn] = {}
        # Handlers may declare a service cost charged per call (us).
        self._service_us: dict[int, float] = {}

    def register(self, proc: int, handler: HandlerFn,
                 service_us: float = 0.0) -> None:
        if proc in self._handlers:
            raise SimulationError(f"procedure {proc} already registered")
        self._handlers[proc] = handler
        self._service_us[proc] = service_us

    def deliver(self, msg: Message) -> Generator[Any, Any, None]:
        rpc = self.rpc
        yield from rpc.cpu.execute(rpc.per_call_us)
        raw = msg.pop_bytes(HEADER_BYTES)
        kind, proc, xid, length = HEADER.unpack(raw)
        if kind != KIND_CALL:
            rpc.orphan_replies += 1
            msg.release()
            return
        handler = self._handlers.get(proc)
        request = msg.read_all()
        msg.release()
        if handler is None:
            reply = b""
        else:
            if self._service_us.get(proc):
                yield from rpc.cpu.execute(self._service_us[proc])
            reply = handler(request)
        rpc.calls_served += 1
        header = HEADER.pack(KIND_REPLY, proc, xid, len(reply))
        out = Message.from_bytes(self._bottom_space(), reply,
                                 align_page=(len(reply) % 4096 == 0
                                             and len(reply) > 0))
        out.push_header(header)
        yield from self._send_below(out)

    def _bottom_space(self):
        session = self.below
        while session.below is not None:
            session = session.below
        return session.space

    def send(self, msg: Message) -> Generator[Any, Any, None]:
        raise NotImplementedError("servers reply from deliver()")


__all__ = ["RpcProtocol", "RpcClient", "RpcServer", "HEADER_BYTES",
           "KIND_CALL", "KIND_REPLY"]

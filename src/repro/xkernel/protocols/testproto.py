"""In-kernel test programs (the paper's measurement endpoints).

Section 4: 'All presented results refer to message exchanges between
test programs linked into the kernel.'  :class:`TestProgram` is that
endpoint: a top-of-path session that records receptions, optionally
touches the data (forcing real memory reads), and optionally echoes --
which turns a pair of programs into the round-trip rig of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ...hw.cpu import HostCPU
from ...sim import Signal, Simulator
from ..message import Message
from ..protocol import Protocol, Session


@dataclass
class Reception:
    time: float
    length: int
    data: Optional[bytes] = field(default=None, repr=False)


class TestProtocol(Protocol):
    __test__ = False  # not a pytest class

    def __init__(self, cpu: HostCPU, sim: Simulator):
        super().__init__("test")
        self.cpu = cpu
        self.sim = sim


class TestProgram(Session):
    __test__ = False  # not a pytest class

    """Application endpoint: source, sink, or echo server."""

    def __init__(self, protocol: TestProtocol, below: Session,
                 echo: bool = False, touch_data: bool = False,
                 keep_data: bool = False):
        super().__init__(protocol, below)
        self.test: TestProtocol = protocol
        self.echo = echo
        self.touch_data = touch_data
        self.keep_data = keep_data
        self.receptions: list[Reception] = []
        self.bytes_received = 0
        self.on_receive = Signal("test.receive")

    def send_message(self, data: bytes, align_page: bool = False,
                     offset: int = 0) -> Generator[Any, Any, None]:
        """Create a message in this endpoint's space and send it."""
        costs = self.test.cpu.machine.costs
        yield from self.test.cpu.execute(costs.test_program_pdu)
        msg = Message.from_bytes(self.below_space(), data,
                                 align_page=align_page, offset=offset)
        yield from self._send_below(msg)

    def send_length(self, nbytes: int,
                    fill: bytes = b"\xA5") -> Generator[Any, Any, None]:
        yield from self.send_message(fill * nbytes)

    def below_space(self):
        # Test programs are linked into the kernel: they allocate from
        # the kernel address space attached to the path bottom.
        session = self
        while session.below is not None:
            session = session.below
        return session.space  # the driver session exposes its space

    def deliver(self, msg: Message) -> Generator[Any, Any, None]:
        costs = self.test.cpu.machine.costs
        yield from self.test.cpu.execute(costs.test_program_pdu)
        if self.touch_data:
            yield from self.test.cpu.touch_data(msg.length)
        data = msg.read_all() if self.keep_data else None
        reception = Reception(time=self.test.sim.now, length=msg.length,
                              data=data)
        self.receptions.append(reception)
        self.bytes_received += msg.length
        length = msg.length
        msg.release()
        self.on_receive.fire(reception)
        if self.echo:
            yield from self.send_length(length)

    def send(self, msg: Message) -> Generator[Any, Any, None]:
        raise NotImplementedError("TestProgram is the top of the path")


__all__ = ["TestProtocol", "TestProgram", "Reception"]

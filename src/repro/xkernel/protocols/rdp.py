"""RDP: a reliable datagram protocol over the x-kernel graph.

The paper stresses that its approach is protocol-independent ('because
the x-kernel supports arbitrary protocols ... it is not tailored to
TCP/IP').  RDP exercises that claim: a go-back-N sliding-window
protocol with cumulative acknowledgements and retransmission timers,
assembled from the same Session machinery as UDP/IP -- and it supplies
section 2.3's first condition ('mechanisms for detecting or tolerating
transmission errors are already in place') for workloads that do not
run UDP checksums.

Header layout (16 bytes, big-endian)::

    kind:1  window:1  seq:4  ack:4  length:4  checksum:2

``kind`` is DATA (0) or ACK (1).  The checksum covers the payload
(always on: RDP is the reliable path).
"""

from __future__ import annotations

import struct
from typing import Any, Generator

from ...atm.crc import fast_internet_checksum as internet_checksum
from ...hw.cpu import HostCPU
from ...sim import Delay, Signal, Simulator, spawn
from ..message import Message
from ..protocol import Protocol, Session

HEADER = struct.Struct(">BBIII H")
HEADER_BYTES = HEADER.size

KIND_DATA = 0
KIND_ACK = 1

assert HEADER_BYTES == 16


class RdpProtocol(Protocol):
    """The RDP node of the graph."""

    def __init__(self, cpu: HostCPU, sim: Simulator,
                 cache=None, cache_policy=None,
                 window: int = 8,
                 retransmit_timeout_us: float = 5000.0,
                 max_retries: int = 10):
        super().__init__("rdp")
        self.cpu = cpu
        self.sim = sim
        self.cache = cache
        self.cache_policy = cache_policy
        self.window = window
        self.retransmit_timeout_us = retransmit_timeout_us
        self.max_retries = max_retries
        self.retransmissions = 0
        self.duplicates_dropped = 0
        self.corrupt_dropped = 0
        self.stale_recoveries = 0


class RdpSession(Session):
    """One reliable conversation (go-back-N)."""

    def __init__(self, protocol: RdpProtocol, below: Session):
        super().__init__(protocol, below)
        self.rdp: RdpProtocol = protocol
        # Sender state.
        self._next_seq = 0
        self._send_base = 0
        self._unacked: dict[int, bytes] = {}
        self._window_open = Signal("rdp.window")
        self._ack_seen = Signal("rdp.ack")
        self._timer_proc = None
        self.failed = False
        # Receiver state.
        self._expected_seq = 0

    # -- transmit ------------------------------------------------------------------

    def send(self, msg: Message) -> Generator[Any, Any, None]:
        rdp = self.rdp
        yield from rdp.cpu.execute(rdp.cpu.machine.costs.udp_tx_pdu)
        while self._next_seq - self._send_base >= rdp.window:
            yield self._window_open
        seq = self._next_seq
        self._next_seq += 1
        payload = msg.read_all()
        self._unacked[seq] = payload
        yield from self._transmit_data(seq, payload)
        if self._timer_proc is None or self._timer_proc.done:
            self._timer_proc = spawn(
                rdp.sim, self._retransmit_loop(), "rdp-timer")

    def _transmit_data(self, seq: int,
                       payload: bytes) -> Generator[Any, Any, None]:
        rdp = self.rdp
        yield from rdp.cpu.checksum(len(payload), data_resident=True)
        csum = internet_checksum(payload)
        header = HEADER.pack(KIND_DATA, rdp.window, seq, 0,
                             len(payload), csum)
        packet = Message.from_bytes(self._bottom_space(), payload)
        packet.push_header(header)
        yield from self.below.send(packet)

    def _bottom_space(self):
        session = self.below
        while session.below is not None:
            session = session.below
        return session.space

    def _retransmit_loop(self) -> Generator[Any, Any, None]:
        rdp = self.rdp
        retries = 0
        while self._unacked:
            base_before = self._send_base
            yield Delay(rdp.retransmit_timeout_us)
            if not self._unacked:
                return
            if self._send_base != base_before:
                retries = 0
                continue
            retries += 1
            if retries > rdp.max_retries:
                self.failed = True
                self._ack_seen.fire(None)  # release waiters
                return
            # Go-back-N: resend everything outstanding, in order.
            for seq in sorted(self._unacked):
                rdp.retransmissions += 1
                yield from self._transmit_data(seq, self._unacked[seq])

    # -- receive --------------------------------------------------------------------

    def deliver(self, msg: Message) -> Generator[Any, Any, None]:
        rdp = self.rdp
        yield from rdp.cpu.execute(rdp.cpu.machine.costs.udp_rx_pdu)
        raw = msg.peek(HEADER_BYTES, cache=rdp.cache)
        kind, window, seq, ack, length, csum = HEADER.unpack(raw)
        plausible = kind in (KIND_DATA, KIND_ACK) and \
            length == msg.length - HEADER_BYTES
        if not plausible and rdp.cache_policy is not None:
            recovered = yield from rdp.cache_policy.recover(msg)
            if recovered:
                rdp.stale_recoveries += 1
                raw = msg.peek(HEADER_BYTES, cache=rdp.cache)
                kind, window, seq, ack, length, csum = HEADER.unpack(raw)
        msg.pop_bytes(HEADER_BYTES, cache=rdp.cache)

        if kind == KIND_ACK:
            msg.release()
            self._handle_ack(ack)
            return
        yield from self._handle_data(msg, seq, length, csum)

    def _handle_ack(self, ack: int) -> None:
        advanced = False
        while self._send_base < ack:
            self._unacked.pop(self._send_base, None)
            self._send_base += 1
            advanced = True
        if advanced:
            self._window_open.fire()
            self._ack_seen.fire(ack)

    def _handle_data(self, msg: Message, seq: int, length: int,
                     csum: int) -> Generator[Any, Any, None]:
        rdp = self.rdp
        yield from rdp.cpu.checksum(msg.length, data_resident=(
            rdp.cache is not None
            and rdp.cache.spec.coherent_with_dma))
        ok = internet_checksum(msg.read_all(rdp.cache)) == csum
        if not ok and rdp.cache_policy is not None:
            recovered = yield from rdp.cache_policy.recover(msg)
            if recovered:
                rdp.stale_recoveries += 1
                ok = internet_checksum(msg.read_all(rdp.cache)) == csum
        if not ok:
            rdp.corrupt_dropped += 1
            msg.release()
            return  # the retransmission timer will resend it
        if seq != self._expected_seq:
            rdp.duplicates_dropped += 1
            msg.release()
            yield from self._send_ack()  # re-ack the current base
            return
        self._expected_seq += 1
        yield from self._send_ack()
        yield from self._deliver_above(msg)

    def _send_ack(self) -> Generator[Any, Any, None]:
        header = HEADER.pack(KIND_ACK, self.rdp.window, 0,
                             self._expected_seq, 0, 0)
        packet = Message.from_bytes(self._bottom_space(), b"")
        packet.push_header(header)
        yield from self.below.send(packet)

    # -- draining ---------------------------------------------------------------------

    def wait_all_acked(self) -> Generator[Any, Any, bool]:
        """Block until every sent datagram is acknowledged (or the
        session gave up).  Returns success."""
        while self._unacked and not self.failed:
            yield self._ack_seen
        return not self.failed


__all__ = ["RdpProtocol", "RdpSession", "HEADER_BYTES",
           "KIND_DATA", "KIND_ACK"]

"""UDP with optional checksumming.

The header is an "extended UDP" (12 bytes) because, like the paper's,
this stack was modified to carry messages larger than 64 KB::

    src_port:2  dst_port:2  length:4  checksum:2  pad:2

The checksum is the real Internet checksum over real bytes read
*through the host data cache* -- which is how stale data after a
non-coherent DMA gets detected, invalidated and re-read under the lazy
cache-invalidation policy of section 2.3 (the ``cache_policy`` hook).
"""

from __future__ import annotations

import struct
from typing import Any, Generator, Optional

from ...atm.crc import fast_internet_checksum as internet_checksum
from ...hw.cache import DataCache
from ...hw.cpu import HostCPU
from ..message import Message
from ..protocol import Protocol, Session

HEADER = struct.Struct(">HHIH2x")
HEADER_BYTES = HEADER.size

assert HEADER_BYTES == 12


class UdpProtocol(Protocol):
    """The UDP node of the graph."""

    def __init__(self, cpu: HostCPU, cache: Optional[DataCache] = None,
                 checksum_enabled: bool = False,
                 cache_policy=None):
        super().__init__("udp")
        self.cpu = cpu
        self.cache = cache
        self.checksum_enabled = checksum_enabled
        # Duck-typed: anything with recover(msg) -> Generator[..., bool]
        # (see repro.driver.cache_policy.LazyInvalidation).
        self.cache_policy = cache_policy
        self.checksum_failures = 0
        self.stale_recoveries = 0
        self.drops = 0


class UdpSession(Session):
    """One (local port, remote port) conversation."""

    def __init__(self, protocol: UdpProtocol, below: Session,
                 local_port: int, remote_port: int):
        super().__init__(protocol, below)
        self.udp: UdpProtocol = protocol
        self.local_port = local_port
        self.remote_port = remote_port

    # -- transmit -----------------------------------------------------------------

    def send(self, msg: Message) -> Generator[Any, Any, None]:
        udp = self.udp
        costs = udp.cpu.machine.costs
        yield from udp.cpu.execute(costs.udp_tx_pdu)
        csum = 0
        if udp.checksum_enabled:
            # Freshly written by the sender: resident in the cache.
            yield from udp.cpu.checksum(msg.length, data_resident=True)
            csum = internet_checksum(msg.read_all(udp.cache))
        header = HEADER.pack(self.local_port, self.remote_port,
                             msg.length, csum)
        msg.push_header(header)
        yield from self._send_below(msg)

    # -- receive -------------------------------------------------------------------

    def deliver(self, msg: Message) -> Generator[Any, Any, None]:
        udp = self.udp
        costs = udp.cpu.machine.costs
        yield from udp.cpu.execute(costs.udp_rx_pdu)
        raw = msg.peek(HEADER_BYTES, cache=udp.cache)
        src, dst, length, csum = HEADER.unpack(raw)
        plausible = (dst == self.local_port
                     and length == msg.length - HEADER_BYTES)
        if not plausible and udp.cache_policy is not None:
            # A demux miss or length mismatch on a non-coherent machine
            # may be stale cached header bytes (section 2.3): flush and
            # re-evaluate before declaring the message in error.
            recovered = yield from udp.cache_policy.recover(msg)
            if recovered:
                raw = msg.peek(HEADER_BYTES, cache=udp.cache)
                src, dst, length, csum = HEADER.unpack(raw)
        msg.pop_bytes(HEADER_BYTES, cache=udp.cache)
        if dst != self.local_port:
            udp.drops += 1
            msg.release()
            return
        if udp.checksum_enabled and csum != 0:
            ok = yield from self._verify_checksum(msg, csum)
            if not ok:
                udp.drops += 1
                msg.release()
                return
        yield from self._deliver_above(msg)

    def _verify_checksum(self, msg: Message,
                         expected: int) -> Generator[Any, Any, bool]:
        udp = self.udp
        resident = (udp.cache is not None
                    and udp.cache.spec.coherent_with_dma)
        yield from udp.cpu.checksum(msg.length, data_resident=resident)
        actual = internet_checksum(msg.read_all(udp.cache))
        if actual == expected:
            return True
        udp.checksum_failures += 1
        if udp.cache_policy is not None:
            # Lazy invalidation: flush the message's cache lines and
            # re-evaluate before declaring the message in error.
            recovered = yield from udp.cache_policy.recover(msg)
            if recovered:
                actual = internet_checksum(msg.read_all(udp.cache))
                if actual == expected:
                    udp.stale_recoveries += 1
                    return True
        return False


__all__ = ["UdpProtocol", "UdpSession", "HEADER_BYTES"]

"""IP: fragmentation and reassembly over the driver.

A deliberately slim IP -- what the paper's experiments exercise is the
*fragmentation geometry* (section 2.2): the MTU decides where fragment
boundaries fall relative to page boundaries, and each fragment's
header occupies its own physical buffer.  Like the paper's, this IP is
"modified to support message sizes larger than 64 KB": offsets and
lengths are 32-bit.

Header layout (20 bytes, big-endian)::

    ident:4  offset:4  total_len:4  flags:1  proto:1  checksum:2  pad:4
"""

from __future__ import annotations

import struct
from typing import Any, Generator

from ...atm.crc import internet_checksum
from ...hw.cpu import HostCPU
from ...sim import SimulationError
from ..message import Message
from ..protocol import Protocol, Session

HEADER = struct.Struct(">IIIBBH4x")
HEADER_BYTES = HEADER.size
FLAG_MORE_FRAGMENTS = 0x1

assert HEADER_BYTES == 20


class IpProtocol(Protocol):
    """The IP node of the graph."""

    def __init__(self, cpu: HostCPU, mtu: int = 16 * 1024 + HEADER_BYTES):
        super().__init__("ip")
        self.cpu = cpu
        self.mtu = mtu
        self._next_ident = 1
        self.fragments_sent = 0
        self.reassemblies_completed = 0

    def allocate_ident(self) -> int:
        ident = self._next_ident
        self._next_ident += 1
        return ident


class IpSession(Session):
    """One path's IP processing."""

    def __init__(self, protocol: IpProtocol, below: Session,
                 proto_id: int = 17):
        super().__init__(protocol, below)
        self.ip: IpProtocol = protocol
        self.proto_id = proto_id
        # ident -> {offset: Message}, plus the expected total.
        self._partial: dict[int, dict[int, Message]] = {}
        self._totals: dict[int, int] = {}

    # -- transmit ---------------------------------------------------------------

    def send(self, msg: Message) -> Generator[Any, Any, None]:
        costs = self.ip.cpu.machine.costs
        yield from self.ip.cpu.execute(costs.ip_tx_pdu)
        payload_per_frag = self.ip.mtu - HEADER_BYTES
        if payload_per_frag <= 0:
            raise SimulationError(f"MTU {self.ip.mtu} below header size")
        total = msg.length
        ident = self.ip.allocate_ident()
        if total <= payload_per_frag:
            self._push_header(msg, ident, 0, total, more=False)
            yield from self._send_below(msg)
            return
        offset = 0
        first = True
        while offset < total:
            take = min(payload_per_frag, total - offset)
            frag = msg.subrange(offset, take)
            more = offset + take < total
            self._push_header(frag, ident, offset, total, more)
            if not first:
                yield from self.ip.cpu.execute(costs.ip_frag_overhead)
            self.ip.fragments_sent += 1
            yield from self._send_below(frag)
            offset += take
            first = False

    def _push_header(self, msg: Message, ident: int, offset: int,
                     total: int, more: bool) -> None:
        flags = FLAG_MORE_FRAGMENTS if more else 0
        header = HEADER.pack(ident, offset, total, flags, self.proto_id, 0)
        csum = internet_checksum(header)
        header = HEADER.pack(ident, offset, total, flags, self.proto_id,
                             csum)
        msg.push_header(header)

    # -- receive -----------------------------------------------------------------

    def deliver(self, msg: Message) -> Generator[Any, Any, None]:
        costs = self.ip.cpu.machine.costs
        yield from self.ip.cpu.execute(costs.ip_rx_pdu)
        raw = msg.pop_bytes(HEADER_BYTES)
        ident, offset, total, flags, proto, _csum = HEADER.unpack(raw)
        if proto != self.proto_id:
            raise SimulationError(f"unexpected IP proto {proto}")
        more = bool(flags & FLAG_MORE_FRAGMENTS)
        if offset == 0 and not more:
            yield from self._deliver_above(msg)
            return
        frags = self._partial.setdefault(ident, {})
        frags[offset] = msg
        self._totals[ident] = total
        have = sum(m.length for m in frags.values())
        if have < total:
            return
        whole = None
        for off in sorted(frags):
            if whole is None:
                whole = frags[off]
            else:
                whole.append(frags[off])
        del self._partial[ident]
        del self._totals[ident]
        if whole.length != total:
            raise SimulationError("IP reassembly length mismatch")
        self.ip.reassemblies_completed += 1
        yield from self._deliver_above(whole)


__all__ = ["IpProtocol", "IpSession", "HEADER_BYTES", "FLAG_MORE_FRAGMENTS"]

"""x-kernel protocol framework: protocols, sessions, paths.

The x-kernel structures a host's protocols as a graph of protocol
objects; a *path* is the sequence of sessions that process messages
for one application-level connection (paper, section 3.1).  Paths are
first-class here because the OSIRIS driver binds each one to a VCI --
the abundant-VCI strategy that enables early demultiplexing.

A session's ``send`` is a timed generator (it runs on the host CPU);
delivery upward happens through ``deliver``, also a generator, invoked
from the driver's receive thread.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..sim import SimulationError
from .message import Message


class Protocol:
    """A node in the protocol graph."""

    def __init__(self, name: str):
        self.name = name
        self.sessions: list["Session"] = []

    def register(self, session: "Session") -> None:
        self.sessions.append(session)

    def __repr__(self) -> str:
        return f"Protocol({self.name!r}, {len(self.sessions)} sessions)"


class Session:
    """One connection's state within a protocol.

    Sessions form a chain: ``below`` towards the driver, ``above``
    towards the application.
    """

    def __init__(self, protocol: Protocol,
                 below: Optional["Session"] = None):
        self.protocol = protocol
        self.below = below
        self.above: Optional["Session"] = None
        if below is not None:
            below.above = self
        protocol.register(self)
        self.sent = 0
        self.delivered = 0

    def send(self, msg: Message) -> Generator[Any, Any, None]:
        """Push a message down the path (timed)."""
        raise NotImplementedError

    def deliver(self, msg: Message) -> Generator[Any, Any, None]:
        """Receive a message from below (timed)."""
        raise NotImplementedError

    def _send_below(self, msg: Message) -> Generator[Any, Any, None]:
        if self.below is None:
            raise SimulationError(
                f"{self.protocol.name} session has nothing below")
        self.sent += 1
        yield from self.below.send(msg)

    def _deliver_above(self, msg: Message) -> Generator[Any, Any, None]:
        if self.above is None:
            raise SimulationError(
                f"{self.protocol.name} session has nothing above")
        self.delivered += 1
        yield from self.above.deliver(msg)


class Path:
    """The session chain of one application connection, bound to a VCI.

    'Each path is then bound to an unused VCI by the device driver ...
    we treat VCIs as a fairly abundant resource' (section 3.1).
    """

    def __init__(self, vci: int, sessions: list[Session]):
        self.vci = vci
        self.sessions = sessions

    @property
    def top(self) -> Session:
        return self.sessions[-1]

    @property
    def bottom(self) -> Session:
        return self.sessions[0]

    def __repr__(self) -> str:
        chain = " -> ".join(s.protocol.name for s in self.sessions)
        return f"Path(vci={self.vci}, {chain})"


__all__ = ["Protocol", "Session", "Path"]

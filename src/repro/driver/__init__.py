"""The OSIRIS host device driver."""

from .cache_policy import CachePolicy
from .config import CachePolicyKind, DriverConfig
from .osiris_driver import DriverProtocol, DriverSession, OsirisDriver

__all__ = [
    "OsirisDriver", "DriverSession", "DriverProtocol",
    "DriverConfig", "CachePolicyKind", "CachePolicy",
]

"""Cache invalidation policies (paper, section 2.3).

The DECstation's cache is not coherent with DMA; after a receive DMA
the CPU may read stale bytes.  Two remedies:

* **Eager**: invalidate every received buffer's cache lines before the
  data is touched.  Safe, but costs ~1 CPU cycle per word plus the
  misses caused by collaterally invalidated data -- figure 2 shows the
  throughput hit.
* **Lazy**: skip the invalidation and rely on the error detection
  already present for an unreliable network (checksums, framing).
  When verification fails, invalidate just the affected lines and
  re-evaluate the message before declaring it in error.

Machines with coherent DMA (DEC 3000) need neither; policy ``NONE``.
"""

from __future__ import annotations

from typing import Any, Generator

from ..host.kernel import HostOS
from ..xkernel.message import Message
from .config import CachePolicyKind


class CachePolicy:
    """Timed invalidation actions against one host's cache."""

    def __init__(self, kernel: HostOS, kind: CachePolicyKind):
        self.kernel = kernel
        self.kind = kind
        self.eager_invalidations = 0
        self.lazy_recoveries = 0
        self.invalidated_bytes = 0

    def _invalidate(self, addr: int,
                    nbytes: int) -> Generator[Any, Any, None]:
        machine = self.kernel.machine
        costs = machine.costs
        self.kernel.cache.invalidate(addr, nbytes)
        self.invalidated_bytes += nbytes
        cost = (machine.invalidate_us(nbytes)
                * costs.invalidate_aftermath_factor)
        yield from self.kernel.cpu.execute(
            cost, bus_fraction=costs.invalidate_bus_fraction)

    def on_receive_buffer(self, addr: int,
                          nbytes: int) -> Generator[Any, Any, None]:
        """Driver hook, called for every dequeued receive buffer."""
        if self.kind is CachePolicyKind.EAGER:
            self.eager_invalidations += 1
            yield from self._invalidate(addr, nbytes)

    def recover(self, msg: Message) -> Generator[Any, Any, bool]:
        """Verification-failure hook: under the lazy policy, flush the
        message's lines and ask the caller to re-evaluate."""
        if self.kind is not CachePolicyKind.LAZY:
            return False
        self.lazy_recoveries += 1
        for buf in msg.physical_buffers():
            yield from self._invalidate(buf.addr, buf.length)
        return True

    def recover_range(self, addr: int,
                      nbytes: int) -> Generator[Any, Any, bool]:
        """Range-based variant for pre-Message driver checks."""
        if self.kind is not CachePolicyKind.LAZY:
            return False
        self.lazy_recoveries += 1
        yield from self._invalidate(addr, nbytes)
        return True


__all__ = ["CachePolicy"]

"""The in-kernel OSIRIS device driver.

Implements the host side of everything section 2 describes:

* descriptor exchange through the lock-free queues, with every word
  access across the TURBOchannel charged (section 2.1.1);
* the interrupt discipline: transmit completion detected by tail-
  pointer advance during other driver activity, a transmit-space
  interrupt only after the host found the queue full, and a receive
  thread scheduled on the queue's empty->non-empty interrupt
  (section 2.1.2);
* physical-buffer fragmentation: messages shatter into per-page
  descriptors, each costing per-buffer driver time (section 2.2);
* eager/lazy cache invalidation hooks (section 2.3);
* page wiring on the transmit path, unwired lazily when completion is
  reaped (section 2.4);
* VCI management: one VCI per x-kernel path, buffers recycled onto the
  path they served (sections 2.3 and 3.1).
"""

from __future__ import annotations

import struct
from typing import Any, Generator, Optional

from ..host.kernel import HostOS
from ..osiris.board import OsirisBoard
from ..osiris.descriptors import Descriptor, FLAG_END_OF_PDU
from ..osiris.interrupts import InterruptKind
from ..osiris.queues import DescriptorQueue
from ..sim import Resource, Signal, SimulationError, Simulator
from ..xkernel.message import Message
from ..xkernel.protocol import Protocol, Session
from .cache_policy import CachePolicy
from .config import DriverConfig

_TRAILER = struct.Struct(">II")


class DriverProtocol(Protocol):
    def __init__(self) -> None:
        super().__init__("osiris")


class DriverSession(Session):
    """Bottom of a path: one VCI's binding to the driver."""

    def __init__(self, protocol: DriverProtocol,
                 driver: "OsirisDriver", vci: int):
        super().__init__(protocol, below=None)
        self.driver = driver
        self.vci = vci
        self.space = driver.space

    def send(self, msg: Message) -> Generator[Any, Any, None]:
        yield from self.driver.send_pdu(msg, self.vci)

    def deliver(self, msg: Message) -> Generator[Any, Any, None]:
        yield from self._deliver_above(msg)


class OsirisDriver:
    """Host driver for one OSIRIS board."""

    def __init__(self, sim: Simulator, kernel: HostOS, board: OsirisBoard,
                 config: Optional[DriverConfig] = None):
        self.sim = sim
        self.kernel = kernel
        self.board = board
        self.config = config or DriverConfig.for_machine(kernel.machine)
        self.space = kernel.kernel_domain.space
        self.cache_policy = CachePolicy(kernel, self.config.cache_policy)
        self.protocol = DriverProtocol()
        self.bufsize = board.spec.recv_buffer_bytes

        kernel.attach_board(board)
        kernel.register_irq_handler(InterruptKind.RECEIVE, self._on_rx_irq)
        kernel.register_irq_handler(InterruptKind.TRANSMIT_SPACE,
                                    self._on_tx_space_irq)

        # The send path is a critical section: descriptors of one PDU
        # must be queued contiguously (END_OF_PDU delimits them).
        self._send_lock = Resource(sim, "driver-send", capacity=1)
        self._rx_signal = Signal("driver.rx")
        self._rx_pending = False
        self._tx_space = Signal("driver.tx-space")
        self._tx_space_pending = False

        # Transmit completion bookkeeping: descriptor counts per PDU
        # (plus wired segments and sg-map windows), reaped when the
        # tail pointer is seen to have advanced.
        self._tx_inflight: list[tuple] = []
        self._tx_inflight_descs = 0

        # Optional virtual-address DMA (section 2.2).
        self.sgmap = None
        if self.config.use_sg_map:
            from ..hw.sgmap import ScatterGatherMap
            self.sgmap = ScatterGatherMap(sim, kernel.cpu)
            board.tx_dma.sgmap = self.sgmap

        # Receive buffer pool: statically allocated contiguous kernel
        # buffers (section 2.2's traditional remedy), identity-mapped.
        self._returned: list[Descriptor] = []
        for _ in range(self.config.rx_buffers):
            addr = kernel.memory.alloc_contiguous(self.bufsize)
            self.space.map_identity(addr, self.bufsize)
            self._returned.append(Descriptor(addr=addr, length=self.bufsize))
        kq = board.kernel_channel.free_queue
        while self._returned:
            if not kq.push(self._returned[0]):
                break
            self._returned.pop(0)
        kq.host_access.reset()  # initialisation is not charged

        # ADC routing: receive interrupts for channels 1..15 are fielded
        # here (the kernel always fields interrupts, section 3.2) and
        # signalled straight into the ADC channel driver's thread.
        self._adc_rx_handlers: dict[int, Any] = {}
        self._violation_handlers: dict[int, Any] = {}
        kernel.register_irq_handler(InterruptKind.PROTECTION_VIOLATION,
                                    self._on_violation_irq)

        # Paths: VCI -> session, plus the cached-fbuf MRU bookkeeping.
        self._paths: dict[int, DriverSession] = {}
        self._next_vci = 256
        self._mru_paths: list[int] = []
        self._path_tagged: dict[int, int] = {}  # vci -> buffers tagged

        # Statistics.
        self.pdus_sent = 0
        self.pdus_received = 0
        self.rx_errors = 0
        self.tx_full_events = 0

        self.rx_thread = kernel.spawn_thread(self._rx_loop(), "osiris-rx")

    # -- path management ----------------------------------------------------------

    def open_path(self, vci: Optional[int] = None) -> DriverSession:
        """Bind a new path to a VCI (abundant-resource model)."""
        if vci is None:
            vci = self._next_vci
            self._next_vci += 1
        if vci in self._paths:
            raise SimulationError(f"VCI {vci} already has a path")
        self.board.bind_vci(vci, 0)
        session = DriverSession(self.protocol, self, vci)
        self._paths[vci] = session
        self._touch_mru(vci)
        return session

    def _touch_mru(self, vci: int) -> None:
        if vci in self._mru_paths:
            self._mru_paths.remove(vci)
        self._mru_paths.insert(0, vci)
        del self._mru_paths[self.config.fbuf_cached_paths:]

    def _recycle_tag(self, vci: int) -> int:
        """Tag for a returning buffer: keep it on its path when the
        path is among the MRU set and under quota (section 3.1).

        ``_path_tagged`` counts tagged buffers currently parked at the
        board; it is decremented as PDUs consume them (the board
        prefers the path pool, so consumption is pool-first)."""
        if vci in self._mru_paths:
            tagged = self._path_tagged.get(vci, 0)
            if tagged < self.config.fbuf_buffers_per_path:
                self._path_tagged[vci] = tagged + 1
                return vci
        return 0

    def _note_pool_consumption(self, vci: int, nbuffers: int) -> None:
        tagged = self._path_tagged.get(vci, 0)
        self._path_tagged[vci] = max(0, tagged - nbuffers)

    # -- shared helpers ----------------------------------------------------------

    def _charge_queue_access(self, queue: DescriptorQueue
                             ) -> Generator[Any, Any, None]:
        """Convert the queue's recorded host word accesses into bus
        time (dual-port accesses are expensive, section 2.1)."""
        reads, writes = queue.host_access.reset()
        if reads:
            yield from self.board.tc.pio_read_words(reads)
        if writes:
            yield from self.board.tc.pio_write_words(writes)

    # -- transmit path -------------------------------------------------------------

    def send_pdu(self, msg: Message, vci: int) -> Generator[Any, Any, None]:
        grant = yield self._send_lock.request()
        try:
            yield from self._send_pdu_locked(msg, vci)
        finally:
            grant.release()

    def _send_pdu_locked(self, msg: Message,
                         vci: int) -> Generator[Any, Any, None]:
        costs = self.kernel.machine.costs
        cpu = self.kernel.cpu
        queue = self.board.kernel_channel.tx_queue
        self._touch_mru(vci)

        # Completion check "as part of other driver activity".
        yield from self._reap_transmitted()

        yield from cpu.execute(costs.driver_tx_pdu)
        segments = msg.segments()
        for vaddr, length in segments:
            yield from self.kernel.wiring.wire(self.space, vaddr, length)

        mappings: list = []
        if self.sgmap is not None:
            # Virtual-address DMA: one descriptor per segment; the map
            # absorbs the per-page scatter (but charges per page).
            units = []
            for vaddr, length in segments:
                mapping = yield from self.sgmap.load(self.space, vaddr,
                                                     length)
                mappings.append(mapping)
                units.append((mapping.io_addr, mapping.length))
        else:
            units = [(b.addr, b.length) for b in msg.physical_buffers()]

        for index, (addr, length) in enumerate(units):
            yield from cpu.execute(costs.driver_tx_buffer)
            flags = FLAG_END_OF_PDU if index == len(units) - 1 else 0
            desc = Descriptor(addr=addr, length=length,
                              flags=flags, vci=vci)
            while True:
                ok = queue.push(desc)
                yield from self._charge_queue_access(queue)
                if ok:
                    break
                # Queue full: ask for the transmit-space interrupt and
                # suspend transmit activity (section 2.1.2).
                self.tx_full_events += 1
                self._tx_space_pending = False
                self.board.tx_interrupt_wanted.add(0)
                yield from self.board.tc.pio_write_words(1)
                if not self._tx_space_pending:
                    yield self._tx_space
                self._tx_space_pending = False
                yield from self._reap_transmitted()
        self._tx_inflight.append((len(units), segments, mappings))
        self._tx_inflight_descs += len(units)
        self.pdus_sent += 1

    def _reap_transmitted(self) -> Generator[Any, Any, None]:
        """Detect transmit completion by the advance of the queue's
        tail pointer; unwire the pages of completed PDUs."""
        if not self._tx_inflight:
            return
        queue = self.board.kernel_channel.tx_queue
        occupancy = queue.occupancy(by_host=True)
        yield from self._charge_queue_access(queue)
        consumed = self._tx_inflight_descs - occupancy
        while self._tx_inflight and consumed >= self._tx_inflight[0][0]:
            ndescs, segments, mappings = self._tx_inflight.pop(0)
            consumed -= ndescs
            self._tx_inflight_descs -= ndescs
            for mapping in mappings:
                self.sgmap.unload(mapping)
            for vaddr, length in segments:
                yield from self.kernel.wiring.unwire(self.space, vaddr,
                                                     length)

    # -- interrupt callbacks ----------------------------------------------------------

    def _on_rx_irq(self, kind: InterruptKind, channel_id: int) -> None:
        if channel_id != 0:
            handler = self._adc_rx_handlers.get(channel_id)
            if handler is not None:
                handler()
            return
        self._rx_pending = True
        self._rx_signal.fire()

    def _on_tx_space_irq(self, kind: InterruptKind,
                         channel_id: int) -> None:
        self._tx_space_pending = True
        self._tx_space.fire()

    def _on_violation_irq(self, kind: InterruptKind,
                          channel_id: int) -> None:
        """The OS raises an access-violation exception in the offending
        application process (section 3.2)."""
        handler = self._violation_handlers.get(channel_id)
        if handler is not None:
            handler()

    def register_adc_rx(self, channel_id: int, handler) -> None:
        self._adc_rx_handlers[channel_id] = handler

    def register_violation_handler(self, channel_id: int, handler) -> None:
        self._violation_handlers[channel_id] = handler

    # -- receive path ------------------------------------------------------------------

    def _rx_loop(self) -> Generator[Any, Any, None]:
        while True:
            if not self._rx_pending:
                yield self._rx_signal
            self._rx_pending = False
            yield from self._drain_receive_queue()

    def _drain_receive_queue(self) -> Generator[Any, Any, None]:
        costs = self.kernel.machine.costs
        cpu = self.kernel.cpu
        channel = self.board.kernel_channel
        queue = channel.recv_queue
        # Buffers of concurrently arriving PDUs (different VCIs)
        # interleave in the receive queue; accumulate per VCI.
        pending: dict[int, list[Descriptor]] = {}
        while True:
            desc = queue.pop(by_host=True)
            yield from self._charge_queue_access(queue)
            if desc is None:
                if any(pending.values()):
                    # Mid-PDU: the rest is on its way; keep waiting.
                    yield queue.became_nonempty
                    continue
                return
            yield from cpu.execute(costs.driver_rx_buffer)
            yield from self.cache_policy.on_receive_buffer(
                desc.addr, desc.length)
            yield from self._replenish_free_queue()
            pdu_descs = pending.setdefault(desc.vci, [])
            pdu_descs.append(desc)
            if desc.error:
                self.rx_errors += 1
                self._return_buffers(pdu_descs, vci=0)
                del pending[desc.vci]
                continue
            if desc.end_of_pdu:
                del pending[desc.vci]
                yield from self._deliver_pdu(pdu_descs)

    def _replenish_free_queue(self) -> Generator[Any, Any, None]:
        """'Add a free buffer to the free queue' (section 2.1.1)."""
        queue = self.board.kernel_channel.free_queue
        while self._returned:
            if not queue.push(self._returned[0]):
                queue.host_access.reset()
                break
            self._returned.pop(0)
            yield from self._charge_queue_access(queue)

    def _return_buffers(self, descs: list[Descriptor], vci: int) -> None:
        """Synchronous buffer return (message release callback)."""
        for desc in descs:
            tag = self._recycle_tag(vci)
            self._returned.append(
                Descriptor(addr=desc.addr, length=self.bufsize, vci=tag))

    def _deliver_pdu(self, descs: list[Descriptor]
                     ) -> Generator[Any, Any, None]:
        costs = self.kernel.machine.costs
        cpu = self.kernel.cpu
        yield from cpu.execute(costs.driver_rx_pdu)
        yield from cpu.execute(
            costs.driver_rx_per_byte * sum(d.length for d in descs))
        # Protocol metadata (headers at the front, AAL5 trailer at the
        # back) is read before any checksum can vouch for it, and the
        # per-path buffer recycling of section 3.1 shortens the reuse
        # distance the lazy argument of section 2.3 counts on.  A
        # partial invalidation of those few lines costs a handful of
        # cycles and removes metadata staleness; bulk data still relies
        # on checksums and natural eviction, per the paper.
        if not self.kernel.machine.cache.coherent_with_dma:
            first, last = descs[0], descs[-1]
            head_bytes = min(64, first.length)
            self.kernel.cache.invalidate(first.addr, head_bytes)
            self.kernel.cache.invalidate(last.addr + last.length - 8, 8)
            yield from cpu.execute(
                self.kernel.machine.invalidate_us(head_bytes + 8))
        vci = descs[-1].vci
        self._note_pool_consumption(vci, len(descs))
        total = sum(d.length for d in descs)
        session = self._paths.get(vci)
        if session is None:
            self.rx_errors += 1
            self._return_buffers(descs, vci=0)
            return

        data_len = yield from self._read_trailer_length(descs, total)
        if data_len is None:
            self.rx_errors += 1
            self._return_buffers(descs, vci)
            return

        segments = [(d.addr, d.length) for d in descs]
        msg = Message(self.space, segments)
        captured = list(descs)
        msg.add_release(lambda: self._return_buffers(captured, vci))
        msg.truncate(data_len)
        self.pdus_received += 1
        self._touch_mru(vci)
        yield from session.deliver(msg)

    def _read_trailer_length(self, descs: list[Descriptor], total: int
                             ) -> Generator[Any, Any, Optional[int]]:
        """Read the AAL5 trailer (through the cache!) to learn the data
        length; recover lazily when the trailer itself is stale."""
        if not self.board.fidelity.copy_data:
            # Timing-only runs carry no bytes; the pad is unknowable
            # but irrelevant (only raw-ATM paths run in this mode).
            return max(total - 8, 0)
        last = descs[-1]
        trailer_addr = last.addr + last.length - 8
        for _attempt in range(2):
            raw = self.kernel.cache.read(trailer_addr, 8)
            length, _crc = _TRAILER.unpack(raw)
            pad = total - 8 - length
            if 0 <= pad < 44:
                return length
            recovered = yield from self.cache_policy.recover_range(
                trailer_addr, 8)
            if not recovered:
                return None
        return None


__all__ = ["OsirisDriver", "DriverSession", "DriverProtocol"]

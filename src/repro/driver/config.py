"""Driver configuration knobs.

Every optimization the paper discusses is a switch here, so the
benchmark harness can run the same system in any configuration
(single/double-cell DMA, eager/lazy invalidation, coalesced/per-PDU
interrupts, Mach/fast wiring).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..hw.dma import DmaMode
from ..host.wiring import WiringStyle
from ..osiris.rx_processor import InterruptMode


class CachePolicyKind(enum.Enum):
    LAZY = "lazy"       # section 2.3's optimization
    EAGER = "eager"     # invalidate after every received buffer
    NONE = "none"       # coherent hardware (DEC 3000 class)


@dataclass
class DriverConfig:
    """Configuration of one host's OSIRIS driver."""

    rx_buffers: int = 64                  # (paper) 64-buffer queues
    cache_policy: CachePolicyKind = CachePolicyKind.LAZY
    interrupt_mode: InterruptMode = InterruptMode.COALESCED
    tx_dma_mode: DmaMode = DmaMode.SINGLE_CELL
    rx_dma_mode: DmaMode = DmaMode.SINGLE_CELL
    wiring_style: WiringStyle = WiringStyle.FAST_LOW_LEVEL
    # Cached-fbuf pools: how many paths get preallocated per-path
    # buffers, and how many buffers each (section 3.1: 16 MRU paths).
    fbuf_cached_paths: int = 16
    fbuf_buffers_per_path: int = 4
    # Virtual-address DMA through a hardware scatter/gather map
    # (section 2.2): one descriptor per message segment instead of one
    # per physical buffer, at a per-page map-update cost.
    use_sg_map: bool = False

    @staticmethod
    def for_machine(machine) -> "DriverConfig":
        """Default config: lazy invalidation only where DMA is not
        cache-coherent."""
        policy = (CachePolicyKind.NONE if machine.cache.coherent_with_dma
                  else CachePolicyKind.LAZY)
        return DriverConfig(cache_policy=policy)


__all__ = ["DriverConfig", "CachePolicyKind"]

"""Host-side flow-control gates for the cluster fabric.

The seed fabric's only congestion response was the 256-cell port cap:
incast collapse was emergent but unrecoverable, because the switch
simply truncated.  This module supplies the missing control plane --
the channel from a switch output port back to the *originating* host's
transmit processor:

* **Credit mode** (receiver-driven, the RDCA-style answer): every flow
  VCI gets a window of cells it may have outstanding inside the
  fabric.  The transmit processor acquires one credit per cell before
  emission; the final-hop switch port returns the credit when it
  forwards the cell to the destination host.  Port occupancy is
  therefore bounded by ``window`` per VCI and a full port pauses the
  offending flow at its source instead of dropping.

* **EFCI mode** (the cheap alternative): emission is not counted, but
  a congested port sets the explicit forward congestion indication bit
  on cells it queues; the destination's fabric edge relays the mark
  back, and the gate pauses the flow for a fixed cooldown.

A :class:`CreditGate` is per host; :class:`repro.osiris.tx_processor.
TxProcessor` calls :meth:`acquire` before every cell, and
:class:`repro.cluster.fabric.Fabric` installs the refill/pause ends
when it opens a flow.  VCIs the gate has never heard of (ADC grants,
cross traffic) pass through untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..sim import Delay, Signal, SimulationError, Simulator

BACKPRESSURE_MODES = ("none", "credit", "efci")


@dataclass
class _FlowGate:
    """Flow-control state for one source VCI."""

    vci: int
    window: Optional[int]       # None: uncounted (EFCI pausing only)
    credits: Optional[int]
    signal: Signal
    resume_at: float = 0.0
    stalls: int = 0
    stall_time_us: float = 0.0
    refills: int = 0
    pauses: int = 0


class CreditGate:
    """Per-VCI emission gate at one host's fabric ingress."""

    def __init__(self, sim: Simulator, name: str = "gate"):
        self.sim = sim
        self.name = name
        self._flows: dict[int, _FlowGate] = {}
        self.stalls = 0
        self.stall_time_us = 0.0

    def open_vci(self, vci: int, window: Optional[int] = None) -> None:
        """Gate emissions on ``vci``.  ``window`` is the credit budget
        (cells outstanding inside the fabric); None means uncounted --
        the flow only stalls when :meth:`pause` is called."""
        if vci in self._flows:
            raise SimulationError(
                f"{self.name}: VCI {vci:#x} already gated")
        if window is not None and window < 1:
            raise SimulationError(
                f"{self.name}: credit window must be >= 1, got {window}")
        self._flows[vci] = _FlowGate(
            vci=vci, window=window, credits=window,
            signal=Signal(f"{self.name}.{vci:#x}"))

    def acquire(self, vci: int) -> Generator[Any, Any, None]:
        """Block until ``vci`` may emit one cell (subroutine: use as
        ``yield from gate.acquire(vci)``).  Ungated VCIs never block."""
        flow = self._flows.get(vci)
        if flow is None:
            return
        while True:
            start = self.sim.now
            if start < flow.resume_at:
                flow.stalls += 1
                self.stalls += 1
                yield Delay(flow.resume_at - start)
                elapsed = self.sim.now - start
                flow.stall_time_us += elapsed
                self.stall_time_us += elapsed
                continue
            if flow.credits is None:
                return
            if flow.credits > 0:
                flow.credits -= 1
                return
            flow.stalls += 1
            self.stalls += 1
            yield flow.signal
            elapsed = self.sim.now - start
            flow.stall_time_us += elapsed
            self.stall_time_us += elapsed

    def refill(self, vci: int) -> None:
        """Return one credit to ``vci`` -- the switch end of the
        credit channel, called when the final-hop port forwards a
        cell of this flow."""
        flow = self._flows[vci]
        if flow.credits is None:
            return
        if flow.window is None or flow.credits < flow.window:
            flow.credits += 1
            flow.refills += 1
            flow.signal.fire()

    def pause(self, vci: int, until_us: float) -> None:
        """Hold ``vci``'s emissions until the given simulation time --
        the EFCI cooldown.  Overlapping pauses extend, never shorten."""
        flow = self._flows.get(vci)
        if flow is None:
            return
        if until_us > flow.resume_at:
            flow.resume_at = until_us
            flow.pauses += 1

    def credits_outstanding(self) -> int:
        """Cells currently inside the fabric against this gate's
        credit windows (zero once every flow has drained)."""
        return sum(flow.window - flow.credits
                   for flow in self._flows.values()
                   if flow.credits is not None and flow.window is not None)

    def stats(self) -> dict:
        """Counters for the cluster report."""
        return {
            "stalls": self.stalls,
            "stall_time_us": self.stall_time_us,
            "credits_outstanding": self.credits_outstanding(),
            "flows": {
                flow.vci: {
                    "window": flow.window,
                    "credits": flow.credits,
                    "stalls": flow.stalls,
                    "stall_time_us": flow.stall_time_us,
                    "refills": flow.refills,
                    "pauses": flow.pauses,
                }
                for flow in self._flows.values()
            },
        }


__all__ = ["CreditGate", "BACKPRESSURE_MODES"]

"""Host-side flow-control gates for the cluster fabric.

The seed fabric's only congestion response was the 256-cell port cap:
incast collapse was emergent but unrecoverable, because the switch
simply truncated.  This module supplies the missing control plane --
the channel from a switch output port back to the *originating* host's
transmit processor:

* **Credit mode** (receiver-driven, the RDCA-style answer): every flow
  VCI gets a window of cells it may have outstanding inside the
  fabric.  The transmit processor acquires one credit per cell before
  emission; the final-hop switch port returns the credit when it
  forwards the cell to the destination host.  Port occupancy is
  therefore bounded by ``window`` per VCI and a full port pauses the
  offending flow at its source instead of dropping.

* **EFCI mode** (the cheap alternative): emission is not counted, but
  a congested port sets the explicit forward congestion indication bit
  on cells it queues; the destination's fabric edge relays the mark
  back, and the gate pauses the flow for a fixed cooldown.

A :class:`CreditGate` is per host; :class:`repro.osiris.tx_processor.
TxProcessor` calls :meth:`acquire` before every cell, and
:class:`repro.cluster.fabric.Fabric` installs the refill/pause ends
when it opens a flow.  VCIs the gate has never heard of (ADC grants,
cross traffic) pass through untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..sim import Delay, Signal, SimulationError, Simulator

BACKPRESSURE_MODES = ("none", "credit", "efci")


@dataclass
class _FlowGate:
    """Flow-control state for one source VCI."""

    vci: int
    window: Optional[int]       # None: uncounted (EFCI pausing only)
    credits: Optional[int]
    signal: Signal
    resume_at: float = 0.0
    stalls: int = 0
    stall_time_us: float = 0.0
    refills: int = 0
    pauses: int = 0
    regenerations: int = 0
    # Incremented every time credits arrive (refill or regeneration).
    # Recovery timers capture the epoch when armed and no-op if it has
    # moved on -- the cheap way to cancel a stale timer.
    epoch: int = 0
    waiting: bool = False
    # Live recovery Timer handles; cancelled the moment a genuine
    # refill arrives so an armed-but-moot timer cannot extend the
    # simulation past its natural quiescence.
    timers: list = field(default_factory=list)


class CreditGate:
    """Per-VCI emission gate at one host's fabric ingress.

    The flow table is setup-written and boundary-retired; credit
    windows move only through ``refill``/``pause``, which arrive as
    boundary messages (cross-shard effectors, RACE202).

    SRSW: _flows via open_vci, retire_vci

    Two optional recovery mechanisms guard the credit loop against an
    unreliable fabric (both default off, so a loss-free run is
    bit-for-bit unchanged):

    * ``regen_timeout_us`` -- if a flow has been stalled at zero
      credits for this long without a single refill, the gate assumes
      the outstanding cells (or their returning credits) died in the
      fabric and regenerates the full window.  At fault rate 0 a stall
      always ends with a genuine refill first, so regeneration never
      fires and the loss-free result is preserved.
    * ``watchdog_us`` -- same trigger, but instead of recovering the
      gate raises a diagnosable :class:`SimulationError` naming the
      VCI and its outstanding count.  This turns the silent
      credit-deadlock hang into a crash with a cause attached.
    """

    def __init__(self, sim: Simulator, name: str = "gate",
                 regen_timeout_us: Optional[float] = None,
                 watchdog_us: Optional[float] = None):
        if regen_timeout_us is not None and regen_timeout_us <= 0:
            raise SimulationError(
                f"{name}: regen_timeout_us must be positive")
        if watchdog_us is not None and watchdog_us <= 0:
            raise SimulationError(
                f"{name}: watchdog_us must be positive")
        self.sim = sim
        self.name = name
        self.regen_timeout_us = regen_timeout_us
        self.watchdog_us = watchdog_us
        self._flows: dict[int, _FlowGate] = {}
        self.stalls = 0
        self.stall_time_us = 0.0
        self.regenerations = 0
        self.credits_regenerated = 0

    def open_vci(self, vci: int, window: Optional[int] = None) -> None:
        """Gate emissions on ``vci``.  ``window`` is the credit budget
        (cells outstanding inside the fabric); None means uncounted --
        the flow only stalls when :meth:`pause` is called."""
        if vci in self._flows:
            raise SimulationError(
                f"{self.name}: VCI {vci:#x} already gated")
        if window is not None and window < 1:
            raise SimulationError(
                f"{self.name}: credit window must be >= 1, got {window}")
        self._flows[vci] = _FlowGate(
            vci=vci, window=window, credits=window,
            signal=Signal(f"{self.name}.{vci:#x}"))

    def acquire(self, vci: int) -> Generator[Any, Any, None]:
        """Block until ``vci`` may emit one cell (subroutine: use as
        ``yield from gate.acquire(vci)``).  Ungated VCIs never block."""
        flow = self._flows.get(vci)
        if flow is None:
            return
        while True:
            start = self.sim.now
            if start < flow.resume_at:
                flow.stalls += 1
                self.stalls += 1
                yield Delay(flow.resume_at - start)
                elapsed = self.sim.now - start
                flow.stall_time_us += elapsed
                self.stall_time_us += elapsed
                continue
            if flow.credits is None:
                return
            if flow.credits > 0:
                flow.credits -= 1
                return
            flow.stalls += 1
            self.stalls += 1
            flow.waiting = True
            self._arm_recovery(flow)
            yield flow.signal
            flow.waiting = False
            self._cancel_recovery(flow)
            elapsed = self.sim.now - start
            flow.stall_time_us += elapsed
            self.stall_time_us += elapsed

    def retire_vci(self, vci: int) -> None:
        """Forget a gated VCI -- path failover retired its wire
        identifier.  Any emitter blocked on the old credits is
        released (it re-checks and finds the flow uncounted), its
        recovery timers die, and credits still riding the fabric
        against the old window refill into nothing."""
        flow = self._flows.pop(vci, None)
        if flow is None:
            return
        self._cancel_recovery(flow)
        flow.credits = None
        flow.window = None
        flow.signal.fire()

    def refill(self, vci: int) -> None:
        """Return one credit to ``vci`` -- the switch end of the
        credit channel, called when the final-hop port forwards a
        cell of this flow.  Credits addressed to a retired VCI (cells
        that were in flight when a failover cut the flow over) fall
        on the floor."""
        flow = self._flows.get(vci)
        if flow is None or flow.credits is None:
            return
        if flow.window is None or flow.credits < flow.window:
            flow.credits += 1
            flow.refills += 1
            flow.epoch += 1
            self._cancel_recovery(flow)
            flow.signal.fire()

    def _arm_recovery(self, flow: _FlowGate) -> None:
        """Arm the regeneration and watchdog timers for one stall."""
        epoch = flow.epoch
        now = self.sim.now
        if self.regen_timeout_us is not None:
            flow.timers.append(self.sim.call_at(
                now + self.regen_timeout_us,
                lambda: self._regen_fire(flow, epoch)))
        if self.watchdog_us is not None:
            flow.timers.append(self.sim.call_at(
                now + self.watchdog_us,
                lambda: self._watchdog_fire(flow, epoch)))

    def _cancel_recovery(self, flow: _FlowGate) -> None:
        for timer in flow.timers:
            timer.cancel()
        flow.timers.clear()

    def _regen_fire(self, flow: _FlowGate, epoch: int) -> None:
        if (not flow.waiting or flow.epoch != epoch
                or flow.credits is None or flow.window is None):
            return  # stale: a real refill arrived, or the stall ended
        regenerated = flow.window - flow.credits
        flow.credits = flow.window
        flow.regenerations += 1
        flow.epoch += 1
        self.regenerations += 1
        self.credits_regenerated += regenerated
        self._cancel_recovery(flow)
        flow.signal.fire()

    def _watchdog_fire(self, flow: _FlowGate, epoch: int) -> None:
        if (not flow.waiting or flow.epoch != epoch
                or flow.credits is None or flow.window is None):
            return
        outstanding = flow.window - flow.credits
        raise SimulationError(
            f"{self.name}: credit deadlock on VCI {flow.vci:#x}: "
            f"stalled since t={self.sim.now - self.watchdog_us:.1f}us "
            f"with zero refills for {self.watchdog_us:.1f}us; "
            f"{outstanding} of {flow.window} credits outstanding "
            f"(lost data or credit cells?). Enable credit "
            f"regeneration (regen_timeout_us / --regen-timeout) to "
            f"recover instead of raising.")

    def pause(self, vci: int, until_us: float) -> None:
        """Hold ``vci``'s emissions until the given simulation time --
        the EFCI cooldown.  Overlapping pauses extend, never shorten."""
        flow = self._flows.get(vci)
        if flow is None:
            return
        if until_us > flow.resume_at:
            flow.resume_at = until_us
            flow.pauses += 1

    def credits_outstanding(self) -> int:
        """Cells currently inside the fabric against this gate's
        credit windows (zero once every flow has drained)."""
        return sum(flow.window - flow.credits
                   for flow in self._flows.values()
                   if flow.credits is not None and flow.window is not None)

    def stats(self) -> dict:
        """Counters for the cluster report."""
        return {
            "stalls": self.stalls,
            "stall_time_us": self.stall_time_us,
            "credits_outstanding": self.credits_outstanding(),
            "regenerations": self.regenerations,
            "credits_regenerated": self.credits_regenerated,
            "flows": {
                flow.vci: {
                    "window": flow.window,
                    "credits": flow.credits,
                    "stalls": flow.stalls,
                    "stall_time_us": flow.stall_time_us,
                    "refills": flow.refills,
                    "pauses": flow.pauses,
                    "regenerations": flow.regenerations,
                }
                for flow in sorted(self._flows.values(),
                                   key=lambda f: f.vci)
            },
        }


__all__ = ["CreditGate", "BACKPRESSURE_MODES"]

"""Multi-host cluster: switched fabric, workload engine, metrics.

The paper stops at two workstations back-to-back; this package scales
the same building blocks out: N complete hosts on a VCI-routed
switched fabric (:mod:`repro.cluster.fabric`), driven by open- and
closed-loop client fleets (:mod:`repro.cluster.workloads`), observed
through one aggregated report with a cell-conservation invariant
(:mod:`repro.cluster.metrics`).
"""

from .backpressure import BACKPRESSURE_MODES, CreditGate
from .fabric import FIRST_FLOW_VCI, Fabric, Flow, VciAllocator
from .metrics import ClusterReport, collect
from .sharded import ShardFabric, merge_partials, run_cluster_sharded
from .workloads import (
    PATTERNS, ClientResult, WorkloadResult, WorkloadSpec, client_rng,
    pattern_flows, run_workload, setup_workload, sweep_offered_load,
)

__all__ = [
    "Fabric", "Flow", "VciAllocator", "FIRST_FLOW_VCI",
    "CreditGate", "BACKPRESSURE_MODES",
    "ClusterReport", "collect",
    "ShardFabric", "run_cluster_sharded", "merge_partials",
    "PATTERNS", "WorkloadSpec", "WorkloadResult", "ClientResult",
    "pattern_flows", "client_rng", "run_workload", "setup_workload",
    "sweep_offered_load",
]

"""Cluster-wide metrics: one report for an N-host fabric run.

Aggregates every per-host ``net.stats`` snapshot and every switch's
per-port occupancy counters into a single :class:`ClusterReport`, and
checks the **cell-conservation invariant**: every cell handed to the
fabric is, at the instant of the snapshot, exactly one of delivered to
a host board, still queued/in flight inside the fabric, or dropped.
The four terms come from independent counters (links, switch ports,
delivery wrappers), so the identity actually cross-checks the models
rather than restating one number three ways.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from .fabric import Fabric
from .workloads import WorkloadResult


@dataclass
class ClusterReport:
    """Everything a cluster run produced, in one structure."""

    topology: str
    n_hosts: int
    n_switches: int
    sim_time_us: float
    conservation: dict
    drops: dict = field(default_factory=dict)
    hosts: list = field(default_factory=list)
    switches: list = field(default_factory=list)
    workload: Optional[dict] = None
    backpressure: Optional[dict] = None
    faults: Optional[dict] = None
    recovery: Optional[dict] = None

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        # Deferred: repro.bench pulls in repro.net, which subclasses
        # our Fabric -- importing it at module scope would be circular.
        from ..bench.report import to_json
        return to_json(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable summary of the run."""
        lines = [
            f"Cluster: {self.n_hosts} hosts, {self.n_switches} "
            f"switch(es), {self.topology}, "
            f"t={self.sim_time_us:.1f} us",
        ]
        conservation = self.conservation
        fault_terms = ""
        if conservation.get("corrupted") or \
                conservation.get("lost_to_faults"):
            fault_terms = (
                f"corrupted {conservation['corrupted']}  "
                f"lost-to-faults {conservation['lost_to_faults']}  ")
        lines.append(
            "  cells: injected {injected}  delivered {delivered}  "
            "queued {queued}  dropped {dropped}  {faults}-> "
            "conservation {verdict}".format(
                verdict="holds" if conservation["holds"] else "VIOLATED",
                faults=fault_terms,
                **{k: conservation[k] for k in
                   ("injected", "delivered", "queued", "dropped")}))
        if self.faults:
            fl = self.faults
            dead = sum(1 for s in fl["sites"].values() if s["dead"])
            lines.append(
                f"  faults: {fl['lost_to_faults']} cells lost, "
                f"{fl['corrupted_delivered']} delivered corrupted, "
                f"{fl['credit_cells_lost']} credit cells lost, "
                f"{dead} dead lane(s)")
        if self.recovery:
            rc = self.recovery
            counters = rc["counters"]
            line = (f"  recovery: mode {rc['mode']}, "
                    f"{counters['elements_failed']} element(s) declared "
                    f"dead, {counters['flows_rerouted']} flow(s) "
                    f"rerouted, {counters['flows_unrecovered']} "
                    f"unrecovered")
            times = rc["recovery_time_us"]
            if times:
                line += (f"; recovery time p50 {times['p50']:.1f} us, "
                         f"p99 {times['p99']:.1f} us")
            lines.append(line)
        if self.drops and (self.drops.get("no_route")
                           or self.drops.get("queue_full")):
            lines.append(
                f"  drops: no-route {self.drops['no_route']}  "
                f"queue-full {self.drops['queue_full']}")
        for sw in self.switches:
            deepest = max((p["max_queue_seen"] for p in sw["ports"]),
                          default=0)
            lines.append(
                f"  {sw['name']}: {sw['cells_switched']} switched, "
                f"{sw['cells_dropped']} dropped, "
                f"max port queue {deepest}")
        if self.backpressure:
            bp = self.backpressure
            stalls = sum(h["stalls"] for h in bp["hosts"])
            stall_us = sum(h["stall_time_us"] for h in bp["hosts"])
            lines.append(
                f"  backpressure: {bp['mode']}, {stalls} stalls, "
                f"{stall_us:.1f} us stalled")
        for host in self.hosts:
            lines.append(
                f"  {host['name']:<4} pdus tx/rx "
                f"{host['pdus_sent']:>5}/{host['pdus_received']:<5} "
                f"cells tx/rx {host['cells_sent']:>6}/"
                f"{host['cells_received']:<6} "
                f"irqs {host['interrupts_serviced']}")
        if self.workload:
            wl = self.workload
            lines.append(
                f"  workload: {wl['kind']}/{wl['pattern']}, "
                f"{wl['clients']} clients, "
                f"{wl['messages_received']}/{wl['messages_sent']} "
                f"messages, {wl['goodput_mbps']:.1f} Mbps goodput")
            if "latency_us" in wl:
                lat = wl["latency_us"]
                lines.append(
                    f"  latency us: min {lat['min']:.1f}  median "
                    f"{lat['median']:.1f}  p99 {lat['p99']:.1f}  "
                    f"max {lat['max']:.1f}")
        return "\n".join(lines)


def collect(fabric: Fabric,
            workload: Optional[WorkloadResult] = None) -> ClusterReport:
    """Snapshot a fabric (and optional workload outcome) into a
    :class:`ClusterReport`."""
    switches = []
    for sw in fabric.switches:
        switches.append({
            "name": sw.name,
            "cells_switched": sw.cells_switched,
            "cells_dropped": sw.cells_dropped,
            "dropped_no_route": sw.dropped_no_route,
            "dropped_queue_full": sw.dropped_queue_full,
            "cross_cells_injected": sw.cross_cells_injected,
            "cells_lost_to_faults": sw.cells_lost_to_faults,
            "cells_queued": sw.queued_cells(),
            "ports": [asdict(p) for p in sw.port_stats()],
        })
    return ClusterReport(
        topology=fabric.topology,
        n_hosts=len(fabric.hosts),
        n_switches=len(fabric.switches),
        sim_time_us=fabric.sim.now,
        conservation=fabric.conservation(),
        drops=fabric.drop_breakdown(),
        hosts=[asdict(host.stats()) for host in fabric.hosts],
        switches=switches,
        workload=workload.summary() if workload else None,
        backpressure=fabric.backpressure_stats(),
        faults=fabric.fault_stats(),
        recovery=fabric.recovery_stats(),
    )


__all__ = ["ClusterReport", "collect"]

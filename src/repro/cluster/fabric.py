"""A multi-host switched cell fabric.

The paper measures two workstations back-to-back; everything larger
was left to the network.  This module supplies that network: a
:class:`Fabric` instantiates N complete hosts and wires each host's
four-way striped uplink into an output-queued :class:`CellSwitch`
fabric described by a declarative :class:`~repro.topology.
TopologySpec` -- a flat full mesh (``topology="switched"``), a
leaf/spine Clos (``"clos"``), or a 3D torus (``"torus"``) -- with a
fabric-wide VCI allocation and ECMP routing manager on top.  Transit
paths may cross any number of switches; routes are installed hop by
hop along a deterministic content-hashed equal-cost path (see
:mod:`repro.topology.routing`).

Topology per host::

    host.txp -> StripedLink (4 lanes, skew) -> switch input
    switch output trunk (4 ports, one per lane) -> host.board

Each striped lane terminates in its own switch output port, so the
paper's third skew cause -- 'different queuing delays experienced by
cells on different links as they pass through distinct ports on the
switches' -- is emergent: any two flows sharing an output trunk
contend per lane, and the receiving board's reassembly strategies
must ride out whatever ordering that produces.

Flows are duplex and VCI-rewritten: the client sends on its own VCI,
the switch rewrites to the server's VCI, and the reply takes the
mirror route.  The switches route on input VCI alone, so the
:class:`VciAllocator` hands out fabric-unique identifiers.

The two-host, directly-wired topology the paper measured remains
available as ``topology="direct"``; :class:`repro.net.BackToBack` is
that special case.

Congestion control: ``backpressure="credit"`` gives every flow VCI a
receiver-driven credit window -- the final-hop switch port returns a
credit to the source host's :class:`~repro.cluster.backpressure.
CreditGate` per forwarded cell, so a full port pauses the offending
transmit processor instead of dropping.  ``backpressure="efci"`` is
the cheap alternative: congested ports mark cells, the destination
edge relays the mark, and the source pauses for a cooldown.
``drain_policy`` selects per-VCI round-robin ("rr") or the old single
shared FIFO ("fifo") at every switch output port.

Boundary channels
-----------------

In the switched topology, every interaction that crosses between
hosts -- an uplink cell arriving at its switch, a cell hopping an
inter-switch trunk, a credit returning to a source gate, an EFCI mark
relayed back -- travels over a *boundary channel* with an explicit
``prop_delay_us`` of latency and a content-based ordering key
``(tag, ids..., n)`` (``n`` a per-channel monotone counter stamped at
the single emitting site).  Two consequences:

* the control loops (credit return, EFCI relay) are no longer
  instantaneous, which is physically honest -- backpressure signals
  ride wires too;
* every cross-host event's position in the event queue is determined
  by *content*, not by scheduling order, which is what lets
  :mod:`repro.cluster.sharded` partition the hosts across K
  simulators and still produce bit-identical results: the
  propagation delay is the conservative lookahead, and the keys make
  the merge order at each boundary independent of which side
  scheduled the event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..atm.aal5 import SegmentMode
from ..atm.link import OC3_MBPS
from ..atm.striping import SkewModel, StripedLink
from ..analysis.sanitize import maybe_actor
from ..atm.switch import BACKPRESSURE_MODES, DRAIN_POLICIES, CellSwitch
from ..faults import FaultPlan, FaultSite
from ..hw.specs import STRIPE_LINKS, MachineSpec
from ..recovery import (RecoveryConfig, RecoveryManager, combine_partials,
                        summarize_recovery)
from ..sim import CellTrain, Fidelity, SimulationError, Simulator
from ..topology import TOPOLOGIES, TopologySpec, build_ecmp_tables, build_spec
from .backpressure import CreditGate

if TYPE_CHECKING:
    from ..net.host_node import Host

# Flow VCIs live below the ADC manager's range (0x4000..) and the
# switch cross-traffic fillers (0xFFF0..).
FIRST_FLOW_VCI = 0x1000
LAST_FLOW_VCI = 0x3FFF


class VciAllocator:
    """Fabric-wide virtual circuit identifiers, one per flow endpoint.

    The switches route on the input VCI alone (an output-queued switch
    has no notion of an input port), so every endpoint VCI must be
    unique across the whole fabric, not just per host.
    """

    def __init__(self, first: int = FIRST_FLOW_VCI,
                 last: int = LAST_FLOW_VCI):
        self._next = first
        self._last = last

    def alloc(self) -> int:
        if self._next > self._last:
            raise SimulationError("fabric VCI space exhausted")
        vci = self._next
        self._next += 1
        return vci


@dataclass(frozen=True)
class Flow:
    """A duplex path between two hosts, one VCI per direction.

    The source sends on ``src_vci`` (rewritten to ``dst_vci`` in the
    fabric); the destination replies on ``dst_vci`` (rewritten back).
    """

    src: int
    dst: int
    src_vci: int
    dst_vci: int


class _UplinkTrainPort:
    """One uplink lane's emission helper for the cell-train fast path.

    A :class:`~repro.atm.link.CellPipe` in fast mode calls back here
    as each cell finishes serializing: ``emit_single`` schedules the
    ordinary keyed boundary event (consuming the lane channel's next
    sequence number, exactly as the per-cell path would), ``open``
    starts a train whose event is keyed with the first cell's channel
    position, ``append_bump`` burns one sequence number for a cell the
    open train absorbed, and ``allowed`` asks the fabric whether this
    cell's switch-arrival would stay on the local simulator -- trains
    never cross shard boundaries.  ``allowed`` may depend on nothing
    but the cell's VCI: burst submission checks it once per PDU.
    """

    __slots__ = ("fabric", "host_index", "switch_index", "chan")

    def __init__(self, fabric: "Fabric", host_index: int,
                 switch_index: int, lane: int):
        self.fabric = fabric
        self.host_index = host_index
        self.switch_index = switch_index
        self.chan = ("up", host_index, lane)

    def allowed(self, cell) -> bool:
        return self.fabric._train_local(self.switch_index,
                                        self.host_index, cell)

    def emit_single(self, arrival: float, cell) -> None:
        fabric = self.fabric
        key = fabric._chan_key(*self.chan)
        fabric._emit_boundary(
            arrival, key,
            ("in", self.switch_index, self.host_index, cell))

    def open(self, arrival: float, cell) -> CellTrain:
        fabric = self.fabric
        key = fabric._chan_key(*self.chan)
        train = CellTrain([cell], [arrival], self.chan, key[-1])
        fabric._emit_train(arrival, key, train, self.switch_index,
                           self.host_index)
        return train

    def append_bump(self) -> None:
        # open() seeded the channel's counter; a bare increment is
        # the per-cell hot path's cheapest possible key burn.
        self.fabric._chan_seq[self.chan] += 1


class Fabric:
    """N hosts wired through one or more output-queued cell switches.

    All cross-shard effects are applied by the boundary dispatcher
    (``_apply_boundary`` / ``_apply_train``), the only context allowed
    to touch remote-visible state (RACE202); ``_dispatch_fused`` is
    the fused cell-train fold, where order-sensitive operations are
    banned (RACE203) because one event stands in for many cells.

    Boundary: _apply_boundary, _apply_train
    Fold: _dispatch_fused
    """

    def __init__(self, machines: Union[MachineSpec, Sequence[MachineSpec]],
                 n_hosts: Optional[int] = None, *,
                 n_switches: int = 1,
                 topology: str = "switched",
                 topology_spec: Optional[TopologySpec] = None,
                 pods: int = 4,
                 torus_dims: Optional[Sequence[int]] = None,
                 oversubscription: float = 2.0,
                 routing_seed: int = 1,
                 skew: Optional[SkewModel] = None,
                 segment_mode: SegmentMode = SegmentMode.IN_ORDER,
                 prop_delay_us: float = 2.0,
                 switching_delay_us: float = 1.0,
                 port_rate_mbps: float = OC3_MBPS,
                 port_queue_cells: int = 256,
                 backpressure: str = "none",
                 credit_window_cells: int = 64,
                 efci_threshold_cells: Optional[int] = None,
                 efci_pause_us: float = 60.0,
                 drain_policy: str = "rr",
                 trains: bool = True,
                 faults: Optional[FaultPlan] = None,
                 recovery: Optional[RecoveryConfig] = None,
                 credit_regen_timeout_us: Optional[float] = None,
                 credit_watchdog_us: Optional[float] = None,
                 fidelity: Optional[Fidelity] = None,
                 names: Optional[Sequence[str]] = None,
                 **host_kw):
        if isinstance(machines, MachineSpec):
            machines = [machines] * (n_hosts if n_hosts else 2)
        machines = list(machines)
        if n_hosts is not None and n_hosts != len(machines):
            raise SimulationError(
                f"n_hosts={n_hosts} disagrees with {len(machines)} machines")
        if len(machines) < 2:
            raise SimulationError("a fabric needs at least two hosts")
        if topology not in TOPOLOGIES:
            raise SimulationError(
                f"unknown topology {topology!r}; choose from "
                f"{TOPOLOGIES}")
        if topology == "direct" and len(machines) != 2:
            raise SimulationError(
                "direct topology is the two-host special case")
        if backpressure not in BACKPRESSURE_MODES:
            raise SimulationError(
                f"unknown backpressure mode {backpressure!r}; "
                f"choose from {BACKPRESSURE_MODES}")
        if drain_policy not in DRAIN_POLICIES:
            raise SimulationError(
                f"unknown drain policy {drain_policy!r}; "
                f"choose from {DRAIN_POLICIES}")
        if topology == "direct" and backpressure != "none":
            raise SimulationError(
                "backpressure needs a switched fabric; the direct "
                "topology has no ports to protect")

        if faults is not None and faults.port_kills \
                and topology == "direct":
            raise SimulationError(
                "port kills need a switched fabric; the direct "
                "topology has no switch ports")
        if recovery is not None and recovery.mode != "off" \
                and topology == "direct":
            raise SimulationError(
                "recovery needs a switched fabric; the direct "
                "topology has no alternate paths")

        self.sim = Simulator()
        self.topology = topology
        # The declarative shape every non-direct fabric is wired from;
        # rebuilt from the same parameters on every shard, so trunk
        # numbering, routes, and partitions agree without coordination.
        self.topo: Optional[TopologySpec] = None
        if topology != "direct":
            if topology_spec is not None:
                self.topo = topology_spec
                self.topo.validate()
            else:
                self.topo = build_spec(
                    topology, len(machines), n_switches=n_switches,
                    pods=pods, dims=torus_dims,
                    oversubscription=oversubscription)
            if self.topo.n_hosts != len(machines):
                raise SimulationError(
                    f"topology spec covers {self.topo.n_hosts} hosts "
                    f"but the fabric has {len(machines)}")
        self.routing_seed = routing_seed
        self._ecmp = (build_ecmp_tables(self.topo)
                      if self.topo is not None else None)
        self._init_ownership()
        self.backpressure = backpressure
        self.credit_window_cells = credit_window_cells
        self.efci_pause_us = efci_pause_us
        self.prop_delay_us = prop_delay_us
        self.drain_policy = drain_policy
        # Cell-train fast path (repro.sim.trains): bursts of
        # contiguous cells ride single events on uncontended segments.
        # The direct topology keeps the per-cell pump -- it has no
        # boundary channels for trains to ride.
        self.trains = bool(trains) and topology != "direct"
        # host index -> train-aware edge sink (benchmark harnesses):
        # replaces per-cell delivery events for fused trains.
        self._train_sinks: dict[int, object] = {}
        self.faults = faults
        # Recovery control plane (repro.recovery): constructed last,
        # after wiring and fault scheduling, but the attribute must
        # exist first -- route installation and boundary dispatch
        # consult it.
        self.recovery: Optional[RecoveryManager] = None
        self._recovery_cfg = recovery
        # Driver sessions by current wire VCI, so a reroute can
        # retarget the sender in place.
        self._tx_sessions: dict[int, object] = {}
        # dead-edge tuple -> EcmpTables with those links masked.
        self._masked_ecmp_cache: dict[tuple, object] = {}
        self.credit_regen_timeout_us = credit_regen_timeout_us
        self.credit_watchdog_us = credit_watchdog_us
        # Fault-site registry: site name -> FaultSite on links this
        # fabric instance owns (a shard registers only its slice).
        self._fault_sites: dict[str, FaultSite] = {}
        self._uplink_sites: list[FaultSite] = []
        self.credit_cells_lost = 0
        self.gates: list[Optional[CreditGate]] = []
        # delivered (rewritten) VCI -> (source host, source VCI): the
        # reverse map the EFCI relay uses to find whom to pause.
        self._efci_sources: dict[int, tuple[int, int]] = {}
        self.skew = skew
        self.segment_mode = segment_mode
        if names is None:
            names = [f"h{i}" for i in range(len(machines))]
        self.names = list(names)
        self.hosts: list[Optional[Host]] = [
            self._make_host(i, spec, names[i], fidelity, host_kw)
            for i, spec in enumerate(machines)
        ]
        self.vcis = VciAllocator()
        self.flows: list[Flow] = []
        self.switches: list[CellSwitch] = []
        self.uplinks: list[StripedLink] = []
        # host index -> (switch index, trunk id of its downlink).
        self._attach: list[tuple[int, int]] = []
        # (from switch, to switch) -> trunk id on the 'from' switch.
        self._interswitch: dict[tuple[int, int], int] = {}
        # (switch, trunk) -> where the trunk leads: ("host", i) for a
        # downlink, ("switch", t) for an inter-switch trunk.  A sharded
        # fabric maps this to the shard that owns the trunk's ports.
        self._trunk_dest: dict[tuple[int, int], tuple[str, int]] = {}
        # Per-boundary-channel emission counters (the `n` in the
        # ordering keys).
        self._chan_seq: dict[tuple, int] = {}
        # Cells emitted onto a delayed inter-switch hop (or sitting in
        # a shard mailbox) and not yet absorbed by the far switch.
        # Without this the conservation identity would double-miss
        # them: the emitting switch already counted them forwarded, the
        # receiving one hasn't seen them yet.
        self._isw_in_flight = 0
        self._delivered = [0] * len(self.hosts)
        # Delivered cells whose payload a fault site mutated; counted
        # separately so the conservation identity can name them.
        self._corrupted = [0] * len(self.hosts)
        self._uplink_arrived = [0] * len(self.hosts)
        # host index -> its striped uplink (owned hosts only).
        self._uplink_by_host: dict[int, StripedLink] = {}

        if topology == "direct":
            self._wire_direct(prop_delay_us)
        else:
            self._wire_from_spec(self.topo, prop_delay_us,
                                 switching_delay_us, port_rate_mbps,
                                 port_queue_cells, efci_threshold_cells)
        self._schedule_faults()
        if recovery is not None and recovery.mode != "off":
            self.recovery = RecoveryManager(self, recovery)
            self.recovery.arm()

    # -- sharding hooks -----------------------------------------------------------
    #
    # The base fabric owns everything; repro.cluster.sharded overrides
    # these so each shard instantiates only its slice of the hosts and
    # trunk ports while running the *same* construction sequence (VCI
    # allocation, trunk numbering, route installation stay global).

    def _make_host(self, index: int, spec: MachineSpec, name: str,
                   fidelity, host_kw: dict):
        # Deferred: repro.net.network subclasses Fabric, so importing
        # repro.net at module scope here would be circular.
        from ..net.host_node import Host
        return Host(self.sim, spec, name=name, fidelity=fidelity,
                    **host_kw)

    def _init_ownership(self) -> None:
        """Hook: a shard computes its topology-aware partition here
        (before any host exists); the base fabric owns everything."""

    def owns_host(self, index: int) -> bool:
        """Does this fabric instantiate host ``index``?"""
        return True

    def _owns_interswitch(self, s: int, t: int) -> bool:
        """Does this fabric own the ports of trunk ``s -> t``?"""
        return True

    def _chan_key(self, tag: str, *ids) -> tuple:
        """Next ordering key on boundary channel ``(tag, *ids)``."""
        chan = (tag,) + ids
        n = self._chan_seq.get(chan, 0)
        self._chan_seq[chan] = n + 1
        return chan + (n,)

    def _emit_boundary(self, when: float, key: tuple, msg: tuple) -> None:
        """Deliver boundary message ``msg`` at ``when``.

        The base fabric schedules it on its own simulator; a shard
        routes it to the owning shard's mailbox instead.  ``when`` is
        always >= emission time + ``prop_delay_us`` -- the lookahead
        that makes conservative windowing sound.
        """
        self.sim.call_at(when, lambda: self._apply_boundary(msg), key=key)

    def _apply_boundary(self, msg: tuple) -> None:
        """Execute a boundary message on the receiving side."""
        kind = msg[0]
        if kind == "in":
            _, switch_index, host_index, cell = msg
            if host_index >= 0:
                self._uplink_arrived[host_index] += 1
            else:
                self._isw_in_flight -= 1
            if self.recovery is not None:
                self.recovery.note_arrival(switch_index, cell.vci)
            self.switches[switch_index].input_cell(cell)
        elif kind == "refill":
            _, src, vci = msg
            self.gates[src].refill(vci)
        elif kind == "pause":
            _, src, vci = msg
            self.gates[src].pause(vci, self.sim.now + self.efci_pause_us)
        elif kind == "dead":
            self.recovery.apply_dead(*msg[1:])
        else:
            raise SimulationError(f"unknown boundary message {msg!r}")

    def _broadcast_recovery(self, when: float, chan: tuple,
                            msg: tuple) -> None:
        """Fan a recovery declaration out to every fabric instance.
        The base fabric is the whole fabric, so the broadcast is one
        local event; a shard also mails it to its peers.  ``when`` is
        detection time + the control delay, which the manager clamps
        to ``prop_delay_us`` -- the window lookahead."""
        key = self._chan_key(*chan)
        self.sim.call_at(when, lambda: self._apply_boundary(msg), key=key)

    # -- cell trains --------------------------------------------------------------

    def _train_local(self, switch_index: int, host_index: int,
                     cell) -> bool:
        """May a train carry this cell to switch ``switch_index``?
        The base fabric owns everything, so always; a shard permits it
        only when the arrival would stay on its own simulator."""
        return True

    def _emit_train(self, when: float, key: tuple, train: CellTrain,
                    switch_index: int, host_index: int) -> None:
        """Schedule a train's single arrival event.  Always local:
        trains form only when ``_train_local`` said the arrival stays
        on this simulator."""
        self.sim.call_at(
            when,
            lambda: self._apply_train(train, switch_index, host_index),
            key=key)

    def _apply_train(self, train: CellTrain, switch_index: int,
                     host_index: int) -> None:
        """A train's arrival event: fuse it into the switch, or expand
        it back into the per-cell events the plain path would have run
        (same times, same ordering keys)."""
        train.fired = True
        # The commit event *is* the first cell's arrival (same time,
        # same key), so convergence stamps agree with the per-cell
        # path whether or not the train fuses.
        if self.recovery is not None:
            self.recovery.note_arrival(switch_index,
                                       train.cells[0].vci)
        with maybe_actor("boundary.train-fold"):
            result = self.switches[switch_index].input_train(train)
        if result is None:
            # This event *is* the first cell's arrival; the rest get
            # their own keyed events at their recorded times.
            self._expand_fire(("in", switch_index, host_index,
                               train.cells[0]))
            for i in range(1, len(train.cells)):
                self.sim.call_at(
                    train.times[i],
                    lambda m=("in", switch_index, host_index,
                              train.cells[i]): self._expand_fire(m),
                    key=train.cell_key(i))
            return
        n = len(train.cells)
        if host_index >= 0:
            self._uplink_arrived[host_index] += n
        else:
            self._isw_in_flight -= n
        with maybe_actor("boundary.train-fold"):
            self._dispatch_fused(switch_index, *result)

    def _expand_fire(self, msg) -> None:
        """One expanded cell's arrival.  The pointer-ownership
        sanitizer attributes everything downstream to the train
        expansion path (a sub-actor of the boundary dispatcher)."""
        with maybe_actor("boundary.train-expand"):
            self._apply_boundary(msg)

    def _dispatch_fused(self, switch_index: int, trunk_id: int,
                        lane: int, cells_out: list,
                        deps: list) -> None:
        """Downstream of a fused commit: the cells have left the
        switch at the departure times the drain loop would have
        produced; carry them over the trunk."""
        kind, dest = self._trunk_dest[(switch_index, trunk_id)]
        n = len(cells_out)
        if kind == "host":
            # Edge counters move at commit time so the conservation
            # identity holds at every instant between here and the
            # per-cell departures.
            for cell in cells_out:
                if cell.corrupted:
                    self._corrupted[dest] += 1
                else:
                    self._delivered[dest] += 1
            sink = self._train_sinks.get(dest)
            if sink is not None:
                # Benchmark-grade edge: the per-cell delivery events
                # fold too.
                self.sim.events_absorbed += n
                sink(cells_out, deps)
                return
            board_deliver = self.hosts[dest].board.deliver_cell
            hook = self.switches[switch_index].forward_hook(
                trunk_id, cells_out[0].vci)
            for cell, dep in zip(cells_out, deps):
                self.sim.call_at(
                    dep, self._edge_fire(cell, board_deliver, hook))
            return
        # Inter-switch hop: the n drain events fold into the commit
        # (the next hop's arrival is one train event or the exact
        # per-cell boundary messages).
        self._isw_in_flight += n
        self.sim.events_absorbed += n
        prop = self.prop_delay_us
        chan = ("isw", switch_index, dest, lane)
        if self._train_local(dest, -1, cells_out[0]):
            key = self._chan_key(*chan)
            train = CellTrain([cells_out[0]], [deps[0] + prop], chan,
                              key[-1])
            for i in range(1, n):
                self._chan_key(*chan)
                train.cells.append(cells_out[i])
                train.times.append(deps[i] + prop)
            self._emit_train(train.times[0], key, train, dest, -1)
        else:
            for cell, dep in zip(cells_out, deps):
                key = self._chan_key(*chan)
                self._emit_boundary(dep + prop, key,
                                    ("in", dest, -1, cell))

    def _edge_fire(self, cell, board_deliver, hook):
        """One fused cell's delivery event: everything the drain
        loop's event did at this timestamp except the counting, which
        moved to commit time."""
        def fire() -> None:
            with maybe_actor("boundary.train-edge"):
                if cell.efci:
                    self._note_efci(cell.vci)
                board_deliver(cell)
                if hook is not None:
                    hook()
        return fire

    def set_train_sink(self, host_index: int, sink) -> None:
        """Replace per-cell edge delivery for fused trains into
        ``host_index`` with one ``sink(cells, deps)`` call at commit
        time -- the benchmark harness's zero-event edge.  Only an
        open-loop fabric qualifies: credit and EFCI edges carry
        per-cell control-plane work that must run at departure time."""
        if self.backpressure != "none":
            raise SimulationError(
                "train sinks need backpressure='none': credit and "
                "EFCI edges do per-cell control-plane work")
        self._train_sinks[host_index] = sink

    # -- wiring ------------------------------------------------------------------

    def _wire_direct(self, prop_delay_us: float) -> None:
        """Two hosts joined by striped links in both directions --
        the paper's measurement topology, no switch in the middle."""
        a, b = self.hosts
        skew_ab = self.skew
        skew_ba = self.skew.clone(1) if self.skew is not None else None
        link_ab = StripedLink(self.sim, self._deliver_fn(1), skew=skew_ab,
                              prop_delay_us=prop_delay_us,
                              name=f"{a.name}{b.name}")
        link_ba = StripedLink(self.sim, self._deliver_fn(0), skew=skew_ba,
                              prop_delay_us=prop_delay_us,
                              name=f"{b.name}{a.name}")
        self.uplinks = [link_ab, link_ba]
        self._uplink_by_host = {0: link_ab, 1: link_ba}
        self._attach_fault_sites(0, link_ab)
        self._attach_fault_sites(1, link_ba)
        a.connect(link_ab, segment_mode=self.segment_mode)
        b.connect(link_ba, segment_mode=self.segment_mode)

    def _wire_from_spec(self, topo: TopologySpec, prop_delay_us: float,
                        switching_delay_us: float, port_rate_mbps: float,
                        port_queue_cells: int,
                        efci_threshold_cells: Optional[int]) -> None:
        n_switches = topo.n_switches
        self.switches = [
            CellSwitch(self.sim, name=topo.switch_names[k],
                       port_rate_mbps=port_rate_mbps,
                       switching_delay_us=switching_delay_us,
                       port_queue_cells=port_queue_cells,
                       backpressure=self.backpressure,
                       drain_policy=self.drain_policy,
                       efci_threshold_cells=efci_threshold_cells)
            for k in range(n_switches)
        ]
        next_trunk = [0] * n_switches

        # Downlinks: one output trunk per host, lanes matching its
        # striped link so cell i keeps riding lane i mod 4.  Trunk
        # numbering must not depend on ownership -- every shard walks
        # the same sequence.
        for i in range(len(self.hosts)):
            k = topo.host_attach[i]
            trunk = next_trunk[k]
            next_trunk[k] += 1
            if self.owns_host(i):
                self.switches[k].add_trunk(trunk, self._deliver_fn(i))
            else:
                self.switches[k].add_remote_trunk(trunk)
            self._attach.append((k, trunk))
            self._trunk_dest[(k, trunk)] = ("host", i)

        # Inter-switch trunks: one per directed link in the spec
        # (a full mesh for the flat topology, leaf-spine cables for
        # Clos, lattice neighbors for the torus).  The hop has real
        # propagation delay (it is a link like any other), delivered
        # through a keyed boundary channel.
        for s, t in topo.links:
            trunk = next_trunk[s]
            next_trunk[s] += 1
            if self._owns_interswitch(s, t):
                self.switches[s].add_trunk(trunk,
                                           self._isw_deliver_fn(s, t))
            else:
                self.switches[s].add_remote_trunk(trunk)
            self._interswitch[(s, t)] = trunk
            self._trunk_dest[(s, trunk)] = ("switch", t)

        # Uplinks: each host's striped link terminates at its switch.
        # Disjoint seed offsets keep per-lane RNG streams independent
        # across hosts.  Each lane's pipe hands finished arrivals to
        # the boundary scheduler instead of the raw event queue.
        for i in range(len(self.hosts)):
            if not self.owns_host(i):
                continue
            host = self.hosts[i]
            k = self._attach[i][0]
            skew = (self.skew.clone(i * STRIPE_LINKS)
                    if self.skew is not None else None)
            uplink = StripedLink(self.sim, self._unexpected_delivery,
                                 skew=skew, prop_delay_us=prop_delay_us,
                                 name=f"{host.name}.up")
            for pipe in uplink.pipes:
                self._hook_uplink_pipe(i, k, pipe)
                if self.trains:
                    pipe.enable_trains(
                        _UplinkTrainPort(self, i, k, pipe.link_id))
            self.uplinks.append(uplink)
            self._uplink_by_host[i] = uplink
            self._attach_fault_sites(i, uplink)
            host.connect(uplink, segment_mode=self.segment_mode)

        # Flow-control gates: one per host, consulted by its transmit
        # processor before every cell; per-flow windows are installed
        # as flows open.
        if self.backpressure != "none":
            for host in self.hosts:
                if host is None:
                    self.gates.append(None)
                    continue
                gate = CreditGate(
                    self.sim, name=f"{host.name}.gate",
                    regen_timeout_us=self.credit_regen_timeout_us,
                    watchdog_us=self.credit_watchdog_us)
                self.gates.append(gate)
                host.txp.credit_gate = gate

    # -- fault injection ----------------------------------------------------------

    def _attach_fault_sites(self, host_index: int, uplink) -> None:
        """Instantiate the fault plan on every lane of one uplink."""
        if self.faults is None:
            return
        for pipe in uplink.pipes:
            site = self.faults.site(f"up.h{host_index}.l{pipe.link_id}")
            pipe.fault_site = site
            self._fault_sites[site.name] = site
            self._uplink_sites.append(site)

    def _schedule_faults(self) -> None:
        """Arm the plan's scheduled events on links/ports this fabric
        owns.  Keys are content-based (``("fault", kind, ids...)``) so
        a shard orders them identically to the single-process run."""
        plan = self.faults
        if plan is None:
            return
        for i, flap in enumerate(plan.flaps):
            self._check_lane(flap.host, flap.lane, "flap")
            if not self.owns_host(flap.host):
                continue
            site = self._fault_sites[f"up.h{flap.host}.l{flap.lane}"]
            until = flap.at_us + flap.duration_us
            site.note_scheduled(flap.at_us)
            self.sim.call_at(
                flap.at_us,
                lambda s=site, u=until, a=flap.at_us: s.flap(u, a),
                key=("fault", "flap", flap.host, flap.lane, i))
        for i, kill in enumerate(plan.lane_kills):
            self._check_lane(kill.host, kill.lane, "kill")
            if not self.owns_host(kill.host):
                continue
            site = self._fault_sites[f"up.h{kill.host}.l{kill.lane}"]
            uplink = self._uplink_by_host[kill.host]
            site.note_scheduled(kill.at_us)

            def fire_kill(s=site, up=uplink, lane=kill.lane,
                          a=kill.at_us) -> None:
                s.kill(a)
                up.degrade(lane)

            self.sim.call_at(kill.at_us, fire_kill,
                             key=("fault", "kill", kill.host, kill.lane,
                                  i))
        for i, pk in enumerate(plan.port_kills):
            if not 0 <= pk.switch < len(self.switches):
                raise SimulationError(
                    f"fault plan kills a port on switch {pk.switch}; "
                    f"the fabric has {len(self.switches)}")
            sw = self.switches[pk.switch]
            if not sw.has_trunk(pk.trunk):
                if sw.has_remote_trunk(pk.trunk):
                    continue    # another shard owns these ports
                raise SimulationError(
                    f"fault plan kills unknown trunk {pk.trunk} on "
                    f"switch {pk.switch}")
            sw.arm_port_kill(pk.trunk, pk.lane, pk.at_us)
            self.sim.call_at(
                pk.at_us,
                lambda s=sw, t=pk.trunk, ln=pk.lane: s.kill_port(t, ln),
                key=("fault", "port", pk.switch, pk.trunk, pk.lane, i))

    def _check_lane(self, host: int, lane: int, what: str) -> None:
        if not 0 <= host < len(self.hosts):
            raise SimulationError(
                f"fault plan {what}s host {host}; the fabric has "
                f"{len(self.hosts)} hosts")
        if not 0 <= lane < STRIPE_LINKS:
            raise SimulationError(
                f"fault plan {what}s lane {lane}; uplinks have "
                f"{STRIPE_LINKS} lanes")

    def _deliver_fn(self, host_index: int):
        """Count cells crossing the fabric boundary into one host."""
        board_deliver = self.hosts[host_index].board.deliver_cell

        def deliver(cell) -> None:
            if cell.corrupted:
                self._corrupted[host_index] += 1
            else:
                self._delivered[host_index] += 1
            if cell.efci:
                self._note_efci(cell.vci)
            board_deliver(cell)

        return deliver

    def _note_efci(self, out_vci: int) -> None:
        """The destination edge's half of the EFCI loop: relay a
        congestion mark back to the flow's source, pausing it.  The
        relay rides a boundary channel, so the pause lands one
        propagation delay after the marked cell arrived."""
        source = self._efci_sources.get(out_vci)
        if source is None:
            return
        host_index, src_vci = source
        key = self._chan_key("efci", out_vci)
        self._emit_boundary(self.sim.now + self.prop_delay_us, key,
                            ("pause", host_index, src_vci))

    def _hook_uplink_pipe(self, host_index: int, switch_index: int,
                          pipe) -> None:
        """Route one uplink lane's arrivals through the boundary
        scheduler: the pipe computes the (in-order, skewed) arrival
        time, the boundary channel delivers the switch-input event."""
        lane = pipe.link_id

        def schedule(arrival: float, cell) -> None:
            key = self._chan_key("up", host_index, lane)
            self._emit_boundary(arrival, key,
                                ("in", switch_index, host_index, cell))

        pipe.schedule_delivery = schedule

    def _unexpected_delivery(self, cell) -> None:
        raise SimulationError(
            "uplink pipe bypassed its boundary scheduler")

    def _isw_deliver_fn(self, s: int, t: int):
        """Delivery side of inter-switch trunk ``s -> t``: after the
        drain, the cell still has a propagation delay of wire before
        the far switch sees it."""

        def deliver(cell) -> None:
            key = self._chan_key("isw", s, t, cell.link_id)
            self._isw_in_flight += 1
            self._emit_boundary(self.sim.now + self.prop_delay_us, key,
                                ("in", t, -1, cell))

        return deliver

    # -- flow management ------------------------------------------------------------

    def open_flow(self, src: int, dst: int,
                  src_vci: Optional[int] = None,
                  dst_vci: Optional[int] = None) -> Flow:
        """Allocate VCIs and install duplex routes for ``src <-> dst``.

        Explicit VCIs let callers bind an endpoint that already owns
        its identifier (an ADC grant, say); by default both come from
        the fabric allocator.
        """
        if src == dst or not (0 <= src < len(self.hosts)) \
                or not (0 <= dst < len(self.hosts)):
            raise SimulationError(f"bad flow endpoints {src}->{dst}")
        if src_vci is None:
            src_vci = self.vcis.alloc()
        if dst_vci is None:
            # No switch means no VCI rewriting: on the direct wiring
            # both ends must speak the same identifier.
            dst_vci = (src_vci if self.topology == "direct"
                       else self.vcis.alloc())
        if self.topology != "direct":
            self._install_route(src, dst, src_vci, dst_vci)
            self._install_route(dst, src, dst_vci, src_vci)
            if self.backpressure != "none":
                self._plumb_backpressure(src, dst, src_vci, dst_vci)
                self._plumb_backpressure(dst, src, dst_vci, src_vci)
        flow = Flow(src=src, dst=dst, src_vci=src_vci, dst_vci=dst_vci)
        self.flows.append(flow)
        return flow

    def _install_route(self, src: int, dst: int, in_vci: int,
                       out_vci: int) -> None:
        """Route ``in_vci`` (sent by ``src``) to ``dst``, rewriting to
        ``out_vci`` on the final hop.

        The path walks the ECMP tables: at every switch on the way the
        next hop among equal-cost candidates is picked by a content
        hash of (flow VCI, routing seed, position), so a multipath
        fabric spreads flows across spines/torus axes while every
        shard -- and every rerun -- derives the identical path.  The
        input VCI is carried unrewritten across transit hops; only the
        final downlink rewrites to ``out_vci``.
        """
        s_sw, _ = self._attach[src]
        d_sw, d_trunk = self._attach[dst]
        path = self._ecmp.path(s_sw, d_sw, in_vci, self.routing_seed)
        for a, b in zip(path, path[1:]):
            trunk = self._interswitch[(a, b)]
            self.switches[a].add_route(in_vci, trunk, in_vci)
        self.switches[d_sw].add_route(in_vci, d_trunk, out_vci)
        if self.recovery is not None:
            hops = tuple([(a, self._interswitch[(a, b)])
                          for a, b in zip(path, path[1:])]
                         + [(d_sw, d_trunk)])
            self.recovery.register_direction(src, dst, in_vci, out_vci,
                                             hops)

    def _masked_ecmp(self, dead_edges: tuple):
        """ECMP tables with the given directed links masked out,
        cached per mask (reroute storms re-resolve many flows against
        the same surviving graph)."""
        tables = self._masked_ecmp_cache.get(dead_edges)
        if tables is None:
            tables = build_ecmp_tables(self.topo, dead_edges)
            self._masked_ecmp_cache[dead_edges] = tables
        return tables

    def register_tx_session(self, vci: int, session) -> None:
        """Remember the driver session sending on ``vci`` so a path
        failover can retarget it to a fresh wire VCI in place."""
        self._tx_sessions[vci] = session

    def _apply_reroute(self, src: int, dst: int, old_vci: int,
                       new_vci: int, out_vci: int) -> None:
        """Cut one direction of a flow over to its re-established VC.
        The route tables were already installed on every instance;
        this is the host-ownership-guarded half: retarget the sender's
        driver session, migrate its cell sequence numbering, and move
        the backpressure plumbing to the new wire VCI."""
        host = self.hosts[src]
        if host is not None:
            host.txp.migrate_seq(old_vci, new_vci)
            session = self._tx_sessions.pop(old_vci, None)
            if session is not None:
                session.vci = new_vci
                self._tx_sessions[new_vci] = session
        if self.backpressure == "none":
            return
        gate = self.gates[src]
        if gate is not None:
            gate.retire_vci(old_vci)
            gate.open_vci(new_vci,
                          window=(self.credit_window_cells
                                  if self.backpressure == "credit"
                                  else None))
        d_sw, d_trunk = self._attach[dst]
        if self.backpressure == "credit":
            if self.owns_host(dst):
                self.switches[d_sw].on_cell_forwarded(
                    d_trunk, out_vci,
                    self._credit_return_fn(src, new_vci))
        else:
            self._efci_sources[out_vci] = (src, new_vci)

    def _plumb_backpressure(self, src: int, dst: int, in_vci: int,
                            out_vci: int) -> None:
        """Wire one direction of a flow into the control plane.

        Credit mode: the source's gate gets a window on ``in_vci`` and
        the final-hop port (the destination's downlink trunk, where the
        cell carries ``out_vci``) returns a credit per forwarded cell;
        the credit rides a boundary channel back, so it lands one
        propagation delay later.  EFCI mode: emission is uncounted, but
        delivered cells carrying a congestion mark pause the source for
        a cooldown.
        """
        gate = self.gates[src]
        d_sw, d_trunk = self._attach[dst]
        if self.backpressure == "credit":
            if gate is not None:
                gate.open_vci(in_vci, window=self.credit_window_cells)
            if self.owns_host(dst):
                self.switches[d_sw].on_cell_forwarded(
                    d_trunk, out_vci, self._credit_return_fn(src, in_vci))
        else:
            if gate is not None:
                gate.open_vci(in_vci, window=None)
            self._efci_sources[out_vci] = (src, in_vci)

    def _credit_return_fn(self, src: int, in_vci: int):
        def credit_return() -> None:
            # The channel counter is consumed even for a credit cell
            # the fault plan eats, so the fate of the nth credit is
            # content-addressed and shard-independent.
            key = self._chan_key("credit", in_vci)
            if (self.faults is not None
                    and self.faults.credit_lost(in_vci, key[-1])):
                self.credit_cells_lost += 1
                return
            self._emit_boundary(self.sim.now + self.prop_delay_us, key,
                                ("refill", src, in_vci))

        return credit_return

    def open_raw_flow(self, src: int, dst: int, echo_dst: bool = False,
                      **kw):
        """Raw-ATM test programs on both ends of a new flow.

        On a shard, the endpoint apps come back as None for hosts the
        shard does not own (the flow's routes are still installed).
        """
        flow = self.open_flow(src, dst)
        app_s = app_d = None
        if self.hosts[src] is not None:
            app_s, path_s = self.hosts[src].open_raw_path(
                vci=flow.src_vci, **kw)
            self.register_tx_session(flow.src_vci, path_s.sessions[0])
        if self.hosts[dst] is not None:
            app_d, path_d = self.hosts[dst].open_raw_path(
                vci=flow.dst_vci, echo=echo_dst, **kw)
            self.register_tx_session(flow.dst_vci, path_d.sessions[0])
        return app_s, app_d, flow

    def open_udp_flow(self, src: int, dst: int,
                      src_port: Optional[int] = None,
                      dst_port: Optional[int] = None,
                      echo_dst: bool = False, **kw):
        """UDP/IP test programs on both ends of a new flow."""
        flow = self.open_flow(src, dst)
        if src_port is None:
            src_port = 5000 + 2 * (len(self.flows) - 1)
        if dst_port is None:
            dst_port = src_port + 1
        app_s = app_d = None
        if self.hosts[src] is not None:
            app_s, path_s = self.hosts[src].open_udp_path(
                src_port, dst_port, vci=flow.src_vci, **kw)
            self.register_tx_session(flow.src_vci, path_s.sessions[0])
        if self.hosts[dst] is not None:
            app_d, path_d = self.hosts[dst].open_udp_path(
                dst_port, src_port, vci=flow.dst_vci, echo=echo_dst, **kw)
            self.register_tx_session(flow.dst_vci, path_d.sessions[0])
        return app_s, app_d, flow

    # -- accounting -----------------------------------------------------------------

    def cells_injected(self) -> int:
        """Cells handed to the fabric: uplink submissions plus any
        cross traffic injected straight into switch ports."""
        injected = sum(link.cells_sent for link in self.uplinks)
        injected += sum(sw.cross_cells_injected for sw in self.switches)
        return injected

    def cells_delivered(self) -> int:
        """Cells handed to a host board intact (drops beyond that
        boundary are the host's, counted in its own stats)."""
        return sum(self._delivered)

    def cells_corrupted(self) -> int:
        """Cells handed to a host board with a fault-flipped payload
        bit -- the receiver's AAL5 CRC discards the enclosing PDU."""
        return sum(self._corrupted)

    def cells_lost_to_faults(self) -> int:
        """Cells the fault plan destroyed outright: eaten on a down or
        lossy link, or sunk by a killed switch port."""
        return (sum(site.cells_lost for site in self._uplink_sites)
                + sum(sw.cells_lost_to_faults for sw in self.switches))

    def cells_dropped(self) -> int:
        """Cells the fabric lost: unrouted VCIs and full ports."""
        return sum(sw.cells_dropped for sw in self.switches)

    def drop_breakdown(self) -> dict:
        """Losses split by cause, so the report distinguishes config
        errors (no route) from congestion (queue full)."""
        return {
            "no_route": sum(sw.dropped_no_route for sw in self.switches),
            "queue_full": sum(sw.dropped_queue_full
                              for sw in self.switches),
        }

    def backpressure_stats(self) -> Optional[dict]:
        """Flow-control counters for the cluster report, or None when
        the fabric runs open loop (mode "none" or direct topology)."""
        if self.backpressure == "none":
            return None
        stats: dict = {"mode": self.backpressure}
        if self.backpressure == "credit":
            stats["credit_window_cells"] = self.credit_window_cells
            stats["regen_timeout_us"] = self.credit_regen_timeout_us
            stats["watchdog_us"] = self.credit_watchdog_us
        else:
            stats["efci_pause_us"] = self.efci_pause_us
        stats["hosts"] = [
            {"name": host.name, **gate.stats()}
            for host, gate in zip(self.hosts, self.gates, strict=True)
            if host is not None
        ]
        return stats

    def cells_queued(self) -> int:
        """Cells currently inside the fabric: in flight on uplinks
        plus held in switch ports.  Measured from link and switch
        counters, independently of the delivery count -- which is what
        makes the conservation identity a real invariant."""
        pipe_lost = sum(site.cells_lost for site in self._uplink_sites)
        if self.topology == "direct":
            # No switch: in flight is everything not yet delivered,
            # corrupted-and-delivered, or eaten by a fault site.
            return (sum(link.cells_sent for link in self.uplinks)
                    - self.cells_delivered() - self.cells_corrupted()
                    - pipe_lost)
        in_flight = (sum(link.cells_sent for link in self.uplinks)
                     - sum(self._uplink_arrived) - pipe_lost)
        return (in_flight + self._isw_in_flight
                + sum(sw.queued_cells() for sw in self.switches))

    def conservation(self) -> dict:
        """The cell-conservation identity, extended for faults:
        injected == delivered + corrupted + queued + dropped
        + lost_to_faults (the last two fault terms are zero on a
        perfect fabric, recovering the original law)."""
        injected = self.cells_injected()
        delivered = self.cells_delivered()
        corrupted = self.cells_corrupted()
        queued = self.cells_queued()
        dropped = self.cells_dropped()
        lost = self.cells_lost_to_faults()
        return {
            "injected": injected,
            "delivered": delivered,
            "corrupted": corrupted,
            "queued": queued,
            "dropped": dropped,
            "lost_to_faults": lost,
            "holds": injected == (delivered + corrupted + queued
                                  + dropped + lost),
        }

    def recovery_stats(self) -> Optional[dict]:
        """Recovery block for the cluster report, or None when the
        control plane is off.  Routed through the same
        combine/summarize pair the sharded merge uses, so both paths
        serialize identically."""
        if self.recovery is None:
            return None
        return summarize_recovery(
            self.recovery.cfg,
            combine_partials([self.recovery.partial()]))

    def fault_stats(self) -> Optional[dict]:
        """Fault counters for the cluster report, or None when the
        fabric runs fault-free."""
        if self.faults is None:
            return None
        return {
            "plan": self.faults.to_dict(),
            "lost_to_faults": self.cells_lost_to_faults(),
            "corrupted_delivered": self.cells_corrupted(),
            "credit_cells_lost": self.credit_cells_lost,
            "sites": {name: site.stats()
                      for name, site in sorted(self._fault_sites.items())},
        }


__all__ = ["Fabric", "Flow", "VciAllocator", "FIRST_FLOW_VCI"]

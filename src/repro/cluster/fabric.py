"""A multi-host switched cell fabric.

The paper measures two workstations back-to-back; everything larger
was left to the network.  This module supplies that network: a
:class:`Fabric` instantiates N complete hosts and wires each host's
four-way striped uplink into an output-queued :class:`CellSwitch`
(or several, full-meshed by inter-switch trunks), with a fabric-wide
VCI allocation and routing manager on top.

Topology per host::

    host.txp -> StripedLink (4 lanes, skew) -> switch input
    switch output trunk (4 ports, one per lane) -> host.board

Each striped lane terminates in its own switch output port, so the
paper's third skew cause -- 'different queuing delays experienced by
cells on different links as they pass through distinct ports on the
switches' -- is emergent: any two flows sharing an output trunk
contend per lane, and the receiving board's reassembly strategies
must ride out whatever ordering that produces.

Flows are duplex and VCI-rewritten: the client sends on its own VCI,
the switch rewrites to the server's VCI, and the reply takes the
mirror route.  The switches route on input VCI alone, so the
:class:`VciAllocator` hands out fabric-unique identifiers.

The two-host, directly-wired topology the paper measured remains
available as ``topology="direct"``; :class:`repro.net.BackToBack` is
that special case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..atm.aal5 import SegmentMode
from ..atm.link import OC3_MBPS
from ..atm.striping import SkewModel, StripedLink
from ..atm.switch import CellSwitch
from ..hw.specs import STRIPE_LINKS, MachineSpec
from ..sim import Fidelity, SimulationError, Simulator

if TYPE_CHECKING:
    from ..net.host_node import Host

# Flow VCIs live below the ADC manager's range (0x4000..) and the
# switch cross-traffic fillers (0xFFF0..).
FIRST_FLOW_VCI = 0x1000
LAST_FLOW_VCI = 0x3FFF


class VciAllocator:
    """Fabric-wide virtual circuit identifiers, one per flow endpoint.

    The switches route on the input VCI alone (an output-queued switch
    has no notion of an input port), so every endpoint VCI must be
    unique across the whole fabric, not just per host.
    """

    def __init__(self, first: int = FIRST_FLOW_VCI,
                 last: int = LAST_FLOW_VCI):
        self._next = first
        self._last = last

    def alloc(self) -> int:
        if self._next > self._last:
            raise SimulationError("fabric VCI space exhausted")
        vci = self._next
        self._next += 1
        return vci


@dataclass(frozen=True)
class Flow:
    """A duplex path between two hosts, one VCI per direction.

    The source sends on ``src_vci`` (rewritten to ``dst_vci`` in the
    fabric); the destination replies on ``dst_vci`` (rewritten back).
    """

    src: int
    dst: int
    src_vci: int
    dst_vci: int


class Fabric:
    """N hosts wired through one or more output-queued cell switches."""

    def __init__(self, machines: Union[MachineSpec, Sequence[MachineSpec]],
                 n_hosts: Optional[int] = None, *,
                 n_switches: int = 1,
                 topology: str = "switched",
                 skew: Optional[SkewModel] = None,
                 segment_mode: SegmentMode = SegmentMode.IN_ORDER,
                 prop_delay_us: float = 2.0,
                 switching_delay_us: float = 1.0,
                 port_rate_mbps: float = OC3_MBPS,
                 port_queue_cells: int = 256,
                 fidelity: Optional[Fidelity] = None,
                 names: Optional[Sequence[str]] = None,
                 **host_kw):
        # Deferred: repro.net.network subclasses Fabric, so importing
        # repro.net at module scope here would be circular.
        from ..net.host_node import Host

        if isinstance(machines, MachineSpec):
            machines = [machines] * (n_hosts if n_hosts else 2)
        machines = list(machines)
        if n_hosts is not None and n_hosts != len(machines):
            raise SimulationError(
                f"n_hosts={n_hosts} disagrees with {len(machines)} machines")
        if len(machines) < 2:
            raise SimulationError("a fabric needs at least two hosts")
        if topology not in ("switched", "direct"):
            raise SimulationError(f"unknown topology {topology!r}")
        if topology == "direct" and len(machines) != 2:
            raise SimulationError(
                "direct topology is the two-host special case")

        self.sim = Simulator()
        self.topology = topology
        self.skew = skew
        self.segment_mode = segment_mode
        if names is None:
            names = [f"h{i}" for i in range(len(machines))]
        self.hosts: list[Host] = [
            Host(self.sim, spec, name=names[i], fidelity=fidelity, **host_kw)
            for i, spec in enumerate(machines)
        ]
        self.vcis = VciAllocator()
        self.flows: list[Flow] = []
        self.switches: list[CellSwitch] = []
        self.uplinks: list[StripedLink] = []
        # host index -> (switch index, trunk id of its downlink).
        self._attach: list[tuple[int, int]] = []
        # (from switch, to switch) -> trunk id on the 'from' switch.
        self._interswitch: dict[tuple[int, int], int] = {}
        self._delivered = [0] * len(self.hosts)
        self._uplink_arrived = [0] * len(self.hosts)

        if topology == "direct":
            self._wire_direct(prop_delay_us)
        else:
            self._wire_switched(n_switches, prop_delay_us,
                                switching_delay_us, port_rate_mbps,
                                port_queue_cells)

    # -- wiring ------------------------------------------------------------------

    def _wire_direct(self, prop_delay_us: float) -> None:
        """Two hosts joined by striped links in both directions --
        the paper's measurement topology, no switch in the middle."""
        a, b = self.hosts
        skew_ab = self.skew
        skew_ba = self.skew.clone(1) if self.skew is not None else None
        link_ab = StripedLink(self.sim, self._deliver_fn(1), skew=skew_ab,
                              prop_delay_us=prop_delay_us,
                              name=f"{a.name}{b.name}")
        link_ba = StripedLink(self.sim, self._deliver_fn(0), skew=skew_ba,
                              prop_delay_us=prop_delay_us,
                              name=f"{b.name}{a.name}")
        self.uplinks = [link_ab, link_ba]
        a.connect(link_ab, segment_mode=self.segment_mode)
        b.connect(link_ba, segment_mode=self.segment_mode)

    def _wire_switched(self, n_switches: int, prop_delay_us: float,
                       switching_delay_us: float, port_rate_mbps: float,
                       port_queue_cells: int) -> None:
        if n_switches < 1:
            raise SimulationError("need at least one switch")
        n_switches = min(n_switches, len(self.hosts))
        self.switches = [
            CellSwitch(self.sim, name=f"sw{k}",
                       port_rate_mbps=port_rate_mbps,
                       switching_delay_us=switching_delay_us,
                       port_queue_cells=port_queue_cells)
            for k in range(n_switches)
        ]
        next_trunk = [0] * n_switches

        # Downlinks: one output trunk per host, lanes matching its
        # striped link so cell i keeps riding lane i mod 4.
        for i, host in enumerate(self.hosts):
            k = i % n_switches
            trunk = next_trunk[k]
            next_trunk[k] += 1
            self.switches[k].add_trunk(trunk, self._deliver_fn(i))
            self._attach.append((k, trunk))

        # Inter-switch trunks: full mesh, one trunk per ordered pair,
        # so any flow crosses at most two switches.
        for s in range(n_switches):
            for t in range(n_switches):
                if s == t:
                    continue
                trunk = next_trunk[s]
                next_trunk[s] += 1
                self.switches[s].add_trunk(trunk,
                                           self.switches[t].input_cell)
                self._interswitch[(s, t)] = trunk

        # Uplinks: each host's striped link terminates at its switch.
        # Disjoint seed offsets keep per-lane RNG streams independent
        # across hosts.
        for i, host in enumerate(self.hosts):
            k = self._attach[i][0]
            skew = (self.skew.clone(i * STRIPE_LINKS)
                    if self.skew is not None else None)
            uplink = StripedLink(self.sim, self._arrival_fn(i, k),
                                 skew=skew, prop_delay_us=prop_delay_us,
                                 name=f"{host.name}.up")
            self.uplinks.append(uplink)
            host.connect(uplink, segment_mode=self.segment_mode)

    def _deliver_fn(self, host_index: int):
        """Count cells crossing the fabric boundary into one host."""
        board_deliver = self.hosts[host_index].board.deliver_cell

        def deliver(cell) -> None:
            self._delivered[host_index] += 1
            board_deliver(cell)

        return deliver

    def _arrival_fn(self, host_index: int, switch_index: int):
        """Count cells leaving one host's uplink into its switch."""
        input_cell = self.switches[switch_index].input_cell

        def deliver(cell) -> None:
            self._uplink_arrived[host_index] += 1
            input_cell(cell)

        return deliver

    # -- flow management ------------------------------------------------------------

    def open_flow(self, src: int, dst: int,
                  src_vci: Optional[int] = None,
                  dst_vci: Optional[int] = None) -> Flow:
        """Allocate VCIs and install duplex routes for ``src <-> dst``.

        Explicit VCIs let callers bind an endpoint that already owns
        its identifier (an ADC grant, say); by default both come from
        the fabric allocator.
        """
        if src == dst or not (0 <= src < len(self.hosts)) \
                or not (0 <= dst < len(self.hosts)):
            raise SimulationError(f"bad flow endpoints {src}->{dst}")
        if src_vci is None:
            src_vci = self.vcis.alloc()
        if dst_vci is None:
            dst_vci = self.vcis.alloc()
        if self.topology == "switched":
            self._install_route(src, dst, src_vci, dst_vci)
            self._install_route(dst, src, dst_vci, src_vci)
        flow = Flow(src=src, dst=dst, src_vci=src_vci, dst_vci=dst_vci)
        self.flows.append(flow)
        return flow

    def _install_route(self, src: int, dst: int, in_vci: int,
                       out_vci: int) -> None:
        """Route ``in_vci`` (sent by ``src``) to ``dst``, rewriting to
        ``out_vci`` on the final hop."""
        s_sw, _ = self._attach[src]
        d_sw, d_trunk = self._attach[dst]
        if s_sw == d_sw:
            self.switches[s_sw].add_route(in_vci, d_trunk, out_vci)
        else:
            trunk = self._interswitch[(s_sw, d_sw)]
            self.switches[s_sw].add_route(in_vci, trunk, in_vci)
            self.switches[d_sw].add_route(in_vci, d_trunk, out_vci)

    def open_raw_flow(self, src: int, dst: int, echo_dst: bool = False,
                      **kw):
        """Raw-ATM test programs on both ends of a new flow."""
        flow = self.open_flow(src, dst)
        app_s, _ = self.hosts[src].open_raw_path(vci=flow.src_vci, **kw)
        app_d, _ = self.hosts[dst].open_raw_path(vci=flow.dst_vci,
                                                 echo=echo_dst, **kw)
        return app_s, app_d, flow

    def open_udp_flow(self, src: int, dst: int,
                      src_port: Optional[int] = None,
                      dst_port: Optional[int] = None,
                      echo_dst: bool = False, **kw):
        """UDP/IP test programs on both ends of a new flow."""
        flow = self.open_flow(src, dst)
        if src_port is None:
            src_port = 5000 + 2 * (len(self.flows) - 1)
        if dst_port is None:
            dst_port = src_port + 1
        app_s, _ = self.hosts[src].open_udp_path(
            src_port, dst_port, vci=flow.src_vci, **kw)
        app_d, _ = self.hosts[dst].open_udp_path(
            dst_port, src_port, vci=flow.dst_vci, echo=echo_dst, **kw)
        return app_s, app_d, flow

    # -- accounting -----------------------------------------------------------------

    def cells_injected(self) -> int:
        """Cells handed to the fabric: uplink submissions plus any
        cross traffic injected straight into switch ports."""
        injected = sum(link.cells_sent for link in self.uplinks)
        injected += sum(sw.cross_cells_injected for sw in self.switches)
        return injected

    def cells_delivered(self) -> int:
        """Cells handed to a host board (drops beyond that boundary
        are the host's, counted in its own stats)."""
        return sum(self._delivered)

    def cells_dropped(self) -> int:
        """Cells the fabric lost: unrouted VCIs and full ports."""
        return sum(sw.cells_dropped for sw in self.switches)

    def cells_queued(self) -> int:
        """Cells currently inside the fabric: in flight on uplinks
        plus held in switch ports.  Measured from link and switch
        counters, independently of the delivery count -- which is what
        makes the conservation identity a real invariant."""
        in_flight = (sum(link.cells_sent for link in self.uplinks)
                     - sum(self._uplink_arrived))
        if self.topology == "direct":
            # No switch: in flight is everything not yet delivered.
            return (sum(link.cells_sent for link in self.uplinks)
                    - self.cells_delivered())
        return in_flight + sum(sw.queued_cells() for sw in self.switches)

    def conservation(self) -> dict:
        """The cell-conservation identity:
        injected == delivered + queued + dropped."""
        injected = self.cells_injected()
        delivered = self.cells_delivered()
        queued = self.cells_queued()
        dropped = self.cells_dropped()
        return {
            "injected": injected,
            "delivered": delivered,
            "queued": queued,
            "dropped": dropped,
            "holds": injected == delivered + queued + dropped,
        }


__all__ = ["Fabric", "Flow", "VciAllocator", "FIRST_FLOW_VCI"]

"""Scalable workload engine for the cluster fabric.

Two client families drive a :class:`repro.cluster.Fabric`:

* **Open-loop** generators pace messages onto the fabric at an offered
  rate (constant spacing or a Poisson process), regardless of what the
  receivers do with them -- the load model of *Queue Management in
  Network Processors*-style studies, where per-port queue occupancy is
  the object of interest.
* **Closed-loop** generators run a request-response loop: each client
  issues an NFS-style RPC mix (page-multiple READ replies, WRITE
  requests, as in section 2.5.2 of the paper) and waits for the reply
  before the next call, so load self-limits to the service rate.

Traffic patterns map clients onto hosts: ``incast`` (everyone sends to
one server -- the fan-in that fills a single output trunk), ``pairs``
(disjoint one-to-one flows), and ``all2all`` (every ordered pair).

Every client owns a :class:`random.Random` seeded from the workload
seed and its client index, so runs are deterministic and individual
clients' streams are independent of fleet size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Generator, Optional

from ..sim import Delay, SimulationError, spawn
from ..xkernel.protocols.rpc import RpcClient, RpcProtocol, RpcServer
from .fabric import Fabric

PATTERNS = ("incast", "all2all", "pairs")

PROC_READ = 1
PROC_WRITE = 2
_WRITE_STATUS = b"OK\x00\x00"


def pattern_flows(pattern: str, n_hosts: int,
                  server: int = 0) -> list[tuple[int, int]]:
    """(src, dst) host pairs for a named traffic pattern."""
    if n_hosts < 2:
        raise SimulationError("patterns need at least two hosts")
    if pattern == "incast":
        return [(i, server) for i in range(n_hosts) if i != server]
    if pattern == "pairs":
        return [(i, i + 1) for i in range(0, n_hosts - 1, 2)]
    if pattern == "all2all":
        return [(i, j) for i in range(n_hosts)
                for j in range(n_hosts) if i != j]
    raise SimulationError(
        f"unknown pattern {pattern!r}; choose from {PATTERNS}")


def client_rng(seed: int, index: int) -> random.Random:
    """A per-client RNG stream: deterministic, independent of fleet
    size, uncorrelated across clients (splitmix-style spread)."""
    mixed = (seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9)
    return random.Random(mixed & 0xFFFFFFFFFFFFFFFF)


@dataclass
class WorkloadSpec:
    """Parameters of one cluster run."""

    pattern: str = "incast"
    kind: str = "open"              # "open" | "rpc"
    seed: int = 1
    server: int = 0                 # incast sink host
    # Open-loop knobs.
    message_bytes: int = 4096
    messages_per_client: int = 8
    rate_mbps: float = 0.0          # per-client offered rate; 0 = unpaced
    arrival: str = "constant"       # "constant" | "poisson"
    transport: str = "raw"          # "raw" | "udp"
    # Closed-loop (RPC) knobs.
    requests_per_client: int = 8
    rpc_block_bytes: int = 8192     # page-multiple NFS blocks
    rpc_read_fraction: float = 0.75
    rpc_service_us: float = 120.0


@dataclass
class ClientResult:
    """What one client saw.

    ``send_times_us`` / ``recv_times_us`` are the raw per-message
    timestamps (send at the source, reception at the destination).
    They exist so a sharded run -- where the two ends of an open-loop
    flow live in different processes -- can merge the halves and
    recompute ``latencies_us`` with bit-identical arithmetic.
    """

    name: str
    src: int
    dst: int
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    latencies_us: list = field(default_factory=list, repr=False)
    send_times_us: list = field(default_factory=list, repr=False)
    recv_times_us: list = field(default_factory=list, repr=False)


@dataclass
class WorkloadResult:
    """Aggregated outcome of a workload over a fabric."""

    spec: WorkloadSpec
    clients: list
    elapsed_us: float

    def latencies(self) -> list:
        out: list = []
        for client in self.clients:
            out.extend(client.latencies_us)
        return out

    def summary(self) -> dict:
        lat = sorted(self.latencies())
        bytes_moved = sum(c.bytes_received for c in self.clients)
        goodput = (bytes_moved * 8.0 / self.elapsed_us
                   if self.elapsed_us > 0 else 0.0)
        summary = {
            "pattern": self.spec.pattern,
            "kind": self.spec.kind,
            "clients": len(self.clients),
            "messages_sent": sum(c.messages_sent for c in self.clients),
            "messages_received": sum(c.messages_received
                                     for c in self.clients),
            "bytes_received": bytes_moved,
            "elapsed_us": self.elapsed_us,
            "goodput_mbps": goodput,
        }
        if lat:
            summary["latency_us"] = {
                "min": lat[0],
                "median": lat[len(lat) // 2],
                "p99": lat[min(len(lat) - 1, int(len(lat) * 0.99))],
                "max": lat[-1],
            }
        return summary


# ---------------------------------------------------------------------------
# Client processes
# ---------------------------------------------------------------------------

def _open_loop_client(sim, app, spec: WorkloadSpec, rng: random.Random,
                      result: ClientResult,
                      send_times: list) -> Generator[Any, Any, None]:
    interval = (spec.message_bytes * 8.0 / spec.rate_mbps
                if spec.rate_mbps > 0 else 0.0)
    for _ in range(spec.messages_per_client):
        if interval > 0.0:
            gap = (rng.expovariate(1.0 / interval)
                   if spec.arrival == "poisson" else interval)
            yield Delay(gap)
        send_times.append(sim.now)
        yield from app.send_length(spec.message_bytes)
        result.messages_sent += 1
        result.bytes_sent += spec.message_bytes


def _rpc_client(sim, client: RpcClient, spec: WorkloadSpec,
                rng: random.Random, result: ClientResult,
                block: bytes) -> Generator[Any, Any, None]:
    for k in range(spec.requests_per_client):
        is_read = rng.random() < spec.rpc_read_fraction
        start = sim.now
        if is_read:
            request = bytes([k & 0xFF])
            reply = yield from client.call(PROC_READ, request)
        else:
            request = block
            reply = yield from client.call(PROC_WRITE, request,
                                           page_align=True)
        result.latencies_us.append(sim.now - start)
        result.messages_sent += 1
        result.messages_received += 1
        result.bytes_sent += len(request)
        result.bytes_received += len(reply)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

def setup_workload(fabric: Fabric,
                   spec: WorkloadSpec) -> tuple[list, list]:
    """Install every client of ``spec`` on ``fabric``.

    Returns ``(clients, finishers)``.  The flow-open loop runs in full
    global order on every caller -- a shard instantiates apps and
    client processes only for the hosts it owns, but still walks every
    flow so VCI allocation and route tables agree fabric-wide.
    """
    if spec.kind not in ("open", "rpc"):
        raise SimulationError(f"unknown workload kind {spec.kind!r}")
    flows = pattern_flows(spec.pattern, len(fabric.hosts),
                          server=spec.server)
    clients: list[ClientResult] = []
    finishers = []

    for index, (src, dst) in enumerate(flows):
        rng = client_rng(spec.seed, index)
        result = ClientResult(name=f"c{index}", src=src, dst=dst)
        clients.append(result)
        if spec.kind == "open":
            finishers.append(_setup_open_loop(fabric, spec, rng, result,
                                              src, dst))
        else:
            finishers.append(_setup_rpc(fabric, spec, rng, result,
                                        src, dst))
    return clients, finishers


def run_workload(fabric: Fabric, spec: WorkloadSpec,
                 max_events: Optional[int] = None) -> WorkloadResult:
    """Set up every client of ``spec`` on ``fabric``, run the
    simulation to quiescence, and aggregate the results.

    ``max_events`` turns a hang into a diagnosable failure: every
    result this function returns is from a *drained* fabric, so
    callers that assume completion (the chaos harness, the benches)
    pass a budget and get an exception instead of truncated numbers.
    """
    clients, finishers = setup_workload(fabric, spec)
    start = fabric.sim.now
    executed = fabric.sim.run(max_events)
    if max_events is not None and executed >= max_events:
        raise SimulationError(
            f"workload did not quiesce within {max_events} events -- "
            f"refusing to report a truncated run as complete")
    for finish in finishers:
        finish()
    return WorkloadResult(spec=spec, clients=clients,
                          elapsed_us=fabric.sim.now - start)


def _setup_open_loop(fabric: Fabric, spec: WorkloadSpec,
                     rng: random.Random, result: ClientResult,
                     src: int, dst: int):
    if spec.transport == "udp":
        app_s, app_d, _ = fabric.open_udp_flow(src, dst)
    elif spec.transport == "raw":
        app_s, app_d, _ = fabric.open_raw_flow(src, dst)
    else:
        raise SimulationError(f"unknown transport {spec.transport!r}")
    if app_s is not None:
        spawn(fabric.sim,
              _open_loop_client(fabric.sim, app_s, spec, rng, result,
                                result.send_times_us),
              f"{result.name}-{fabric.hosts[src].name}")

    def finish() -> None:
        if app_d is not None:
            result.messages_received = len(app_d.receptions)
            result.bytes_received = app_d.bytes_received
            result.recv_times_us = [reception.time
                                    for reception in app_d.receptions]
        compute_open_loop_latencies(result)

    return finish


def compute_open_loop_latencies(result: ClientResult) -> None:
    """Rebuild ``latencies_us`` from the raw timestamp halves.

    kth send matches kth reception: one VCI, FIFO end to end.  Both
    the single-process path and the sharded merge call this, so the
    float arithmetic is identical wherever the halves were recorded.
    """
    del result.latencies_us[:]
    for k, recv_time in enumerate(result.recv_times_us):
        if k < len(result.send_times_us):
            result.latencies_us.append(recv_time
                                       - result.send_times_us[k])


def _setup_rpc(fabric: Fabric, spec: WorkloadSpec, rng: random.Random,
               result: ClientResult, src: int, dst: int):
    flow = fabric.open_flow(src, dst)
    host_s, host_d = fabric.hosts[src], fabric.hosts[dst]
    block = bytes([0x40 + (flow.dst_vci & 0x3F)]) * spec.rpc_block_bytes

    if host_s is not None:
        drv_s = host_s.driver.open_path(flow.src_vci)
        fabric.register_tx_session(flow.src_vci, drv_s)
    if host_d is not None:
        drv_d = host_d.driver.open_path(flow.dst_vci)
        fabric.register_tx_session(flow.dst_vci, drv_d)
        server = RpcServer(RpcProtocol(host_d.cpu, fabric.sim), drv_d)
        server.register(PROC_READ, lambda request: block,
                        service_us=spec.rpc_service_us)
        server.register(PROC_WRITE, lambda request: _WRITE_STATUS,
                        service_us=spec.rpc_service_us)

    if host_s is not None:
        client = RpcClient(RpcProtocol(host_s.cpu, fabric.sim), drv_s)
        spawn(fabric.sim,
              _rpc_client(fabric.sim, client, spec, rng, result, block),
              f"{result.name}-{host_s.name}")

    def finish() -> None:
        pass

    return finish


def sweep_offered_load(fabric_factory: Callable[[], Fabric],
                       spec: WorkloadSpec,
                       rates_mbps: list) -> list:
    """Goodput-versus-offered-load curve: run ``spec`` once per
    per-client rate on a fresh fabric and record what came out.

    This is the congestion-collapse plot: without backpressure,
    goodput rises with offered load until the incast port saturates
    and then *falls* as drops corrupt ever more PDUs; with credit flow
    control it must be monotone non-decreasing (saturating, never
    collapsing).  Each point is an independent simulation, so points
    share nothing but the spec's seed.
    """
    points = []
    for rate in rates_mbps:
        fabric = fabric_factory()
        result = run_workload(fabric, replace(spec, rate_mbps=rate))
        summary = result.summary()
        points.append({
            "offered_mbps_per_client": rate,
            "goodput_mbps": summary["goodput_mbps"],
            "messages_sent": summary["messages_sent"],
            "messages_received": summary["messages_received"],
            "drops": fabric.drop_breakdown(),
        })
    return points


__all__ = [
    "PATTERNS", "PROC_READ", "PROC_WRITE",
    "pattern_flows", "client_rng",
    "WorkloadSpec", "ClientResult", "WorkloadResult",
    "setup_workload", "run_workload", "compute_open_loop_latencies",
    "sweep_offered_load",
]

"""Sharded cluster runs: the fabric partitioned across K simulators.

A :class:`ShardFabric` is a :class:`~repro.cluster.fabric.Fabric` that
instantiates only the hosts its shard owns (plus the switch output
trunks that serve them) while walking the *same* construction
sequence as every other shard -- VCI allocation, trunk numbering, and
route tables stay fabric-global, so any shard can look up where a
cell is headed.  Ownership comes from
:func:`repro.topology.partition_hosts`: a greedy min-cut over the
topology spec keeps co-located hosts (same leaf, same torus node) on
one shard, and each switch follows the majority of its hosts --
every shard recomputes the identical assignment from ``(spec, K)``,
no coordination needed.  Every switch has one replica per shard: the
replica owns real ports only for its shard's trunks and knows the
rest as remote trunks.

Cross-shard interactions already travel the base fabric's *boundary
channels* (uplink arrival, inter-switch hop, credit return, EFCI
relay), each with ``prop_delay_us`` of latency and a content-based
ordering key.  Here those emissions are routed into per-shard
mailboxes and exchanged by the conservative window engine of
:mod:`repro.sim.parallel`; the propagation delay is the lookahead.
Because the ordering keys decide every cross-shard event's queue
position identically in both modes, a sharded run is **bit-identical**
to the single-process run -- the determinism tests compare report
JSON byte for byte.

Conservation counters are only globally meaningful at a window
horizon (a barrier): mid-window, a cell can sit in a mailbox, counted
as emitted by one shard but not yet absorbed by another.  The merge
in :func:`merge_partials` therefore runs at global quiescence, where
every mailbox has drained -- the "quiescent at horizon" guarantee.
"""

from __future__ import annotations

import functools
import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional

from ..sim import SimulationError
from ..sim.parallel import BACKENDS, ParallelRunResult, run_shards
from ..topology import partition_hosts, partition_switches
from .boundary import BoundaryCodec
from .fabric import Fabric
from .metrics import ClusterReport
from .workloads import (
    ClientResult, WorkloadResult, WorkloadSpec,
    compute_open_loop_latencies, setup_workload,
)


class ShardFabric(Fabric):
    """One shard's slice of a fabric (topology-partitioned hosts)."""

    def __init__(self, shard_index: int, n_shards: int,
                 hb_trace: bool = False, **fabric_kwargs):
        if not (0 <= shard_index < n_shards):
            raise SimulationError(
                f"shard index {shard_index} outside 0..{n_shards - 1}")
        # Validate before Fabric wires anything: the direct topology
        # would trip over the missing hosts mid-construction.
        if fabric_kwargs.get("topology", "switched") == "direct":
            raise SimulationError(
                "sharding needs a switched topology; the direct "
                "two-host wiring has no trunk boundary to cut at")
        if fabric_kwargs.get("prop_delay_us", 2.0) <= 0.0:
            raise SimulationError(
                "sharding needs prop_delay_us > 0: the propagation "
                "delay is the conservative lookahead")
        self.shard_index = shard_index
        self.n_shards = n_shards
        self._outbox: list = []
        self._may_emit_cache: Optional[bool] = None
        # Happens-before event log (repro check --replay): every
        # cross-shard send and delivery, observation only -- recording
        # never perturbs the simulation.
        self.hb_trace: Optional[list] = [] if hb_trace else None
        super().__init__(**fabric_kwargs)

    # -- ownership ---------------------------------------------------------------

    def _init_ownership(self) -> None:
        # Pure functions of (spec, K): every shard and the merger
        # derive the identical partition without coordination.
        self._host_shard = partition_hosts(self.topo, self.n_shards)
        self._switch_shard = partition_switches(
            self.topo, self._host_shard, self.n_shards)

    def owns_host(self, index: int) -> bool:
        return self._host_shard[index] == self.shard_index

    def _owns_interswitch(self, s: int, t: int) -> bool:
        # The receiving switch's shard owns the trunk's ports, so the
        # drain-side delay and the delivery land in one simulator.
        return self._switch_shard[t] == self.shard_index

    def _make_host(self, index, spec, name, fidelity, host_kw):
        if not self.owns_host(index):
            return None
        return super()._make_host(index, spec, name, fidelity, host_kw)

    # -- boundary routing ---------------------------------------------------------

    def _train_local(self, switch_index: int, host_index: int,
                     cell) -> bool:
        # Trains never cross a shard boundary: a mailboxed train could
        # not accept appends consistently across backends (the proc
        # backend pickles a snapshot, the inline backend shares the
        # object).  Cells bound for another shard take per-cell
        # boundary messages, exactly as without trains.
        return self._dest_shard(("in", switch_index, host_index,
                                 cell)) == self.shard_index

    def _dest_shard(self, msg: tuple) -> int:
        kind = msg[0]
        if kind == "in":
            _, switch_index, _host_index, cell = msg
            route = self.switches[switch_index].route_for(cell.vci)
            if route is None:
                # Unroutable: count the drop on this shard's replica;
                # the per-switch totals still sum correctly.
                return self.shard_index
            trunk_id, _ = route
            kind, idx = self._trunk_dest[(switch_index, trunk_id)]
            if kind == "host":
                return self._host_shard[idx]
            return self._switch_shard[idx]
        # refill/pause land at the source host's gate.
        return self._host_shard[msg[1]]

    def _emit_boundary(self, when: float, key: tuple,
                       msg: tuple) -> None:
        dest = self._dest_shard(msg)
        if dest == self.shard_index:
            super()._emit_boundary(when, key, msg)
        else:
            if not self.may_emit_boundary():
                # The window engine may already have let a peer run
                # past this message's timestamp on the strength of the
                # capability analysis -- a silent send here would be
                # causality violation, not a recoverable hiccup.
                raise SimulationError(
                    f"shard {self.shard_index} emitted a boundary "
                    f"message {msg[0]!r} for shard {dest} although "
                    "its flow table says it never can; the window "
                    "coalescing analysis missed an emission path")
            self._outbox.append((dest, when, key, msg))
            if self.hb_trace is not None:
                self.hb_trace.append({
                    "type": "send", "shard": self.shard_index,
                    "dest": dest, "emit": self.sim.now, "when": when,
                    "key": list(key), "kind": msg[0]})

    # -- emission capability (window coalescing) ----------------------------------

    def open_flow(self, src: int, dst: int,
                  src_vci: Optional[int] = None,
                  dst_vci: Optional[int] = None):
        self._may_emit_cache = None     # routes changed; re-derive
        return super().open_flow(src, dst, src_vci=src_vci,
                                 dst_vci=dst_vci)

    def may_emit_boundary(self) -> bool:
        """Can any future event on this shard emit a cross-shard
        boundary message?

        A pure function of the flow table: every boundary emission --
        uplink arrival, inter-switch hop, credit return, EFCI relay --
        originates from a cell traveling an installed route or from
        the control plumbing attached to one.  Cross traffic cannot
        cross shards (filler VCIs have no route, so the drop lands on
        the local replica) and cell trains never leave a shard by
        construction.  The window engine trusts this bit to widen its
        horizons, so :meth:`_emit_boundary` re-checks it on every
        actual cross-shard send.
        """
        if self._may_emit_cache is None:
            self._may_emit_cache = self._compute_may_emit()
        return self._may_emit_cache

    def _broadcast_recovery(self, when: float, chan: tuple,
                            msg: tuple) -> None:
        """A declaration fans out to every shard: applied locally and
        mailed to each peer under the same channel key, so all shards
        run the replicated reroute computation at the same simulated
        time and the VCI allocator stays in lock-step."""
        key = self._chan_key(*chan)
        self.sim.call_at(when, self._applier(msg), key=key)
        if self.n_shards > 1:
            if not self.may_emit_boundary():
                raise SimulationError(
                    f"shard {self.shard_index} declared {msg[0]!r} "
                    f"although its emission capability says it never "
                    "can; the coalescing analysis missed the recovery "
                    "control plane")
            for dest in range(self.n_shards):
                if dest != self.shard_index:
                    self._outbox.append((dest, when, key, msg))
                    if self.hb_trace is not None:
                        self.hb_trace.append({
                            "type": "send",
                            "shard": self.shard_index, "dest": dest,
                            "emit": self.sim.now, "when": when,
                            "key": list(key), "kind": msg[0]})

    def _compute_may_emit(self) -> bool:
        me = self.shard_index
        # An armed recovery control plane can emit in ways the flow
        # walk below cannot see: declaration broadcasts go to every
        # peer, and a rerouted flow's cells cross different shard
        # pairs than its original path.  The trigger set (the fault
        # plan's kills) is global, so every shard flips to the
        # conservative answer together.
        if self.recovery is not None and self.faults is not None \
                and (self.faults.port_kills or self.faults.lane_kills):
            return True
        backpressured = self.backpressure != "none"
        for flow in self.flows:
            for src, dst, vci in ((flow.src, flow.dst, flow.src_vci),
                                  (flow.dst, flow.src, flow.dst_vci)):
                if backpressured and self._host_shard[dst] == me \
                        and self._host_shard[src] != me:
                    # Credit returns / EFCI relays fire where the cell
                    # is delivered and land at the source's gate.
                    return True
                # Walk the cell path shard to shard: each hop's switch
                # work runs on the shard owning the *receiving* ports,
                # so an emission happens wherever consecutive owners
                # differ and this shard is the emitter.  Transit hops
                # carry the input VCI unrewritten, so route_for(vci)
                # is valid at every switch on the path.
                owner = self._host_shard[src]
                switch = self._attach[src][0]
                for _hop in range(len(self.switches) + 1):
                    route = self.switches[switch].route_for(vci)
                    if route is None:
                        break           # unroutable: dropped locally
                    trunk_id, _out_vci = route
                    kind, idx = self._trunk_dest[(switch, trunk_id)]
                    nxt = (self._host_shard[idx] if kind == "host"
                           else self._switch_shard[idx])
                    if owner == me and nxt != me:
                        return True
                    if kind == "host":
                        break
                    owner, switch = nxt, idx
        return False

    def drain_outbox(self) -> list:
        out, self._outbox = self._outbox, []
        return out

    def deliver(self, batch: list) -> None:
        for when, key, msg in batch:
            self.sim.call_at(when, self._applier(msg), key=key)
            if self.hb_trace is not None:
                self.hb_trace.append({
                    "type": "recv", "shard": self.shard_index,
                    "at": self.sim.now, "when": when,
                    "key": list(key), "kind": msg[0]})

    def _applier(self, msg: tuple):
        return lambda: self._apply_boundary(msg)


class _ShardProgram:
    """What the window engine drives: one shard's fabric + clients.

    ``codec`` (a :class:`~repro.cluster.boundary.BoundaryCodec`, or
    None for the legacy pickled-tuple transport) tells the engine how
    to move this shard's boundary batches; ``may_emit`` feeds the
    adaptive window coalescing.
    """

    def __init__(self, fabric: ShardFabric, clients: list,
                 finishers: list, codec: Optional[BoundaryCodec] = None):
        self.fabric = fabric
        self.sim = fabric.sim
        self.clients = clients
        self.finishers = finishers
        self.codec = codec

    def may_emit(self) -> bool:
        return self.fabric.may_emit_boundary()

    def deliver(self, batch: list) -> None:
        self.fabric.deliver(batch)

    def drain_outbox(self) -> list:
        return self.fabric.drain_outbox()

    def collect(self, t_end: float) -> dict:
        """The shard's picklable contribution to the merged report.
        The engine has already advanced the clock to ``t_end``, so
        host snapshots read the fabric-wide end time."""
        fabric = self.fabric
        for finish in self.finishers:
            finish()
        switches = []
        for sw in fabric.switches:
            switches.append({
                "name": sw.name,
                "cells_switched": sw.cells_switched,
                "cells_dropped": sw.cells_dropped,
                "dropped_no_route": sw.dropped_no_route,
                "dropped_queue_full": sw.dropped_queue_full,
                "cross_cells_injected": sw.cross_cells_injected,
                "cells_lost_to_faults": sw.cells_lost_to_faults,
                "cells_queued": sw.queued_cells(),
                "ports": [asdict(p) for p in sw.port_stats()],
            })
        gates = {}
        for i, (host, gate) in enumerate(zip(fabric.hosts,
                                             fabric.gates,
                                             strict=False)):
            if host is not None and gate is not None:
                gates[i] = {"name": host.name, **gate.stats()}
        return {
            "shard": fabric.shard_index,
            "hb_trace": fabric.hb_trace,
            "events_processed": fabric.sim.events_processed,
            "events_absorbed": fabric.sim.events_absorbed,
            "hosts": {i: asdict(host.stats())
                      for i, host in enumerate(fabric.hosts)
                      if host is not None},
            "uplink_cells_sent": sum(link.cells_sent
                                     for link in fabric.uplinks),
            "uplink_arrived": sum(fabric._uplink_arrived),
            "delivered": sum(fabric._delivered),
            "corrupted": sum(fabric._corrupted),
            "uplink_fault_lost": sum(site.cells_lost
                                     for site in fabric._uplink_sites),
            "credit_cells_lost": fabric.credit_cells_lost,
            "fault_sites": {name: site.stats()
                            for name, site
                            in sorted(fabric._fault_sites.items())},
            "isw_in_flight": fabric._isw_in_flight,
            "switches": switches,
            "gates": gates,
            "clients": [asdict(c) for c in self.clients],
            "recovery": (fabric.recovery.partial()
                         if fabric.recovery is not None else None),
        }

    def probe(self) -> dict:
        """Conservation counters for the window-boundary sanitizer.

        Cheap, picklable, read-only -- safe to take at any barrier
        (unlike :meth:`collect`, which finalizes clients).
        """
        fabric = self.fabric
        return {
            "uplink_cells_sent": sum(link.cells_sent
                                     for link in fabric.uplinks),
            "uplink_arrived": sum(fabric._uplink_arrived),
            "delivered": sum(fabric._delivered),
            "corrupted": sum(fabric._corrupted),
            "uplink_fault_lost": sum(site.cells_lost
                                     for site in fabric._uplink_sites),
            "isw_in_flight": fabric._isw_in_flight,
            "cross_injected": sum(sw.cross_cells_injected
                                  for sw in fabric.switches),
            "switch_queued": sum(sw.queued_cells()
                                 for sw in fabric.switches),
            "dropped": sum(sw.cells_dropped for sw in fabric.switches),
            "switch_fault_lost": sum(sw.cells_lost_to_faults
                                     for sw in fabric.switches),
        }


def _build_shard(index: int, n_shards: int, fabric_kwargs: dict,
                 spec: WorkloadSpec, sanitize: bool = False,
                 transport: str = "struct",
                 trace: bool = False) -> _ShardProgram:
    """Worker-side constructor (module-level so it crosses into a
    child process)."""
    if sanitize:
        # Enable in the worker itself: with the proc backend this runs
        # in the child, where the parent's hooks do not exist.
        from ..analysis import sanitize as _sanitize
        _sanitize.enable()
    fabric = ShardFabric(index, n_shards, hb_trace=trace,
                         **fabric_kwargs)
    clients, finishers = setup_workload(fabric, spec)
    codec = BoundaryCodec() if transport == "struct" else None
    return _ShardProgram(fabric, clients, finishers, codec=codec)


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------

def _merge_clients(spec: WorkloadSpec, partials: list) -> list:
    """Reunite each flow's two halves from their owner shards.

    Ownership is read off each partial's host snapshot (a host appears
    only in its owner shard's partial), so the merger never has to
    recompute the topology partition.
    """
    n_clients = len(partials[0]["clients"])
    merged = []
    for index in range(n_clients):
        src_half = None
        dst_half = None
        for partial in partials:
            fields = partial["clients"][index]
            if fields["src"] in partial["hosts"]:
                src_half = fields
            if fields["dst"] in partial["hosts"]:
                dst_half = fields
        client = ClientResult(**src_half)
        if spec.kind == "open" and dst_half is not None:
            client.messages_received = dst_half["messages_received"]
            client.bytes_received = dst_half["bytes_received"]
            client.recv_times_us = dst_half["recv_times_us"]
            compute_open_loop_latencies(client)
        merged.append(client)
    return merged


def merge_partials(fabric_kwargs: dict, spec: WorkloadSpec,
                   partials: list, t_end: float) -> ClusterReport:
    """Fold per-shard partials into one :class:`ClusterReport` equal,
    field for field, to what a single-process run would report."""
    partials = sorted(partials, key=lambda p: p["shard"])

    n_switches = len(partials[0]["switches"])
    switches = []
    for k in range(n_switches):
        replicas = [p["switches"][k] for p in partials]
        ports = [port for replica in replicas
                 for port in replica["ports"]]
        ports.sort(key=lambda p: (p["trunk_id"], p["lane"]))
        switches.append({
            "name": replicas[0]["name"],
            "cells_switched": sum(r["cells_switched"]
                                  for r in replicas),
            "cells_dropped": sum(r["cells_dropped"] for r in replicas),
            "dropped_no_route": sum(r["dropped_no_route"]
                                    for r in replicas),
            "dropped_queue_full": sum(r["dropped_queue_full"]
                                      for r in replicas),
            "cross_cells_injected": sum(r["cross_cells_injected"]
                                        for r in replicas),
            "cells_lost_to_faults": sum(r["cells_lost_to_faults"]
                                        for r in replicas),
            "cells_queued": sum(r["cells_queued"] for r in replicas),
            "ports": ports,
        })

    injected = (sum(p["uplink_cells_sent"] for p in partials)
                + sum(sw["cross_cells_injected"] for sw in switches))
    delivered = sum(p["delivered"] for p in partials)
    corrupted = sum(p["corrupted"] for p in partials)
    uplink_fault_lost = sum(p["uplink_fault_lost"] for p in partials)
    queued = (sum(p["uplink_cells_sent"] for p in partials)
              - sum(p["uplink_arrived"] for p in partials)
              - uplink_fault_lost
              + sum(p["isw_in_flight"] for p in partials)
              + sum(sw["cells_queued"] for sw in switches))
    dropped = sum(sw["cells_dropped"] for sw in switches)
    lost = uplink_fault_lost + sum(sw["cells_lost_to_faults"]
                                   for sw in switches)
    drops = {
        "no_route": sum(sw["dropped_no_route"] for sw in switches),
        "queue_full": sum(sw["dropped_queue_full"] for sw in switches),
    }

    faults = None
    plan = fabric_kwargs.get("faults")
    if plan is not None:
        sites: dict[str, dict] = {}
        for partial in partials:
            sites.update(partial["fault_sites"])
        faults = {
            "plan": plan.to_dict(),
            "lost_to_faults": lost,
            "corrupted_delivered": corrupted,
            "credit_cells_lost": sum(p["credit_cells_lost"]
                                     for p in partials),
            "sites": dict(sorted(sites.items())),
        }

    host_snaps: dict[int, dict] = {}
    for partial in partials:
        host_snaps.update(partial["hosts"])
    n_hosts = len(host_snaps)

    backpressure = None
    mode = fabric_kwargs.get("backpressure", "none")
    if mode != "none":
        backpressure = {"mode": mode}
        if mode == "credit":
            backpressure["credit_window_cells"] = fabric_kwargs.get(
                "credit_window_cells", 64)
            backpressure["regen_timeout_us"] = fabric_kwargs.get(
                "credit_regen_timeout_us")
            backpressure["watchdog_us"] = fabric_kwargs.get(
                "credit_watchdog_us")
        else:
            backpressure["efci_pause_us"] = fabric_kwargs.get(
                "efci_pause_us", 60.0)
        gate_snaps: dict[int, dict] = {}
        for partial in partials:
            gate_snaps.update(partial["gates"])
        backpressure["hosts"] = [gate_snaps[i] for i in range(n_hosts)]

    recovery = None
    rcfg = fabric_kwargs.get("recovery")
    if rcfg is not None and rcfg.mode != "off":
        from ..recovery import combine_partials, summarize_recovery
        recovery = summarize_recovery(
            rcfg, combine_partials([p["recovery"] for p in partials]))

    clients = _merge_clients(spec, partials)
    workload = WorkloadResult(spec=spec, clients=clients,
                              elapsed_us=t_end)

    return ClusterReport(
        topology=fabric_kwargs.get("topology", "switched"),
        n_hosts=n_hosts,
        n_switches=n_switches,
        sim_time_us=t_end,
        conservation={
            "injected": injected,
            "delivered": delivered,
            "corrupted": corrupted,
            "queued": queued,
            "dropped": dropped,
            "lost_to_faults": lost,
            "holds": injected == (delivered + corrupted + queued
                                  + dropped + lost),
        },
        drops=drops,
        hosts=[host_snaps[i] for i in range(n_hosts)],
        switches=switches,
        workload=workload.summary(),
        backpressure=backpressure,
        faults=faults,
        recovery=recovery,
    )


def run_cluster_sharded(
        fabric_kwargs: dict, spec: WorkloadSpec, n_shards: int,
        backend: str = "proc", sanitize: bool = False,
        coalesce: bool = True, transport: str = "struct",
        trace_path=None,
) -> tuple[ClusterReport, ParallelRunResult]:
    """Run one cluster workload split across ``n_shards`` simulators.

    ``fabric_kwargs`` are exactly the keyword arguments a plain
    :class:`Fabric` would take (they must be picklable for the proc
    backend).  Returns the merged report plus the engine's run stats
    (windows, boundary traffic, total events) for benchmarking.
    ``sanitize`` enables the runtime sanitizers inside every shard
    worker and re-checks the conservation law at each window barrier.
    ``coalesce=False`` pins the engine to the classic fixed-width
    windows; ``transport`` picks the boundary encoding (``"struct"``,
    the compact fixed-record codec, or ``"pickle"``, the legacy
    per-tuple baseline).  Neither knob changes the report -- both are
    exercised by the byte-identity determinism tests.
    ``trace_path`` records every cross-shard boundary send and
    delivery into a happens-before trace document at that path, for
    ``repro check --replay`` (observation only; the report stays
    byte-identical).
    """
    if backend not in BACKENDS:
        raise SimulationError(
            f"unknown shard backend {backend!r}; choose from {BACKENDS}")
    if transport not in ("struct", "pickle"):
        raise SimulationError(
            f"unknown boundary transport {transport!r}; "
            "choose 'struct' or 'pickle'")
    window_us = fabric_kwargs.get("prop_delay_us", 2.0)
    factory = functools.partial(_build_shard, n_shards=n_shards,
                                fabric_kwargs=fabric_kwargs, spec=spec,
                                sanitize=sanitize, transport=transport,
                                trace=trace_path is not None)
    window_probe = None
    if sanitize:
        from ..analysis.sanitize import check_window_conservation
        window_probe = check_window_conservation
    run = run_shards(factory, n_shards, window_us, backend=backend,
                     window_probe=window_probe, coalesce=coalesce)
    report = merge_partials(fabric_kwargs, spec, run.partials,
                            run.t_end)
    if trace_path is not None:
        from ..analysis.causality import build_trace_doc
        doc = build_trace_doc(
            [p.get("hb_trace") for p in run.partials],
            n_shards, window_us)
        Path(trace_path).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return report, run


__all__ = ["ShardFabric", "run_cluster_sharded", "merge_partials"]

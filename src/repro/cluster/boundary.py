"""Compact transport encoding for cross-shard boundary messages.

The window engine exchanges ``(when, key, msg)`` tuples between shard
simulators at every barrier.  Generic pickling of those tuples is the
dominant per-message cost on the proc backend: a single uplink-arrival
tuple (a :class:`~repro.atm.cell.Cell` inside) pickles to ~220 bytes
and exercises the full reduce protocol both ways.  This module packs
the same information into fixed-width little-endian records -- the
queue-management literature's answer to the same problem in network
processors: when every message has one of a few known shapes, a
struct beats a serializer.

A batch is::

    header:   version u8, record count u32,
              payload-pool offset u32, pool entry count u16
    records:  kind u8, when f64, then a kind-specific body
    pool:     entries of (length u8, raw bytes)

Fixed-width bodies exist for every boundary message the fabric emits
-- ``("in", switch, host, Cell)`` uplink arrivals and inter-switch
hops, ``("refill", src, vci)`` credit returns, ``("pause", src, vci)``
EFCI relays -- with the ordering key (tag + u16 ids + a u32 channel
counter) alongside.  Cell payloads are deduplicated through the
per-batch pool: cells of one message carry identical fill bytes, so a
batch stores the 44-byte chunk once and each record a u16 reference.
Anything a fixed record cannot express exactly (out-of-range ids, an
exotic key, a non-float timestamp, a pool overflow) takes a
length-prefixed pickle *escape record*, so
``decode_batch(encode_batch(batch)) == batch`` holds for arbitrary
input, not just the happy path.

``encode_into`` packs straight into any writable buffer -- the proc
backend hands it the shared-memory mapping, so a worker's outbox is
serialized exactly once, in place, with no intermediate bytes object.
The version byte is checked on decode: a coordinator and a worker
disagreeing about record layout must fail loudly, not misparse.
"""

from __future__ import annotations

import pickle
import struct

from ..atm.cell import Cell
from ..sim import SimulationError

CODEC_VERSION = 2

_HEADER = struct.Struct("<BIIH")     # version, records, pool off, pool n
_PREFIX = struct.Struct("<Bd")       # record kind, when
# Ordering keys: tag byte, per-tag id count as u16s, u32 counter.
_KEY_BY_ARITY = (None,
                 struct.Struct("<BHI"),
                 struct.Struct("<BHHI"),
                 struct.Struct("<BHHHI"))
# "in" body: switch u16, host i16 (-1 = inter-switch hop), vci u16,
# flag bits u8, link_id i8, tx_index i32, payload pool reference u16.
_CELL_MSG = struct.Struct("<HhHBbiH")
_SEQ = struct.Struct("<Q")           # appended when _F_HAS_SEQ is set
_CTRL_MSG = struct.Struct("<HH")     # refill/pause: src host, vci
# "dead" declaration broadcast: element kind u8, three element ids
# u16 (switch/trunk/lane or host/lane/0), failure + detection stamps.
_DEAD_MSG = struct.Struct("<BHHHdd")
_ESCAPE_HDR = struct.Struct("<I")    # pickled byte length

_KIND_IN = 0
_KIND_REFILL = 1
_KIND_PAUSE = 2
_KIND_DEAD = 3
_KIND_ESCAPE = 255

_KEY_TAGS = {"up": 0, "isw": 1, "credit": 2, "efci": 3,
             "rcvp": 4, "rcvl": 5}
_KEY_ARITY = {"up": 2, "isw": 3, "credit": 1, "efci": 1,
              "rcvp": 3, "rcvl": 2}
_TAG_NAMES = {code: name for name, code in sorted(_KEY_TAGS.items())}
_TAG_ARITY = {code: _KEY_ARITY[name]
              for name, code in sorted(_KEY_TAGS.items())}

_U16 = 1 << 16
_U32 = 1 << 32
_U64 = 1 << 64
_I8 = 1 << 7
_I16 = 1 << 15
_I32 = 1 << 31

_F_EOM = 1
_F_ATM_LAST = 2
_F_EFCI = 4
_F_CORRUPTED = 8
_F_HAS_SEQ = 16

_POOL_MAX = 0xFFFF


def _key_fields(key):
    """``(tag, ids, counter)`` for a fixed-width ordering key, or
    None if the key needs the escape record."""
    if not isinstance(key, tuple) or not key \
            or not isinstance(key[0], str):
        return None
    arity = _KEY_ARITY.get(key[0])
    if arity is None or len(key) != arity + 2:
        return None
    ids = key[1:-1]
    counter = key[-1]
    for value in ids:
        if type(value) is not int or not 0 <= value < _U16:
            return None
    if type(counter) is not int or not 0 <= counter < _U32:
        return None
    return (_KEY_TAGS[key[0]], ids, counter)


def _cell_fields(cell):
    """``(vci, flags, seq, link_id, tx_index, payload)`` if the cell
    fits the fixed record exactly, else None."""
    if cell.__class__ is not Cell:
        return None
    if type(cell.vci) is not int or not 0 <= cell.vci < _U16:
        return None
    seq = cell.seq
    flags = 0
    if cell.eom:
        flags |= _F_EOM
    if cell.atm_last:
        flags |= _F_ATM_LAST
    if cell.efci:
        flags |= _F_EFCI
    if cell.corrupted:
        flags |= _F_CORRUPTED
    if seq is not None:
        if type(seq) is not int or not 0 <= seq < _U64:
            return None
        flags |= _F_HAS_SEQ
    else:
        seq = 0
    if not -_I8 <= cell.link_id < _I8 \
            or not -_I32 <= cell.tx_index < _I32:
        return None
    payload = cell.payload
    if type(payload) is not bytes or len(payload) > 44:
        return None
    return (cell.vci, flags, seq, cell.link_id, cell.tx_index, payload)


def _make_cell(vci, flags, seq, link_id, tx_index, payload):
    # Mirrors Cell.rewrite(): bypass __init__ -- the fields were
    # validated when the cell was first built on the emitting shard.
    cell = Cell.__new__(Cell)
    cell.vci = vci
    cell.payload = payload
    cell.eom = bool(flags & _F_EOM)
    cell.seq = seq if flags & _F_HAS_SEQ else None
    cell.atm_last = bool(flags & _F_ATM_LAST)
    cell.link_id = link_id
    cell.tx_index = tx_index
    cell.efci = bool(flags & _F_EFCI)
    cell.corrupted = bool(flags & _F_CORRUPTED)
    return cell


class BoundaryCodec:
    """Encode/decode batches of boundary ``(when, key, msg)`` tuples.

    One instance per worker: the scratch buffer and pool state are
    reused across batches and must not be shared between threads.
    """

    version = CODEC_VERSION

    def __init__(self):
        self._scratch = bytearray(4096)
        self._pool: list = []
        self._pool_map: dict = {}

    # -- encoding ----------------------------------------------------------------

    def encode_batch(self, batch: list) -> bytes:
        """Serialize ``batch`` to a standalone bytes object."""
        buf = self._scratch
        while True:
            end = self.encode_into(batch, buf, 0)
            if end is not None:
                return bytes(memoryview(buf)[:end])
            buf = self._scratch = bytearray(2 * len(buf))

    def encode_into(self, batch: list, buf, offset: int):
        """Pack ``batch`` into writable buffer ``buf`` starting at
        ``offset``.  Returns the end offset, or None if the batch does
        not fit (bytes past ``offset`` are then undefined)."""
        cap = len(buf)
        pool = self._pool
        pool.clear()
        self._pool_map.clear()
        off = offset + _HEADER.size
        if off > cap:
            return None
        for when, key, msg in batch:
            off = self._pack_record(buf, cap, off, when, key, msg)
            if off is None:
                return None
        pool_at = off
        for payload in pool:
            n = len(payload)
            # Cell payloads are overwhelmingly a repeated fill byte
            # (the test programs send patterned messages), so a
            # run-length pool entry covers them in two bytes.
            if n and payload.count(payload[0]) == n:
                if off + 2 > cap:
                    return None
                buf[off] = 0x80 | n
                buf[off + 1] = payload[0]
                off += 2
            else:
                if off + 1 + n > cap:
                    return None
                buf[off] = n
                buf[off + 1:off + 1 + n] = payload
                off += 1 + n
        _HEADER.pack_into(buf, offset, CODEC_VERSION, len(batch),
                          pool_at - offset, len(pool))
        return off

    def _pool_ref(self, payload):
        ref = self._pool_map.get(payload)
        if ref is None:
            ref = len(self._pool)
            if ref >= _POOL_MAX:
                return None
            self._pool_map[payload] = ref
            self._pool.append(payload)
        return ref

    def _pack_record(self, buf, cap, off, when, key, msg):
        fields = _key_fields(key)
        if fields is not None and type(when) is float \
                and isinstance(msg, tuple):
            tag, ids, counter = fields
            key_struct = _KEY_BY_ARITY[len(ids)]
            mkind = msg[0]
            if mkind == "in" and len(msg) == 4:
                _, switch, host, cell = msg
                cell_fields = _cell_fields(cell)
                ref = None
                if cell_fields is not None \
                        and type(switch) is int and 0 <= switch < _U16 \
                        and type(host) is int and -_I16 <= host < _I16:
                    ref = self._pool_ref(cell_fields[5])
                if ref is not None:
                    vci, flags, seq, link_id, tx_index, _p = cell_fields
                    need = (_PREFIX.size + key_struct.size
                            + _CELL_MSG.size
                            + (_SEQ.size if flags & _F_HAS_SEQ else 0))
                    if off + need > cap:
                        return None
                    _PREFIX.pack_into(buf, off, _KIND_IN, when)
                    key_struct.pack_into(buf, off + _PREFIX.size,
                                         tag, *ids, counter)
                    body = off + _PREFIX.size + key_struct.size
                    _CELL_MSG.pack_into(buf, body, switch, host, vci,
                                        flags, link_id, tx_index, ref)
                    if flags & _F_HAS_SEQ:
                        _SEQ.pack_into(buf, body + _CELL_MSG.size, seq)
                    return off + need
            elif mkind == "dead" and len(msg) == 7:
                _, ekind, a, b, c, t_fail, t_detect = msg
                if all(type(v) is int and 0 <= v < _U16
                       for v in (a, b, c)) \
                        and type(ekind) is int and 0 <= ekind < 256 \
                        and type(t_fail) is float \
                        and type(t_detect) is float:
                    need = (_PREFIX.size + key_struct.size
                            + _DEAD_MSG.size)
                    if off + need > cap:
                        return None
                    _PREFIX.pack_into(buf, off, _KIND_DEAD, when)
                    key_struct.pack_into(buf, off + _PREFIX.size,
                                         tag, *ids, counter)
                    _DEAD_MSG.pack_into(
                        buf, off + _PREFIX.size + key_struct.size,
                        ekind, a, b, c, t_fail, t_detect)
                    return off + need
            elif mkind in ("refill", "pause") and len(msg) == 3:
                _, src, vci = msg
                if type(src) is int and 0 <= src < _U16 \
                        and type(vci) is int and 0 <= vci < _U16:
                    kind = (_KIND_REFILL if mkind == "refill"
                            else _KIND_PAUSE)
                    need = (_PREFIX.size + key_struct.size
                            + _CTRL_MSG.size)
                    if off + need > cap:
                        return None
                    _PREFIX.pack_into(buf, off, kind, when)
                    key_struct.pack_into(buf, off + _PREFIX.size,
                                         tag, *ids, counter)
                    _CTRL_MSG.pack_into(
                        buf, off + _PREFIX.size + key_struct.size,
                        src, vci)
                    return off + need
        # Escape hatch: exact round-trip for anything else.  The
        # prefix timestamp is advisory on this path (the decoder uses
        # the pickled tuple), so a non-numeric ``when`` packs as 0.
        blob = pickle.dumps((when, key, msg),
                            protocol=pickle.HIGHEST_PROTOCOL)
        need = _PREFIX.size + _ESCAPE_HDR.size + len(blob)
        if off + need > cap:
            return None
        try:
            advisory = float(when)
        except (TypeError, ValueError):
            advisory = 0.0
        _PREFIX.pack_into(buf, off, _KIND_ESCAPE, advisory)
        _ESCAPE_HDR.pack_into(buf, off + _PREFIX.size, len(blob))
        start = off + _PREFIX.size + _ESCAPE_HDR.size
        buf[start:start + len(blob)] = blob
        return off + need

    # -- decoding ----------------------------------------------------------------

    def decode_batch(self, data) -> list:
        """Inverse of :meth:`encode_batch`/:meth:`encode_into` output.
        Accepts any readable buffer (bytes, bytearray, a memoryview
        over shared memory)."""
        version, count, pool_at, pool_n = _HEADER.unpack_from(data, 0)
        if version != CODEC_VERSION:
            raise SimulationError(
                f"boundary codec version mismatch: record says "
                f"{version}, this build speaks {CODEC_VERSION}")
        pool = []
        p = pool_at
        for _ in range(pool_n):
            meta = data[p]
            plen = meta & 0x7F
            if meta & 0x80:                      # run-length entry
                pool.append(bytes((data[p + 1],)) * plen)
                p += 2
            else:
                pool.append(bytes(data[p + 1:p + 1 + plen]))
                p += 1 + plen
        off = _HEADER.size
        out = []
        for _ in range(count):
            kind, when = _PREFIX.unpack_from(data, off)
            off += _PREFIX.size
            if kind == _KIND_ESCAPE:
                (blob_len,) = _ESCAPE_HDR.unpack_from(data, off)
                off += _ESCAPE_HDR.size
                out.append(pickle.loads(bytes(data[off:off + blob_len])))
                off += blob_len
                continue
            tag = data[off]
            name = _TAG_NAMES.get(tag)
            if name is None:
                raise SimulationError(
                    f"boundary codec: unknown key tag {tag}")
            key_struct = _KEY_BY_ARITY[_TAG_ARITY[tag]]
            unpacked = key_struct.unpack_from(data, off)
            key = (name, *unpacked[1:])
            off += key_struct.size
            if kind == _KIND_IN:
                (switch, host, vci, flags, link_id, tx_index,
                 ref) = _CELL_MSG.unpack_from(data, off)
                off += _CELL_MSG.size
                seq = 0
                if flags & _F_HAS_SEQ:
                    (seq,) = _SEQ.unpack_from(data, off)
                    off += _SEQ.size
                msg = ("in", switch, host,
                       _make_cell(vci, flags, seq, link_id, tx_index,
                                  pool[ref]))
            elif kind in (_KIND_REFILL, _KIND_PAUSE):
                src, vci = _CTRL_MSG.unpack_from(data, off)
                off += _CTRL_MSG.size
                msg = ("refill" if kind == _KIND_REFILL else "pause",
                       src, vci)
            elif kind == _KIND_DEAD:
                (ekind, a, b, c, t_fail,
                 t_detect) = _DEAD_MSG.unpack_from(data, off)
                off += _DEAD_MSG.size
                msg = ("dead", ekind, a, b, c, t_fail, t_detect)
            else:
                raise SimulationError(
                    f"boundary codec: unknown record kind {kind}")
            out.append((when, key, msg))
        return out


__all__ = ["BoundaryCodec", "CODEC_VERSION"]

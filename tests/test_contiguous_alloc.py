"""Best-effort dynamic contiguous allocation (section 2.2, end).

'We are currently experimenting with OS support for dynamic allocation
of contiguous physical pages on a best-effort basis.'  When it
succeeds, a whole multi-page buffer is one DMA-able physical run --
the general fix for buffer fragmentation on the copy-free path.
"""

from repro.host import AddressSpace
from repro.hw import PhysicalMemory


def _mem():
    return PhysicalMemory(16 * 1024 * 1024, 4096,
                          reserved_bytes=2 * 1024 * 1024)


def test_contiguous_hint_yields_one_physical_buffer():
    space = AddressSpace(_mem(), "t")
    vaddr = space.alloc(8 * 4096, try_contiguous=True)
    bufs = space.physical_buffers(vaddr, 8 * 4096)
    assert len(bufs) == 1
    assert bufs[0].length == 8 * 4096


def test_plain_alloc_still_fragments():
    space = AddressSpace(_mem(), "t")
    vaddr = space.alloc(8 * 4096, align_page=True)
    assert len(space.physical_buffers(vaddr, 8 * 4096)) >= 6


def test_hint_degrades_gracefully_when_memory_fragmented():
    """Exhaust all long runs; the hint must fall back, not fail."""
    mem = _mem()
    # Fragment the free list: allocate everything, free every other
    # frame, so no run longer than 1 remains.
    addrs = []
    while mem.free_frame_count:
        addrs.append(mem.alloc_frame())
    for addr in addrs:
        if (addr // 4096) % 2 == 0:  # only even frames: no adjacency
            mem.free_frame(addr)
    space = AddressSpace(mem, "t")
    vaddr = space.alloc(4 * 4096, try_contiguous=True)
    data = b"fallback" * 2048
    space.write(vaddr, data)
    assert space.read(vaddr, len(data)) == data
    assert len(space.physical_buffers(vaddr, 4 * 4096)) == 4


def test_contiguous_buffer_cuts_send_descriptors():
    """End to end: a contiguous message needs fewer descriptors."""
    from repro.hw import DS5000_200
    from repro.net import Host
    from repro.sim import Simulator, spawn
    from repro.xkernel import Message

    def send_one(contiguous):
        sim = Simulator()
        host = Host(sim, DS5000_200)
        host.connect(link=None, deliver=lambda c: None)
        app, path = host.open_raw_path()
        space = host.kernel.kernel_domain.space
        vaddr = space.alloc(16 * 1024, align_page=not contiguous,
                            try_contiguous=contiguous)
        space.write(vaddr, b"\x44" * 16 * 1024)
        msg = Message(space, [(vaddr, 16 * 1024)])

        def go():
            yield from path.bottom.send(msg)

        spawn(sim, go(), "s")
        sim.run()
        return host.board.kernel_channel.tx_queue.pushes

    scattered = send_one(False)
    contiguous = send_one(True)
    assert contiguous < scattered
    assert contiguous == 1

"""Full-system integration: two hosts exchanging messages.

These tests run the complete pipeline the paper measured: test program
-> UDP -> IP (fragmentation) -> driver -> lock-free queues -> transmit
processor -> striped link -> receive processor -> DMA -> interrupt ->
driver thread -> IP reassembly -> UDP -> test program.
"""

from repro.hw import DEC3000_600, DS5000_200
from repro.net import BackToBack
from repro.sim import spawn


def _run_until_received(net, app, count, limit_us=10_000_000.0):
    net.sim.run_while(lambda: len(app.receptions) < count)
    assert len(app.receptions) >= count, "messages never arrived"


def test_raw_atm_one_way():
    net = BackToBack(DS5000_200)
    app_a, app_b = net.open_raw_pair(echo_b=False, keep_data=True)

    def go():
        yield from app_a.send_message(b"raw atm message " * 8)

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert len(app_b.receptions) == 1
    assert app_b.receptions[0].data == b"raw atm message " * 8


def test_udp_ip_one_way_small():
    net = BackToBack(DS5000_200)
    app_a, app_b = net.open_udp_pair(echo_b=False, keep_data=True)

    def go():
        yield from app_a.send_message(b"hello via UDP/IP")

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert app_b.receptions[0].data == b"hello via UDP/IP"


def test_udp_ip_fragmented_large_message():
    """64 KB message over a 16 KB MTU: the UDP header pushes it just
    past four fragments' worth -- 5 fragments, reassembled."""
    net = BackToBack(DS5000_200)
    app_a, app_b = net.open_udp_pair(echo_b=False, keep_data=True)
    data = bytes(range(256)) * 256  # 64 KB

    def go():
        yield from app_a.send_message(data)

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert app_b.receptions[0].data == data
    assert net.a.ip.fragments_sent == 5


def test_udp_echo_round_trip():
    net = BackToBack(DS5000_200)
    app_a, app_b = net.open_udp_pair(echo_b=True)

    def go():
        yield from app_a.send_length(1024)

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert len(app_b.receptions) == 1   # request
    assert len(app_a.receptions) == 1   # echo
    rtt = app_a.receptions[0].time
    assert 200 < rtt < 2000  # microseconds; sane round-trip


def test_udp_checksum_end_to_end():
    net = BackToBack(DS5000_200, udp_checksum=True)
    app_a, app_b = net.open_udp_pair(echo_b=False, keep_data=True)
    data = b"checksummed payload" * 50

    def go():
        yield from app_a.send_message(data)

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert app_b.receptions[0].data == data
    assert net.b.udp.drops == 0


def test_many_messages_pipeline():
    net = BackToBack(DS5000_200)
    app_a, app_b = net.open_udp_pair(echo_b=False, keep_data=True)
    payloads = [bytes([k]) * (700 + 31 * k) for k in range(12)]

    def go():
        for data in payloads:
            yield from app_a.send_message(data)

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert [r.data for r in app_b.receptions] == payloads


def test_alpha_faster_than_decstation():
    times = {}
    for machine in (DS5000_200, DEC3000_600):
        net = BackToBack(machine)
        app_a, app_b = net.open_udp_pair(echo_b=True)

        def go():
            yield from app_a.send_length(1024)

        spawn(net.sim, go(), "sender")
        net.sim.run()
        times[machine.name] = app_a.receptions[0].time
    assert times[DEC3000_600.name] < times[DS5000_200.name] * 0.6


def test_interrupt_discipline_under_burst():
    """A burst of PDUs must cost far fewer than one interrupt each."""
    net = BackToBack(DS5000_200)
    app_a, app_b = net.open_udp_pair(echo_b=False)

    def go():
        for _ in range(20):
            yield from app_a.send_length(4096)

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert len(app_b.receptions) == 20
    assert net.b.kernel.interrupts_serviced < 20


def test_receive_buffers_recycle():
    """Sustained traffic must not exhaust the 64-buffer pool."""
    net = BackToBack(DS5000_200)
    app_a, app_b = net.open_udp_pair(echo_b=False)

    def go():
        for _ in range(80):  # more messages than buffers
            yield from app_a.send_length(2048)

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert len(app_b.receptions) == 80
    assert net.b.rxp.cells_dropped_no_buffer == 0


def test_wiring_happens_on_send_path():
    net = BackToBack(DS5000_200)
    app_a, app_b = net.open_udp_pair(echo_b=False)

    def go():
        yield from app_a.send_length(16 * 1024)

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert net.a.kernel.wiring.pages_wired >= 4
    # Completion reaping unwires lazily; force it with another send.
    assert len(app_b.receptions) == 1

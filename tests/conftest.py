"""Shared test rigs."""

import pytest

from repro.hw import (
    DataCache, DS5000_200, HostCPU, MemorySystem, PhysicalMemory,
    TurboChannel,
)
from repro.hw.dma import DmaMode
from repro.osiris import OsirisBoard
from repro.sim import Fidelity, Simulator


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize", action="store_true", default=False,
        help="run the whole suite with the repro.analysis.sanitize "
             "runtime checks enabled (SRSW queue ownership, monotone "
             "virtual time, shard horizons, window conservation)")


def pytest_configure(config):
    if config.getoption("--sanitize"):
        from repro.analysis import sanitize
        sanitize.enable()


class BoardRig:
    """A simulator + host memory + one OSIRIS board, no OS."""

    def __init__(self, machine=DS5000_200, fidelity=None,
                 tx_dma_mode=DmaMode.SINGLE_CELL,
                 rx_dma_mode=DmaMode.SINGLE_CELL,
                 memory_bytes=8 * 1024 * 1024):
        self.machine = machine
        self.fidelity = fidelity or Fidelity.full()
        self.sim = Simulator()
        self.memory = PhysicalMemory(
            memory_bytes, machine.page_size, fidelity=self.fidelity,
            reserved_bytes=4 * 1024 * 1024)
        self.cache = DataCache(machine.cache, self.memory, self.fidelity)
        self.tc = TurboChannel(self.sim, machine.bus)
        self.memsys = MemorySystem(self.sim, machine, self.tc)
        self.cpu = HostCPU(self.sim, machine, self.memsys)
        self.board = OsirisBoard(
            self.sim, machine, self.tc, self.memory, self.cache,
            fidelity=self.fidelity,
            tx_dma_mode=tx_dma_mode, rx_dma_mode=rx_dma_mode)

    def feed_free_buffers(self, count, vci=0, channel_id=0):
        """Host-side: allocate contiguous receive buffers and queue them."""
        from repro.osiris import Descriptor
        channel = self.board.channels[channel_id]
        size = self.board.spec.recv_buffer_bytes
        descs = []
        for _ in range(count):
            addr = self.memory.alloc_contiguous(size)
            desc = Descriptor(addr=addr, length=size, vci=vci)
            assert channel.free_queue.push(desc)
            descs.append(desc)
        return descs

    def queue_pdu(self, data, vci, channel_id=0, buffer_split=None):
        """Host-side: write ``data`` into buffers and queue descriptors.

        ``buffer_split`` is a list of buffer sizes; defaults to one
        buffer holding everything.
        """
        from repro.osiris import Descriptor, FLAG_END_OF_PDU
        channel = self.board.channels[channel_id]
        sizes = buffer_split or [len(data)]
        assert sum(sizes) == len(data)
        offset = 0
        descs = []
        for i, size in enumerate(sizes):
            addr = self.memory.alloc_contiguous(max(size, 1))
            self.memory.write(addr, data[offset:offset + size])
            flags = FLAG_END_OF_PDU if i == len(sizes) - 1 else 0
            desc = Descriptor(addr=addr, length=size, flags=flags, vci=vci)
            assert channel.tx_queue.push(desc)
            descs.append(desc)
            offset += size
        return descs

    def drain_received(self, channel_id=0):
        """Host-side: pop every descriptor from the receive queue."""
        channel = self.board.channels[channel_id]
        out = []
        while True:
            desc = channel.recv_queue.pop(by_host=True)
            if desc is None:
                return out
            out.append(desc)

    def reassemble_host_side(self, descs):
        """Concatenate delivered buffers into framed PDUs by END flag."""
        pdus = []
        current = bytearray()
        for desc in descs:
            current += self.memory.read(desc.addr, desc.length)
            if desc.end_of_pdu:
                pdus.append(bytes(current))
                current = bytearray()
        assert not current, "trailing buffers without END_OF_PDU"
        return pdus


@pytest.fixture
def rig():
    return BoardRig()

"""Unit tests for generator-based processes."""

import pytest

from repro.sim import (
    Delay, Interrupted, Latch, SimulationError, Signal, Simulator, all_of,
    spawn,
)


def test_delay_advances_time():
    sim = Simulator()
    seen = []

    def proc():
        yield Delay(3.0)
        seen.append(sim.now)
        yield Delay(4.0)
        seen.append(sim.now)

    spawn(sim, proc())
    sim.run()
    assert seen == [3.0, 7.0]


def test_process_result():
    sim = Simulator()

    def proc():
        yield Delay(1.0)
        return 42

    p = spawn(sim, proc())
    sim.run()
    assert p.done
    assert p.result == 42


def test_join_another_process():
    sim = Simulator()

    def worker():
        yield Delay(5.0)
        return "payload"

    def waiter(target):
        value = yield target
        return (sim.now, value)

    w = spawn(sim, worker())
    j = spawn(sim, waiter(w))
    sim.run()
    assert j.result == (5.0, "payload")


def test_join_already_finished_process():
    sim = Simulator()

    def worker():
        yield Delay(1.0)
        return "done"

    def late_joiner(target):
        yield Delay(10.0)
        value = yield target
        return value

    w = spawn(sim, worker())
    j = spawn(sim, late_joiner(w))
    sim.run()
    assert j.result == "done"


def test_signal_wakes_all_waiters_with_value():
    sim = Simulator()
    sig = Signal("s")
    results = []

    def waiter():
        value = yield sig
        results.append((sim.now, value))

    for _ in range(3):
        spawn(sim, waiter())
    spawn(sim, _fire_later(sim, sig, 2.0, "hello"))
    sim.run()
    assert results == [(2.0, "hello")] * 3


def _fire_later(sim, sig, delay, value):
    yield Delay(delay)
    sig.fire(value)


def test_signal_has_no_memory():
    sim = Simulator()
    sig = Signal("s")
    sig.fire("lost")
    results = []

    def waiter():
        value = yield sig
        results.append(value)

    spawn(sim, waiter())
    spawn(sim, _fire_later(sim, sig, 1.0, "kept"))
    sim.run()
    assert results == ["kept"]


def test_latch_remembers_fire():
    sim = Simulator()
    latch = Latch("l")
    latch.fire("sticky")
    results = []

    def waiter():
        value = yield latch
        results.append(value)

    spawn(sim, waiter())
    sim.run()
    assert results == ["sticky"]


def test_yield_none_is_cooperative_yield():
    sim = Simulator()
    order = []

    def proc(tag):
        for _ in range(2):
            order.append(tag)
            yield None

    spawn(sim, proc("a"))
    spawn(sim, proc("b"))
    sim.run()
    assert order == ["a", "b", "a", "b"]


def test_interrupt_during_delay():
    sim = Simulator()
    outcome = []

    def sleeper():
        try:
            yield Delay(100.0)
            outcome.append("slept")
        except Interrupted as exc:
            outcome.append(("interrupted", sim.now, exc.cause))

    p = spawn(sim, sleeper())

    def interrupter():
        yield Delay(3.0)
        p.interrupt("wake up")

    spawn(sim, interrupter())
    sim.run()
    assert outcome == [("interrupted", 3.0, "wake up")]


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield Delay(1.0)

    p = spawn(sim, quick())
    sim.run()
    p.interrupt()  # no exception
    assert p.done


def test_uncaught_interrupt_terminates_process():
    sim = Simulator()

    def sleeper():
        yield Delay(100.0)

    p = spawn(sim, sleeper())

    def interrupter():
        yield Delay(1.0)
        p.interrupt()

    spawn(sim, interrupter())
    sim.run()
    assert p.done


def test_yield_bad_command_raises():
    sim = Simulator()

    def proc():
        yield 123

    spawn(sim, proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_process_exception_propagates_and_marks_failed():
    sim = Simulator()

    def proc():
        yield Delay(1.0)
        raise ValueError("model bug")

    p = spawn(sim, proc())
    with pytest.raises(ValueError):
        sim.run()
    assert p.failed
    assert isinstance(p.error, ValueError)


def test_all_of_collects_results():
    sim = Simulator()

    def worker(delay, value):
        yield Delay(delay)
        return value

    procs = [spawn(sim, worker(d, d * 10)) for d in (3.0, 1.0, 2.0)]
    combined = all_of(sim, procs)
    sim.run()
    assert combined.result == [30.0, 10.0, 20.0]
    assert sim.now == 3.0


def test_subgenerator_delegation_with_yield_from():
    sim = Simulator()
    seen = []

    def inner():
        yield Delay(2.0)
        return "inner-value"

    def outer():
        value = yield from inner()
        seen.append((sim.now, value))

    spawn(sim, outer())
    sim.run()
    assert seen == [(2.0, "inner-value")]

"""Cache coherence and DMA controller tests."""

import pytest

from repro.hw import (
    DataCache, DmaController, DmaMode, DEC3000_600, DS5000_200,
    PhysicalMemory, TurboChannel,
)
from repro.sim import Fidelity, SimulationError, Simulator, spawn


def _mem():
    return PhysicalMemory(size_bytes=4 * 1024 * 1024, page_size=4096,
                          reserved_bytes=1024 * 1024)


def test_cache_miss_fills_from_memory():
    mem = _mem()
    cache = DataCache(DS5000_200.cache, mem)
    mem.write(0x2000, b"abcd")
    assert cache.read(0x2000, 4) == b"abcd"
    assert cache.misses >= 1
    assert cache.is_cached(0x2000)


def test_cache_hit_after_fill():
    mem = _mem()
    cache = DataCache(DS5000_200.cache, mem)
    cache.read(0x2000, 4)
    before = cache.hits
    cache.read(0x2000, 4)
    assert cache.hits == before + 1


def test_noncoherent_dma_leaves_stale_lines():
    """The section 2.3 hazard: cached data survives a DMA overwrite."""
    mem = _mem()
    cache = DataCache(DS5000_200.cache, mem)
    mem.write(0x3000, b"old!")
    assert cache.read(0x3000, 4) == b"old!"
    cache.dma_write(0x3000, b"new!")
    # Memory has the new bytes, the CPU still sees the old ones.
    assert mem.read(0x3000, 4) == b"new!"
    assert cache.read(0x3000, 4) == b"old!"
    assert cache.stale_reads >= 1


def test_invalidate_clears_stale_lines():
    mem = _mem()
    cache = DataCache(DS5000_200.cache, mem)
    mem.write(0x3000, b"old!")
    cache.read(0x3000, 4)
    cache.dma_write(0x3000, b"new!")
    words = cache.invalidate(0x3000, 4)
    assert words == 1
    assert cache.read(0x3000, 4) == b"new!"


def test_coherent_dma_updates_cache():
    """The Alpha behaviour: DMA writes update the cache (section 2.3)."""
    mem = _mem()
    cache = DataCache(DEC3000_600.cache, mem)
    mem.write(0x3000, b"old!")
    cache.read(0x3000, 4)
    cache.dma_write(0x3000, b"new!")
    assert cache.read(0x3000, 4) == b"new!"
    assert cache.stale_reads == 0


def test_direct_mapped_eviction():
    mem = _mem()
    cache = DataCache(DS5000_200.cache, mem)
    size = DS5000_200.cache.size_bytes
    mem.write(0x100, b"aaaa")
    mem.write(0x100 + size, b"bbbb")
    cache.read(0x100, 4)
    cache.read(0x100 + size, 4)  # same index, different tag -> evict
    assert not cache.is_cached(0x100)
    assert cache.is_cached(0x100 + size)


def test_eviction_clears_staleness_naturally():
    """Paper's lazy-invalidation argument: heavy traffic evicts lines."""
    mem = _mem()
    cache = DataCache(DS5000_200.cache, mem)
    mem.write(0x3000, b"old!")
    cache.read(0x3000, 4)
    cache.dma_write(0x3000, b"new!")
    # CPU touches one full cache worth of other data.
    base = 0x100000
    step = DS5000_200.cache.line_bytes
    for offset in range(0, DS5000_200.cache.size_bytes, step):
        cache.read(base + offset, 1)
    assert cache.read(0x3000, 4) == b"new!"


def test_cpu_write_is_write_through():
    mem = _mem()
    cache = DataCache(DS5000_200.cache, mem)
    cache.write(0x4000, b"wxyz")
    assert mem.read(0x4000, 4) == b"wxyz"
    assert cache.read(0x4000, 4) == b"wxyz"


def test_invalidate_word_count_for_16kb():
    mem = _mem()
    cache = DataCache(DS5000_200.cache, mem)
    assert cache.invalidate(0, 16 * 1024) == 4096


def _dma_rig(mode, cache_spec=None, coherent_machine=False):
    sim = Simulator()
    mem = _mem()
    machine = DEC3000_600 if coherent_machine else DS5000_200
    cache = DataCache(cache_spec or machine.cache, mem)
    tc = TurboChannel(sim, machine.bus)
    dma = DmaController(sim, tc, mem, cache, mode=mode, page_size=4096)
    return sim, mem, cache, dma


def test_single_cell_mode_rejects_larger_bursts():
    sim, mem, cache, dma = _dma_rig(DmaMode.SINGLE_CELL)

    def proc():
        yield from dma.write_host(0x2000, b"x" * 45)

    spawn(sim, proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_double_cell_mode_allows_88_bytes():
    sim, mem, cache, dma = _dma_rig(DmaMode.DOUBLE_CELL)

    def proc():
        yield from dma.write_host(0x2000, b"y" * 88)

    spawn(sim, proc())
    sim.run()
    assert mem.read(0x2000, 88) == b"y" * 88
    assert sim.now == pytest.approx((8 + 22) * 0.04)


def test_page_boundary_stop_limits_burst():
    sim, mem, cache, dma = _dma_rig(DmaMode.DOUBLE_CELL)
    # 20 bytes before a page boundary: burst must stop there.
    addr = 0x3000 - 20
    assert dma.max_burst(addr, 88) == 20
    # At a page start the full burst is allowed.
    assert dma.max_burst(0x3000, 88) == 88
    # Wanting less than the cap returns the want.
    assert dma.max_burst(0x3000, 30) == 30


def test_burst_crossing_page_boundary_rejected():
    sim, mem, cache, dma = _dma_rig(DmaMode.DOUBLE_CELL)

    def proc():
        yield from dma.write_host(0x3000 - 20, b"z" * 44)

    spawn(sim, proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_arbitrary_mode_moves_any_length():
    sim, mem, cache, dma = _dma_rig(DmaMode.ARBITRARY)
    dma.page_boundary_stop = False

    def proc():
        yield from dma.write_host(0x2000, bytes(range(256)) * 20)

    spawn(sim, proc())
    sim.run()
    assert mem.read(0x2000, 5120) == bytes(range(256)) * 20


def test_read_host_returns_memory_contents():
    sim, mem, cache, dma = _dma_rig(DmaMode.SINGLE_CELL)
    mem.write(0x2000, b"q" * 44)
    result = {}

    def proc():
        data = yield from dma.read_host(0x2000, 44)
        result["data"] = data

    spawn(sim, proc())
    sim.run()
    assert result["data"] == b"q" * 44


def test_dma_write_respects_coherence_model():
    sim, mem, cache, dma = _dma_rig(DmaMode.SINGLE_CELL)
    mem.write(0x2000, b"A" * 44)
    cache.read(0x2000, 44)

    def proc():
        yield from dma.write_host(0x2000, b"B" * 44)

    spawn(sim, proc())
    sim.run()
    assert mem.read(0x2000, 44) == b"B" * 44
    assert cache.read(0x2000, 44) == b"A" * 44  # stale on the DS


def test_timing_only_fidelity_skips_copies():
    sim = Simulator()
    mem = PhysicalMemory(size_bytes=1024 * 1024, page_size=4096,
                         fidelity=Fidelity.timing_only(),
                         reserved_bytes=64 * 1024)
    tc = TurboChannel(sim, DS5000_200.bus)
    dma = DmaController(sim, tc, mem, None, mode=DmaMode.SINGLE_CELL,
                        fidelity=Fidelity.timing_only())

    def proc():
        yield from dma.write_host(0x2000, b"c" * 44)

    spawn(sim, proc())
    sim.run()
    assert mem.read(0x2000, 4) == b"\x00\x00\x00\x00"
    assert dma.bytes_moved == 44

"""Unit tests for physical memory, dual-port memory, test-and-set."""

import pytest

from repro.hw import (
    DualPortMemory, OutOfMemory, PhysicalMemory, TestAndSetRegister,
)
from repro.sim import Fidelity, SimulationError


@pytest.fixture
def mem():
    return PhysicalMemory(size_bytes=8 * 1024 * 1024, page_size=4096,
                          reserved_bytes=1024 * 1024)


def test_read_write_roundtrip(mem):
    mem.write(0x1000, b"osiris")
    assert mem.read(0x1000, 6) == b"osiris"


def test_out_of_range_access_rejected(mem):
    with pytest.raises(SimulationError):
        mem.read(mem.size_bytes - 2, 4)
    with pytest.raises(SimulationError):
        mem.write(-4, b"xxxx")


def test_frame_allocation_is_scrambled(mem):
    # Consecutive allocations must generally NOT be physically adjacent:
    # this is the fragmentation premise of section 2.2.
    addrs = [mem.alloc_frame() for _ in range(32)]
    adjacent = sum(
        1 for a, b in zip(addrs, addrs[1:], strict=False)
        if b == a + mem.page_size)
    assert adjacent < 8
    assert len(set(addrs)) == 32
    for addr in addrs:
        assert addr % mem.page_size == 0
        assert addr >= mem.reserved_bytes


def test_frame_free_and_reuse(mem):
    addr = mem.alloc_frame()
    before = mem.free_frame_count
    mem.free_frame(addr)
    assert mem.free_frame_count == before + 1


def test_free_unallocated_frame_rejected(mem):
    with pytest.raises(SimulationError):
        mem.free_frame(mem.reserved_bytes)


def test_frames_exhaust(mem):
    total = mem.free_frame_count
    for _ in range(total):
        mem.alloc_frame()
    with pytest.raises(OutOfMemory):
        mem.alloc_frame()


def test_contiguous_pool_is_contiguous_and_bounded(mem):
    a = mem.alloc_contiguous(16 * 1024)
    b = mem.alloc_contiguous(16 * 1024)
    assert b == a + 16 * 1024
    with pytest.raises(OutOfMemory):
        mem.alloc_contiguous(2 * 1024 * 1024)


def test_best_effort_contiguous_frames(mem):
    addr = mem.try_alloc_contiguous_frames(4)
    assert addr is not None
    assert addr % mem.page_size == 0
    # The four frames are gone from the free list.
    frames = {addr + i * mem.page_size for i in range(4)}
    more = {mem.alloc_frame() for _ in range(mem.free_frame_count)}
    assert not (frames & more)


def test_timing_only_fidelity_skips_data(

):
    mem = PhysicalMemory(size_bytes=1024 * 1024, page_size=4096,
                         fidelity=Fidelity.timing_only(),
                         reserved_bytes=64 * 1024)
    mem.write(0, b"data")
    assert mem.read(0, 4) == b"\x00\x00\x00\x00"


def test_dualport_word_roundtrip():
    dp = DualPortMemory(1024)
    dp.write_word(0, 0xDEADBEEF, by_host=True)
    assert dp.read_word(0, by_host=False) == 0xDEADBEEF
    assert dp.host_writes == 1
    assert dp.board_reads == 1


def test_dualport_masks_to_32_bits():
    dp = DualPortMemory(1024)
    dp.write_word(4, 0x1_0000_0001, by_host=False)
    assert dp.read_word(4, by_host=True) == 1


def test_dualport_rejects_unaligned_and_out_of_range():
    dp = DualPortMemory(1024)
    with pytest.raises(SimulationError):
        dp.read_word(3, by_host=True)
    with pytest.raises(SimulationError):
        dp.write_word(1024, 0, by_host=True)


def test_test_and_set_semantics():
    tas = TestAndSetRegister()
    assert tas.test_and_set()
    assert not tas.test_and_set()
    assert tas.failed_attempts == 1
    tas.clear()
    assert tas.test_and_set()
    assert tas.acquisitions == 2


def test_clear_free_register_rejected():
    tas = TestAndSetRegister()
    with pytest.raises(SimulationError):
        tas.clear()

"""Link and striping model tests."""

import pytest

from repro.atm import Cell, CellPipe, SkewModel, StripedLink, segment
from repro.sim import Simulator


def _cells(n, vci=1):
    return [Cell(vci=vci, payload=bytes([i % 256]) * 44) for i in range(n)]


def test_cell_pipe_delivers_in_order_at_line_rate():
    sim = Simulator()
    got = []
    pipe = CellPipe(sim, 0, deliver=lambda c: got.append((sim.now, c)),
                    prop_delay_us=5.0)
    for cell in _cells(3):
        pipe.submit(cell)
    sim.run()
    assert len(got) == 3
    times = [t for t, _ in got]
    assert times == sorted(times)
    # One cell serializes in 53*8/155.52 = 2.726 us, plus 5 us propagation.
    assert times[0] == pytest.approx(7.726, abs=0.01)
    assert times[1] - times[0] == pytest.approx(2.726, abs=0.01)


def test_cell_pipe_jitter_never_reorders():
    sim = Simulator()
    got = []
    import random
    rng = random.Random(7)
    pipe = CellPipe(sim, 0, deliver=lambda c: got.append(c),
                    queueing_delay=lambda: rng.uniform(0, 50))
    cells = _cells(50)
    for cell in cells:
        pipe.submit(cell)
    sim.run()
    assert got == cells  # same objects, same order


def test_striped_link_round_robin_assignment():
    sim = Simulator()
    got = []
    stripe = StripedLink(sim, deliver=lambda c: got.append(c))
    cells = _cells(8)
    stripe.submit_pdu(cells)
    sim.run()
    assert [c.link_id for c in cells] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert len(got) == 8


def test_striper_resets_per_pdu():
    sim = Simulator()
    stripe = StripedLink(sim, deliver=lambda c: None)
    first = _cells(3)
    second = _cells(2)
    stripe.submit_pdu(first)
    stripe.submit_pdu(second)
    sim.run()
    assert [c.link_id for c in first] == [0, 1, 2]
    assert [c.link_id for c in second] == [0, 1]


def test_no_skew_preserves_global_order():
    sim = Simulator()
    got = []
    stripe = StripedLink(sim, deliver=lambda c: got.append(c),
                         skew=SkewModel.none())
    cells = _cells(16)
    stripe.submit_pdu(cells)
    sim.run()
    assert got == cells


def test_skew_misorders_across_links_but_not_within():
    sim = Simulator()
    got = []
    skew = SkewModel(fixed_offsets_us=(0.0, 30.0, 0.0, 30.0))
    stripe = StripedLink(sim, deliver=lambda c: got.append(c), skew=skew)
    cells = _cells(32)
    stripe.submit_pdu(cells)
    sim.run()
    assert len(got) == 32
    arrival_order = [cells.index(c) for c in got]
    assert arrival_order != list(range(32))  # misordered globally
    for link in range(4):
        on_link = [i for i in arrival_order if i % 4 == link]
        assert on_link == sorted(on_link)  # ordered per link


def test_aggregate_payload_rate_is_516_mbps():
    sim = Simulator()
    stripe = StripedLink(sim, deliver=lambda c: None)
    assert stripe.aggregate_payload_mbps == pytest.approx(516.5, abs=1.0)


def test_sustained_stripe_throughput_approaches_516():
    sim = Simulator()
    done = {"bytes": 0, "last": 0.0}

    def deliver(cell):
        done["bytes"] += len(cell.payload)
        done["last"] = sim.now

    stripe = StripedLink(sim, deliver=deliver, prop_delay_us=0.0)
    data = b"z" * (64 * 1024)
    cells = segment(data, vci=1)
    stripe.submit_pdu(cells)
    sim.run()
    mbps = done["bytes"] * 8.0 / done["last"]
    assert 480 < mbps < 520


def test_skew_model_factories():
    assert not SkewModel.none().introduces_skew
    assert SkewModel.aurora_like().introduces_skew
    assert SkewModel.severe().introduces_skew


def test_skew_delay_fn_nonnegative_and_seeded():
    skew_a = SkewModel.severe(seed=1)
    skew_b = SkewModel.severe(seed=1)
    fn_a = skew_a.delay_fn(2)
    fn_b = skew_b.delay_fn(2)
    samples_a = [fn_a() for _ in range(100)]
    samples_b = [fn_b() for _ in range(100)]
    assert samples_a == samples_b  # deterministic given seed
    assert all(s >= 0 for s in samples_a)

"""Unit tests for resources and stores."""

import pytest

from repro.sim import Delay, Resource, SimulationError, Simulator, Store, spawn


def test_resource_serializes_capacity_one():
    sim = Simulator()
    bus = Resource(sim, "bus", capacity=1)
    log = []

    def user(tag, hold):
        yield from bus.use(hold)
        log.append((tag, sim.now))

    spawn(sim, user("a", 5.0))
    spawn(sim, user("b", 3.0))
    sim.run()
    assert log == [("a", 5.0), ("b", 8.0)]


def test_resource_capacity_two_runs_concurrently():
    sim = Simulator()
    pool = Resource(sim, "pool", capacity=2)
    log = []

    def user(tag):
        yield from pool.use(4.0)
        log.append((tag, sim.now))

    for tag in "abc":
        spawn(sim, user(tag))
    sim.run()
    assert log == [("a", 4.0), ("b", 4.0), ("c", 8.0)]


def test_priority_request_served_first():
    sim = Simulator()
    bus = Resource(sim, "bus")
    log = []

    def holder():
        yield from bus.use(10.0)

    def user(tag, priority):
        yield Delay(1.0)
        grant = yield bus.request(priority)
        log.append((tag, sim.now))
        grant.release()

    spawn(sim, holder())
    spawn(sim, user("low", priority=5.0))
    spawn(sim, user("high", priority=0.0))
    sim.run()
    assert [tag for tag, _ in log] == ["high", "low"]


def test_double_release_raises():
    sim = Simulator()
    bus = Resource(sim, "bus")
    errors = []

    def user():
        grant = yield bus.request()
        grant.release()
        try:
            grant.release()
        except SimulationError as exc:
            errors.append(exc)

    spawn(sim, user())
    sim.run()
    assert len(errors) == 1


def test_zero_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, "bad", capacity=0)


def test_busy_time_accounting():
    sim = Simulator()
    bus = Resource(sim, "bus")

    def user():
        yield from bus.use(4.0)
        yield Delay(6.0)
        yield from bus.use(2.0)

    spawn(sim, user())
    sim.run()
    assert bus.busy_time == pytest.approx(6.0)
    assert bus.utilization() == pytest.approx(0.5)
    assert bus.grants == 2


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim, "pipe")
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield Delay(7.0)
        yield store.put("cell")

    spawn(sim, consumer())
    spawn(sim, producer())
    sim.run()
    assert got == [(7.0, "cell")]


def test_store_preserves_fifo_order():
    sim = Simulator()
    store = Store(sim, "pipe")
    got = []

    def producer():
        for i in range(5):
            yield store.put(i)
            yield Delay(1.0)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    spawn(sim, producer())
    spawn(sim, consumer())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_bounded_store_blocks_producer():
    sim = Simulator()
    store = Store(sim, "pipe", capacity=1)
    times = []

    def producer():
        for i in range(3):
            yield store.put(i)
            times.append(sim.now)

    def consumer():
        for _ in range(3):
            yield Delay(10.0)
            yield store.get()

    spawn(sim, producer())
    spawn(sim, consumer())
    sim.run()
    # First put immediate; second put waits for first get at t=10; third at 20.
    assert times == [0.0, 10.0, 20.0]


def test_try_put_and_try_get():
    sim = Simulator()
    store = Store(sim, "pipe", capacity=2)
    assert store.try_put("a")
    assert store.try_put("b")
    assert not store.try_put("c")
    ok, item = store.try_get()
    assert ok and item == "a"
    assert store.try_put("c")
    assert [store.try_get()[1] for _ in range(2)] == ["b", "c"]
    ok, item = store.try_get()
    assert not ok


def test_multiple_getters_fifo():
    sim = Simulator()
    store = Store(sim, "pipe")
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    spawn(sim, consumer("first"))
    spawn(sim, consumer("second"))

    def producer():
        yield Delay(1.0)
        yield store.put("x")
        yield store.put("y")

    spawn(sim, producer())
    sim.run()
    assert got == [("first", "x"), ("second", "y")]

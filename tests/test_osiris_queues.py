"""Lock-free descriptor queue tests, including property-based checks of
the paper's head/tail invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.hw import DualPortMemory
from repro.osiris import Descriptor, DescriptorQueue, queue_region_bytes
from repro.sim import SimulationError


def _queue(size=8, host_is_writer=True):
    dp = DualPortMemory(8192)
    return DescriptorQueue(dp, 0, size, host_is_writer, name="t")


def _desc(i):
    return Descriptor(addr=0x1000 * (i + 1), length=100 + i, vci=i % 7)


def test_new_queue_is_empty():
    q = _queue()
    assert q.is_empty(by_host=True)
    assert not q.is_full(by_host=True)
    assert q.occupancy(by_host=False) == 0


def test_push_pop_roundtrip():
    q = _queue()
    d = Descriptor(addr=0x4000, length=1234, flags=1, vci=42)
    assert q.push(d)
    got = q.pop()
    assert got == d
    assert got.end_of_pdu


def test_fifo_order():
    q = _queue(size=8)
    for i in range(5):
        assert q.push(_desc(i))
    assert [q.pop() for _ in range(5)] == [_desc(i) for i in range(5)]


def test_capacity_is_size_minus_one():
    q = _queue(size=8)
    for i in range(7):
        assert q.push(_desc(i))
    assert q.is_full(by_host=True)
    assert not q.push(_desc(99))


def test_pop_empty_returns_none():
    q = _queue()
    assert q.pop() is None


def test_wraparound():
    q = _queue(size=4)
    for round_ in range(10):
        assert q.push(_desc(round_))
        assert q.pop() == _desc(round_)
    assert q.is_empty(by_host=True)


def test_peek_does_not_consume():
    q = _queue()
    q.push(_desc(1))
    assert q.peek() == _desc(1)
    assert q.peek() == _desc(1)
    assert q.pop() == _desc(1)


def test_wrong_side_operations_rejected():
    q = _queue(host_is_writer=True)
    with pytest.raises(SimulationError):
        q.push(_desc(0), by_host=False)   # board is the reader here
    with pytest.raises(SimulationError):
        q.pop(by_host=True)               # host is the writer here


def test_nonempty_signal_fires_on_transition_only():
    q = _queue()
    fires = []
    q.became_nonempty.subscribe(lambda v: fires.append(1))
    q.push(_desc(0))       # empty -> non-empty: fires
    q.push(_desc(1))       # non-empty: no fire
    assert len(fires) == 1
    q.pop()
    q.pop()
    q.push(_desc(2))       # transition again
    assert len(fires) == 2


def test_nonfull_signal_fires_when_full_drains():
    q = _queue(size=4)
    fires = []
    q.became_nonfull.subscribe(lambda v: fires.append(1))
    for i in range(3):
        q.push(_desc(i))
    assert q.is_full(by_host=True)
    q.pop()
    assert len(fires) == 1
    q.pop()
    assert len(fires) == 1


def test_access_counters_track_word_operations():
    q = _queue()
    q.host_access.reset()
    q.push(_desc(0))
    # head load + tail load + 4 entry stores + head store
    assert q.host_access.reads == 2
    assert q.host_access.writes == 5
    q.board_access.reset()
    q.pop()
    assert q.board_access.reads == 2 + 4
    assert q.board_access.writes == 1


def test_queue_region_must_fit():
    dp = DualPortMemory(64)
    with pytest.raises(SimulationError):
        DescriptorQueue(dp, 0, 64, host_is_writer=True)


def test_queue_region_bytes():
    assert queue_region_bytes(64) == 8 + 64 * 16


def test_state_lives_in_dual_port_memory():
    """The queue is *in* the shared memory: a second view over the same
    region sees the same state (what the board and host actually do)."""
    dp = DualPortMemory(8192)
    writer_view = DescriptorQueue(dp, 0, 8, host_is_writer=True)
    writer_view.push(_desc(3))
    # Head pointer visible at word 0, raw.
    assert dp.read_word(0, by_host=False) == 1
    assert dp.read_word(8, by_host=False) == _desc(3).addr


@given(st.lists(st.sampled_from(["push", "pop"]), max_size=200))
def test_queue_never_corrupts_under_any_interleaving(ops):
    """Property: under any push/pop interleaving the queue behaves as a
    bounded FIFO (the lock-free invariant of section 2.1.1)."""
    q = _queue(size=5)
    model = []
    counter = 0
    for op in ops:
        if op == "push":
            desc = _desc(counter % 50)
            ok = q.push(desc)
            assert ok == (len(model) < q.capacity)
            if ok:
                model.append(desc)
                counter += 1
        else:
            got = q.pop()
            if model:
                assert got == model.pop(0)
            else:
                assert got is None
    assert q.occupancy(by_host=True) == len(model)

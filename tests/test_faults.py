"""Fault injection and loss recovery tests.

Covers the `repro.faults` plan/site machinery, the extended
conservation law under every fault class, the credit-deadlock
watchdog, credit regeneration, striping-group degradation, and the
end-to-end story the paper's AAL5 CRC exists for: RDP completing a
transfer with correct bytes over a fabric that loses and corrupts
cells.
"""

import pytest

from repro.atm import Cell, SegmentMode
from repro.cluster import Fabric, WorkloadSpec, collect, run_workload
from repro.faults import (
    FaultPlan, FaultSite, LaneKill, LinkFlap, PortKill, fault_hash,
)
from repro.hw.specs import DS5000_200
from repro.sim import SimulationError, spawn
from repro.xkernel import RdpProtocol, RdpSession, TestProgram


# -- plan and site machinery --------------------------------------------------

def test_fault_hash_is_pure_and_bounded():
    draw = fault_hash(1, "up.h0.l0", 17, 1)
    assert draw == fault_hash(1, "up.h0.l0", 17, 1)
    assert 0.0 <= draw < 1.0
    assert draw != fault_hash(1, "up.h0.l0", 17, 2)   # salt matters
    assert draw != fault_hash(2, "up.h0.l0", 17, 1)   # seed matters
    assert draw != fault_hash(1, "up.h0.l1", 17, 1)   # site matters


def test_fault_plan_parse_grammar():
    plan = FaultPlan.parse(
        "loss=0.01,corrupt=0.001,credit-loss=0.05,"
        "flap=2:1@500+200,kill=0:3@1000,port=0:0:1@800", seed=9)
    assert plan.seed == 9
    assert plan.cell_loss == 0.01
    assert plan.corrupt == 0.001
    assert plan.credit_loss == 0.05
    assert plan.flaps == (LinkFlap(host=2, lane=1, at_us=500.0,
                                   duration_us=200.0),)
    assert plan.lane_kills == (LaneKill(host=0, lane=3, at_us=1000.0),)
    assert plan.port_kills == (PortKill(switch=0, trunk=0, lane=1,
                                        at_us=800.0),)
    assert plan.active
    assert FaultPlan.parse("seed=4", seed=9).seed == 4
    assert not FaultPlan().active
    for bad in ("loss=2.0", "bogus=1", "flap=1:2", "flap", "port=1@3"):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)


def test_fault_site_down_states_and_counters():
    site = FaultSite("t", seed=1)
    cell = Cell(vci=1, payload=b"x")
    assert site.filter(cell, 0.0) is cell
    site.flap(10.0)
    assert site.filter(cell, 5.0) is None      # down
    assert site.filter(cell, 10.0) is cell     # back up at the edge
    site.kill()
    assert site.filter(cell, 99.0) is None
    assert site.cells_seen == 4
    assert site.cells_lost == 2
    assert site.cells_lost_down == 2
    assert site.stats()["dead"]


def test_fault_site_corruption_flips_exactly_one_bit():
    site = FaultSite("c", seed=3, corrupt=1.0)
    clean = bytes(44)
    out = site.filter(Cell(vci=1, payload=clean), 0.0)
    assert out.corrupted
    diff = [i for i in range(44) if out.payload[i] != clean[i]]
    assert len(diff) == 1
    assert bin(out.payload[diff[0]] ^ clean[diff[0]]).count("1") == 1
    assert site.cells_corrupted == 1


# -- conservation under injected faults --------------------------------------

def _run_cluster(faults, n_hosts=4, pattern="pairs", **fabric_kw):
    fabric = Fabric(DS5000_200, n_hosts, faults=faults, **fabric_kw)
    spec = WorkloadSpec(pattern=pattern, kind="open", seed=1,
                        message_bytes=2048, messages_per_client=4)
    result = run_workload(fabric, spec)
    return fabric, collect(fabric, result)


def test_extended_conservation_under_cell_loss():
    fabric, report = _run_cluster(FaultPlan.parse("loss=0.05", seed=7))
    cons = report.conservation
    assert cons["holds"]
    assert cons["queued"] == 0
    assert cons["lost_to_faults"] > 0
    assert cons["injected"] == (cons["delivered"] + cons["corrupted"]
                                + cons["dropped"]
                                + cons["lost_to_faults"])


def test_corruption_is_delivered_and_caught_by_crc():
    fabric, report = _run_cluster(
        FaultPlan.parse("corrupt=0.05", seed=7),
        segment_mode=SegmentMode.SEQUENCE)
    cons = report.conservation
    assert cons["holds"]
    assert cons["corrupted"] > 0
    assert cons["lost_to_faults"] == 0
    # Every corrupted PDU is discarded by the AAL5 CRC at a receiver.
    assert sum(h["rx_crc_errors"] for h in report.hosts) > 0
    assert report.faults["corrupted_delivered"] == cons["corrupted"]


def test_link_flap_loses_cells_only_while_down():
    fabric, report = _run_cluster(
        FaultPlan.parse("flap=0:0@20+40", seed=3), n_hosts=2)
    site = report.faults["sites"]["up.h0.l0"]
    assert site["cells_lost_down"] > 0
    assert site["cells_lost"] == site["cells_lost_down"]
    assert not site["dead"]
    assert report.conservation["holds"]
    # The lane carried traffic again after the flap ended.
    assert site["cells_seen"] > site["cells_lost"]


def test_link_flap_overlapping_end_of_run_still_quiesces():
    # The down window extends far past the last cell: nothing must
    # keep the simulation alive waiting for the link to come back,
    # and the accounting still closes.
    fabric, report = _run_cluster(
        FaultPlan.parse("flap=0:0@20+1000000000", seed=3), n_hosts=2)
    site = report.faults["sites"]["up.h0.l0"]
    assert site["cells_lost_down"] > 0
    assert not site["dead"]          # a flap is an outage, not a kill
    assert report.conservation["holds"]
    assert report.conservation["queued"] == 0


def test_link_flap_zero_duration_loses_nothing():
    # A zero-width down window ([at, at)) is empty: the run must be
    # indistinguishable from the fault-free baseline.
    fabric, report = _run_cluster(
        FaultPlan.parse("flap=0:0@50+0", seed=3), n_hosts=2)
    site = report.faults["sites"]["up.h0.l0"]
    assert site["cells_lost"] == 0
    assert site["cells_lost_down"] == 0
    plain_fabric, plain = _run_cluster(None, n_hosts=2)
    assert report.conservation == plain.conservation
    assert report.workload == plain.workload


def test_two_back_to_back_flaps_extend_the_outage():
    # Second flap begins the instant the first ends: the site is down
    # for the contiguous union and recovers after, exactly as a single
    # double-length flap would behave.
    def run(spec_str):
        fabric, report = _run_cluster(
            FaultPlan.parse(spec_str, seed=3), n_hosts=2)
        return report.faults["sites"]["up.h0.l0"], report

    double, rep_d = run("flap=0:0@20+30,flap=0:0@50+30")
    single, rep_s = run("flap=0:0@20+60")
    assert double["cells_lost_down"] > 0
    assert double["cells_lost_down"] == single["cells_lost_down"]
    assert not double["dead"]
    assert rep_d.conservation["holds"]
    # The lane carried traffic again once the second window closed.
    assert double["cells_seen"] > double["cells_lost"]


def test_port_kill_sinks_arrivals_at_the_switch():
    fabric, report = _run_cluster(
        FaultPlan.parse("port=0:1:0@30", seed=3), n_hosts=2)
    sw = fabric.switches[0]
    ports = {(p.trunk_id, p.lane): p for p in sw.port_stats()}
    assert ports[(1, 0)].dead
    assert ports[(1, 0)].lost_to_faults > 0
    assert sw.cells_lost_to_faults == ports[(1, 0)].lost_to_faults
    assert report.conservation["holds"]
    assert report.conservation["lost_to_faults"] > 0


def test_port_kill_rejected_on_direct_topology():
    with pytest.raises(SimulationError, match="port kills"):
        Fabric(DS5000_200, 2, topology="direct",
               faults=FaultPlan.parse("port=0:0:0@10"))


def test_fault_plan_validates_targets():
    # Without a topology the fabric still rejects bad targets at
    # construction time; lane bounds need no topology and fail at
    # parse time already.
    with pytest.raises(SimulationError, match="host"):
        Fabric(DS5000_200, 2, faults=FaultPlan.parse("kill=9:0@10"))
    with pytest.raises(ValueError, match="lane 7"):
        FaultPlan.parse("flap=0:7@10+5")
    with pytest.raises(SimulationError, match="switch"):
        Fabric(DS5000_200, 2, faults=FaultPlan.parse("port=3:0:0@10"))


def test_fault_plan_parse_validates_against_topology():
    from repro.topology import build_spec
    topo = build_spec("clos", 4, pods=2, oversubscription=1.0)
    # Good coordinates parse (leaf0 trunk 2 is its first spine uplink).
    plan = FaultPlan.parse("port=leaf0:2:1@100", topology=topo)
    assert plan.port_kills[0].switch == 0
    # Every bad coordinate names the offending token.
    for bad, why in (
            ("port=leaf9:0:0@100", "unknown switch"),
            ("port=7:0:0@100", "switch 7 out of range"),
            ("port=leaf0:9:0@100", "trunk 9 out of range"),
            ("port=leaf0:2:4@100", "lane 4 out of range"),
            ("kill=4:0@100", "host 4 out of range"),
            ("flap=0:0@-5+10", "negative"),
            ("flap=0:0@5+-10", "negative"),
    ):
        with pytest.raises(ValueError, match="bad fault token") as err:
            FaultPlan.parse(bad, topology=topo)
        assert why in str(err.value), (bad, str(err.value))
    # n_hosts alone bounds host indices without switch knowledge.
    with pytest.raises(ValueError, match="host 2 out of range"):
        FaultPlan.parse("kill=2:0@100", n_hosts=2)


# -- RDP end-to-end over an unreliable fabric ---------------------------------

def _rdp_over_fabric(fabric, flow, **proto_kw):
    sides = []
    for host, vci in ((fabric.hosts[flow.src], flow.src_vci),
                      (fabric.hosts[flow.dst], flow.dst_vci)):
        drv = host.driver.open_path(vci=vci)
        proto = RdpProtocol(host.cpu, host.sim, cache=host.cache,
                            cache_policy=host.driver.cache_policy,
                            **proto_kw)
        session = RdpSession(proto, drv)
        app = TestProgram(host.test, session, keep_data=True)
        sides.append((proto, session, app))
    return sides


def _rdp_transfer(fabric, payloads):
    flow = fabric.open_flow(0, 1)
    (pa, sa, _aa), (_pb, _sb, ab) = _rdp_over_fabric(fabric, flow)

    def go():
        for data in payloads:
            yield from _aa.send_message(data)
        ok = yield from sa.wait_all_acked()
        assert ok, "sender gave up (max retries exceeded)"

    spawn(fabric.sim, go(), "sender")
    fabric.sim.run()
    return pa, ab


def test_rdp_delivers_correct_bytes_over_one_percent_loss():
    fabric = Fabric(DS5000_200, 2,
                    faults=FaultPlan.parse("loss=0.01", seed=7))
    payloads = [bytes([40 + k]) * (900 + 61 * k) for k in range(8)]
    proto, receiver = _rdp_transfer(fabric, payloads)
    assert [r.data for r in receiver.receptions] == payloads
    assert proto.retransmissions > 0
    assert fabric.cells_lost_to_faults() > 0
    assert fabric.conservation()["holds"]


def test_rdp_over_loss_completes_under_credit_regeneration():
    # Lost data cells and lost credit cells both eat the window; the
    # regeneration timer refills it, so the transfer still completes
    # with zero queue-full drops at the fabric.
    fabric = Fabric(DS5000_200, 2,
                    faults=FaultPlan.parse("loss=0.01,credit-loss=0.25",
                                           seed=5),
                    backpressure="credit", credit_window_cells=8,
                    credit_regen_timeout_us=1500.0)
    payloads = [bytes([40 + k]) * (900 + 61 * k) for k in range(8)]
    proto, receiver = _rdp_transfer(fabric, payloads)
    assert [r.data for r in receiver.receptions] == payloads
    assert fabric.drop_breakdown()["queue_full"] == 0
    assert fabric.gates[0].stats()["regenerations"] > 0
    assert fabric.conservation()["holds"]


def test_lane_kill_degrades_striping_group_and_transfer_survives():
    # Lane 1 of host 0's uplink dies mid-transfer: the striper
    # re-spreads over the survivors (sequence numbers place the cells)
    # and RDP resends whatever died with the lane.
    fabric = Fabric(DS5000_200, 2,
                    faults=FaultPlan.parse("kill=0:1@120", seed=2),
                    segment_mode=SegmentMode.SEQUENCE)
    payloads = [bytes([50 + k]) * 1500 for k in range(6)]
    proto, receiver = _rdp_transfer(fabric, payloads)
    assert [r.data for r in receiver.receptions] == payloads
    assert fabric.uplinks[0].degraded
    site = fabric.fault_stats()["sites"]["up.h0.l1"]
    assert site["dead"]
    assert fabric.conservation()["holds"]


# -- credit deadlock watchdog -------------------------------------------------

def test_credit_watchdog_raises_diagnosable_error():
    # Every credit cell dies: the flow emits one window and stalls
    # forever.  Instead of silently quiescing mid-transfer, the
    # watchdog names the culprit VCI and its outstanding count.
    fabric = Fabric(DS5000_200, 2,
                    faults=FaultPlan.parse("credit-loss=1.0", seed=1),
                    backpressure="credit", credit_window_cells=4,
                    credit_watchdog_us=2000.0)
    app, _peer, flow = fabric.open_raw_flow(0, 1)
    spawn(fabric.sim, app.send_message(b"z" * 4096), "sender")
    with pytest.raises(SimulationError) as err:
        fabric.sim.run()
    message = str(err.value)
    assert "credit deadlock" in message
    assert f"{flow.src_vci:#x}" in message
    assert "4 of 4 credits outstanding" in message


def test_credit_watchdog_is_silent_on_a_healthy_fabric():
    # Stalls happen (window 4 is tiny) but every one ends with a real
    # refill, so the armed watchdogs all see a moved epoch and no-op.
    fabric = Fabric(DS5000_200, 2, backpressure="credit",
                    credit_window_cells=4, credit_watchdog_us=2000.0)
    app, _peer, _flow = fabric.open_raw_flow(0, 1)
    spawn(fabric.sim, app.send_message(b"z" * 4096), "sender")
    fabric.sim.run()
    assert fabric.hosts[1].driver.pdus_received == 1
    assert fabric.gates[0].stalls > 0


def test_regeneration_never_fires_without_faults():
    # The loss-free result must be preserved when regeneration is
    # merely enabled: at fault rate 0 every stall ends with a genuine
    # refill before any timer can matter.
    spec = WorkloadSpec(pattern="incast", kind="open", seed=1,
                        message_bytes=2048, messages_per_client=3)

    def run(**extra):
        fabric = Fabric(DS5000_200, 4, backpressure="credit",
                        credit_window_cells=8, **extra)
        result = run_workload(fabric, spec)
        return fabric, collect(fabric, result)

    plain_fabric, plain = run()
    regen_fabric, regen = run(credit_regen_timeout_us=400.0)
    assert sum(g.regenerations for g in regen_fabric.gates if g) == 0
    assert regen.conservation == plain.conservation
    assert regen.hosts == plain.hosts
    assert regen.workload == plain.workload


# -- chaos matrix -------------------------------------------------------------

def test_chaos_credit_scenario_passes_all_invariants():
    from repro.faults.chaos import build_scenarios, run_scenario
    scenario = next(s for s in build_scenarios(seed=1, quick=True)
                    if s["name"] == "credit-regen")
    result = run_scenario(scenario, shard_counts=(1, 2),
                          backend="thread")
    assert result["ok"], result["failures"]
    assert result["conservation"]["holds"]

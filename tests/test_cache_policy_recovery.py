"""End-to-end lazy cache invalidation (section 2.3).

The DECstation's cache is not coherent with DMA.  Under the lazy
policy the driver never invalidates receive buffers up front; instead,
when a checksum computed over (possibly stale) cached bytes fails, the
affected lines are invalidated and the message re-evaluated.  These
tests drive that path with real bytes: a deliberately warmed cache
line really returns stale data, the UDP checksum really fails, and the
recovery really fixes it.
"""

from repro.driver.config import CachePolicyKind, DriverConfig
from repro.hw import DEC3000_600, DS5000_200
from repro.net import Host
from repro.osiris.rx_processor import FramedPduSource
from repro.bench.workloads import udp_ip_message_pdus
from repro.sim import Simulator


def _receive_one(machine, policy, prewarm: bool, checksum: bool = True):
    config = DriverConfig(cache_policy=policy)
    sim = Simulator()
    host = Host(sim, machine, config=config, udp_checksum=checksum)
    host.connect_receive_only(flow_controlled=True)
    app, path = host.open_udp_path(local_port=7, remote_port=9,
                                   keep_data=True)
    if prewarm:
        # The CPU reads the first receive buffer's range before the
        # DMA lands -- e.g. leftover reads from that buffer's previous
        # use.  These lines will be stale after the DMA.
        first_buffer = 0  # contiguous pool starts at physical 0
        size = host.board.spec.recv_buffer_bytes
        host.cache.read(first_buffer, size)
    pdus = udp_ip_message_pdus(4096, host.ip.mtu, checksum=checksum)
    FramedPduSource(sim, host.board, vci=path.vci, pdus=pdus, repeat=1)
    sim.run()
    return host, app


def test_stale_read_actually_happens_without_recovery():
    """Policy NONE on a non-coherent machine: the checksum failure is
    terminal and the message is dropped -- proving the staleness is
    real, not cosmetic."""
    host, app = _receive_one(DS5000_200, CachePolicyKind.NONE,
                             prewarm=True)
    assert host.udp.checksum_failures >= 1 or host.driver.rx_errors >= 1
    assert len(app.receptions) == 0


def test_lazy_policy_recovers_stale_data():
    host, app = _receive_one(DS5000_200, CachePolicyKind.LAZY,
                             prewarm=True)
    assert len(app.receptions) == 1
    assert app.receptions[0].data is not None
    recovered = (host.udp.stale_recoveries
                 + host.driver.cache_policy.lazy_recoveries)
    assert recovered >= 1


def test_lazy_policy_costs_nothing_in_the_common_case():
    """No stale lines -> no invalidations at all (the optimization)."""
    host, app = _receive_one(DS5000_200, CachePolicyKind.LAZY,
                             prewarm=False)
    assert len(app.receptions) == 1
    assert host.driver.cache_policy.lazy_recoveries == 0
    assert host.udp.checksum_failures == 0


def test_eager_policy_never_sees_stale_data():
    host, app = _receive_one(DS5000_200, CachePolicyKind.EAGER,
                             prewarm=True)
    assert len(app.receptions) == 1
    assert host.udp.checksum_failures == 0
    assert host.driver.cache_policy.eager_invalidations >= 1


def test_coherent_machine_needs_no_policy():
    host, app = _receive_one(DEC3000_600, CachePolicyKind.NONE,
                             prewarm=True)
    assert len(app.receptions) == 1
    assert host.udp.checksum_failures == 0
    assert host.cache.stale_reads == 0


def test_without_checksum_stale_data_reaches_the_application():
    """Condition 3 of section 2.3: with unreliable protocols (no
    checksum) stale *payload* can reach an application that reads
    through the cache -- the reason the driver recycles buffers onto
    the same data stream.  (The driver invalidates the few metadata
    lines it reads itself, but never the bulk data.)"""
    host, app = _receive_one(DS5000_200, CachePolicyKind.LAZY,
                             prewarm=True, checksum=False)
    # The message is delivered: nothing detects the staleness.
    assert len(app.receptions) == 1
    # An application load of the payload region through the cache
    # returns the pre-DMA bytes, not what is actually in memory.
    payload_addr = 200  # mid-payload of the first receive buffer
    cached = host.cache.read(payload_addr, 64)
    fresh = host.memory.read(payload_addr, 64)
    assert cached != fresh
    assert host.cache.stale_reads > 0

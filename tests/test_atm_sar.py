"""Skew-tolerant reassembly: unit and property tests.

The property tests generate arbitrary *skew-class* misorderings --
any interleaving of the four per-link cell streams that preserves
per-link order -- and check that both strategies of section 2.6
reconstruct every PDU exactly.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm import (
    ConcurrentReassembler, SegmentMode, SequenceNumberReassembler,
    SkewOverflow, segment,
)

STRIPE = 4


def _stripe_cells(cells):
    """Assign link ids the way the striper does (cell i -> link i%4)."""
    for i, cell in enumerate(cells):
        cell.link_id = i % STRIPE
    return cells


def _skew_interleave(streams, rng):
    """Random merge of per-link streams preserving per-link order."""
    cursors = [0] * len(streams)
    out = []
    remaining = sum(len(s) for s in streams)
    while remaining:
        candidates = [i for i, s in enumerate(streams) if cursors[i] < len(s)]
        link = rng.choice(candidates)
        out.append(streams[link][cursors[link]])
        cursors[link] += 1
        remaining -= 1
    return out


def _per_link_streams(pdus, mode):
    """Segment PDUs, assign links, return 4 per-link ordered streams."""
    streams = [[] for _ in range(STRIPE)]
    seq_base = 0
    for data in pdus:
        cells = segment(data, vci=1, mode=mode)
        if mode is SegmentMode.SEQUENCE:
            for cell in cells:
                cell.seq += seq_base
            seq_base += len(cells)
        _stripe_cells(cells)
        for cell in cells:
            streams[cell.link_id].append(cell)
    return streams


# -- Strategy 1: sequence numbers ---------------------------------------------

def test_seq_reassembly_in_order():
    data = b"q" * 500
    reasm = SequenceNumberReassembler(vci=1)
    out = []
    for cell in segment(data, vci=1, mode=SegmentMode.SEQUENCE):
        out += reasm.push(cell)
    assert out == [data]


def test_seq_reassembly_reversed_within_window():
    data = b"r" * 300
    cells = segment(data, vci=1, mode=SegmentMode.SEQUENCE)
    reasm = SequenceNumberReassembler(vci=1, window=64)
    out = []
    for cell in reversed(cells):
        out += reasm.push(cell)
    assert out == [data]
    assert reasm.max_skew_seen == len(cells) - 1


def test_seq_window_overflow_raises():
    data = b"s" * 44 * 100
    cells = segment(data, vci=1, mode=SegmentMode.SEQUENCE)
    reasm = SequenceNumberReassembler(vci=1, window=8)
    with pytest.raises(SkewOverflow):
        for cell in reversed(cells):
            reasm.push(cell)


def test_seq_requires_sequence_numbers():
    from repro.atm import Aal5Error
    cells = segment(b"t" * 10, vci=1)  # IN_ORDER: no seq
    reasm = SequenceNumberReassembler(vci=1)
    with pytest.raises(Aal5Error):
        reasm.push(cells[0])


def test_seq_pipelined_pdus_with_skew():
    pdus = [bytes([k]) * (100 + 7 * k) for k in range(6)]
    streams = _per_link_streams(pdus, SegmentMode.SEQUENCE)
    rng = random.Random(42)
    arrival = _skew_interleave(streams, rng)
    reasm = SequenceNumberReassembler(vci=1, window=4096)
    out = []
    for cell in arrival:
        out += reasm.push(cell)
    assert out == pdus


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=400), min_size=1, max_size=5),
    st.integers(0, 2**32 - 1),
)
def test_seq_property_any_skew(pdus, seed):
    streams = _per_link_streams(pdus, SegmentMode.SEQUENCE)
    arrival = _skew_interleave(streams, random.Random(seed))
    reasm = SequenceNumberReassembler(vci=1, window=1 << 20)
    out = []
    for cell in arrival:
        out += reasm.push(cell)
    assert out == pdus


def test_seq_loss_resync_skips_only_damaged_pdu():
    """A destroyed cell must not wedge the stream: once the gap
    outlives the loss bound, the damaged PDU is skipped and every
    later PDU still reassembles."""
    from repro.atm import LossDetected
    pdus = [bytes([k]) * 200 for k in range(4)]
    streams = _per_link_streams(pdus, SegmentMode.SEQUENCE)
    arrival = [c for s in streams for c in s]
    arrival.sort(key=lambda c: c.seq)
    victim = arrival[1]                  # mid-PDU cell of the first PDU
    reasm = SequenceNumberReassembler(vci=1, loss_resync_cells=8)
    out = []
    caught = 0
    for cell in arrival:
        if cell is victim:
            continue
        try:
            out += reasm.push(cell)
        except LossDetected:
            caught += 1
            reasm.gap_resync()
    assert caught == 1
    assert reasm.loss_resyncs == 1
    assert out == pdus[1:]
    assert reasm.cells_pending == 0


def test_seq_loss_resync_with_lost_eom():
    """Losing the EOM itself folds the next PDU into the damage
    region (its EOM bounds the skip) but the stream keeps going."""
    from repro.atm import LossDetected
    pdus = [bytes([k]) * 200 for k in range(4)]
    streams = _per_link_streams(pdus, SegmentMode.SEQUENCE)
    arrival = sorted((c for s in streams for c in s), key=lambda c: c.seq)
    victim = next(c for c in arrival if c.eom)   # first PDU's EOM
    reasm = SequenceNumberReassembler(vci=1, loss_resync_cells=8)
    out = []
    for cell in arrival:
        if cell is victim:
            continue
        try:
            out += reasm.push(cell)
        except LossDetected:
            reasm.gap_resync()
    assert out == pdus[2:]
    assert reasm.cells_pending == 0


def test_seq_loss_bound_tolerates_ordinary_skew():
    """Skew-class misordering alone must never trip the loss bound."""
    pdus = [bytes([k]) * 300 for k in range(5)]
    streams = _per_link_streams(pdus, SegmentMode.SEQUENCE)
    arrival = _skew_interleave(streams, random.Random(7))
    reasm = SequenceNumberReassembler(vci=1, loss_resync_cells=8)
    out = []
    for cell in arrival:
        out += reasm.push(cell)          # must not raise
    assert out == pdus


def test_seq_loss_resync_default_off():
    """Without a loss bound the old semantics hold: the stream waits
    indefinitely on a gap."""
    data = b"z" * 44 * 20
    cells = segment(data, vci=1, mode=SegmentMode.SEQUENCE)
    reasm = SequenceNumberReassembler(vci=1)
    out = []
    for cell in cells[1:]:               # first cell destroyed
        out += reasm.push(cell)
    assert out == []
    assert reasm.cells_pending == len(cells) - 1


# -- Strategy 2: concurrent per-link reassembly --------------------------------

def test_concurrent_reassembly_in_order():
    data = b"u" * 700
    reasm = ConcurrentReassembler(vci=1)
    out = []
    cells = _stripe_cells(segment(data, vci=1, mode=SegmentMode.CONCURRENT))
    for cell in cells:
        out += reasm.push(cell, cell.link_id)
    assert out == [data]


def test_concurrent_single_cell_pdu():
    data = b"v" * 20
    reasm = ConcurrentReassembler(vci=1)
    cells = _stripe_cells(segment(data, vci=1, mode=SegmentMode.CONCURRENT))
    assert len(cells) == 1
    out = reasm.push(cells[0], 0)
    assert out == [data]


def test_concurrent_short_pdu_sizes_two_and_three():
    for ncells_data in (40, 100):  # 2-cell and 3-cell PDUs
        data = b"w" * ncells_data
        reasm = ConcurrentReassembler(vci=1)
        cells = _stripe_cells(
            segment(data, vci=1, mode=SegmentMode.CONCURRENT))
        out = []
        for cell in cells:
            out += reasm.push(cell, cell.link_id)
        assert out == [data]


def test_concurrent_with_lagging_link():
    """One whole link is delayed behind the other three."""
    data = b"x" * 900
    cells = _stripe_cells(segment(data, vci=1, mode=SegmentMode.CONCURRENT))
    lagging = [c for c in cells if c.link_id == 2]
    prompt = [c for c in cells if c.link_id != 2]
    reasm = ConcurrentReassembler(vci=1)
    out = []
    for cell in prompt + lagging:
        out += reasm.push(cell, cell.link_id)
    assert out == [data]


def test_concurrent_interleaved_short_then_long():
    """A later PDU's completion cells must not fire early assembly."""
    pdus = [b"a" * 50, b"b" * 120]  # 2-cell PDU then 3-cell PDU
    streams = _per_link_streams(pdus, SegmentMode.CONCURRENT)
    # Deliver link 2 (only PDU b uses it) first, then links 0 and 1.
    arrival = streams[2] + streams[0] + streams[1] + streams[3]
    reasm = ConcurrentReassembler(vci=1)
    out = []
    for cell in arrival:
        out += reasm.push(cell, cell.link_id)
    assert out == pdus


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=600), min_size=1, max_size=6),
    st.integers(0, 2**32 - 1),
)
def test_concurrent_property_any_skew(pdus, seed):
    streams = _per_link_streams(pdus, SegmentMode.CONCURRENT)
    arrival = _skew_interleave(streams, random.Random(seed))
    reasm = ConcurrentReassembler(vci=1)
    out = []
    for cell in arrival:
        out += reasm.push(cell, cell.link_id)
    assert out == pdus
    assert reasm.cells_pending == 0


def test_concurrent_rejects_bad_link():
    from repro.atm import Aal5Error, Cell
    reasm = ConcurrentReassembler(vci=1)
    with pytest.raises(Aal5Error):
        reasm.push(Cell(vci=1, payload=b"y" * 44), 7)

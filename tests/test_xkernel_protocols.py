"""UDP/IP protocol unit tests (against a loopback driver stub)."""

from hypothesis import given, settings, strategies as st

from repro.host import AddressSpace
from repro.hw import (
    DS5000_200, DataCache, HostCPU, MemorySystem, PhysicalMemory,
    TurboChannel,
)
from repro.sim import Simulator, spawn
from repro.xkernel import (
    IpProtocol, IpSession, Protocol, Session, TestProgram,
    TestProtocol, UdpProtocol, UdpSession,
)


class LoopbackSession(Session):
    """A path bottom that hands every sent message straight back up
    (optionally through a peer session, for two-stack tests)."""

    def __init__(self, space):
        super().__init__(Protocol("loopback"), below=None)
        self.space = space
        self.peer: Session = self

    def send(self, msg):
        yield from self.peer._deliver_above(msg)

    def deliver(self, msg):
        yield from self._deliver_above(msg)


def _stack(udp_checksum=False):
    sim = Simulator()
    mem = PhysicalMemory(16 * 1024 * 1024, 4096,
                         reserved_bytes=2 * 1024 * 1024)
    cache = DataCache(DS5000_200.cache, mem)
    tc = TurboChannel(sim, DS5000_200.bus)
    cpu = HostCPU(sim, DS5000_200, MemorySystem(sim, DS5000_200, tc))
    space = AddressSpace(mem, "k")
    loop = LoopbackSession(space)
    ip = IpSession(IpProtocol(cpu, mtu=4096 + 20), loop)
    udp = UdpSession(UdpProtocol(cpu, cache=cache,
                                 checksum_enabled=udp_checksum),
                     ip, local_port=7, remote_port=7)
    app = TestProgram(TestProtocol(cpu, sim), udp, keep_data=True)
    return sim, app, ip, udp


def test_loopback_roundtrip_small():
    sim, app, ip, udp = _stack()

    def go():
        yield from app.send_message(b"tiny")

    spawn(sim, go(), "s")
    sim.run()
    assert app.receptions[0].data == b"tiny"


def test_fragmentation_and_reassembly_over_loopback():
    sim, app, ip, udp = _stack()
    data = bytes(range(256)) * 64  # 16 KB over a 4 KB MTU

    def go():
        yield from app.send_message(data)

    spawn(sim, go(), "s")
    sim.run()
    assert app.receptions[0].data == data
    assert ip.ip.fragments_sent == 5
    assert ip.ip.reassemblies_completed == 1


def test_checksum_verified_on_receive():
    sim, app, ip, udp = _stack(udp_checksum=True)

    def go():
        yield from app.send_message(b"check me" * 100)

    spawn(sim, go(), "s")
    sim.run()
    assert app.receptions[0].data == b"check me" * 100
    assert udp.udp.checksum_failures == 0


def test_corrupted_payload_dropped_by_checksum():
    sim, app, ip, udp = _stack(udp_checksum=True)

    class Corruptor(LoopbackSession):
        def send(self, msg):
            # Flip a byte mid-payload before delivery -- through the
            # cache, as wire corruption lands via DMA + a fresh read.
            vaddr, length = msg.segments()[-1]
            for buf in self.space.physical_buffers(
                    vaddr + length // 2, 1):
                byte = udp.udp.cache.read(buf.addr, 1)
                udp.udp.cache.write(buf.addr, bytes([byte[0] ^ 0xFF]))
            yield from self.peer._deliver_above(msg)

    corrupt = Corruptor(ip.below.space)
    corrupt.above = ip
    ip.below = corrupt

    def go():
        yield from app.send_message(b"fragile" * 50)

    spawn(sim, go(), "s")
    sim.run()
    assert app.receptions == []
    assert udp.udp.checksum_failures == 1
    assert udp.udp.drops == 1


def test_wrong_port_dropped():
    sim, app, ip, udp = _stack()
    udp.local_port = 99  # receiver now expects a different port

    def go():
        yield from app.send_message(b"misdirected")

    spawn(sim, go(), "s")
    sim.run()
    assert app.receptions == []
    assert udp.udp.drops == 1


def test_interleaved_fragment_streams_reassemble():
    """Fragments of two messages interleave at the driver: IP must
    sort them by ident."""
    sim, app, ip, udp = _stack()

    # Collect fragments instead of delivering, then deliver shuffled.
    held = []
    loop = ip.below

    def holding_send(msg):
        held.append(msg)
        return
        yield  # pragma: no cover

    loop.send = holding_send
    a = b"A" * 9000
    b = b"B" * 9000

    def go():
        yield from app.send_message(a)
        yield from app.send_message(b)
        order = [held[0], held[3], held[1], held[4], held[2], held[5]]
        for frag in order:
            yield from ip.deliver(frag)

    spawn(sim, go(), "s")
    sim.run()
    assert {r.data for r in app.receptions} == {a, b}


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=1, max_size=30000))
def test_stack_roundtrip_property(data):
    sim, app, ip, udp = _stack()

    def go():
        yield from app.send_message(data)

    spawn(sim, go(), "s")
    sim.run()
    assert app.receptions[0].data == data

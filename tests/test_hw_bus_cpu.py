"""Bus contention and CPU model tests."""

import pytest

from repro.hw import (
    DEC3000_600, DS5000_200, HostCPU, MemorySystem, TurboChannel,
)
from repro.sim import Delay, Simulator, spawn


def _rig(machine):
    sim = Simulator()
    tc = TurboChannel(sim, machine.bus)
    memsys = MemorySystem(sim, machine, tc)
    cpu = HostCPU(sim, machine, memsys)
    return sim, tc, memsys, cpu


def test_dma_write_timing_matches_spec():
    sim, tc, _, _ = _rig(DS5000_200)

    def proc():
        yield from tc.dma_write(44)

    spawn(sim, proc())
    sim.run()
    assert sim.now == pytest.approx((8 + 11) * 0.04)


def test_dma_read_timing_matches_spec():
    sim, tc, _, _ = _rig(DS5000_200)

    def proc():
        yield from tc.dma_read(88)

    spawn(sim, proc())
    sim.run()
    assert sim.now == pytest.approx((13 + 22) * 0.04)


def test_pio_is_much_slower_per_word():
    sim, tc, _, _ = _rig(DS5000_200)

    def proc():
        yield from tc.pio_read_words(11)  # 44 bytes, word at a time

    spawn(sim, proc())
    sim.run()
    # 11 words * 13 cycles each, versus 24 cycles for the DMA burst.
    assert sim.now == pytest.approx(11 * 13 * 0.04)


def test_cpu_memory_traffic_stalls_dma_on_shared_path():
    sim, tc, memsys, cpu = _rig(DS5000_200)
    finish = {}

    def software():
        # 100 us of software with bus_fraction=0.5 -> 50 us of bus.
        yield from cpu.execute(100.0, bus_fraction=0.5)
        finish["sw"] = sim.now

    def dma_stream():
        for _ in range(100):
            yield from tc.dma_write(44)
        finish["dma"] = sim.now

    spawn(sim, software())
    spawn(sim, dma_stream())
    sim.run()
    pure_dma = 100 * (8 + 11) * 0.04  # 76 us
    # The DMA stream must have been delayed by the CPU's bus share
    # (interleaved at ~1 us transaction granularity, so the two
    # streams roughly sum).
    assert finish["dma"] > pure_dma + 25.0


def test_cpu_memory_traffic_concurrent_on_crossbar():
    sim, tc, memsys, cpu = _rig(DEC3000_600)
    finish = {}

    def software():
        yield from cpu.execute(100.0, bus_fraction=0.5)
        finish["sw"] = sim.now

    def dma_stream():
        for _ in range(100):
            yield from tc.dma_write(44)
        finish["dma"] = sim.now

    spawn(sim, software())
    spawn(sim, dma_stream())
    sim.run()
    pure_dma = 100 * (8 + 11) * 0.04
    assert finish["dma"] == pytest.approx(pure_dma)
    assert finish["sw"] == pytest.approx(100.0)


def test_cpu_serializes_software_activities():
    sim, _, _, cpu = _rig(DEC3000_600)
    log = []

    def activity(tag, us):
        yield from cpu.execute(us, bus_fraction=0.0)
        log.append((tag, sim.now))

    spawn(sim, activity("a", 30.0))
    spawn(sim, activity("b", 20.0))
    sim.run()
    assert log == [("a", 30.0), ("b", 50.0)]


def test_interrupt_priority_jumps_cpu_queue():
    sim, _, _, cpu = _rig(DS5000_200)
    log = []

    def holder():
        yield from cpu.execute(10.0, bus_fraction=0.0)
        log.append(("holder", sim.now))

    def thread():
        yield Delay(1.0)
        yield from cpu.execute(10.0, bus_fraction=0.0, priority=1.0)
        log.append(("thread", sim.now))

    def interrupt():
        yield Delay(2.0)
        yield from cpu.execute(5.0, bus_fraction=0.0, priority=0.0)
        log.append(("irq", sim.now))

    spawn(sim, holder())
    spawn(sim, thread())
    spawn(sim, interrupt())
    sim.run()
    assert [t for t, _ in log] == ["holder", "irq", "thread"]


def test_touch_data_rate_ds5000_is_about_80_mbps():
    sim, _, _, cpu = _rig(DS5000_200)

    def proc():
        yield from cpu.touch_data(16 * 1024)

    spawn(sim, proc())
    sim.run()
    mbps = 16 * 1024 * 8 / sim.now
    # Paper: CPU-read data throughput collapses to ~80 Mbps on the DS.
    assert 85 < mbps < 115


def test_checksum_resident_is_cheaper_than_uncached():
    sim, _, _, cpu = _rig(DS5000_200)
    times = {}

    def resident():
        yield from cpu.checksum(8192, data_resident=True)
        times["resident"] = sim.now

    spawn(sim, resident())
    sim.run()

    sim2, _, _, cpu2 = _rig(DS5000_200)

    def uncached():
        yield from cpu2.checksum(8192, data_resident=False)
        times["uncached"] = sim2.now

    spawn(sim2, uncached())
    sim2.run()
    assert times["uncached"] > times["resident"] * 3

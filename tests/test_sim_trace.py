"""Measurement helper tests (counters, series, throughput meters)."""

import math

import pytest

from repro.sim import Counter, Series, Simulator, Throughput
from repro.sim.trace import mbps_from_bytes, mean


def test_counter():
    c = Counter("events")
    c.add()
    c.add(4)
    assert c.value == 5
    assert "events" in repr(c)


def test_series_stats():
    s = Series("lat")
    for t, v in enumerate([10.0, 20.0, 30.0, 40.0]):
        s.record(float(t), v)
    assert len(s) == 4
    assert s.mean() == 25.0
    assert s.percentile(50) == 25.0
    assert s.percentile(0) == 10.0
    assert s.percentile(100) == 40.0
    assert s.stdev() == pytest.approx(12.909, abs=0.01)


def test_series_empty_stats():
    s = Series("empty")
    assert math.isnan(s.mean())
    assert math.isnan(s.percentile(50))
    assert s.stdev() == 0.0


def test_throughput_window():
    sim = Simulator()
    t = Throughput(sim, "rx")
    t.account(1000)             # warm-up traffic
    sim.call_after(10.0, lambda: None)
    sim.run()
    t.open_window()
    t.account(5000)
    sim.call_after(10.0, lambda: None)
    sim.run()
    # 5000 bytes in 10 us = 4000 Mbps; warm-up excluded.
    assert t.window_bytes == 5000
    assert t.mbps() == pytest.approx(4000.0)


def test_throughput_zero_window():
    sim = Simulator()
    t = Throughput(sim, "rx")
    t.open_window()
    assert t.mbps() == 0.0


def test_mbps_from_bytes():
    assert mbps_from_bytes(1000, 8.0) == pytest.approx(1000.0)
    assert mbps_from_bytes(1000, 0.0) == 0.0


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert math.isnan(mean([]))

"""Fabric flow control: credit windows, EFCI marking, per-VCI fairness.

The tentpole scenarios: an unpaced incast that collapses the seed
fabric runs loss-free under credit backpressure; goodput is monotone
in offered load up to saturation; EFCI marking is the cheap middle
ground; and per-VCI round-robin drain keeps a closed-loop RPC flow
alive against saturating open-loop hogs that starve it under the old
shared FIFO.
"""

import pytest

from repro.cluster import Fabric, WorkloadSpec, run_workload, sweep_offered_load
from repro.cluster.backpressure import CreditGate
from repro.cluster.workloads import ClientResult, _setup_rpc, client_rng
from repro.hw import DS5000_200
from repro.sim import Delay, SimulationError, Simulator, spawn


# -- the gate itself ---------------------------------------------------------


def test_credit_gate_blocks_at_window_and_resumes_on_refill():
    sim = Simulator()
    gate = CreditGate(sim)
    gate.open_vci(7, window=2)
    emitted = []

    def sender():
        for i in range(4):
            yield from gate.acquire(7)
            emitted.append((i, sim.now))

    def refiller():
        yield Delay(10.0)
        gate.refill(7)
        yield Delay(10.0)
        gate.refill(7)

    spawn(sim, sender(), "sender")
    spawn(sim, refiller(), "refiller")
    sim.run()
    assert [t for _, t in emitted] == [0.0, 0.0, 10.0, 20.0]
    assert gate.stalls == 2
    assert gate.stall_time_us == pytest.approx(20.0)
    assert gate.credits_outstanding() == 2   # two refills never returned


def test_credit_gate_ignores_ungated_vcis():
    sim = Simulator()
    gate = CreditGate(sim)
    times = []

    def sender():
        for _ in range(3):
            yield from gate.acquire(0x4001)  # never opened: no gating
            times.append(sim.now)

    spawn(sim, sender(), "sender")
    sim.run()
    assert times == [0.0, 0.0, 0.0]
    assert gate.stalls == 0


def test_credit_gate_pause_holds_until_deadline_and_only_extends():
    sim = Simulator()
    gate = CreditGate(sim)
    gate.open_vci(5, window=None)    # uncounted: EFCI-style gating
    gate.pause(5, 25.0)
    gate.pause(5, 15.0)              # shorter deadline must not shorten
    times = []

    def sender():
        yield from gate.acquire(5)
        times.append(sim.now)

    spawn(sim, sender(), "sender")
    sim.run()
    assert times == [25.0]
    assert gate.stats()["flows"][5]["pauses"] == 1


def test_credit_gate_rejects_bad_windows_and_duplicates():
    gate = CreditGate(Simulator())
    gate.open_vci(9, window=4)
    with pytest.raises(SimulationError):
        gate.open_vci(9, window=4)
    with pytest.raises(SimulationError):
        gate.open_vci(11, window=0)


def test_refill_never_exceeds_the_window():
    sim = Simulator()
    gate = CreditGate(sim)
    gate.open_vci(3, window=2)
    gate.refill(3)                   # spurious: already at the window
    assert gate.stats()["flows"][3]["credits"] == 2
    assert gate.credits_outstanding() == 0


# -- credit mode over the fabric ---------------------------------------------


def test_credit_incast_zero_queue_full_drops():
    """The acceptance scenario: unpaced 8-host incast, loss-free by
    construction under credits, collapse without them."""
    spec = WorkloadSpec(pattern="incast", kind="open", seed=7,
                        message_bytes=8192, messages_per_client=12)
    fab = Fabric(DS5000_200, 8, backpressure="credit")
    run_workload(fab, spec)
    drops = fab.drop_breakdown()
    assert drops["queue_full"] == 0
    assert drops["no_route"] == 0
    assert fab.conservation()["holds"]
    stats = fab.backpressure_stats()
    assert stats["mode"] == "credit"
    assert sum(h["stalls"] for h in stats["hosts"]) > 0   # it engaged
    # Quiescent fabric: every credit came home.
    assert all(h["credits_outstanding"] == 0 for h in stats["hosts"])

    fab2 = Fabric(DS5000_200, 8, backpressure="none")
    run_workload(fab2, spec)
    assert fab2.drop_breakdown()["queue_full"] > 0
    assert fab2.backpressure_stats() is None


def test_credit_goodput_monotone_up_to_saturation():
    spec = WorkloadSpec(pattern="incast", kind="open", seed=3,
                        message_bytes=4096, messages_per_client=10)
    points = sweep_offered_load(
        lambda: Fabric(DS5000_200, 8, backpressure="credit"),
        spec, [5.0, 15.0, 40.0])
    goodputs = [p["goodput_mbps"] for p in points]
    assert goodputs == sorted(goodputs)
    assert goodputs[-1] > goodputs[0]
    assert all(p["drops"]["queue_full"] == 0 for p in points)


def test_efci_marks_relay_back_and_reduce_drops():
    """The cheap alternative: marking does not eliminate loss, but the
    relayed pauses must measurably reduce it versus no control."""
    spec = WorkloadSpec(pattern="incast", kind="open", seed=7,
                        message_bytes=8192, messages_per_client=12)
    drops = {}
    for mode in ("none", "efci"):
        fab = Fabric(DS5000_200, 8, backpressure=mode)
        run_workload(fab, spec)
        drops[mode] = fab.drop_breakdown()["queue_full"]
        if mode == "efci":
            stats = fab.backpressure_stats()
            pauses = sum(sum(f["pauses"] for f in h["flows"].values())
                         for h in stats["hosts"])
            assert pauses > 0
    assert 0 < drops["efci"] < drops["none"]


def test_backpressure_rejected_on_direct_topology():
    with pytest.raises(SimulationError):
        Fabric(DS5000_200, 2, topology="direct", backpressure="credit")


# -- per-VCI fairness --------------------------------------------------------


HOG_MESSAGES = 40
HOG_BYTES = 8192


def _rpc_under_hogs(drain_policy: str, with_hogs: bool) -> ClientResult:
    """One closed-loop RPC client (h2 -> h0), optionally against two
    unpaced open-loop hogs (h1, h3 -> h0) saturating h0's trunk."""
    fab = Fabric(DS5000_200, 4, drain_policy=drain_policy)
    spec = WorkloadSpec(kind="rpc", seed=5, requests_per_client=8,
                        rpc_read_fraction=1.0, rpc_block_bytes=8192)
    result = ClientResult(name="rpc", src=2, dst=0)
    _setup_rpc(fab, spec, client_rng(5, 0), result, 2, 0)
    if with_hogs:
        for src in (1, 3):
            app, _, _ = fab.open_raw_flow(src, 0)

            def hog(app=app):
                for _ in range(HOG_MESSAGES):
                    yield from app.send_length(HOG_BYTES)

            spawn(fab.sim, hog(), f"hog-h{src}")
    fab.sim.run()
    return result


def _p99(result: ClientResult) -> float:
    lat = sorted(result.latencies_us)
    return lat[min(len(lat) - 1, int(len(lat) * 0.99))]


def test_rr_drain_bounds_rpc_p99_under_open_loop_hogs():
    """The fairness demo: with per-VCI round-robin drain, a saturating
    pair of open-loop hogs cannot starve a closed-loop RPC flow -- its
    p99 stays within 3x of the uncontended p99."""
    base = _rpc_under_hogs("rr", with_hogs=False)
    contended = _rpc_under_hogs("rr", with_hogs=True)
    assert len(base.latencies_us) == 8
    assert len(contended.latencies_us) == 8      # every call completed
    assert _p99(contended) <= 3.0 * _p99(base)


def test_fifo_drain_starves_rpc_under_open_loop_hogs():
    """The counterfactual: under the old shared FIFO the hogs own the
    port, RPC request cells are tail-dropped, and the client never
    finishes its call sequence."""
    contended = _rpc_under_hogs("fifo", with_hogs=True)
    assert len(contended.latencies_us) < 8

"""Tests for the benchmark harness building blocks."""

from hypothesis import given, strategies as st

from repro.bench import (
    build_ip_fragments, build_udp_packet, format_series, format_table,
    message_count_for, pattern_data, ratio_note, udp_ip_message_pdus,
)
from repro.xkernel.protocols import ip as ip_proto
from repro.xkernel.protocols import udp as udp_proto


# -- workload builders ---------------------------------------------------------

def test_pattern_data_length_and_determinism():
    assert len(pattern_data(12345)) == 12345
    assert pattern_data(100) == pattern_data(100)


def test_udp_packet_layout():
    packet = build_udp_packet(b"payload", 9, 7, checksum=False)
    src, dst, length, csum = udp_proto.HEADER.unpack(
        packet[:udp_proto.HEADER_BYTES])
    assert (src, dst, length, csum) == (9, 7, 7, 0)
    assert packet[udp_proto.HEADER_BYTES:] == b"payload"


def test_udp_packet_checksum_matches_stack():
    from repro.atm.crc import fast_internet_checksum
    packet = build_udp_packet(b"data" * 50, 9, 7, checksum=True)
    _s, _d, _l, csum = udp_proto.HEADER.unpack(
        packet[:udp_proto.HEADER_BYTES])
    assert csum == fast_internet_checksum(b"data" * 50)


def test_ip_fragments_cover_packet():
    packet = b"q" * 40000
    frags = build_ip_fragments(packet, mtu=16 * 1024 + 20, ident=5)
    assert len(frags) == 3
    reassembled = b"".join(f[ip_proto.HEADER_BYTES:] for f in frags)
    assert reassembled == packet
    # Flags: MORE on all but the last.
    for i, frag in enumerate(frags):
        _id, off, total, flags, proto, _c = ip_proto.HEADER.unpack(
            frag[:ip_proto.HEADER_BYTES])
        assert total == len(packet)
        assert (flags & ip_proto.FLAG_MORE_FRAGMENTS) == \
            (ip_proto.FLAG_MORE_FRAGMENTS if i < len(frags) - 1 else 0)


@given(st.integers(1, 100000), st.integers(1044, 20000))
def test_fragments_property(nbytes, mtu):
    pdus = udp_ip_message_pdus(nbytes, mtu)
    payloads = b"".join(p[ip_proto.HEADER_BYTES:] for p in pdus)
    assert len(payloads) == nbytes + udp_proto.HEADER_BYTES
    for pdu in pdus:
        assert len(pdu) <= mtu


def test_wire_image_matches_real_stack():
    """The harness's hand-built PDUs must be byte-identical to what the
    sender-side protocol stack emits for the same message."""
    from repro.hw import DS5000_200
    from repro.net import Host
    from repro.sim import Simulator, spawn

    sim = Simulator()
    host = Host(sim, DS5000_200)
    host.connect(link=None, deliver=lambda c: None)
    app, path = host.open_udp_path(local_port=9, remote_port=7)

    sent = []
    real_send = host.driver.send_pdu

    def capture(msg, vci):
        sent.append(msg.read_all())
        yield from real_send(msg, vci)

    host.driver.send_pdu = capture
    data = pattern_data(20000)

    def go():
        yield from app.send_message(data)

    spawn(sim, go(), "s")
    sim.run()
    built = udp_ip_message_pdus(20000, host.ip.mtu, src_port=9,
                                dst_port=7, ident=1)
    stripped = []
    for pdu, real in zip(built, sent, strict=True):
        # idents differ (the stack allocates its own); compare with the
        # ident and header checksum fields zeroed.
        a = bytearray(pdu)
        b = bytearray(real)
        for buf in (a, b):
            buf[0:4] = b"\x00" * 4    # ident
            buf[14:16] = b"\x00\x00"  # header checksum
        stripped.append((bytes(a), bytes(b)))
    for a, b in stripped:
        assert a == b


# -- counting policy ---------------------------------------------------------

def test_message_count_for_bounds():
    assert message_count_for(1) == 400
    assert message_count_for(1 << 20) == 4
    assert message_count_for(16 * 1024) == 64


# -- report formatting ----------------------------------------------------------

def test_format_table_contains_rows_and_columns():
    out = format_table("T", "x", (1, 2), {"a": (10.0, 20.0)}, unit="us")
    assert "T" in out and "a" in out
    assert "10" in out and "20" in out
    assert "(values in us)" in out


def test_format_series_renders_sketch_and_legend():
    out = format_series("F", "KB", "Mbps", (1, 2, 4),
                        {"fast": [100.0, 200.0, 300.0],
                         "slow": [50.0, 60.0, 70.0]})
    assert "F" in out
    assert "*=fast" in out and "+=slow" in out
    assert "(Mbps)" in out


def test_format_series_handles_nan():
    out = format_series("F", "KB", "Mbps", (1, 2),
                        {"s": [float("nan"), 10.0]})
    assert "10" in out


def test_ratio_note():
    assert ratio_note(361.0, 340.0) == "361 vs paper 340 (1.06x)"
    assert "vs paper 0" in ratio_note(5.0, 0.0)

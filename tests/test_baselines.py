"""Baseline mechanism tests (spin-lock queue, PIO, per-PDU interrupts)."""

from repro.baselines import (
    LockedDescriptorQueue, dma_receive, pio_receive,
    run_interrupt_discipline,
)
from repro.hw import DEC3000_600, DS5000_200, DualPortMemory, TurboChannel
from repro.osiris import Descriptor, DescriptorQueue, InterruptMode
from repro.sim import Delay, Simulator, spawn


def _locked_rig():
    sim = Simulator()
    tc = TurboChannel(sim, DS5000_200.bus)
    dp = DualPortMemory(8192)
    queue = LockedDescriptorQueue(sim, tc, dp, 0, 16,
                                  host_is_writer=True)
    return sim, tc, queue


def test_locked_queue_roundtrip():
    sim, tc, queue = _locked_rig()
    got = []

    def host():
        for i in range(5):
            ok = yield from queue.push(
                Descriptor(addr=0x1000 * (i + 1), length=10 + i),
                by_host=True)
            assert ok

    def board():
        while len(got) < 5:
            desc = yield from queue.pop(by_host=False)
            if desc is None:
                yield Delay(1.0)
            else:
                got.append(desc)

    spawn(sim, host())
    spawn(sim, board())
    sim.run()
    assert [d.addr for d in got] == [0x1000 * (i + 1) for i in range(5)]


def test_locked_queue_contention_costs_more_than_lockfree():
    """E7: the same producer/consumer pattern, both disciplines."""
    n = 40

    # Lock-free: plain queue with PIO charges, concurrent access.
    sim = Simulator()
    tc = TurboChannel(sim, DS5000_200.bus)
    dp = DualPortMemory(8192)
    queue = DescriptorQueue(dp, 0, 16, host_is_writer=True)

    def lf_host():
        for i in range(n):
            while not queue.push(Descriptor(addr=0x1000, length=i)):
                yield Delay(0.5)
            reads, writes = queue.host_access.reset()
            yield from tc.pio_read_words(reads)
            yield from tc.pio_write_words(writes)

    def lf_board():
        count = 0
        while count < n:
            desc = queue.pop(by_host=False)
            if desc is None:
                yield Delay(0.2)
            else:
                count += 1
                yield Delay(0.3)

    spawn(sim, lf_host())
    spawn(sim, lf_board())
    sim.run()
    lockfree_time = sim.now

    sim2, tc2, locked = _locked_rig()

    def l_host():
        for i in range(n):
            while True:
                ok = yield from locked.push(
                    Descriptor(addr=0x1000, length=i), by_host=True)
                if ok:
                    break
                yield Delay(0.5)

    def l_board():
        count = 0
        while count < n:
            desc = yield from locked.pop(by_host=False)
            if desc is None:
                yield Delay(0.2)
            else:
                count += 1
                yield Delay(0.3)

    spawn(sim2, l_host())
    spawn(sim2, l_board())
    sim2.run()
    locked_time = sim2.now

    assert locked_time > lockfree_time * 1.5
    # Every push and pop (including empty polls) took the lock.
    assert locked.lock.register.acquisitions >= 2 * n


def test_dma_beats_pio_on_both_machines():
    """Section 2.7's conclusion for the DEC workstations."""
    for machine in (DS5000_200, DEC3000_600):
        dma = dma_receive(machine, 64 * 1024)
        pio = pio_receive(machine, 64 * 1024)
        assert dma.app_access_mbps > pio.app_access_mbps, machine.name


def test_ds_cache_read_after_dma_still_beats_pio():
    """On the DS, reading DMAed data into the cache causes a dramatic
    drop from pure DMA, but stays above PIO (section 2.7)."""
    dma = dma_receive(DS5000_200, 64 * 1024)
    pio = pio_receive(DS5000_200, 64 * 1024)
    assert dma.app_access_mbps < dma.transfer_mbps * 0.5
    assert dma.app_access_mbps > pio.app_access_mbps


def test_alpha_app_reads_at_dma_rate():
    """Crossbar + coherent cache: the application accesses data at the
    rate of, and concurrent with, the DMA transfer (section 2.7)."""
    dma = dma_receive(DEC3000_600, 64 * 1024)
    assert dma.app_access_mbps > dma.transfer_mbps * 0.9


def test_per_pdu_interrupts_cost_throughput_on_ds():
    coalesced = run_interrupt_discipline(DS5000_200, 4096,
                                         InterruptMode.COALESCED,
                                         messages=40)
    per_pdu = run_interrupt_discipline(DS5000_200, 4096,
                                       InterruptMode.PER_PDU,
                                       messages=40)
    assert coalesced.interrupts_per_pdu < 0.35
    assert per_pdu.interrupts_per_pdu > 0.9
    assert coalesced.mbps > per_pdu.mbps

"""Receive processor tests: placement, combining, interrupts, drops."""

from repro.atm import SegmentMode, cell_count, decode_pdu, segment
from repro.hw.dma import DmaMode
from repro.osiris import (
    FictitiousPduSource, InterruptKind, InterruptMode, RxProcessor,
)
from repro.sim import spawn

from conftest import BoardRig


def _feed(rig, cells, gap_us=0.0):
    """Feed cells into the on-board FIFO, blocking when it fills."""
    from repro.sim import Delay

    def feeder():
        for cell in cells:
            if gap_us:
                yield Delay(gap_us)
            yield rig.board.rx_fifo.put(cell)

    return spawn(rig.sim, feeder(), "feeder")


def _setup(rig, vci=5, buffers=8, **rx_kw):
    rig.board.bind_vci(vci, 0)
    rig.feed_free_buffers(buffers)
    return RxProcessor(rig.sim, rig.board, **rx_kw)


def test_single_pdu_lands_in_host_memory(rig):
    rxp = _setup(rig)
    data = b"Isis reassembles Osiris" * 20
    _feed(rig, segment(data, vci=5))
    rig.sim.run()
    descs = rig.drain_received()
    assert len(descs) == 1
    assert descs[0].end_of_pdu
    assert descs[0].vci == 5
    framed = rig.reassemble_host_side(descs)
    assert [decode_pdu(f) for f in framed] == [data]
    assert rxp.pdus_received == 1


def test_multiple_pdus(rig):
    rxp = _setup(rig)
    pdus = [bytes([65 + k]) * (200 + k * 37) for k in range(5)]
    cells = []
    for pdu in pdus:
        cells += segment(pdu, vci=5)
    _feed(rig, cells)
    rig.sim.run()
    framed = rig.reassemble_host_side(rig.drain_received())
    assert [decode_pdu(f) for f in framed] == pdus


def test_pdu_spanning_multiple_buffers(rig):
    """A PDU larger than the 16 KB receive buffer arrives as several
    descriptors; only the last carries END_OF_PDU (section 2.2)."""
    rxp = _setup(rig)
    data = b"B" * (40 * 1024)
    _feed(rig, segment(data, vci=5))
    rig.sim.run()
    descs = rig.drain_received()
    assert len(descs) == 3
    assert [d.end_of_pdu for d in descs] == [False, False, True]
    assert descs[0].length == 372 * 44
    framed = rig.reassemble_host_side(descs)
    assert decode_pdu(framed[0]) == data


def test_unknown_vci_cells_dropped(rig):
    rxp = _setup(rig, vci=5)
    _feed(rig, segment(b"lost", vci=77))
    rig.sim.run()
    assert rig.board.unknown_vci_drops == 1
    assert rig.drain_received() == []


def test_coalesced_interrupts_less_than_one_per_pdu(rig):
    irqs = []
    rig.board.irq.register_handler(lambda kind, ch: irqs.append(kind))
    rxp = _setup(rig, buffers=32)
    pdus = [b"t" * 600] * 10
    cells = []
    for pdu in pdus:
        cells += segment(pdu, vci=5)
    _feed(rig, cells)  # back-to-back burst, host never drains
    rig.sim.run()
    receive_irqs = [k for k in irqs if k is InterruptKind.RECEIVE]
    # One transition: the queue never goes empty during the burst.
    assert len(receive_irqs) == 1
    assert rxp.pdus_received == 10


def test_per_pdu_interrupt_baseline(rig):
    irqs = []
    rig.board.irq.register_handler(lambda kind, ch: irqs.append(kind))
    rxp = _setup(rig, buffers=32,
                 interrupt_mode=InterruptMode.PER_PDU)
    cells = []
    for _ in range(7):
        cells += segment(b"u" * 600, vci=5)
    _feed(rig, cells)
    rig.sim.run()
    assert irqs.count(InterruptKind.RECEIVE) == 7


def test_spaced_pdus_interrupt_each_time_host_drains(rig):
    """Low-rate traffic: each PDU finds an empty queue (host drained it)
    and so asserts an interrupt -- low latency for singletons."""
    irqs = []

    def handler(kind, ch):
        irqs.append(kind)
        rig.drain_received()  # host empties the queue immediately

    rig.board.irq.register_handler(handler)
    rxp = _setup(rig, buffers=32)
    for _ in range(3):
        cells = segment(b"v" * 300, vci=5)
        _feed(rig, cells)
        rig.sim.run()
        # Allow the host model (the handler) to drain between PDUs.
    assert irqs.count(InterruptKind.RECEIVE) == 3


def test_buffer_exhaustion_drops_pdus(rig):
    rxp = _setup(rig, buffers=1)
    pdus = [b"w" * 600] * 4
    cells = []
    for pdu in pdus:
        cells += segment(pdu, vci=5)
    _feed(rig, cells)
    rig.sim.run()
    assert rxp.cells_dropped_no_buffer > 0
    framed = rig.reassemble_host_side(rig.drain_received())
    assert len(framed) == 1  # only the first PDU made it
    assert decode_pdu(framed[0]) == pdus[0]


def test_double_cell_combining_on_backed_up_fifo():
    rig = BoardRig(rx_dma_mode=DmaMode.DOUBLE_CELL)
    rxp = _setup(rig)
    data = b"x" * 4000
    _feed(rig, segment(data, vci=5))
    rig.sim.run()
    assert rxp.combined_dmas > 20
    framed = rig.reassemble_host_side(rig.drain_received())
    assert decode_pdu(framed[0]) == data
    # Roughly half as many bus transactions as cells.
    n = cell_count(len(data))
    assert rig.board.rx_dma.transactions < n * 0.65


def test_double_cell_combining_respects_page_boundaries():
    rig = BoardRig(rx_dma_mode=DmaMode.DOUBLE_CELL)
    rxp = _setup(rig)
    data = b"y" * 16000
    _feed(rig, segment(data, vci=5))
    rig.sim.run()
    framed = rig.reassemble_host_side(rig.drain_received())
    assert decode_pdu(framed[0]) == data
    # No transaction may have crossed a 4 KB boundary: implicitly
    # verified by DmaController raising; combining must still happen.
    assert rxp.combined_dmas > 0


def test_sequence_mode_with_misordered_cells(rig):
    rxp = _setup(rig, reassembly_mode=SegmentMode.SEQUENCE)
    data = b"z" * 2000
    cells = segment(data, vci=5, mode=SegmentMode.SEQUENCE)
    # Swap pairs: 1,0,3,2,... (skew-like, bounded misordering).
    swapped = []
    for i in range(0, len(cells) - 1, 2):
        swapped += [cells[i + 1], cells[i]]
    if len(cells) % 2:
        swapped.append(cells[-1])
    _feed(rig, swapped)
    rig.sim.run()
    framed = rig.reassemble_host_side(rig.drain_received())
    assert decode_pdu(framed[0]) == data


def test_concurrent_mode_with_lagging_link(rig):
    rxp = _setup(rig, reassembly_mode=SegmentMode.CONCURRENT)
    data = b"c" * 3000
    cells = segment(data, vci=5, mode=SegmentMode.CONCURRENT)
    for i, cell in enumerate(cells):
        cell.link_id = i % 4
    lagging = [c for c in cells if c.link_id == 1]
    prompt = [c for c in cells if c.link_id != 1]
    _feed(rig, prompt + lagging)
    rig.sim.run()
    framed = rig.reassemble_host_side(rig.drain_received())
    assert decode_pdu(framed[0]) == data


def test_fictitious_source_generates_valid_pdus(rig):
    rig.board.bind_vci(1, 0)
    rig.feed_free_buffers(16)
    rxp = RxProcessor(rig.sim, rig.board, flow_controlled=True)
    src = FictitiousPduSource(rig.sim, rig.board, vci=1,
                              pdu_bytes=2048, pdu_count=5)
    rig.sim.run()
    assert src.pdus_generated == 5
    framed = rig.reassemble_host_side(rig.drain_received())
    assert len(framed) == 5
    for f in framed:
        assert len(decode_pdu(f)) == 2048


def test_flow_controlled_source_waits_for_buffers(rig):
    """With no buffers the flow-controlled source must stall, then
    proceed when the host feeds the free queue."""
    from repro.sim import Delay

    rig.board.bind_vci(1, 0)
    rxp = RxProcessor(rig.sim, rig.board, flow_controlled=True)
    src = FictitiousPduSource(rig.sim, rig.board, vci=1,
                              pdu_bytes=512, pdu_count=2)

    def late_feeder():
        yield Delay(5000.0)
        rig.feed_free_buffers(4)

    spawn(rig.sim, late_feeder(), "late")
    rig.sim.run()
    framed = rig.reassemble_host_side(rig.drain_received())
    assert len(framed) == 2
    assert rxp.cells_dropped_no_buffer == 0
    assert rig.sim.now > 5000.0

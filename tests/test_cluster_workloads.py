"""Workload engine tests: patterns, determinism, open/closed loop."""

import pytest

from repro.cluster import (
    Fabric, WorkloadSpec, client_rng, collect, pattern_flows, run_workload,
)
from repro.hw import DS5000_200
from repro.sim import SimulationError


def test_pattern_flows_shapes():
    assert pattern_flows("incast", 4) == [(1, 0), (2, 0), (3, 0)]
    assert pattern_flows("incast", 4, server=2) == [(0, 2), (1, 2), (3, 2)]
    assert pattern_flows("pairs", 6) == [(0, 1), (2, 3), (4, 5)]
    # Odd host count: the last host sits out.
    assert pattern_flows("pairs", 5) == [(0, 1), (2, 3)]
    all2all = pattern_flows("all2all", 3)
    assert len(all2all) == 6
    assert all(s != d for s, d in all2all)
    with pytest.raises(SimulationError):
        pattern_flows("ring", 4)
    with pytest.raises(SimulationError):
        pattern_flows("incast", 1)


def test_client_rng_deterministic_and_distinct():
    a1 = [client_rng(7, 0).random() for _ in range(4)]
    a2 = [client_rng(7, 0).random() for _ in range(4)]
    b = [client_rng(7, 1).random() for _ in range(4)]
    other_seed = [client_rng(8, 0).random() for _ in range(4)]
    assert a1 == a2
    assert a1 != b
    assert a1 != other_seed


def test_open_loop_pairs_delivers_everything():
    fab = Fabric(DS5000_200, 4)
    spec = WorkloadSpec(pattern="pairs", kind="open", seed=3,
                        message_bytes=2048, messages_per_client=5,
                        rate_mbps=40.0)
    result = run_workload(fab, spec)
    assert len(result.clients) == 2
    for client in result.clients:
        assert client.messages_sent == 5
        assert client.messages_received == 5
        assert client.bytes_received == 5 * 2048
        assert all(lat > 0 for lat in client.latencies_us)
    assert fab.cells_dropped() == 0
    assert fab.conservation()["holds"]


def test_open_loop_udp_transport():
    fab = Fabric(DS5000_200, 2)
    spec = WorkloadSpec(pattern="pairs", kind="open", transport="udp",
                        message_bytes=1024, messages_per_client=3,
                        rate_mbps=20.0)
    result = run_workload(fab, spec)
    assert result.clients[0].messages_received == 3


def test_unpaced_incast_overflows_the_server_trunk():
    """Eight unpaced senders into one 4-lane trunk must overrun the
    256-cell ports; the conservation identity still balances."""
    fab = Fabric(DS5000_200, 8)
    spec = WorkloadSpec(pattern="incast", kind="open", seed=1,
                        message_bytes=4096, messages_per_client=8)
    result = run_workload(fab, spec)
    assert fab.cells_dropped() > 0
    conservation = fab.conservation()
    assert conservation["holds"]
    assert conservation["queued"] == 0  # ran to quiescence
    received = sum(c.messages_received for c in result.clients)
    sent = sum(c.messages_sent for c in result.clients)
    assert received < sent  # incast collapse, not clean delivery


def test_rpc_workload_closed_loop():
    fab = Fabric(DS5000_200, 3)
    spec = WorkloadSpec(pattern="incast", kind="rpc", seed=5,
                        requests_per_client=4, rpc_block_bytes=8192,
                        rpc_read_fraction=1.0)
    result = run_workload(fab, spec)
    for client in result.clients:
        assert client.messages_received == 4
        # All reads: every reply is one NFS block.
        assert client.bytes_received == 4 * 8192
        assert len(client.latencies_us) == 4
    summary = result.summary()
    assert summary["latency_us"]["min"] > spec.rpc_service_us


def test_rpc_mix_includes_writes():
    fab = Fabric(DS5000_200, 2)
    spec = WorkloadSpec(pattern="pairs", kind="rpc", seed=2,
                        requests_per_client=12, rpc_read_fraction=0.5)
    result = run_workload(fab, spec)
    client = result.clients[0]
    assert client.messages_received == 12
    # A 50/50 mix over 12 calls: some replies are 8 KB blocks, some
    # are 4-byte write acks, so totals can't be all-reads or all-writes.
    assert 12 * 4 < client.bytes_received < 12 * 8192


def test_workload_rejects_unknown_kind():
    fab = Fabric(DS5000_200, 2)
    with pytest.raises(SimulationError):
        run_workload(fab, WorkloadSpec(kind="mystery"))


def test_same_seed_reports_identical():
    def one_run():
        fab = Fabric(DS5000_200, 4)
        spec = WorkloadSpec(pattern="all2all", kind="open", seed=11,
                            message_bytes=2048, messages_per_client=3,
                            rate_mbps=60.0, arrival="poisson")
        result = run_workload(fab, spec)
        return collect(fab, result).to_json()

    assert one_run() == one_run()


def test_different_seed_changes_poisson_timing():
    def one_run(seed):
        fab = Fabric(DS5000_200, 4)
        spec = WorkloadSpec(pattern="incast", kind="open", seed=seed,
                            message_bytes=2048, messages_per_client=4,
                            rate_mbps=30.0, arrival="poisson")
        run_workload(fab, spec)
        return fab.sim.now

    assert one_run(1) != one_run(2)

"""Cell-train fast path: equivalence with the per-cell path.

The contract under test (DESIGN.md section 10): with ``trains=True``
a fabric produces a :class:`ClusterReport` byte-identical to the
``trains=False`` run -- same counters, same latencies, same fault
decisions -- while folding per-cell heap events into train events.
The parametrized matrix sweeps workload pattern x topology x faults x
shard count; the unit tests pin each expansion trigger individually.
"""

import pytest

from repro.atm.cell import Cell
from repro.atm.link import CellPipe
from repro.atm.switch import CellSwitch
from repro.cluster import Fabric, WorkloadSpec, collect, run_workload
from repro.cluster.sharded import ShardFabric, run_cluster_sharded
from repro.faults.plan import FaultPlan, FaultSite
from repro.hw.specs import DS5000_200
from repro.sim import Simulator
from repro.sim.trains import CellTrain

# ---------------------------------------------------------------------------
# Byte-identity matrix
# ---------------------------------------------------------------------------


def _kwargs(topology, faults, trains):
    kw = dict(machines=DS5000_200, n_hosts=4, topology=topology,
              backpressure="credit", credit_window_cells=64,
              drain_policy="rr", trains=trains)
    if faults:
        kw["faults"] = FaultPlan.parse("loss=0.01", seed=1)
    return kw


def _spec(pattern):
    return WorkloadSpec(pattern=pattern, kind="open", seed=1,
                        message_bytes=2048, messages_per_client=1)


_BASELINES: dict = {}


def _baseline_json(pattern, topology, faults) -> str:
    """The per-cell (trains off) single-process report."""
    key = (pattern, topology, faults)
    if key not in _BASELINES:
        fabric = Fabric(**_kwargs(topology, faults, trains=False))
        workload = run_workload(fabric, _spec(pattern))
        _BASELINES[key] = collect(fabric, workload).to_json()
    return _BASELINES[key]


@pytest.mark.parametrize("n_shards", (1, 2))
@pytest.mark.parametrize("faults", (False, True),
                         ids=("clean", "loss1pct"))
@pytest.mark.parametrize("topology", ("switched", "clos"))
@pytest.mark.parametrize("pattern", ("pairs", "incast", "all2all"))
def test_train_report_byte_identical(pattern, topology, faults,
                                     n_shards):
    kwargs = _kwargs(topology, faults, trains=True)
    if n_shards == 1:
        fabric = Fabric(**kwargs)
        workload = run_workload(fabric, _spec(pattern))
        got = collect(fabric, workload).to_json()
        assert fabric.sim.events_absorbed > 0, \
            "the fast path never engaged; the test is vacuous"
    else:
        report, _run = run_cluster_sharded(
            kwargs, _spec(pattern), n_shards, backend="inline")
        got = report.to_json()
    assert got == _baseline_json(pattern, topology, faults)


def test_model_event_totals_agree():
    """processed + absorbed with trains == processed without: every
    folded event is accounted for, none double-counted."""
    totals = {}
    for trains in (True, False):
        fabric = Fabric(**_kwargs("switched", False, trains))
        run_workload(fabric, _spec("pairs"))
        totals[trains] = (fabric.sim.events_processed
                          + fabric.sim.events_absorbed)
        if not trains:
            assert fabric.sim.events_absorbed == 0
    assert totals[True] == totals[False]


# ---------------------------------------------------------------------------
# Expansion triggers, unit by unit
# ---------------------------------------------------------------------------


def _cells(vci, n, eom=True):
    out = [Cell(vci=vci, payload=b"x" * 44, tx_index=i) for i in range(n)]
    if eom:
        out[-1].eom = True
    return out


def _switch_with_train(sim, n=4, **kw):
    """A one-trunk switch and a ready-to-fuse train on lane 0."""
    sw = CellSwitch(sim, name="s", switching_delay_us=0.0, **kw)
    sw.add_trunk(0, lambda cell: None)
    sw.add_route(7, 0, 9)
    cells = [Cell(vci=7, payload=b"x" * 44, tx_index=4 * i)
             for i in range(n)]
    for c in cells:
        c.link_id = 0
    ct = sw.cell_time_us
    times = [10.0 + i * ct for i in range(n)]
    return sw, CellTrain(cells, times, ("up", 0, 0), 0)


def test_fuse_commits_counters_and_departures():
    sim = Simulator()
    sw, train = _switch_with_train(sim)
    result = sw.input_train(train)
    assert result is not None
    trunk_id, lane, cells_out, deps = result
    assert (trunk_id, lane) == (0, 0)
    assert [c.vci for c in cells_out] == [9] * 4
    assert deps == [t + sw.cell_time_us for t in train.times]
    assert sw.cells_switched == 4
    assert sim.events_absorbed == 3          # n - 1 folded arrivals


def test_train_expands_at_contention():
    """Cross traffic on the port (or any real backlog) forbids the
    fused commit: interleaving could matter, so the per-cell events
    must run."""
    sim = Simulator()
    sw, train = _switch_with_train(sim)
    sw.inject_cross_traffic(0, 0, rate_mbps=50.0, duration_us=100.0)
    assert sw.input_train(train) is None

    sim2 = Simulator()
    sw2, train2 = _switch_with_train(sim2)
    assert sw2._admit(sw2._trunks[0][0],
                      Cell(vci=9, payload=b"", link_id=0))
    assert sw2._trunks[0][0].index.depth > 0
    assert sw2.input_train(train2) is None


def test_train_expands_with_second_route_on_trunk():
    sim = Simulator()
    sw, train = _switch_with_train(sim)
    sw.add_route(8, 0, 10)      # another flow shares the trunk
    assert sw.input_train(train) is None


def test_train_expands_when_port_kill_armed():
    sim = Simulator()
    sw, train = _switch_with_train(sim)
    sw.arm_port_kill(0, 0, at_us=50.0)
    assert sw.input_train(train) is None


def test_train_expands_at_occupancy_cap():
    sim = Simulator()
    sw, train = _switch_with_train(sim, port_queue_cells=3)
    assert sw.input_train(train) is None     # 4 cells > 3-cell cap


class _CapturePort:
    """A train port that records what the pipe emits."""

    def __init__(self):
        self.singles = []
        self.trains = []
        self.seq = 0

    def allowed(self, cell):
        return True

    def emit_single(self, arrival, cell):
        self.singles.append((arrival, cell))
        self.seq += 1

    def open(self, arrival, cell):
        train = CellTrain([cell], [arrival], ("up", 0, 0), self.seq)
        self.seq += 1
        self.trains.append(train)
        return train

    def append_bump(self):
        self.seq += 1


def test_fault_arming_mid_train_defers_to_per_cell_events():
    """A scheduled fault change inside the burst's serialization span
    splits the train: cells finishing before the hazard are absorbed
    as usual, cells finishing after it ride real per-cell events at
    the exact pump completion times."""
    sim = Simulator()
    port = _CapturePort()
    pipe = CellPipe(sim, 0, lambda cell: None, prop_delay_us=2.0)
    pipe.enable_trains(port)
    site = FaultSite(name="up.h0.l0", seed=1)
    pipe.fault_site = site
    # The hazard lands while cell 3 of 4 is still serializing.
    site.note_scheduled(2.5 * pipe.cell_time_us)
    for cell in _cells(7, 4):
        pipe.submit(cell)
    # Cells 1-2 finish before the hazard: decided now, one train.
    assert sim.events_absorbed == 2
    assert len(port.trains) == 1 and len(port.trains[0]) == 2
    # Cells 3-4 finish after it: deferred behind real events.
    assert len(pipe._deferred) == 2
    assert port.singles == []
    sim.run()
    # The deferred cells came out as per-cell emissions, in order.
    assert len(pipe._deferred) == 0
    assert len(port.singles) == 2
    assert sim.events_absorbed == 2          # nothing absorbed late
    ct = pipe.cell_time_us
    assert [t for t, _ in port.singles] == \
        [pytest.approx(i * ct + 2.0) for i in (3, 4)]


def test_clean_burst_rides_one_train():
    sim = Simulator()
    port = _CapturePort()
    pipe = CellPipe(sim, 0, lambda cell: None, prop_delay_us=2.0)
    pipe.enable_trains(port)
    pipe.submit_burst(_cells(7, 5))
    assert len(port.trains) == 1
    assert len(port.trains[0]) == 5
    assert port.singles == []
    assert sim.events_absorbed == 5
    ct = pipe.cell_time_us
    times = port.trains[0].times
    assert times == [pytest.approx(2.0 + (i + 1) * ct)
                     for i in range(5)]
    # eom closed the train: the next burst opens a new one.
    pipe.submit_burst(_cells(7, 2))
    assert len(port.trains) == 2


def test_burst_submission_matches_per_cell_submission():
    """submit_burst is an optimization, not a semantic: same trains,
    same times, same channel-sequence positions as per-cell submit."""
    results = []
    for burst in (True, False):
        sim = Simulator()
        port = _CapturePort()
        pipe = CellPipe(sim, 0, lambda cell: None, prop_delay_us=2.0)
        pipe.enable_trains(port)
        cells = _cells(7, 6)
        if burst:
            pipe.submit_burst(cells)
        else:
            for cell in cells:
                pipe.submit(cell)
        results.append([(t.n0, t.times, len(t)) for t in port.trains]
                       + [("seq", port.seq),
                          ("absorbed", sim.events_absorbed),
                          ("mq", pipe.max_queue)])
    assert results[0] == results[1]


def test_shard_boundary_forbids_trains():
    """A cell whose switch arrival would land on another shard must
    ride per-cell boundary messages; local cells may ride trains."""
    kwargs = _kwargs("switched", False, trains=True)
    shard = ShardFabric(0, 2, **kwargs)
    local = [i for i in range(4) if shard.owns_host(i)]
    remote = [i for i in range(4) if not shard.owns_host(i)]
    flow_local = shard.open_flow(local[0], local[1])
    flow_out = shard.open_flow(local[0], remote[0])
    sw = shard._attach[local[0]][0]
    cell_local = Cell(vci=flow_local.src_vci, payload=b"")
    cell_out = Cell(vci=flow_out.src_vci, payload=b"")
    assert shard._train_local(sw, local[0], cell_local)
    assert not shard._train_local(sw, local[0], cell_out)


def test_sharded_run_absorbs_events_on_local_segments():
    report, run = run_cluster_sharded(
        _kwargs("switched", False, trains=True), _spec("pairs"), 2,
        backend="inline")
    assert run.events_absorbed > 0
    assert report.to_json() == _baseline_json("pairs", "switched",
                                              False)


# ---------------------------------------------------------------------------
# Simulator.run return value (completion vs truncation)
# ---------------------------------------------------------------------------


def test_run_returns_executed_count():
    sim = Simulator()
    for i in range(5):
        sim.call_at(float(i), lambda: None)
    assert sim.run(max_events=3) == 3        # budget hit: truncated
    assert sim.run() == 2                    # drained: below budget
    assert sim.run() == 0

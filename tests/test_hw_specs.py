"""The bus constants must reproduce the paper's section 2.5.1 ceilings."""

import pytest

from repro.hw import (
    AAL_PAYLOAD_BYTES, BusSpec, DEC3000_600, DS5000_200, with_costs,
)


@pytest.fixture
def bus():
    return BusSpec()


def test_peak_bandwidth_is_800_mbps(bus):
    assert bus.peak_mbps == pytest.approx(800.0)


def test_single_cell_transmit_ceiling_367(bus):
    # (paper) 11/(11+13) * 800 = 367 Mbps
    assert bus.dma_read_ceiling_mbps(AAL_PAYLOAD_BYTES) == \
        pytest.approx(366.67, abs=0.5)


def test_single_cell_receive_ceiling_463(bus):
    # (paper) 11/(11+8) * 800 = 463 Mbps
    assert bus.dma_write_ceiling_mbps(AAL_PAYLOAD_BYTES) == \
        pytest.approx(463.2, abs=0.5)


def test_double_cell_transmit_ceiling_503(bus):
    # (paper) 22/(22+13) * 800 = 503 Mbps
    assert bus.dma_read_ceiling_mbps(2 * AAL_PAYLOAD_BYTES) == \
        pytest.approx(502.9, abs=0.5)


def test_double_cell_receive_ceiling_587(bus):
    # (paper) 22/(22+8) * 800 = 587 Mbps
    assert bus.dma_write_ceiling_mbps(2 * AAL_PAYLOAD_BYTES) == \
        pytest.approx(586.7, abs=0.5)


def test_overhead_shrinks_with_length(bus):
    # Paper: going 44 -> 88 bytes cuts receive overhead from 42% to 26%.
    single = bus.dma_write_us(44)
    double = bus.dma_write_us(88)
    overhead_single = 1 - (11 * bus.cycle_us) / single
    overhead_double = 1 - (22 * bus.cycle_us) / double
    assert overhead_single == pytest.approx(8 / 19)
    assert overhead_double == pytest.approx(8 / 30)


def test_dma_cost_rounds_partial_words_up(bus):
    assert bus.dma_write_us(1) == bus.dma_write_us(4)
    assert bus.dma_write_us(5) > bus.dma_write_us(4)


def test_machines_have_expected_character():
    assert DS5000_200.shared_memory_path
    assert not DS5000_200.cache.coherent_with_dma
    assert not DEC3000_600.shared_memory_path
    assert DEC3000_600.cache.coherent_with_dma
    assert DS5000_200.costs.interrupt_service == 75.0  # (paper)


def test_invalidate_cost_one_cycle_per_word():
    # 16 KB = 4096 words => 4096 cycles at 25 MHz = 163.84 us.
    assert DS5000_200.invalidate_us(16 * 1024) == pytest.approx(163.84)


def test_with_costs_overrides_single_field():
    tweaked = with_costs(DS5000_200, interrupt_service=10.0)
    assert tweaked.costs.interrupt_service == 10.0
    assert tweaked.costs.driver_rx_pdu == DS5000_200.costs.driver_rx_pdu
    assert DS5000_200.costs.interrupt_service == 75.0

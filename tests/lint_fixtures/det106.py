"""Fixture: DET106, unsorted filesystem enumeration."""

import os


def load_traces(path: str) -> list:
    out = []
    for name in os.listdir(path):
        out.append(name)
    return out

"""Fixture: DET101, the process-global RNG."""

import random

JITTER = random.random()
UNSEEDED = random.Random()

"""Fixture: determinism-clean module the linter must not flag.

Linted under a synthetic ``cluster/`` path, so every DET103/DET105
pattern here is in scope -- and correctly handled.
"""

import random


def draws(seed: int) -> list:
    rng = random.Random(seed)
    return [rng.random() for _ in range(4)]


def total(table: dict) -> int:
    return sum(v for v in table.values())


def ordered(table: dict) -> list:
    return [key for key, _value in sorted(table.items())]

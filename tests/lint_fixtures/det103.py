"""Fixture: DET103, unordered iteration feeding an ordered result.

Linted under a synthetic ``cluster/`` path; DET103 only applies
inside the order-sensitive packages.
"""


def schedule(table: dict) -> list:
    out = []
    for vci, cell in table.items():
        out.append((vci, cell))
    return out

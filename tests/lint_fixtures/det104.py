"""Fixture: DET104, an identity-derived key."""


def key_for(obj) -> int:
    return id(obj)

"""Fixture: DET102, a wall-clock read outside bench/."""

import time


def stamp() -> float:
    return time.perf_counter()

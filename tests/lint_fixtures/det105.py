"""Fixture: DET105, a host-environment read in model logic.

Linted under a synthetic ``sim/`` path; DET105 only applies inside
the order-sensitive packages.
"""

import os


def shard_count() -> int:
    return os.cpu_count() or 1

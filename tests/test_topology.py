"""Topology generators, ECMP routing, and shard partitioning.

The properties under test are the ones the fabric leans on: every
generated spec is valid and fully connected (all-pairs reachability),
route construction is complete (every flow's path reaches its
destination switch with a route installed at every hop, no VCI
collisions anywhere), ECMP path choice is a pure function of content
(same seed -> same path, across processes and shard counts) yet
actually spreads flows across equal-cost candidates, and the greedy
partition is balanced and deterministic.
"""

import pytest

from repro.sim import SimulationError
from repro.topology import (
    bfs_distances, build_ecmp_tables, build_spec, clos_spec, cut_edges,
    partition_hosts, partition_switches, switched_spec, torus_spec,
)

ALL_SPECS = [
    ("switched-1", switched_spec(8, 1)),
    ("switched-3", switched_spec(9, 3)),
    ("clos-1pod", clos_spec(4, pods=1)),
    ("clos-4pod", clos_spec(16, pods=4)),
    ("clos-oversub", clos_spec(12, pods=6, oversubscription=3.0)),
    ("torus-2x2x2", torus_spec(8, (2, 2, 2))),
    ("torus-3x2x2", torus_spec(24, (3, 2, 2))),
    ("torus-1d", torus_spec(4, (4,))),
]


# -- generators ------------------------------------------------------------


@pytest.mark.parametrize("name,spec", ALL_SPECS,
                         ids=[n for n, _ in ALL_SPECS])
def test_specs_validate_and_fully_reachable(name, spec):
    spec.validate()
    assert spec.unreachable_pairs() == []
    dists = bfs_distances(spec)
    for row in dists:
        assert all(d >= 0 for d in row)


def test_switched_spec_reproduces_seed_wiring():
    """The flat topology must wire exactly as the seed fabric did:
    names sw{k}, hosts dealt round-robin, full-mesh links s-major --
    the byte-identity of old reports depends on it."""
    spec = switched_spec(5, 2)
    assert spec.switch_names == ("sw0", "sw1")
    assert spec.host_attach == (0, 1, 0, 1, 0)
    assert spec.links == ((0, 1), (1, 0))
    assert switched_spec(4, 9).n_switches == 4  # clamped to hosts


def test_clos_shape():
    spec = clos_spec(16, pods=4, oversubscription=2.0)
    leaves = [n for n in spec.switch_names if n.startswith("leaf")]
    spines = [n for n in spec.switch_names if n.startswith("spine")]
    assert len(leaves) == 4 and len(spines) == 2
    # Hosts in contiguous blocks; every leaf cabled to every spine.
    assert spec.host_attach == (0,) * 4 + (1,) * 4 + (2,) * 4 + (3,) * 4
    spine_ids = {spec.switch_index(s) for s in spines}
    for leaf in leaves:
        li = spec.switch_index(leaf)
        assert {t for s, t in spec.links if s == li} == spine_ids
    # Leaves never cable to each other: all traffic transits a spine.
    dists = bfs_distances(spec)
    for a in leaves:
        for b in leaves:
            if a != b:
                assert dists[spec.switch_index(a)][
                    spec.switch_index(b)] == 2


def test_torus_shape():
    spec = torus_spec(8, (2, 2, 2))
    assert spec.n_switches == 8
    assert spec.switch_names[0] == "t0.0.0"
    assert spec.switch_coords[5] == (1, 0, 1)
    # Every node has one neighbor per axis (wraparound at size 2
    # dedupes +1/-1 into a single cable).
    for row in spec.neighbors():
        assert len(row) == 3
    # Degree doubles once an axis exceeds 2.
    spec4 = torus_spec(4, (4,))
    for row in spec4.neighbors():
        assert len(row) == 2


def test_build_spec_rejects_unknown():
    with pytest.raises(SimulationError):
        build_spec("hypercube", 8)


# -- ECMP routing ----------------------------------------------------------


def test_ecmp_paths_are_minimal_and_deterministic():
    spec = clos_spec(16, pods=4, oversubscription=1.0)
    tables = build_ecmp_tables(spec)
    dists = bfs_distances(spec)
    for src in range(spec.n_switches):
        for dst in range(spec.n_switches):
            path = tables.path(src, dst, flow_key=0x1234, seed=1)
            assert path[0] == src and path[-1] == dst
            assert len(path) - 1 == dists[src][dst]
            # Rebuilt tables, same content -> same path.
            again = build_ecmp_tables(spec).path(src, dst,
                                                 flow_key=0x1234, seed=1)
            assert again == path


def test_ecmp_spreads_flows_across_spines():
    """Distinct flow keys must not all pick one spine -- that would be
    a routing table, not multipath."""
    spec = clos_spec(16, pods=4, oversubscription=1.0)
    tables = build_ecmp_tables(spec)
    spines = set()
    for vci in range(0x1000, 0x1040):
        path = tables.path(0, 3, flow_key=vci, seed=1)
        spines.add(path[1])
    assert len(spines) > 1


def test_ecmp_seed_changes_selection():
    spec = clos_spec(16, pods=4, oversubscription=1.0)
    tables = build_ecmp_tables(spec)
    picks = {seed: tuple(tables.path(0, 3, flow_key=v, seed=seed)
                         for v in range(0x1000, 0x1020))
             for seed in (1, 2)}
    assert picks[1] != picks[2]


# -- route-table completeness on a live fabric -----------------------------


@pytest.mark.parametrize("kw", [
    dict(topology="clos", pods=4),
    dict(topology="torus", torus_dims=(2, 2, 2)),
    dict(topology="switched", n_switches=3),
], ids=["clos", "torus", "switched"])
def test_route_tables_complete_all_pairs(kw):
    from repro.cluster import Fabric
    from repro.hw.specs import DS5000_200

    fabric = Fabric(machines=DS5000_200, n_hosts=8, **kw)
    flows = [fabric.open_flow(a, b)
             for a in range(8) for b in range(8) if a != b]
    for flow in flows:
        for vci, src, dst in ((flow.src_vci, flow.src, flow.dst),
                              (flow.dst_vci, flow.dst, flow.src)):
            here, _ = fabric._attach[src]
            d_sw, d_trunk = fabric._attach[dst]
            hops = 0
            while True:
                route = fabric.switches[here].route_for(vci)
                assert route is not None, \
                    f"VCI {vci:#x} unrouted at switch {here}"
                trunk, out_vci = route
                kind, idx = fabric._trunk_dest[(here, trunk)]
                if kind == "host":
                    assert here == d_sw and trunk == d_trunk
                    assert idx == dst
                    break
                assert out_vci == vci, "rewrite before the final hop"
                here = idx
                hops += 1
                assert hops <= fabric.topo.n_switches, "routing loop"


# -- partitioning ----------------------------------------------------------


@pytest.mark.parametrize("name,spec", ALL_SPECS,
                         ids=[n for n, _ in ALL_SPECS])
@pytest.mark.parametrize("n_shards", (1, 2, 4))
def test_partition_balanced_total_deterministic(name, spec, n_shards):
    assign = partition_hosts(spec, n_shards)
    assert len(assign) == spec.n_hosts
    assert assign == partition_hosts(spec, n_shards)
    cap = -(-spec.n_hosts // n_shards)
    for s in range(n_shards):
        assert assign.count(s) <= cap
    assert all(0 <= a < n_shards for a in assign)
    switches = partition_switches(spec, assign, n_shards)
    assert len(switches) == spec.n_switches
    assert all(0 <= s < n_shards for s in switches)


def test_partition_keeps_racks_together():
    """A Clos leaf's hosts must land on one shard when capacity
    allows -- the whole point of replacing ``i % K``."""
    spec = clos_spec(16, pods=4)
    assign = partition_hosts(spec, 2)
    naive = [i % 2 for i in range(16)]
    assert cut_edges(spec, assign) == 0
    assert cut_edges(spec, assign) < cut_edges(spec, naive)
    for leaf in range(4):
        shards = {assign[i] for i in spec.hosts_on(leaf)}
        assert len(shards) == 1

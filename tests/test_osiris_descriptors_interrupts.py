"""Descriptor encoding and interrupt-line unit/property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.osiris import (
    Descriptor, FLAG_END_OF_PDU, FLAG_ERROR, InterruptKind, InterruptLine,
    WORDS_PER_DESCRIPTOR,
)
from repro.sim import SimulationError, Simulator


# -- descriptors -----------------------------------------------------------------

def test_descriptor_flags():
    d = Descriptor(addr=0x1000, length=10, flags=FLAG_END_OF_PDU)
    assert d.end_of_pdu and not d.error
    e = Descriptor(addr=0x1000, length=10,
                   flags=FLAG_END_OF_PDU | FLAG_ERROR)
    assert e.end_of_pdu and e.error


def test_descriptor_word_roundtrip():
    d = Descriptor(addr=0xABCD00, length=16368, flags=3, vci=777)
    assert Descriptor.from_words(d.to_words()) == d
    assert len(d.to_words()) == WORDS_PER_DESCRIPTOR


@given(st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF),
       st.integers(0, 3), st.integers(0, 0xFFFF))
def test_descriptor_roundtrip_property(addr, length, flags, vci):
    d = Descriptor(addr=addr, length=length, flags=flags, vci=vci)
    assert Descriptor.from_words(d.to_words()) == d


def test_descriptor_field_validation():
    with pytest.raises(SimulationError):
        Descriptor(addr=-1, length=0)
    with pytest.raises(SimulationError):
        Descriptor(addr=0, length=1 << 33)
    with pytest.raises(SimulationError):
        Descriptor(addr=0, length=0, vci=1 << 17)


def test_descriptor_repr_marks():
    d = Descriptor(addr=0x10, length=5, flags=FLAG_END_OF_PDU | FLAG_ERROR)
    assert "E" in repr(d) and "!" in repr(d)


# -- interrupt line -----------------------------------------------------------------

def test_interrupt_dispatch_after_wire_delay():
    sim = Simulator()
    line = InterruptLine(sim, assert_delay_us=2.5)
    fired = []
    line.register_handler(lambda kind, ch: fired.append((sim.now, kind, ch)))
    line.assert_irq(InterruptKind.RECEIVE, 3)
    sim.run()
    assert fired == [(2.5, InterruptKind.RECEIVE, 3)]
    assert line.counts[InterruptKind.RECEIVE] == 1
    assert line.total == 1


def test_interrupt_without_handler_is_counted_not_lost():
    sim = Simulator()
    line = InterruptLine(sim)
    line.assert_irq(InterruptKind.PROTECTION_VIOLATION, 1)
    sim.run()
    assert line.counts[InterruptKind.PROTECTION_VIOLATION] == 1


def test_interrupt_kinds_counted_separately():
    sim = Simulator()
    line = InterruptLine(sim)
    line.register_handler(lambda kind, ch: None)
    for _ in range(3):
        line.assert_irq(InterruptKind.RECEIVE)
    line.assert_irq(InterruptKind.TRANSMIT_SPACE)
    sim.run()
    assert line.counts[InterruptKind.RECEIVE] == 3
    assert line.counts[InterruptKind.TRANSMIT_SPACE] == 1
    assert line.total == 4
